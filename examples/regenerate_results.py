"""Regenerate every reproduced table and figure and rewrite EXPERIMENTS.md.

Runs the complete experiment registry (all figures, Table II, the prior-work
comparison and the extension ablations) against the default Titan V cost
model and writes the paper-vs-model tables to ``EXPERIMENTS.md`` at the
repository root.

Run with::

    python examples/regenerate_results.py [output-path]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import format_experiment, run_all

HEADER = """# EXPERIMENTS — paper versus model

Every table and figure of the paper's evaluation section, regenerated with
`repro.experiments` against the analytic Titan V cost model (see DESIGN.md
section 5 for the calibration).  Absolute microseconds come from a calibrated
model, not CUDA measurements; the quantities to compare are the *shapes*:
which configuration wins, by roughly what factor, and where the crossovers
fall.  Paper-reported values are included in the tables/notes wherever the
paper states them.

Regenerate this file with `python examples/regenerate_results.py`, or inspect
individual experiments with `python -m repro.experiments <key>`.
"""


def main(argv: list[str]) -> int:
    output = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    sections = [HEADER]
    for result in run_all():
        sections.append("## %s — %s\n" % (result.experiment_id, result.title))
        sections.append("```")
        sections.append(format_experiment(result).split("\n", 2)[2])
        sections.append("```")
        sections.append("")
    output.write_text("\n".join(sections), encoding="utf-8")
    print("wrote %s" % output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
