"""Design-space exploration on the modelled GPU (Sections V-VII of the paper).

Sweeps the paper's main design axes with the analytic Titan V model and
prints the resulting trade-off tables:

* register-based high-radix NTT vs DFT (best radix, occupancy, bandwidth),
* the SMEM two-kernel implementation across per-thread NTT sizes and
  kernel splits,
* the effect of coalescing, twiddle preloading and on-the-fly twiddling,
* the final Table II summary (radix-2 vs SMEM vs SMEM + OT).

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.core import OnTheFlyConfig
from repro.experiments import format_table
from repro.gpu import GpuCostModel, TITAN_V
from repro.kernels import (
    high_radix_dft_model,
    high_radix_ntt_model,
    radix2_ntt_model,
    smem_ntt_model,
)

N = 1 << 17
BATCH = 21


def explore_high_radix(model: GpuCostModel) -> None:
    print("== register-based high radix (N = 2^17, np = 21) ==")
    rows = []
    for radix in (2, 4, 8, 16, 32, 64, 128):
        ntt = (
            radix2_ntt_model(N, BATCH, model)
            if radix == 2
            else high_radix_ntt_model(N, BATCH, radix, model)
        )
        dft = high_radix_dft_model(N, BATCH, radix, model)
        rows.append(
            {
                "radix": radix,
                "NTT time (us)": ntt.time_us,
                "NTT occupancy": ntt.occupancy,
                "NTT BW util": ntt.bandwidth_utilization,
                "DFT time (us)": dft.time_us,
                "DFT occupancy": dft.occupancy,
            }
        )
    print(format_table(list(rows[0].keys()), rows))
    best_ntt = min(rows, key=lambda r: r["NTT time (us)"])["radix"]
    best_dft = min(rows, key=lambda r: r["DFT time (us)"])["radix"]
    print("best NTT radix: %d (paper: 16) | best DFT radix: %d (paper: 32)\n" % (best_ntt, best_dft))


def explore_smem(model: GpuCostModel) -> None:
    print("== SMEM two-kernel implementation (N = 2^17, np = 21) ==")
    rows = []
    for split in ((512, 256), (256, 512), (128, 1024), (64, 2048)):
        for per_thread in (2, 4, 8):
            result = smem_ntt_model(N, BATCH, model, *split, per_thread_points=per_thread)
            rows.append(
                {
                    "Kernel-1 x Kernel-2": "%dx%d" % split,
                    "per-thread NTT": per_thread,
                    "time (us)": result.time_us,
                    "DRAM (MB)": result.dram_mb,
                    "BW util": result.bandwidth_utilization,
                }
            )
    print(format_table(list(rows[0].keys()), rows))
    print()


def explore_knobs(model: GpuCostModel) -> None:
    print("== individual optimisation knobs (Kernel-1 / full transform effects) ==")
    base = smem_ntt_model(N, BATCH, model, 256, 512)
    uncoalesced = smem_ntt_model(N, BATCH, model, 256, 512, coalesced=False)
    no_preload = smem_ntt_model(N, BATCH, model, 256, 512, preload_twiddles=False)
    ot1 = smem_ntt_model(N, BATCH, model, 256, 512, ot=OnTheFlyConfig(1024, 1))
    ot2 = smem_ntt_model(N, BATCH, model, 256, 512, ot=OnTheFlyConfig(1024, 2))
    rows = [
        {"configuration": "baseline (coalesced, preload, no OT)", "time (us)": base.time_us,
         "DRAM (MB)": base.dram_mb},
        {"configuration": "uncoalesced Kernel-1", "time (us)": uncoalesced.time_us,
         "DRAM (MB)": uncoalesced.dram_mb},
        {"configuration": "no twiddle preload", "time (us)": no_preload.time_us,
         "DRAM (MB)": no_preload.dram_mb},
        {"configuration": "+ OT on last stage", "time (us)": ot1.time_us, "DRAM (MB)": ot1.dram_mb},
        {"configuration": "+ OT on last two stages", "time (us)": ot2.time_us,
         "DRAM (MB)": ot2.dram_mb},
    ]
    print(format_table(list(rows[0].keys()), rows))
    print("OT speedup: %.1f%% (paper: 9.3%% average)\n" % (100 * (base.time_us / ot2.time_us - 1)))


def summarise_table2(model: GpuCostModel) -> None:
    print("== Table II summary ==")
    rows = []
    for log_n in (14, 15, 16, 17):
        n = 1 << log_n
        split = {14: (128, 128), 15: (128, 256), 16: (256, 256), 17: (256, 512)}[log_n]
        radix2 = radix2_ntt_model(n, BATCH, model)
        smem = smem_ntt_model(n, BATCH, model, *split)
        smem_ot = smem_ntt_model(n, BATCH, model, *split, ot=OnTheFlyConfig(1024, 2))
        rows.append(
            {
                "logN": log_n,
                "radix-2 (us)": radix2.time_us,
                "SMEM (us)": smem.time_us,
                "SMEM+OT (us)": smem_ot.time_us,
                "speedup": radix2.time_us / smem_ot.time_us,
            }
        )
    print(format_table(list(rows[0].keys()), rows))
    print("paper: 3.8x / 4.0x / 4.4x / 4.7x with OT (4.2x average)")


def main() -> None:
    model = GpuCostModel(TITAN_V)
    print("modelled device: %s (%d SMs, %.0f GB/s peak)\n"
          % (TITAN_V.name, TITAN_V.sm_count, TITAN_V.peak_bandwidth_gbps))
    explore_high_radix(model)
    explore_smem(model)
    explore_knobs(model)
    summarise_table2(model)


if __name__ == "__main__":
    main()
