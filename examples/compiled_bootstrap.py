"""Whole-program compilation of a bootstrap-shaped circuit.

The paper's profile says NTT/iNTT is a third to a half of HE computation
time; the plan compiler attacks that share by *not running* redundant
transforms.  This example puts the two headline pieces together:

1. **Whole-program front end** — ``context.program()`` records the
   bootstrap circuit (CoeffToSlot → EvalMod rounds → SlotToCoeff, built by
   :func:`repro.he.bootstrap.bootstrap_circuit`) as one named statement and
   compiles the entire circuit into a single fused plan.
2. **Optimiser passes** — the same program is compiled twice, once with
   the passes disabled and once with the default pipeline (NTT-pair
   cancellation, CSE, structure folding, NTT-domain residency).  The
   residency pass hoists every plaintext diagonal's forward transform into
   the per-context constant pool, so warm executions skip them entirely.
3. **metrics_diff accounting** — each variant's steady-state cost is the
   delta between two ``context.metrics()`` snapshots around one warm run,
   printed side by side.  The outputs are asserted bit-identical: the
   optimiser changes *what work runs*, never *what is computed*.

Run with::

    python examples/compiled_bootstrap.py
"""

from __future__ import annotations

from repro.compiler import set_default_passes
from repro.he import HeContext, HEParams, bootstrap_circuit


def main() -> None:
    params = HEParams(
        n=2048, plaintext_modulus=65537, prime_bits=45, prime_count=4
    )
    context = HeContext.create(params, backend="numpy", seed=3)
    encryptor = context.encryptor(seed=21)
    ct = encryptor.encrypt(context.encoder().encode([5, 7, 11]))
    print("params         : n=%d, t=%d, %d x %d-bit primes (numpy backend)"
          % (params.n, params.plaintext_modulus, params.prime_count,
             params.prime_bits))

    def steady_state(passes):
        """(warm result, warm-run metrics delta) for one pass selection."""
        set_default_passes(passes)
        program = context.program()
        set_default_passes(None)
        program.let(
            "refreshed",
            bootstrap_circuit(context, program.pipeline, ct, seed=7),
        )
        program.run()  # cold: compile the plan, seed the constant pool
        before = context.metrics()
        result = program.run()["refreshed"]
        return result, HeContext.metrics_diff(before, context.metrics())

    raw_result, raw = steady_state("none")
    opt_result, opt = steady_state("default")

    print("circuit        : bootstrap-shaped (CoeffToSlot -> EvalMod -> "
          "SlotToCoeff), one compiled program")
    print()
    print("steady-state cost of one warm run (metrics_diff):")
    print("  %-24s %12s %12s" % ("counter", "passes=none", "default"))
    for key in sorted(set(raw) | set(opt)):
        print("  %-24s %12d %12d" % (key, raw.get(key, 0), opt.get(key, 0)))
    saved = raw["ntt.invocations"] - opt["ntt.invocations"]
    print()
    print("ntt.invocations: %d -> %d (%.1f%% of the transforms never run "
          "warm)" % (raw["ntt.invocations"], opt["ntt.invocations"],
                     100.0 * saved / raw["ntt.invocations"]))

    rows = lambda ct_: [poly.to_coeff_lists() for poly in ct_.polys]
    assert rows(raw_result) == rows(opt_result)
    print("outputs        : bit-identical with and without the optimiser")


if __name__ == "__main__":
    main()
