"""Auto-tuning example: let the cost model pick the best NTT execution plan.

The paper's best configuration (SMEM two-kernel execution with 8-point
per-thread NTTs and on-the-fly twiddling) was found by manual design-space
exploration.  The :class:`repro.core.PlanTuner` automates the search: it
enumerates radix-2, register-high-radix, and SMEM plans (with and without
OT), prices each with the calibrated Titan V model, and ranks them.

The example tunes the paper's four bootstrappable transform sizes and prints
the top of each ranking, confirming that the tuner lands on the same family
of configurations the paper hand-picks.

Run with::

    python examples/auto_tune_plan.py
"""

from __future__ import annotations

from repro.core import PlanTuner
from repro.experiments import format_table
from repro.gpu import GpuCostModel, TITAN_V


def main() -> None:
    model = GpuCostModel(TITAN_V)
    tuner = PlanTuner(model)
    batch = 21

    for log_n in (14, 15, 16, 17):
        n = 1 << log_n
        ranking = tuner.rank(n, batch)
        print("== N = 2^%d, np = %d: top 5 of %d candidate plans ==" % (log_n, batch, len(ranking)))
        rows = [
            {
                "rank": index + 1,
                "plan": tuned.plan.label,
                "time (us)": tuned.time_us,
                "DRAM (MB)": tuned.dram_mb,
                "BW util": tuned.bandwidth_utilization,
            }
            for index, tuned in enumerate(ranking[:5])
        ]
        print(format_table(list(rows[0].keys()), rows))
        worst = ranking[-1]
        best = ranking[0]
        print("slowest candidate: %s (%.1f us) — best-vs-worst gap %.1fx\n"
              % (worst.plan.label, worst.time_us, worst.time_us / best.time_us))

    best17 = tuner.best(1 << 17, batch)
    print("tuned best plan for the paper's headline point (2^17, 21): %s" % best17.plan.label)
    print("paper's hand-tuned choice: SMEM two-kernel, 8-pt/thread, OT on the last stages")


if __name__ == "__main__":
    main()
