"""Homomorphic evaluation example: encrypted SIMD arithmetic end to end.

This is the application workload that motivates the paper: RNS-based
homomorphic encryption, where every ciphertext multiplication is a batch of
``np`` negacyclic polynomial products computed through NTTs.  The example

1. creates an :class:`HeContext` — params, RNS basis, pinned compute backend
   and warm twiddle tables behind one facade,
2. packs two integer vectors into ciphertexts with the batch encoder,
3. evaluates an encrypted polynomial ``x*y + x`` slot-wise, with
   relinearisation and modulus switching, through the resident handle API —
   the backend's conversion counter reports every list ↔ array boundary
   crossing (zero for ≤ 30-bit primes; these 45-bit demonstration primes
   route through the per-prime exact fallback, and the counter shows it),
4. tracks the noise budget and refreshes it ("bootstraps") when it runs low,
5. reports how many NTT invocations the evaluation triggered and what the
   equivalent batch would cost on the modelled Titan V at the paper's
   bootstrappable parameters.

Run with::

    python examples/he_ciphertext_multiply.py
"""

from __future__ import annotations

import random

from repro.gpu import GpuCostModel
from repro.he import (
    BootstrapWorkloadModel,
    HeContext,
    NoiseRefresher,
    bootstrappable_params,
    small_params,
)


def main() -> None:
    params = small_params()
    print("parameters      : %s (N=%d, t=%d, %d x %d-bit primes, logQ~%d)"
          % (params.name, params.n, params.plaintext_modulus,
             params.prime_count, params.prime_bits, params.log_q))

    # -- one facade owns params, basis, backend and key material ------------------------
    context = HeContext.create(params, seed=1)
    print("pinned backend  : %s (twiddle tables warmed for %d primes)"
          % (context.backend.name, context.basis.count))
    relin = context.relinearization_key()
    encoder = context.encoder()
    encryptor = context.encryptor(seed=2)
    decryptor = context.decryptor()
    evaluator = context.evaluator()

    # -- encrypted SIMD computation: x*y + x --------------------------------------------
    rng = random.Random(3)
    t = params.plaintext_modulus
    x = [rng.randrange(1000) for _ in range(8)]
    y = [rng.randrange(1000) for _ in range(8)]
    ct_x = encryptor.encrypt(encoder.encode(x))
    ct_y = encryptor.encrypt(encoder.encode(y))
    print("fresh noise budget      : %.1f bits" % decryptor.noise_budget_bits(ct_x))

    conversions_before = context.backend.conversion_count
    product = evaluator.relinearize(evaluator.multiply(ct_x, ct_y), relin)
    result = evaluator.add(product, ct_x)
    print("budget after x*y + x    : %.1f bits" % decryptor.noise_budget_bits(result))

    switched = evaluator.mod_switch_to_next(result)
    print("budget after mod-switch : %.1f bits (one prime dropped, level %d)"
          % (decryptor.noise_budget_bits(switched), switched.level))
    print("boundary conversions    : %d residue rows (45-bit primes use the "
          "per-prime exact fallback; 0 for <= 30-bit primes)"
          % (context.backend.conversion_count - conversions_before))

    decoded = encoder.decode(decryptor.decrypt(switched))
    expected = [(a * b + a) % t for a, b in zip(x, y)]
    assert decoded[: len(expected)] == expected
    print("decrypted slots         : %s" % decoded[: len(expected)])
    print("expected slots          : %s" % expected)

    # -- noise refresh ("bootstrapping" stand-in) -------------------------------------------
    refresher = NoiseRefresher(encryptor, decryptor)
    refreshed = refresher.refresh(result)
    print("budget after refresh    : %.1f bits" % decryptor.noise_budget_bits(refreshed))
    print("NTT invocations so far  : %d (per-prime forward/inverse transforms)"
          % evaluator.ntt_invocations)

    # -- what does bootstrapping cost at the paper's scale? ------------------------------------
    print()
    model = GpuCostModel()
    for log_n in (15, 16, 17):
        workload = BootstrapWorkloadModel(bootstrappable_params(log_n, 21), model=model)
        estimate = workload.estimate()
        print("bootstrapping at N=2^%d, np=21: %6d NTTs, NTT time %7.1f ms "
              "(radix-2 baseline would need %7.1f ms)"
              % (log_n, estimate.ntt_count, estimate.ntt_time_us / 1000,
                 estimate.ntt_time_radix2_us / 1000))


if __name__ == "__main__":
    main()
