"""Load generator for the HE serving layer.

Drives a fleet of concurrent asyncio clients against an ``HeServer`` and
reports what cross-request batching did to the traffic: how many HTTP
requests were answered by how many batches (and therefore how many fused
plan executions), plus the per-tenant metric subtrees.

With no arguments the example is self-contained: it starts an in-process
server on a free port, fires two tenants' worth of concurrent requests at
it, verifies every response bit-for-bit against local execution, and prints
the coalescing report.  Point it at an already-running server (e.g. one
started with ``python -m repro.experiments serve``) with ``--connect``::

    python examples/service_load_generator.py                    # in-process
    python examples/service_load_generator.py --connect 127.0.0.1:8793
    python examples/service_load_generator.py --clients 12 --rounds 2
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.core.serialization import ciphertext_from_dict
from repro.he import HeContext
from repro.he.params import toy_params
from repro.service import AsyncServiceClient, ServerThread

OPS = ["multiply", "relinearize", "mod_switch"]


def _build_tenant_load(seed: int, clients: int):
    """One tenant's local context plus ``clients`` request payloads and the
    locally-computed expected results."""
    context = HeContext.create(toy_params(), seed=seed)
    encryptor = context.encryptor()
    encoder = context.encoder()
    evaluator = context.evaluator()
    relin = context.relinearization_key()
    pairs = [
        (
            encryptor.encrypt(encoder.encode([seed + r, 2, 3])),
            encryptor.encrypt(encoder.encode([4, 5, seed - r])),
        )
        for r in range(clients)
    ]
    expected = [
        evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(a, b), relin)
        )
        for a, b in pairs
    ]
    return context, pairs, expected


async def _drive(host: str, port: int, loads: dict, rounds: int):
    client = AsyncServiceClient(host, port)
    health = await client.health()
    if health.get("status") != "ok":
        raise RuntimeError("server at %s:%d is not healthy: %r" % (host, port, health))

    responses_by_seed = {}
    for _ in range(rounds):
        tasks, owners = [], []
        for seed, (_, pairs, _) in loads.items():
            for a, b in pairs:
                tasks.append(client.compute_raw(toy_params(), OPS, [a, b], seed=seed))
                owners.append(seed)
        responses = await asyncio.gather(*tasks)
        for seed, response in zip(owners, responses):
            responses_by_seed.setdefault(seed, []).append(response)
    return responses_by_seed, await client.metrics()


def _report(responses_by_seed, metrics, loads, rounds: int) -> int:
    total = sum(len(r) for r in responses_by_seed.values())
    mismatches = 0
    batch_sizes = []
    for seed, responses in responses_by_seed.items():
        _, pairs, expected = loads[seed]
        for index, response in enumerate(responses):
            batch_sizes.append(response["batch_size"])
            got = ciphertext_from_dict(response["result"])
            want = expected[index % len(pairs)]
            if [p.to_coeff_lists() for p in got.polys] != [
                p.to_coeff_lists() for p in want.polys
            ]:
                mismatches += 1

    print("== load report ==")
    print("requests sent      : %d (%d tenants x %d clients x %d rounds)"
          % (total, len(loads), len(next(iter(loads.values()))[1]), rounds))
    print("bit-for-bit vs local: %s"
          % ("OK" if mismatches == 0 else "%d MISMATCHES" % mismatches))
    print("batch sizes seen   : min=%d max=%d mean=%.1f"
          % (min(batch_sizes), max(batch_sizes),
             sum(batch_sizes) / len(batch_sizes)))

    server = metrics.get("server", {})
    print("server counters    : requests=%s batches=%s batched_requests=%s errors=%s"
          % (server.get("service.requests"), server.get("service.batches"),
             server.get("service.batched_requests"), server.get("service.errors")))
    for key, tenant in sorted(metrics.get("tenants", {}).items()):
        print("tenant %s : plan.compiled=%s plan.cache_hits=%s"
              % (key, tenant.get("plan.compiled"), tenant.get("plan.cache_hits")))
        latency = tenant.get("service.latency.total_seconds")
        if latency:
            print("  latency ms       : p50=%.2f p90=%.2f p99=%.2f (n=%d)"
                  % (latency["p50"] * 1e3, latency["p90"] * 1e3,
                     latency["p99"] * 1e3, latency["count"]))
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="drive an already-running server instead of starting one "
        "in-process (e.g. 127.0.0.1:8793)",
    )
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent clients per tenant (default 6)")
    parser.add_argument("--rounds", type=int, default=1,
                        help="rounds of the full fleet (default 1)")
    args = parser.parse_args(argv)

    loads = {seed: _build_tenant_load(seed, args.clients) for seed in (11, 12)}

    if args.connect is not None:
        host, _, port = args.connect.rpartition(":")
        responses, metrics = asyncio.run(
            _drive(host or "127.0.0.1", int(port), loads, args.rounds)
        )
        mismatches = _report(responses, metrics, loads, args.rounds)
        # An external server may be seeing other traffic and a different
        # batching window, so only correctness is asserted here.
        return 1 if mismatches else 0

    # In-process: a wide window so the concurrent fleet reliably coalesces,
    # making the fewer-plans-than-requests effect visible in the report.
    with ServerThread(batch_window=0.25, max_batch=args.clients) as server:
        responses, metrics = asyncio.run(
            _drive("127.0.0.1", server.port, loads, args.rounds)
        )
    mismatches = _report(responses, metrics, loads, args.rounds)
    if mismatches:
        return 1
    batches = metrics["server"]["service.batches"]
    requests = metrics["server"]["service.requests"]
    if batches >= requests:
        print("ERROR: no coalescing happened (%d batches for %d requests)"
              % (batches, requests))
        return 1
    print("coalesced %d requests into %d batches" % (requests, batches))
    return 0


if __name__ == "__main__":
    sys.exit(main())
