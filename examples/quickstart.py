"""Quickstart: encrypted arithmetic through the op-graph execution API.

The shortest end-to-end path through the library:

1. build an :class:`repro.he.HeContext` — parameters, RNS basis, pinned
   compute backend and warm twiddle tables behind one facade,
2. encrypt two vectors and evaluate ``x * y`` homomorphically — the
   evaluator compiles the whole multiplication into **one** declarative
   plan (see :mod:`repro.backends.ops`) and the backend executes it in a
   single call,
3. decrypt, verify against plain arithmetic, and inspect what ran: plans
   compiled, NTT rows transformed, boundary conversions (zero for ≤ 30-bit
   primes, where the chain stays fully resident; the toy preset's 40-bit
   primes route through the counted per-prime exact fallback),
4. price the same transform workload on the paper's modelled Titan V at
   bootstrappable scale.

Run with::

    python examples/quickstart.py

Backends (``REPRO_BACKEND=scalar|numpy|parallel``), NTT engines
(``REPRO_NTT_ENGINE=stockham|high_radix:8|...``) and the execution model
(``REPRO_EXECUTION=fused|eager``) are all selectable without code changes;
every combination is bit-for-bit identical.  See
``examples/fused_pipeline.py`` for the fluent expression API that fuses a
whole chain of operations into one plan.
"""

from __future__ import annotations

import random

from repro.core import best_smem_plan
from repro.gpu import GpuCostModel, TITAN_V
from repro.he import HeContext, toy_params
from repro.kernels import smem_model_from_plan


def main() -> None:
    # -- 1. one facade owns params, basis, backend and key material ------------------
    params = toy_params()
    context = HeContext.create(params, seed=2020)
    print("parameters     : %s (N=%d, t=%d, np=%d x %d-bit primes)"
          % (params.name, params.n, params.plaintext_modulus,
             params.prime_count, params.prime_bits))
    print("pinned backend : %s (twiddle tables warmed)" % context.backend.name)

    # -- 2. encrypt and multiply: one compiled plan, one backend call -----------------
    rng = random.Random(7)
    t = params.plaintext_modulus
    x = [rng.randrange(t) for _ in range(4)]
    y = [rng.randrange(t) for _ in range(4)]
    encoder = context.encoder()
    encryptor = context.encryptor()
    evaluator = context.evaluator()  # fused mode by default
    ct_x = encryptor.encrypt(encoder.encode(x))
    ct_y = encryptor.encrypt(encoder.encode(y))

    conversions_before = context.backend.conversion_count
    product = evaluator.relinearize(
        evaluator.multiply(ct_x, ct_y), context.relinearization_key()
    )

    # -- 3. decrypt, verify, and look under the hood ----------------------------------
    decoded = encoder.decode(context.decryptor().decrypt(product))
    expected = [(a * b) % t for a, b in zip(x, y)]
    assert decoded[: len(expected)] == expected, "homomorphic product is wrong"
    print("decrypted x*y  : %s (verified against plain arithmetic)"
          % decoded[: len(expected)])
    print("execution      : %s mode — %d plan(s) compiled, %d NTT row transforms"
          % (evaluator.mode, evaluator.plans_compiled, evaluator.ntt_invocations))
    print("residency      : %d boundary conversions (these 40-bit toy primes "
          "use the per-prime exact fallback; 0 for <= 30-bit primes)"
          % (context.backend.conversion_count - conversions_before))

    # -- 4. what would the transforms cost on the paper's GPU at full scale? -----------
    model = GpuCostModel(TITAN_V)
    paper_plan = best_smem_plan(1 << 17, ot_stages=2)
    estimate = smem_model_from_plan(paper_plan, batch=21, model=model)
    print()
    print("paper-scale workload (N = 2^17, np = 21) on the modelled %s:" % TITAN_V.name)
    print("  kernel plan         : %s" % paper_plan.label)
    print("  modelled time       : %.1f us   (paper Table II: 304.2 us)" % estimate.time_us)
    print("  modelled DRAM moved : %.1f MB" % estimate.dram_mb)
    print("  bandwidth utilised  : %.0f%%" % (100 * estimate.bandwidth_utilization))


if __name__ == "__main__":
    main()
