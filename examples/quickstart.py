"""Quickstart: negacyclic polynomial multiplication through the NTT engine.

This walks the library's core path end to end:

1. pick an NTT-friendly prime and build an :class:`repro.core.NTTEngine`,
2. transform two polynomials, multiply them point-wise, transform back,
3. check the result against the schoolbook negacyclic convolution, and
4. ask the engine for its execution report and the GPU cost model for the
   time the same transform would take on the paper's Titan V at
   bootstrappable scale.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import NTTEngine, NTTPlan, OnTheFlyConfig, best_smem_plan
from repro.gpu import GpuCostModel, TITAN_V
from repro.kernels import smem_model_from_plan
from repro.modarith import generate_ntt_primes, primitive_root_of_unity
from repro.transforms import naive_negacyclic_convolution


def main() -> None:
    # -- 1. build an engine for a 2^10-point negacyclic NTT --------------------------
    n = 1 << 10
    prime = generate_ntt_primes(60, 1, n)[0]
    plan = NTTPlan(n=n, ot=OnTheFlyConfig(base=64, ot_stages=1))
    engine = NTTEngine(n, prime, plan)
    print("prime p        : %d (%d bits)" % (prime, prime.bit_length()))
    print("2N-th root psi : %d" % engine.psi)
    print("plan           : %s" % plan.label)

    # -- 2. multiply two random polynomials in Z_p[X]/(X^N + 1) ------------------------
    rng = random.Random(2020)
    a = [rng.randrange(1000) for _ in range(n)]
    b = [rng.randrange(1000) for _ in range(n)]
    product = engine.multiply(a, b)

    # -- 3. verify against the schoolbook negacyclic convolution -----------------------
    expected = naive_negacyclic_convolution(a, b, prime)
    assert product == expected, "NTT-based product disagrees with the schoolbook result"
    print("negacyclic product verified against the O(N^2) schoolbook convolution")

    # -- 4. inspect what the engine did ---------------------------------------------------
    _, report = engine.forward_with_report(a)
    print("forward NTT    : %d butterflies, %d twiddles from the table, %d regenerated (OT)"
          % (report.butterflies, report.table_fetches, report.regenerated))
    print("resident table : %d entries (%.1f KiB with Shoup companions)"
          % (report.resident_table_entries, report.resident_table_bytes / 1024))

    # -- 5. what would this cost on the paper's GPU at bootstrappable scale? -----------------
    model = GpuCostModel(TITAN_V)
    paper_plan = best_smem_plan(1 << 17, ot_stages=2)
    estimate = smem_model_from_plan(paper_plan, batch=21, model=model)
    print()
    print("paper-scale workload (N = 2^17, np = 21) on the modelled %s:" % TITAN_V.name)
    print("  plan                : %s" % paper_plan.label)
    print("  modelled time       : %.1f us   (paper Table II: 304.2 us)" % estimate.time_us)
    print("  modelled DRAM moved : %.1f MB" % estimate.dram_mb)
    print("  bandwidth utilised  : %.0f%%" % (100 * estimate.bandwidth_utilization))


if __name__ == "__main__":
    main()
