"""On-the-fly twiddling (OT) walkthrough — the paper's core contribution.

Shows, at a size small enough to inspect, exactly what OT does:

1. build the full precomputed twiddle table for an N-point negacyclic NTT,
2. build the factored OT tables for several bases and verify that every
   regenerated twiddle matches the full table bit-for-bit,
3. compare the stored-table sizes (the paper's ``1024 + N/1024`` example),
4. run the NTT engine with and without OT and compare the execution reports,
5. price the traffic saving on the modelled Titan V at the paper's scale.

Run with::

    python examples/on_the_fly_twiddling.py
"""

from __future__ import annotations

import random

from repro.core import NTTEngine, NTTPlan, OnTheFlyConfig, OnTheFlyTwiddleGenerator, TwiddleTable
from repro.gpu import GpuCostModel
from repro.kernels import smem_ntt_model
from repro.modarith import generate_ntt_primes, primitive_root_of_unity


def main() -> None:
    n = 1 << 10
    prime = generate_ntt_primes(60, 1, n)[0]
    psi = primitive_root_of_unity(2 * n, prime)

    # -- 1. the full table --------------------------------------------------------------
    table = TwiddleTable(n=n, p=prime, psi=psi)
    full_bytes = table.bytes_per_direction(with_shoup=True)
    print("full twiddle table : %d entries, %.1f KiB (with Shoup companions)"
          % (table.entries, full_bytes / 1024))

    # -- 2./3. factored tables for several bases -----------------------------------------
    print("\nfactored (OT) tables:")
    for base in (16, 32, 64, 128, 256):
        config = OnTheFlyConfig(base=base, ot_stages=1)
        generator = OnTheFlyTwiddleGenerator(n, prime, psi, config)
        mismatches = sum(
            1 for index in range(n) if generator.twiddle(index)[0] != table.forward[index]
        )
        print("  base %4d: %5d stored entries (%.1f KiB), %d mismatches vs full table"
              % (base, generator.stored_entries, generator.stored_bytes() / 1024, mismatches))
        assert mismatches == 0

    paper_config = OnTheFlyConfig(base=1024, ot_stages=1)
    print("\npaper's example: N = 2^17 with base-1024 stores %d factors instead of %d"
          % (paper_config.table_entries(1 << 17), 1 << 17))

    # -- 4. engine reports with and without OT -----------------------------------------------
    rng = random.Random(99)
    values = [rng.randrange(prime) for _ in range(n)]
    baseline_engine = NTTEngine(n, prime, NTTPlan(n=n), psi=psi)
    ot_engine = NTTEngine(n, prime, NTTPlan(n=n, ot=OnTheFlyConfig(base=64, ot_stages=2)), psi=psi)
    baseline_result, baseline_report = baseline_engine.forward_with_report(values)
    ot_result, ot_report = ot_engine.forward_with_report(values)
    assert baseline_result == ot_result, "OT must not change the transform's values"
    print("\nexecution reports for one forward %d-point NTT:" % n)
    print("  without OT: %5d table fetches, %4d regenerated, resident table %5.1f KiB"
          % (baseline_report.table_fetches, baseline_report.regenerated,
             baseline_report.resident_table_bytes / 1024))
    print("  with OT   : %5d table fetches, %4d regenerated (%d extra modmuls), "
          "resident table %5.1f KiB"
          % (ot_report.table_fetches, ot_report.regenerated, ot_report.regeneration_muls,
             ot_report.resident_table_bytes / 1024))

    # -- 5. the paper-scale effect ------------------------------------------------------------
    model = GpuCostModel()
    big_n, batch = 1 << 17, 21
    base_model = smem_ntt_model(big_n, batch, model, 256, 512)
    ot_model = smem_ntt_model(big_n, batch, model, 256, 512, ot=OnTheFlyConfig(1024, 2))
    print("\nmodelled Titan V at (N, np) = (2^17, 21):")
    print("  SMEM w/o OT : %6.1f us, %6.1f MB DRAM" % (base_model.time_us, base_model.dram_mb))
    print("  SMEM w/  OT : %6.1f us, %6.1f MB DRAM" % (ot_model.time_us, ot_model.dram_mb))
    print("  traffic cut : %.1f%%   speedup: %.1f%%   (paper: ~24.5%% and ~9.3%%)"
          % (100 * (1 - ot_model.dram_mb / base_model.dram_mb),
             100 * (base_model.time_us / ot_model.time_us - 1)))


if __name__ == "__main__":
    main()
