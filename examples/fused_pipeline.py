"""Fused pipelines: compile a whole evaluator chain into one backend plan.

The paper's GPU throughput comes from amortising kernel-launch overhead
across wide batches; on the CPU realisation the analogous tax is one
process-pool round trip per backend method call.  This example shows the
redesigned execution API that removes it:

1. **Per-op plans** — every evaluator operation already compiles into one
   declarative plan executed in a single backend call.
2. **The fluent expression API** — ``context.pipeline()`` goes further: a
   lazy ciphertext expression like
   ``(a * b).relinearize(rk).mod_switch()`` compiles **once** into one plan
   spanning the whole chain, and re-running the same shape reuses the
   compiled plan (watch ``plan_cache_hits``).
3. **Fusion accounting** — on the ``parallel`` backend the chain executes
   as fused per-worker stages: the example forces every operation through
   the worker pool and prints the pool round trips (``dispatch_count``)
   and list ↔ ndarray conversions (zero) for eager, per-op fused and
   whole-chain pipeline execution of the *same* computation.

Run with::

    python examples/fused_pipeline.py
"""

from __future__ import annotations

from repro.backends.parallel import ParallelBackend
from repro.he import HeContext, HEParams


def main() -> None:
    # Force the crossover down so even this demonstration-sized workload
    # exercises the worker pool (real workloads cross it naturally).
    backend = ParallelBackend(shards=2, transform_threshold=1, pointwise_threshold=1)
    params = HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)
    context = HeContext.create(params, backend=backend)
    print("backend        : %s (%d shard workers, pool-forced)"
          % (backend.name, backend.shards))

    encoder = context.encoder()
    encryptor = context.encryptor()
    relin = context.relinearization_key()
    t = params.plaintext_modulus
    x, y = [1, 2, 3], [4, 5, 6]
    ct_x = encryptor.encrypt(encoder.encode(x))
    ct_y = encryptor.encrypt(encoder.encode(y))

    def report(label, run):
        # One call zeroes every counter — the backend's dispatch/conversion
        # tallies and (cascading) each evaluator's plan counters.
        context.reset_metrics()
        result = run()
        print("%-22s: %2d pool dispatches, %d conversions"
              % (label, backend.dispatch_count, backend.conversion_count))
        return result

    # -- eager: one pool round trip per backend method call ---------------------------
    eager = context.evaluator(mode="eager")
    chain_eager = report(
        "eager per-op calls",
        lambda: eager.mod_switch_to_next(
            eager.relinearize(eager.multiply(ct_x, ct_y), relin)
        ),
    )

    # -- fused per-op plans: one dispatch per homomorphic operation -------------------
    fused = context.evaluator(mode="fused")
    chain_fused = report(
        "fused per-op plans",
        lambda: fused.mod_switch_to_next(
            fused.relinearize(fused.multiply(ct_x, ct_y), relin)
        ),
    )

    # -- the fluent pipeline: the whole chain is ONE compiled plan --------------------
    pipe = context.pipeline()

    def run_pipeline():
        a, b = pipe.load(ct_x), pipe.load(ct_y)
        return (a * b).relinearize(relin).mod_switch().run()

    chain_pipeline = report("pipeline (one plan)", run_pipeline)

    # Same shape again: the compiled plan is reused, only execution runs.
    # metrics_diff isolates exactly what this one warm run cost — no manual
    # counter resets, just two snapshots and their delta.
    context.reset_metrics()
    before = context.metrics()
    run_pipeline()
    delta = HeContext.metrics_diff(before, context.metrics())
    print("%-22s: %2d pool dispatches, %d conversions"
          % ("pipeline (cached)", delta["pool.dispatches"],
             delta["conversions.rows"]))
    print("plan cache     : %d newly compiled, %d hit(s) since reset"
          % (pipe.evaluator.plans_compiled, pipe.evaluator.plan_cache_hits))

    # -- the steady-state cost of one warm run, as a metrics delta --------------------
    print("warm-run delta : " + ", ".join(
        "%s=%s" % (key, delta[key])
        for key in ("pool.dispatches", "conversions.rows", "ntt.invocations",
                    "plan.cache_hits")
    ))

    # -- all three execution models are bit-for-bit identical -------------------------
    rows = lambda ct: [poly.to_coeff_lists() for poly in ct.polys]
    assert rows(chain_eager) == rows(chain_fused) == rows(chain_pipeline)
    decoded = encoder.decode(context.decryptor().decrypt(chain_pipeline))
    expected = [(a * b) % t for a, b in zip(x, y)]
    assert decoded[: len(expected)] == expected
    print("decrypted      : %s == %s (bit-identical across all three paths)"
          % (decoded[: len(expected)], expected))

    backend.close()


if __name__ == "__main__":
    main()
