"""Tests for the plan-compiler subsystem: passes, manager, pool, programs.

Pins the acceptance criteria of the optimiser:

* **pass unit tests** — each registered pass rewrites hand-built plans the
  way its contract says (cancellation through the batching plumbing, copy
  and slice/concat folding, commutative-aware CSE, constant hoisting, dead
  value sweeping) while never aliasing a value into an output slot;
* **bit-for-bit equivalence** — optimised plans produce exactly the same
  ciphertexts as unoptimised ones, on scalar/numpy/forced-pool-parallel
  backends, at 30- and 60-bit primes, for the canonical
  ``multiply → relinearize → mod_switch`` chain and the bootstrap-shaped
  circuit;
* **selection precedence** — explicit > ``set_default_passes`` >
  ``REPRO_PASSES`` > default, with registry-style errors on unknown names;
* **constant pool** — relinearisation keys and repeated plaintexts transform
  once (cold run) and hit the pool on every later execution, with fewer NTT
  rows on warm runs;
* **whole programs** — :meth:`Pipeline.run_many` and :class:`HeProgram`
  compile many statements into one plan with shared lowering, and
  ``HeContext.metrics_diff`` reports the deltas the benchmarks print.
"""

from __future__ import annotations

import pytest

from repro.backends import ops
from repro.backends.parallel import ParallelBackend
from repro.backends.scalar import ScalarBackend
from repro.compiler import (
    DEFAULT_PASSES,
    ConstantPool,
    PASS_REGISTRY,
    PASSES_ENV_VAR,
    PassContext,
    PassManager,
    available_passes,
    count_ntt_rows,
    parse_passes,
    pass_descriptions,
    resolve_passes,
    set_default_passes,
)
from repro.compiler.manager import materialize_derived
from repro.he import HeContext, HEParams, bootstrap_circuit
from repro.modarith.primes import generate_ntt_primes

N = 64
PARAMS = {
    bits: HEParams(n=N, plaintext_modulus=257, prime_bits=bits, prime_count=3)
    for bits in (30, 60)
}


def forced_parallel():
    return ParallelBackend(shards=2, transform_threshold=1, pointwise_threshold=1)


def coeffs(ciphertext):
    return [poly.to_coeff_lists() for poly in ciphertext.polys]


@pytest.fixture(
    params=[
        "scalar-30",
        "scalar-60",
        "numpy-30",
        "numpy-60",
        "parallel-30",
        "parallel-60",
    ]
)
def context(request):
    name, bits = request.param.rsplit("-", 1)
    backend = forced_parallel() if name == "parallel" else name
    ctx = HeContext.create(PARAMS[int(bits)], backend=backend, seed=7)
    yield ctx
    if isinstance(ctx.backend, ParallelBackend):
        ctx.backend.close()


@pytest.fixture(autouse=True)
def _clean_pass_default():
    set_default_passes(None)
    yield
    set_default_passes(None)


# --------------------------------------------------- structural helpers


def run_pass(name, plan, input_primes=None, constant_inputs=(), sweep=False):
    """Apply one pass (optionally sweeping dead nodes after, since a single
    rewrite leaves the values it orphaned for ``dead_values``)."""
    ctx = PassContext(input_primes=input_primes, constant_inputs=constant_inputs)
    plan = PASS_REGISTRY[name].rewrite(plan, ctx)
    if sweep:
        plan = PASS_REGISTRY["dead_values"].rewrite(plan, ctx)
    return plan, ctx


def scalar_outputs(plan, bindings_rows):
    backend = ScalarBackend()
    bindings = {
        name: backend.from_rows(rows, primes)
        for name, (rows, primes) in bindings_rows.items()
    }
    outputs = backend.execute(plan, bindings)
    return {name: outputs[name].to_rows() for name in plan.output_names}


def kinds(plan):
    return [node.kind for node in plan.nodes]


PRIMES = tuple(generate_ntt_primes(17, 3, 2 * N))


def rows_for(primes, seed=1):
    return [[(seed * 37 + i * 31 + j) % p for j in range(N)] for i, p in enumerate(primes)]


# --------------------------------------------------------- pass: cancellation


def test_cancel_forward_inverse_pair():
    g = ops.OpGraph()
    x = g.input("x")
    g.output("out", g.inverse_ntt(g.forward_ntt(x)))
    plan = g.compile()
    rewritten, ctx = run_pass("cancel_ntt_pairs", plan, {"x": PRIMES}, sweep=True)
    assert "forward_ntt" not in kinds(rewritten)
    assert "inverse_ntt" not in kinds(rewritten)
    assert ctx.stats["plan.pass.cancel_ntt_pairs.pairs_cancelled"] == 1
    # Output never aliases the input: a Copy is materialised in the slot.
    rows = rows_for(PRIMES)
    out = scalar_outputs(rewritten, {"x": (rows, PRIMES)})
    assert out["out"] == rows


def test_cancel_sees_through_slice_plumbing():
    # inverse(slice(forward(x))) == slice(x): the emitters' batch shape.
    g = ops.OpGraph()
    x = g.input("x")
    fwd = g.forward_ntt(x)
    g.output("out", g.inverse_ntt(g.slice_rows(fwd, 1, 3)))
    plan = g.compile()
    rewritten, _ = run_pass("cancel_ntt_pairs", plan, {"x": PRIMES})
    assert "inverse_ntt" not in kinds(rewritten)
    rows = rows_for(PRIMES)
    out = scalar_outputs(rewritten, {"x": (rows, PRIMES)})
    assert out["out"] == rows[1:3]


def test_cancel_partial_concat_keeps_surviving_rows_grouped():
    # forward(concat(inverse(a), b, c)) -> concat(a', forward(concat(b, c)));
    # the two non-cancellable parts stay in ONE wide transform.
    g = ops.OpGraph()
    a = g.input("a")
    b = g.input("b")
    c = g.input("c")
    stacked = g.concat([g.inverse_ntt(a), b, c])
    g.output("out", g.forward_ntt(stacked))
    plan = g.compile()
    primes = {"a": PRIMES, "b": PRIMES, "c": PRIMES}
    rewritten, ctx = run_pass("cancel_ntt_pairs", plan, primes, sweep=True)
    assert ctx.stats["plan.pass.cancel_ntt_pairs.pairs_cancelled"] == 1
    assert kinds(rewritten).count("forward_ntt") == 1
    assert "inverse_ntt" not in kinds(rewritten)
    backend = ScalarBackend()
    bindings = {
        name: backend.from_rows(rows_for(PRIMES, seed), PRIMES)
        for seed, name in enumerate(("a", "b", "c"), start=1)
    }
    got = backend.execute(rewritten, bindings)
    ref_backend = ScalarBackend()
    ref_bindings = {
        name: ref_backend.from_rows(rows_for(PRIMES, seed), PRIMES)
        for seed, name in enumerate(("a", "b", "c"), start=1)
    }
    expected = ops.interpret(ref_backend, plan, ref_bindings)
    assert got["out"].to_rows() == expected["out"].to_rows()


# --------------------------------------------------------- pass: folding


def test_fold_copy_chain_collapses():
    g = ops.OpGraph()
    x = g.input("x")
    y = g.copy(g.copy(g.copy(x)))
    g.output("out", g.neg(y))
    plan = g.compile()
    rewritten, ctx = run_pass("fold_structure", plan, {"x": PRIMES})
    assert kinds(rewritten) == ["input", "neg"]
    assert ctx.stats["plan.pass.fold_structure.copies_forwarded"] == 3


def test_fold_slice_of_concat_and_full_range():
    g = ops.OpGraph()
    a = g.input("a")
    b = g.input("b")
    stacked = g.concat([a, b])
    g.output("b_again", g.copy(g.slice_rows(stacked, len(PRIMES), 2 * len(PRIMES))))
    g.output("all", g.copy(g.slice_rows(stacked, 0, 2 * len(PRIMES))))
    plan = g.compile()
    rewritten, ctx = run_pass(
        "fold_structure", plan, {"a": PRIMES, "b": PRIMES}
    )
    assert "slice_rows" not in kinds(rewritten)
    assert ctx.stats["plan.pass.fold_structure.slices_folded"] == 2
    rows_a, rows_b = rows_for(PRIMES, 1), rows_for(PRIMES, 2)
    out = scalar_outputs(
        rewritten, {"a": (rows_a, PRIMES), "b": (rows_b, PRIMES)}
    )
    assert out["b_again"] == rows_b
    assert out["all"] == rows_a + rows_b


def test_fold_nested_concat_flattens():
    g = ops.OpGraph()
    a = g.input("a")
    b = g.input("b")
    c = g.input("c")
    inner = g.concat([a, b])
    g.output("out", g.copy(g.concat([inner, c])))
    plan = g.compile()
    rewritten, ctx = run_pass(
        "fold_structure", plan, {"a": PRIMES, "b": PRIMES, "c": PRIMES}, sweep=True
    )
    concats = [n for n in rewritten.nodes if isinstance(n, ops.Concat)]
    assert len(concats) == 1 and len(concats[0].srcs) == 3
    assert ctx.stats["plan.pass.fold_structure.concats_flattened"] == 1


# --------------------------------------------------------------- pass: cse


def test_cse_merges_commutative_duplicates():
    g = ops.OpGraph()
    a = g.input("a")
    b = g.input("b")
    g.output("x", g.copy(g.add(a, b)))
    g.output("y", g.copy(g.add(b, a)))
    g.output("z", g.copy(g.mul(a, b)))
    plan = g.compile()
    rewritten, ctx = run_pass("cse", plan, {"a": PRIMES, "b": PRIMES})
    assert kinds(rewritten).count("add") == 1
    assert ctx.stats["plan.pass.cse.values_merged"] == 1
    out = scalar_outputs(
        rewritten,
        {"a": (rows_for(PRIMES, 1), PRIMES), "b": (rows_for(PRIMES, 2), PRIMES)},
    )
    assert out["x"] == out["y"]


def test_cse_never_merges_copies():
    g = ops.OpGraph()
    a = g.input("a")
    g.output("x", g.copy(a))
    g.output("y", g.copy(a))
    plan = g.compile()
    rewritten, _ = run_pass("cse", plan, {"a": PRIMES})
    assert kinds(rewritten).count("copy") == 2


# ------------------------------------------------------- pass: dead values


def test_dead_values_drops_unreached_nodes_and_inputs():
    g = ops.OpGraph()
    a = g.input("a")
    b = g.input("b")
    g.neg(b)  # dead
    g.forward_ntt(b)  # dead
    g.output("out", g.copy(a))
    plan = g.compile()
    rewritten, ctx = run_pass("dead_values", plan, {"a": PRIMES, "b": PRIMES})
    assert kinds(rewritten) == ["input", "copy"]
    assert rewritten.input_names == ("a",)
    assert ctx.stats["plan.pass.dead_values.values_removed"] == 3


# -------------------------------------------------------- pass: residency


def test_residency_hoists_constant_transform_to_derived_input():
    g = ops.OpGraph()
    x = g.input("x")
    k = g.input("k")
    x_ntt = g.forward_ntt(x)
    k_ntt = g.forward_ntt(k)
    g.output("out", g.inverse_ntt(g.mul(x_ntt, k_ntt)))
    plan = g.compile()
    rewritten, ctx = run_pass(
        "ntt_residency", plan, {"x": PRIMES, "k": PRIMES}, constant_inputs=("k",)
    )
    assert ctx.derived_inputs == {"k@ntt": "k"}
    assert "k@ntt" in rewritten.input_names
    assert kinds(rewritten).count("forward_ntt") == 1  # only x's survives
    assert ctx.stats["plan.pass.ntt_residency.transforms_hoisted"] == 1


def test_residency_splits_constants_out_of_batched_transform():
    # forward(concat(x, k1, k2)): the constant tail hoists, x stays in one
    # transform; the recombining concat preserves row order.
    g = ops.OpGraph()
    x = g.input("x")
    k1 = g.input("k1")
    k2 = g.input("k2")
    stacked = g.concat([x, k1, k2])
    g.output("out", g.copy(g.forward_ntt(stacked)))
    plan = g.compile()
    primes = {"x": PRIMES, "k1": PRIMES, "k2": PRIMES}
    rewritten, ctx = run_pass(
        "ntt_residency", plan, primes, constant_inputs=("k1", "k2")
    )
    assert ctx.stats["plan.pass.ntt_residency.transforms_hoisted"] == 2
    assert kinds(rewritten).count("forward_ntt") == 1
    assert set(ctx.derived_inputs) == {"k1@ntt", "k2@ntt"}


def test_residency_is_noop_without_constants():
    g = ops.OpGraph()
    x = g.input("x")
    g.output("out", g.forward_ntt(x))
    plan = g.compile()
    rewritten, ctx = run_pass("ntt_residency", plan, {"x": PRIMES})
    assert rewritten is plan
    assert not ctx.derived_inputs


# ------------------------------------------------- manager and materialise


def test_pass_manager_reaches_fixpoint_and_counts_rows():
    g = ops.OpGraph()
    x = g.input("x")
    roundtrip = g.inverse_ntt(g.forward_ntt(x))
    g.output("out", g.copy(roundtrip))
    plan = g.compile()
    manager = PassManager(DEFAULT_PASSES)
    result = manager.run(plan, input_primes={"x": PRIMES})
    assert count_ntt_rows(result.plan, {"x": PRIMES}) == 0
    assert count_ntt_rows(plan, {"x": PRIMES}) == 2 * len(PRIMES)
    out = scalar_outputs(result.plan, {"x": (rows_for(PRIMES), PRIMES)})
    assert out["out"] == rows_for(PRIMES)


def test_materialize_derived_builds_seeding_variant():
    g = ops.OpGraph()
    x = g.input("x")
    k = g.input("k")
    g.output("out", g.inverse_ntt(g.mul(g.forward_ntt(x), g.forward_ntt(k))))
    plan = g.compile()
    manager = PassManager(DEFAULT_PASSES)
    optimized = manager.run(
        plan, input_primes={"x": PRIMES, "k": PRIMES}, constant_inputs=("k",)
    )
    assert optimized.derived_inputs == (("k@ntt", "k"),)
    input_primes = {"x": PRIMES, "k": PRIMES, "k@ntt": PRIMES}
    cold, const_outputs = materialize_derived(
        optimized.plan, optimized.derived_inputs, input_primes
    )
    assert const_outputs == (("const:k@ntt", "k"),)
    assert set(cold.input_names) == {"x", "k"}
    # The cold plan computes the same "out" AND exports the constant image.
    cold_out = scalar_outputs(
        cold,
        {"x": (rows_for(PRIMES, 1), PRIMES), "k": (rows_for(PRIMES, 2), PRIMES)},
    )
    reference = scalar_outputs(
        plan,
        {"x": (rows_for(PRIMES, 1), PRIMES), "k": (rows_for(PRIMES, 2), PRIMES)},
    )
    assert cold_out["out"] == reference["out"]
    assert "const:k@ntt" in cold_out


# ------------------------------------------------------ selection precedence


def test_parse_passes_spellings():
    assert parse_passes("none") == ()
    assert parse_passes("") == ()
    assert parse_passes("default") == DEFAULT_PASSES
    assert parse_passes("cse, dead_values") == ("cse", "dead_values")
    assert parse_passes(["cse"]) == ("cse",)


def test_unknown_pass_error_lists_registry():
    with pytest.raises(KeyError) as excinfo:
        parse_passes("cse,bogus")
    message = str(excinfo.value)
    for name in available_passes():
        assert name in message
    assert PASSES_ENV_VAR in message
    assert "none" in message


def test_resolve_passes_precedence(monkeypatch):
    monkeypatch.setenv(PASSES_ENV_VAR, "cse")
    assert resolve_passes() == ("cse",)
    set_default_passes("dead_values")
    assert resolve_passes() == ("dead_values",)
    assert resolve_passes("fold_structure") == ("fold_structure",)
    assert resolve_passes("none") == ()
    set_default_passes(None)
    monkeypatch.delenv(PASSES_ENV_VAR)
    assert resolve_passes() == DEFAULT_PASSES


def test_registry_descriptions_cover_every_pass():
    table = dict(pass_descriptions())
    assert set(table) == set(available_passes()) == set(DEFAULT_PASSES)
    assert all(table.values())


# ---------------------------------------------- bit-for-bit equivalence


def chain(evaluator, ct_a, ct_b, relin):
    return evaluator.mod_switch_to_next(
        evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
    )


def test_chain_optimised_bit_identical_and_fewer_ntts(context):
    encryptor = context.encryptor(seed=11)
    encoder = context.encoder()
    relin = context.relinearization_key()
    ct_a = encryptor.encrypt(encoder.encode([1, 2, 3]))
    ct_b = encryptor.encrypt(encoder.encode([4, 5, 6]))

    plain_ev = context.evaluator(passes="none")
    optim_ev = context.evaluator(passes="default")
    assert plain_ev.passes == ()
    assert optim_ev.passes == DEFAULT_PASSES

    expected = chain(plain_ev, ct_a, ct_b, relin)
    cold = chain(optim_ev, ct_a, ct_b, relin)  # seeds the constant pool
    warm = chain(optim_ev, ct_a, ct_b, relin)
    assert coeffs(cold) == coeffs(expected)
    assert coeffs(warm) == coeffs(expected)
    assert warm.level == expected.level

    # Warm executions skip the pooled key transforms: strictly fewer NTT
    # rows per run than the unoptimised evaluator.
    plain_per_run = plain_ev.ntt_invocations
    chain(plain_ev, ct_a, ct_b, relin)
    plain_second = plain_ev.ntt_invocations - plain_per_run
    warm_before = optim_ev.ntt_invocations
    chain(optim_ev, ct_a, ct_b, relin)
    warm_cost = optim_ev.ntt_invocations - warm_before
    assert warm_cost < plain_second
    assert optim_ev.metrics.value("plan.pool.hits") > 0


def test_bootstrap_circuit_optimised_bit_identical(context):
    encryptor = context.encryptor(seed=11)
    encoder = context.encoder()
    ct = encryptor.encrypt(encoder.encode([3, 1, 4, 1, 5]))

    set_default_passes("none")
    plain_pipe = context.pipeline()
    set_default_passes(None)
    optim_pipe = context.pipeline()
    assert plain_pipe.evaluator.passes == ()
    assert optim_pipe.evaluator.passes == DEFAULT_PASSES

    expected = bootstrap_circuit(context, plain_pipe, ct, seed=99).run()
    expr = bootstrap_circuit(context, optim_pipe, ct, seed=99)
    cold = expr.run()
    warm = expr.run()
    assert coeffs(cold) == coeffs(expected)
    assert coeffs(warm) == coeffs(expected)
    assert warm.level == expected.level == 1


def test_pipeline_plain_ops_match_eager(context):
    encryptor = context.encryptor(seed=11)
    encoder = context.encoder()
    ct = encryptor.encrypt(encoder.encode([1, 2, 3]))
    plain = encoder.encode([2, 0, 1])

    eager = context.evaluator(mode="eager")
    expected = eager.add_plain(eager.multiply_plain(ct, plain), plain)

    pipe = context.pipeline()
    result = pipe.load(ct).mul_plain(plain).add_plain(plain).run()
    assert coeffs(result) == coeffs(expected)


# ------------------------------------------------------------ constant pool


def test_constant_pool_identity_keyed_lru():
    pool = ConstantPool(max_entries=2)
    a, b, c = object(), object(), object()
    pool.store(a, "A")
    pool.store(b, "B")
    assert pool.lookup(a) == "A"  # refreshes a's recency
    pool.store(c, "C")  # evicts b (least recent)
    assert pool.lookup(b) is None
    assert pool.lookup(a) == "A"
    assert pool.lookup(c) == "C"
    assert len(pool) == 2
    pool.clear()
    assert pool.lookup(a) is None


def test_context_shares_one_pool_across_evaluators():
    ctx = HeContext.create(PARAMS[30], backend="scalar", seed=7)
    encryptor = ctx.encryptor(seed=11)
    encoder = ctx.encoder()
    relin = ctx.relinearization_key()
    ct = encryptor.encrypt(encoder.encode([1, 2, 3]))
    ev1 = ctx.evaluator()
    ev2 = ctx.evaluator()
    product = ev1.multiply(ct, ct)
    ev1.relinearize(product, relin)  # cold: fills the shared pool
    before = ctx.metrics()
    ev2.relinearize(product, relin)  # second evaluator: pool already warm
    diff = HeContext.metrics_diff(before, ctx.metrics())
    assert diff["plan.pool.hits"] > 0
    assert diff.get("plan.pool.misses", 0) == 0


# --------------------------------------------------------------- metrics diff


def test_metrics_diff_headline_keys_always_present():
    diff = HeContext.metrics_diff({}, {})
    assert diff == {
        "pool.dispatches": 0,
        "conversions.rows": 0,
        "ntt.invocations": 0,
        "fallback.rows": 0,
    }
    diff = HeContext.metrics_diff(
        {"ntt.invocations": 10, "histogram": {"p50": 1}},
        {"ntt.invocations": 25, "plan.compiled": 2, "histogram": {"p50": 9}},
    )
    assert diff["ntt.invocations"] == 15
    assert diff["plan.compiled"] == 2
    assert "histogram" not in diff


# --------------------------------------------------- run_many and programs


def test_run_many_shares_subexpressions_in_one_plan(context):
    encryptor = context.encryptor(seed=11)
    encoder = context.encoder()
    relin = context.relinearization_key()
    ct = encryptor.encrypt(encoder.encode([1, 2, 3]))

    pipe = context.pipeline()
    x = pipe.load(ct)
    sq = x.square().relinearize(relin)
    twice = x + x
    switched = sq.mod_switch()
    results = pipe.run_many([sq, twice, switched])
    assert pipe.evaluator.plans_compiled == 1

    eager = context.evaluator(mode="eager")
    assert coeffs(results[0]) == coeffs(eager.relinearize(eager.square(ct), relin))
    assert coeffs(results[1]) == coeffs(eager.add(ct, ct))
    assert coeffs(results[2]) == coeffs(
        eager.mod_switch_to_next(eager.relinearize(eager.square(ct), relin))
    )
    assert results[2].level == 1


def test_program_front_end():
    ctx = HeContext.create(PARAMS[30], backend="scalar", seed=7)
    encryptor = ctx.encryptor(seed=11)
    encoder = ctx.encoder()
    relin = ctx.relinearization_key()
    ct = encryptor.encrypt(encoder.encode([1, 2, 3]))

    program = ctx.program()
    x = program.load(ct)
    program.let("sq", x.square().relinearize(relin).mod_switch())
    program.let("twice", x + x)
    assert program.statements == ("sq", "twice")
    with pytest.raises(ValueError, match="already defines"):
        program.let("sq", x)
    results = program.run()
    assert set(results) == {"sq", "twice"}

    eager = ctx.evaluator(mode="eager")
    assert coeffs(results["sq"]) == coeffs(
        eager.mod_switch_to_next(eager.relinearize(eager.square(ct), relin))
    )
    assert coeffs(results["twice"]) == coeffs(eager.add(ct, ct))

    empty = ctx.program()
    with pytest.raises(ValueError, match="no statements"):
        empty.run()


def test_run_many_rejects_foreign_and_empty(context):
    pipe = context.pipeline()
    other = context.pipeline()
    encryptor = context.encryptor(seed=11)
    ct = encryptor.encrypt(context.encoder().encode([1]))
    with pytest.raises(ValueError, match="at least one"):
        pipe.run_many([])
    with pytest.raises(ValueError, match="different pipeline"):
        pipe.run_many([other.load(ct)])
    with pytest.raises(TypeError):
        pipe.run_many([ct])


# ------------------------------------------------------------- CLI surface


def test_cli_rejects_unknown_passes_before_mutating(capsys):
    from repro.experiments.__main__ import main

    assert main(["--passes", "bogus", "table2"]) == 2
    err = capsys.readouterr().err
    assert "unknown plan pass" in err
    assert resolve_passes() == DEFAULT_PASSES  # nothing leaked


def test_cli_list_prints_pass_registry(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in available_passes():
        assert name in out
    assert "plan passes:" in out
