"""Tests for the Cooley-Tukey / Gentleman-Sande NTT pair and reference transforms."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modarith.modops import mul_mod
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.transforms.bitrev import bit_reverse_permute
from repro.transforms.cooley_tukey import (
    NegacyclicTransformer,
    forward_twiddle_table,
    inverse_twiddle_table,
    negacyclic_multiply,
    ntt_forward,
    ntt_forward_inplace,
    ntt_inverse,
)
from repro.transforms.reference import (
    naive_negacyclic_convolution,
    naive_negacyclic_intt,
    naive_negacyclic_ntt,
    naive_ntt,
    naive_intt,
)

N = 64
P = generate_ntt_primes(30, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, P)


def random_poly(n: int, p: int, seed: int = 0) -> list[int]:
    rng = random.Random(seed)
    return [rng.randrange(p) for _ in range(n)]


def test_forward_twiddle_table_shape_and_values():
    table = forward_twiddle_table(N, PSI, P)
    assert len(table) == N
    assert table[0] == 1
    # Entry 1 is psi^bit_reverse(1) = psi^(N/2), which must be a 4th root of -1... more
    # directly: every entry is a power of psi and the set of entries equals {psi^k : k < N}.
    powers = set()
    current = 1
    for _ in range(N):
        powers.add(current)
        current = mul_mod(current, PSI, P)
    assert set(table) == powers


def test_ntt_forward_matches_naive_in_bit_reversed_order():
    values = random_poly(N, P, seed=1)
    fast = ntt_forward(values, PSI, P)
    naive = naive_negacyclic_ntt(values, PSI, P)
    assert bit_reverse_permute(fast) == naive


def test_ntt_roundtrip_identity():
    values = random_poly(N, P, seed=2)
    assert ntt_inverse(ntt_forward(values, PSI, P), PSI, P) == values


def test_naive_roundtrip_identity():
    values = random_poly(16, P, seed=3)
    psi16 = primitive_root_of_unity(32, P)
    assert naive_negacyclic_intt(naive_negacyclic_ntt(values, psi16, P), psi16, P) == values


def test_plain_naive_ntt_roundtrip():
    values = random_poly(16, P, seed=4)
    omega = primitive_root_of_unity(16, P)
    assert naive_intt(naive_ntt(values, omega, P), omega, P) == values


def test_negacyclic_multiply_matches_schoolbook():
    a = random_poly(N, P, seed=5)
    b = random_poly(N, P, seed=6)
    assert negacyclic_multiply(a, b, PSI, P) == naive_negacyclic_convolution(a, b, P)


def test_negacyclic_wraparound_sign():
    """X^(N-1) * X = X^N = -1 in the quotient ring."""
    a = [0] * N
    b = [0] * N
    a[N - 1] = 1
    b[1] = 1
    product = negacyclic_multiply(a, b, PSI, P)
    expected = [0] * N
    expected[0] = P - 1
    assert product == expected


def test_multiplication_by_one_is_identity():
    a = random_poly(N, P, seed=7)
    one = [1] + [0] * (N - 1)
    assert negacyclic_multiply(a, one, PSI, P) == a


def test_ntt_forward_inplace_validates_arguments():
    with pytest.raises(ValueError):
        ntt_forward_inplace([1, 2, 3], [1, 1, 1], P)  # length not power of two
    with pytest.raises(ValueError):
        ntt_forward_inplace([1, 2, 3, 4], [1, 1], P)  # table size mismatch


def test_transformer_caches_and_matches_free_functions():
    transformer = NegacyclicTransformer(N, P, PSI)
    values = random_poly(N, P, seed=8)
    assert transformer.forward(values) == ntt_forward(values, PSI, P)
    assert transformer.inverse(transformer.forward(values)) == values
    assert transformer.forward_table == forward_twiddle_table(N, PSI, P)
    assert transformer.inverse_table == inverse_twiddle_table(N, PSI, P)
    a = random_poly(N, P, seed=9)
    b = random_poly(N, P, seed=10)
    assert transformer.multiply(a, b) == negacyclic_multiply(a, b, PSI, P)


def test_transformer_finds_root_automatically():
    transformer = NegacyclicTransformer(N, P)
    values = random_poly(N, P, seed=11)
    assert transformer.inverse(transformer.forward(values)) == values


def test_transformer_validates_parameters():
    with pytest.raises(ValueError):
        NegacyclicTransformer(48, P)
    with pytest.raises(ValueError):
        NegacyclicTransformer(N, 7)  # 7 is not 1 mod 2N
    transformer = NegacyclicTransformer(N, P, PSI)
    with pytest.raises(ValueError):
        transformer.forward([1] * (N - 1))
    with pytest.raises(ValueError):
        transformer.inverse([1] * (N + 1))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=2**32))
def test_roundtrip_property_various_sizes(log_n, seed):
    n = 1 << log_n
    p = generate_ntt_primes(30, 1, n)[0]
    psi = primitive_root_of_unity(2 * n, p)
    values = random_poly(n, p, seed=seed)
    assert ntt_inverse(ntt_forward(values, psi, p), psi, p) == values


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=2**32))
def test_convolution_property_various_sizes(log_n, seed):
    n = 1 << log_n
    p = generate_ntt_primes(30, 1, n)[0]
    psi = primitive_root_of_unity(2 * n, p)
    rng = random.Random(seed)
    a = [rng.randrange(p) for _ in range(n)]
    b = [rng.randrange(p) for _ in range(n)]
    assert negacyclic_multiply(a, b, psi, p) == naive_negacyclic_convolution(a, b, p)


def test_linearity_of_ntt():
    a = random_poly(N, P, seed=12)
    b = random_poly(N, P, seed=13)
    summed = [(x + y) % P for x, y in zip(a, b)]
    fa = ntt_forward(a, PSI, P)
    fb = ntt_forward(b, PSI, P)
    fsum = ntt_forward(summed, PSI, P)
    assert fsum == [(x + y) % P for x, y in zip(fa, fb)]


def test_60bit_prime_roundtrip():
    n = 128
    p = generate_ntt_primes(60, 1, n)[0]
    psi = primitive_root_of_unity(2 * n, p)
    values = random_poly(n, p, seed=14)
    assert ntt_inverse(ntt_forward(values, psi, p), psi, p) == values
