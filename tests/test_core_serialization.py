"""Tests for JSON serialisation of plans, twiddle tables, polynomials and ciphertexts."""

from __future__ import annotations

import random

import pytest

from repro.core.on_the_fly import OnTheFlyConfig
from repro.core.plan import NTTAlgorithm, NTTPlan
from repro.core.serialization import (
    ciphertext_from_dict,
    ciphertext_to_dict,
    load_json,
    plan_from_dict,
    plan_to_dict,
    rns_polynomial_from_dict,
    rns_polynomial_to_dict,
    save_json,
    twiddle_table_from_dict,
    twiddle_table_to_dict,
)
from repro.core.twiddle import TwiddleTable
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.rns.basis import RnsBasis
from repro.rns.poly import Domain, RnsPolynomial

N = 1 << 5
P = generate_ntt_primes(40, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, P)


def test_plan_roundtrip_all_fields():
    plan = NTTPlan(
        n=1 << 14,
        algorithm=NTTAlgorithm.SMEM,
        kernel1_size=128,
        kernel2_size=128,
        per_thread_points=4,
        coalesced=False,
        preload_twiddles=False,
        ot=OnTheFlyConfig(base=256, ot_stages=2),
        word_size_bits=32,
    )
    assert plan_from_dict(plan_to_dict(plan)) == plan


def test_plan_roundtrip_without_ot():
    plan = NTTPlan(n=1 << 12, algorithm=NTTAlgorithm.HIGH_RADIX, radix=16)
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored == plan
    assert restored.ot is None


def test_plan_from_dict_rejects_wrong_kind():
    with pytest.raises(ValueError):
        plan_from_dict({"kind": "something-else"})


def test_twiddle_table_roundtrip():
    table = TwiddleTable(n=N, p=P, psi=PSI)
    payload = twiddle_table_to_dict(table)
    restored = twiddle_table_from_dict(payload)
    assert restored.forward == table.forward
    assert restored.inverse == table.inverse
    assert restored.forward_shoup == table.forward_shoup
    assert restored.p == P and restored.psi == PSI


def test_twiddle_table_validation_on_load():
    table = TwiddleTable(n=N, p=P, psi=PSI)
    payload = twiddle_table_to_dict(table)
    with pytest.raises(ValueError):
        twiddle_table_from_dict({**payload, "kind": "nope"})
    tampered = dict(payload)
    tampered["forward"] = list(payload["forward"])
    tampered["forward"][3] = hex(int(payload["forward"][3], 16) ^ 1)
    with pytest.raises(ValueError):
        twiddle_table_from_dict(tampered)
    bad_modulus = dict(payload)
    bad_modulus["p"] = hex(P + 2)
    with pytest.raises(ValueError):
        twiddle_table_from_dict(bad_modulus)


def test_rns_polynomial_roundtrip_both_domains():
    basis = RnsBasis.generate(N, 3, bit_size=30)
    rng = random.Random(1)
    coefficients = [rng.randrange(-500, 500) for _ in range(N)]
    poly = RnsPolynomial.from_coefficients(coefficients, basis)
    for candidate in (poly, poly.to_ntt()):
        payload = rns_polynomial_to_dict(candidate)
        restored = rns_polynomial_from_dict(payload)
        assert restored == candidate
        assert restored.domain is candidate.domain
        assert restored.basis.primes == basis.primes


def test_rns_polynomial_from_dict_selects_backend():
    basis = RnsBasis.generate(N, 2, bit_size=30)
    poly = RnsPolynomial.from_coefficients([1] * N, basis, backend="numpy")
    payload = rns_polynomial_to_dict(poly)
    restored = rns_polynomial_from_dict(payload, backend="scalar")
    assert restored.backend.name == "scalar"
    assert restored == poly  # bit-identical residues across backends


def test_rns_polynomial_from_dict_rejects_wrong_kind():
    with pytest.raises(ValueError):
        rns_polynomial_from_dict({"kind": "ciphertext"})


def test_ciphertext_roundtrip_through_chain():
    """Ciphertexts serialise at any level — including after mod switching —
    and the restored ciphertext decrypts to the same plaintext."""
    from repro.he import HeContext, toy_params

    ctx = HeContext.create(toy_params())
    evaluator = ctx.evaluator()
    ct = ctx.encryptor().encrypt(ctx.encoder().encode([7, 8, 9]))
    product = evaluator.relinearize(
        evaluator.multiply(ct, ct), ctx.relinearization_key()
    )
    switched = evaluator.mod_switch_to_next(product)
    for candidate in (ct, product, switched):
        payload = ciphertext_to_dict(candidate)
        restored = ciphertext_from_dict(payload, backend=ctx.backend)
        assert restored.level == candidate.level
        assert restored.params == candidate.params
        assert [p.to_coeff_lists() for p in restored.polys] == [
            p.to_coeff_lists() for p in candidate.polys
        ]
        assert ctx.decryptor().decrypt(restored) == ctx.decryptor().decrypt(candidate)


def test_ciphertext_json_file_roundtrip(tmp_path):
    from repro.he import HeContext, toy_params

    ctx = HeContext.create(toy_params())
    ct = ctx.encryptor().encrypt(ctx.encoder().encode([1, 2]))
    path = save_json(ciphertext_to_dict(ct), tmp_path / "ct.json")
    restored = ciphertext_from_dict(load_json(path), backend=ctx.backend)
    decoded = ctx.encoder().decode(ctx.decryptor().decrypt(restored))
    assert decoded[:2] == [1, 2]


def test_ciphertext_from_dict_rejects_wrong_kind():
    with pytest.raises(ValueError):
        ciphertext_from_dict({"kind": "rns_polynomial"})


# ----------------------------------------------------- parallel backend


def _forced_parallel_backend():
    """A parallel backend whose every multi-row operation hits the pool."""
    from repro.backends.parallel import ParallelBackend

    return ParallelBackend(shards=2, transform_threshold=1, pointwise_threshold=1)


def test_rns_polynomial_roundtrip_under_parallel_backend():
    """Shared-memory tensors serialise through the counted to_coeff_lists()
    boundary exactly once, and the payload round-trips bit-identically."""
    backend = _forced_parallel_backend()
    try:
        basis = RnsBasis.generate(N, 3, bit_size=30)
        rng = random.Random(2)
        coefficients = [rng.randrange(-500, 500) for _ in range(N)]
        poly = RnsPolynomial.from_coefficients(coefficients, basis, backend=backend)
        ntt_poly = poly.to_ntt()  # sharded through the pool
        assert backend.pool_dispatch_count >= 1
        for candidate in (poly, ntt_poly):
            before = backend.conversion_count
            payload = rns_polynomial_to_dict(candidate)
            assert backend.conversion_count - before == basis.count, (
                "serialisation must materialise each residue row exactly once"
            )
            restored = rns_polynomial_from_dict(payload, backend=backend)
            assert restored == candidate
            assert restored.domain is candidate.domain
        # and the payload re-enters any other backend bit-identically
        foreign = rns_polynomial_from_dict(
            rns_polynomial_to_dict(ntt_poly), backend="scalar"
        )
        assert foreign == ntt_poly
    finally:
        backend.close()


def test_ciphertext_roundtrip_under_parallel_backend():
    from repro.he import HeContext, HEParams

    backend = _forced_parallel_backend()
    try:
        params = HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)
        ctx = HeContext.create(params, backend=backend)
        evaluator = ctx.evaluator()
        ct = ctx.encryptor().encrypt(ctx.encoder().encode([7, 8, 9]))
        switched = evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(ct, ct), ctx.relinearization_key())
        )
        for candidate in (ct, switched):
            rows_per_poly = candidate.polys[0].basis.count
            before = backend.conversion_count
            payload = ciphertext_to_dict(candidate)
            assert (
                backend.conversion_count - before
                == rows_per_poly * len(candidate.polys)
            )
            restored = ciphertext_from_dict(payload, backend=backend)
            assert restored.level == candidate.level
            assert [p.to_coeff_lists() for p in restored.polys] == [
                p.to_coeff_lists() for p in candidate.polys
            ]
            assert ctx.decryptor().decrypt(restored) == ctx.decryptor().decrypt(
                candidate
            )
    finally:
        backend.close()


def test_save_and_load_json(tmp_path):
    plan = NTTPlan(n=1 << 10, ot=OnTheFlyConfig(base=64, ot_stages=1))
    path = save_json(plan_to_dict(plan), tmp_path / "plan.json")
    assert path.exists()
    assert plan_from_dict(load_json(path)) == plan

    table = TwiddleTable(n=N, p=P, psi=PSI)
    table_path = save_json(twiddle_table_to_dict(table), tmp_path / "table.json")
    assert twiddle_table_from_dict(load_json(table_path)).forward == table.forward


# -- format versioning -----------------------------------------------------------------


def _sample_payloads():
    plan = NTTPlan(n=1 << 10, ot=OnTheFlyConfig(base=64, ot_stages=1))
    basis = RnsBasis.from_primes([P], N)
    rng = random.Random(11)
    poly = RnsPolynomial.random_uniform(basis, N, rng)
    return {
        plan_from_dict: plan_to_dict(plan),
        twiddle_table_from_dict: twiddle_table_to_dict(TwiddleTable(n=N, p=P, psi=PSI)),
        rns_polynomial_from_dict: rns_polynomial_to_dict(poly),
    }


def test_every_payload_carries_format_version():
    from repro.core.serialization import FORMAT_VERSION

    for payload in _sample_payloads().values():
        assert payload["format_version"] == FORMAT_VERSION


def test_unknown_format_version_is_rejected_with_clear_error():
    for loader, payload in _sample_payloads().items():
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="format_version"):
            loader(payload)


def test_missing_format_version_reads_as_version_one():
    # Artefacts written before the field existed keep loading: the format
    # itself is unchanged, only the tag is new.
    for loader, payload in _sample_payloads().items():
        del payload["format_version"]
        loader(payload)


def test_ciphertext_format_version_roundtrip_and_rejection():
    from repro.he import HeContext
    from repro.he.params import toy_params

    ctx = HeContext.create(toy_params())
    ct = ctx.encryptor().encrypt(ctx.encoder().encode([1, 2, 3]))
    payload = ciphertext_to_dict(ct)
    from repro.core.serialization import FORMAT_VERSION

    assert payload["format_version"] == FORMAT_VERSION
    ciphertext_from_dict(payload)  # current version loads
    payload["format_version"] = 2
    with pytest.raises(ValueError, match="format_version"):
        ciphertext_from_dict(payload)
