"""Tests for JSON serialisation of plans and twiddle tables."""

from __future__ import annotations

import pytest

from repro.core.on_the_fly import OnTheFlyConfig
from repro.core.plan import NTTAlgorithm, NTTPlan
from repro.core.serialization import (
    load_json,
    plan_from_dict,
    plan_to_dict,
    save_json,
    twiddle_table_from_dict,
    twiddle_table_to_dict,
)
from repro.core.twiddle import TwiddleTable
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity

N = 1 << 5
P = generate_ntt_primes(40, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, P)


def test_plan_roundtrip_all_fields():
    plan = NTTPlan(
        n=1 << 14,
        algorithm=NTTAlgorithm.SMEM,
        kernel1_size=128,
        kernel2_size=128,
        per_thread_points=4,
        coalesced=False,
        preload_twiddles=False,
        ot=OnTheFlyConfig(base=256, ot_stages=2),
        word_size_bits=32,
    )
    assert plan_from_dict(plan_to_dict(plan)) == plan


def test_plan_roundtrip_without_ot():
    plan = NTTPlan(n=1 << 12, algorithm=NTTAlgorithm.HIGH_RADIX, radix=16)
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored == plan
    assert restored.ot is None


def test_plan_from_dict_rejects_wrong_kind():
    with pytest.raises(ValueError):
        plan_from_dict({"kind": "something-else"})


def test_twiddle_table_roundtrip():
    table = TwiddleTable(n=N, p=P, psi=PSI)
    payload = twiddle_table_to_dict(table)
    restored = twiddle_table_from_dict(payload)
    assert restored.forward == table.forward
    assert restored.inverse == table.inverse
    assert restored.forward_shoup == table.forward_shoup
    assert restored.p == P and restored.psi == PSI


def test_twiddle_table_validation_on_load():
    table = TwiddleTable(n=N, p=P, psi=PSI)
    payload = twiddle_table_to_dict(table)
    with pytest.raises(ValueError):
        twiddle_table_from_dict({**payload, "kind": "nope"})
    tampered = dict(payload)
    tampered["forward"] = list(payload["forward"])
    tampered["forward"][3] = hex(int(payload["forward"][3], 16) ^ 1)
    with pytest.raises(ValueError):
        twiddle_table_from_dict(tampered)
    bad_modulus = dict(payload)
    bad_modulus["p"] = hex(P + 2)
    with pytest.raises(ValueError):
        twiddle_table_from_dict(bad_modulus)


def test_save_and_load_json(tmp_path):
    plan = NTTPlan(n=1 << 10, ot=OnTheFlyConfig(base=64, ot_stages=1))
    path = save_json(plan_to_dict(plan), tmp_path / "plan.json")
    assert path.exists()
    assert plan_from_dict(load_json(path)) == plan

    table = TwiddleTable(n=N, p=P, psi=PSI)
    table_path = save_json(twiddle_table_to_dict(table), tmp_path / "table.json")
    assert twiddle_table_from_dict(load_json(table_path)).forward == table.forward
