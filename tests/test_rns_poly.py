"""Tests for RNS polynomials (double-CRT representation, resident tensors)."""

from __future__ import annotations

import random

import pytest

from repro.backends import ScalarBackend
from repro.rns.basis import RnsBasis
from repro.rns.poly import Domain, RnsPolynomial
from repro.transforms.reference import naive_negacyclic_convolution

N = 1 << 5
BASIS = RnsBasis.generate(N, 3, bit_size=30)


def random_coeffs(seed=0, bound=1000):
    rng = random.Random(seed)
    return [rng.randrange(-bound, bound) for _ in range(N)]


def test_from_coefficients_and_reconstruct():
    coeffs = random_coeffs(1)
    poly = RnsPolynomial.from_coefficients(coeffs, BASIS)
    assert poly.domain is Domain.COEFFICIENT
    assert poly.to_big_coefficients(centered=True) == coeffs


def test_zero_polynomial():
    poly = RnsPolynomial.zero(BASIS, N)
    assert all(all(x == 0 for x in row) for row in poly.to_coeff_lists())
    assert poly.to_big_coefficients() == [0] * N


def test_validation_of_row_shapes():
    with pytest.raises(ValueError):
        RnsPolynomial.from_residue_rows([[0] * N] * 2, BASIS)
    with pytest.raises(ValueError):
        RnsPolynomial.from_residue_rows([[0] * (N - 1)] * BASIS.count, BASIS, n=N)


def test_tensor_must_match_basis():
    backend = ScalarBackend()
    tensor = backend.from_rows([[0] * N] * 2, BASIS.primes[:2])
    with pytest.raises(ValueError):
        RnsPolynomial(BASIS, N, tensor)


def test_domain_roundtrip():
    poly = RnsPolynomial.from_coefficients(random_coeffs(2), BASIS)
    ntt = poly.to_ntt()
    assert ntt.domain is Domain.NTT
    back = ntt.to_coefficient()
    assert back == poly
    # idempotent conversions
    assert ntt.to_ntt() is ntt
    assert poly.to_coefficient() is poly


def test_addition_and_subtraction():
    a_coeffs = random_coeffs(3)
    b_coeffs = random_coeffs(4)
    a = RnsPolynomial.from_coefficients(a_coeffs, BASIS)
    b = RnsPolynomial.from_coefficients(b_coeffs, BASIS)
    summed = (a + b).to_big_coefficients(centered=True)
    assert summed == [(x + y) for x, y in zip(a_coeffs, b_coeffs)]
    diff = (a - b).to_big_coefficients(centered=True)
    assert diff == [(x - y) for x, y in zip(a_coeffs, b_coeffs)]
    negated = (-a).to_big_coefficients(centered=True)
    assert negated == [-x for x in a_coeffs]


def test_multiplication_matches_schoolbook():
    a_coeffs = [abs(c) % 50 for c in random_coeffs(5)]
    b_coeffs = [abs(c) % 50 for c in random_coeffs(6)]
    a = RnsPolynomial.from_coefficients(a_coeffs, BASIS)
    b = RnsPolynomial.from_coefficients(b_coeffs, BASIS)
    product = (a * b).to_big_coefficients()
    expected = naive_negacyclic_convolution(a_coeffs, b_coeffs, BASIS.modulus)
    assert product == expected


def test_multiplication_in_ntt_domain_is_elementwise():
    a = RnsPolynomial.from_coefficients(random_coeffs(7), BASIS).to_ntt()
    b = RnsPolynomial.from_coefficients(random_coeffs(8), BASIS).to_ntt()
    product = a * b
    assert product.domain is Domain.NTT
    coeff_product = (a.to_coefficient() * b.to_coefficient()).to_ntt()
    assert product.to_coeff_lists() == coeff_product.to_coeff_lists()


def test_domain_mismatch_raises():
    a = RnsPolynomial.from_coefficients(random_coeffs(9), BASIS)
    b = RnsPolynomial.from_coefficients(random_coeffs(10), BASIS).to_ntt()
    with pytest.raises(ValueError):
        _ = a + b
    with pytest.raises(ValueError):
        _ = a * b


def test_ring_mismatch_raises():
    other_basis = RnsBasis.generate(N, 2, bit_size=30)
    a = RnsPolynomial.from_coefficients(random_coeffs(11), BASIS)
    b = RnsPolynomial.from_coefficients(random_coeffs(12), other_basis)
    with pytest.raises(ValueError):
        _ = a + b


def test_scalar_mul():
    coeffs = random_coeffs(13, bound=100)
    a = RnsPolynomial.from_coefficients(coeffs, BASIS)
    scaled = a.scalar_mul(7).to_big_coefficients(centered=True)
    assert scaled == [7 * c for c in coeffs]


def test_random_ternary_and_gaussian_are_small():
    rng = random.Random(0)
    ternary = RnsPolynomial.random_ternary(BASIS, N, rng).to_big_coefficients(centered=True)
    assert all(c in (-1, 0, 1) for c in ternary)
    gaussian = RnsPolynomial.random_gaussian(BASIS, N, rng).to_big_coefficients(centered=True)
    assert all(abs(c) < 40 for c in gaussian)


def test_random_uniform_rows_reduced():
    rng = random.Random(1)
    poly = RnsPolynomial.random_uniform(BASIS, N, rng)
    for row, p in zip(poly.to_coeff_lists(), BASIS.primes):
        assert all(0 <= x < p for x in row)


def test_drop_last_prime():
    poly = RnsPolynomial.from_coefficients(random_coeffs(14, bound=10), BASIS)
    smaller = poly.drop_last_prime()
    assert smaller.basis.count == BASIS.count - 1
    assert smaller.to_coeff_lists() == poly.to_coeff_lists()[:-1]


def test_copy_is_deep():
    poly = RnsPolynomial.from_coefficients(random_coeffs(15), BASIS)
    duplicate = poly.copy()
    assert duplicate == poly
    assert duplicate.tensor is not poly.tensor
    # a modified rebuild is a different polynomial (and leaves the original alone)
    rows = duplicate.to_coeff_lists()
    rows[0][0] = (rows[0][0] + 1) % BASIS.primes[0]
    modified = RnsPolynomial.from_residue_rows(rows, BASIS, backend=duplicate.backend)
    assert modified != poly


def test_residues_property_is_a_materialized_copy():
    poly = RnsPolynomial.from_coefficients(random_coeffs(18), BASIS)
    rows = poly.residues
    assert rows == poly.to_coeff_lists()
    rows[0][0] ^= 1  # mutating the copy must not write back into the tensor
    assert poly.residues != rows


def test_backend_contexts_shared_and_sized():
    # Twiddle contexts are resident with the pinned backend: one per (n, p)
    # pair, built on first use and reused afterwards.
    backend = ScalarBackend()
    poly = RnsPolynomial.from_coefficients(random_coeffs(16), BASIS, backend=backend)
    assert poly.backend is backend
    poly.to_ntt()
    assert backend.resident_contexts == BASIS.count
    # converting again must not grow the cache
    poly.to_ntt()
    assert backend.resident_contexts == BASIS.count


def test_warm_twiddles_prebuilds_contexts():
    backend = ScalarBackend()
    backend.warm_twiddles(N, BASIS.primes)
    assert backend.resident_contexts == BASIS.count
    poly = RnsPolynomial.from_coefficients(random_coeffs(19), BASIS, backend=backend)
    poly.to_ntt()
    assert backend.resident_contexts == BASIS.count


def test_multiplicative_identity():
    one = RnsPolynomial.from_coefficients([1] + [0] * (N - 1), BASIS)
    a = RnsPolynomial.from_coefficients(random_coeffs(17), BASIS)
    assert (a * one).to_big_coefficients() == a.to_big_coefficients()
