"""Tests for bit-reversal utilities."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.transforms.bitrev import (
    bit_reverse,
    bit_reverse_indices,
    bit_reverse_permute,
    is_power_of_two,
    log2_exact,
)


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(2)
    assert is_power_of_two(1 << 17)
    assert not is_power_of_two(0)
    assert not is_power_of_two(3)
    assert not is_power_of_two(-4)


def test_log2_exact():
    assert log2_exact(1) == 0
    assert log2_exact(2) == 1
    assert log2_exact(1 << 17) == 17
    with pytest.raises(ValueError):
        log2_exact(6)
    with pytest.raises(ValueError):
        log2_exact(0)


def test_bit_reverse_known_values():
    assert bit_reverse(0b0011, 4) == 0b1100
    assert bit_reverse(0b0001, 3) == 0b100
    assert bit_reverse(0, 8) == 0
    assert bit_reverse(1, 1) == 1


def test_bit_reverse_range_check():
    with pytest.raises(ValueError):
        bit_reverse(8, 3)
    with pytest.raises(ValueError):
        bit_reverse(-1, 3)


def test_bit_reverse_indices_small():
    assert bit_reverse_indices(1) == [0]
    assert bit_reverse_indices(2) == [0, 1]
    assert bit_reverse_indices(4) == [0, 2, 1, 3]
    assert bit_reverse_indices(8) == [0, 4, 2, 6, 1, 5, 3, 7]


def test_bit_reverse_permute_is_involution():
    values = list(range(64))
    permuted = bit_reverse_permute(values)
    assert permuted != values
    assert bit_reverse_permute(permuted) == values


def test_bit_reverse_permutation_is_a_permutation():
    indices = bit_reverse_indices(256)
    assert sorted(indices) == list(range(256))


@given(st.integers(min_value=1, max_value=12))
def test_bit_reverse_is_involution_property(bits):
    n = 1 << bits
    for value in range(0, n, max(1, n // 16)):
        assert bit_reverse(bit_reverse(value, bits), bits) == value
