"""Tests for butterfly operations (Algorithm 2 and the Gentleman-Sande dual)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modarith.primes import generate_ntt_primes
from repro.modarith.reducers import NativeModMul, ShoupModMul
from repro.transforms.butterfly import (
    butterfly_instruction_count,
    ct_butterfly,
    ct_butterfly_lazy,
    gs_butterfly,
)

P = generate_ntt_primes(60, 1, 1 << 10)[0]


def test_ct_butterfly_definition():
    a, b, psi = 5, 7, 11
    hi, lo = ct_butterfly(a, b, psi, P)
    assert hi == (a + b * psi) % P
    assert lo == (a - b * psi) % P


def test_gs_butterfly_definition():
    a, b, psi = 5, 7, 11
    hi, lo = gs_butterfly(a, b, psi, P)
    assert hi == (a + b) % P
    assert lo == ((a - b) * psi) % P


def test_ct_then_gs_recovers_inputs_up_to_factor_two():
    """A CT butterfly followed by a GS butterfly with the inverse twiddle
    returns (2a, 2b) — the factor the final N^{-1} scaling removes."""
    a, b, psi = 123456789, 987654321, 555555555
    psi_inv = pow(psi, P - 2, P)
    u, v = ct_butterfly(a, b, psi, P)
    a2, b2 = gs_butterfly(u, v, psi_inv, P)
    assert a2 == (2 * a) % P
    assert b2 == (2 * b) % P


def test_ct_butterfly_lazy_matches_strict():
    reducer = ShoupModMul(P)
    psi = 0xABCDEF % P
    companions = reducer.precompute(psi)
    a, b = 3 * P - 5, 2 * P + 9
    lazy_hi, lazy_lo = ct_butterfly_lazy(a, b, psi, companions, reducer)
    strict_hi, strict_lo = ct_butterfly(a % P, b % P, psi, P)
    assert lazy_hi % P == strict_hi
    assert lazy_lo % P == strict_lo
    assert 0 <= lazy_hi < 4 * P
    assert 0 <= lazy_lo < 4 * P


def test_ct_butterfly_lazy_rejects_out_of_bound_operands():
    reducer = ShoupModMul(P)
    psi = 12345
    companions = reducer.precompute(psi)
    with pytest.raises(ValueError):
        ct_butterfly_lazy(4 * P, 0, psi, companions, reducer)
    with pytest.raises(ValueError):
        ct_butterfly_lazy(0, 4 * P, psi, companions, reducer)


@settings(max_examples=80, deadline=None)
@given(
    st.integers(min_value=0, max_value=4 * P - 1),
    st.integers(min_value=0, max_value=4 * P - 1),
    st.integers(min_value=0, max_value=P - 1),
)
def test_lazy_butterfly_bound_invariant(a, b, psi):
    """Outputs of the lazy butterfly always stay within the [0, 4p) bound
    claimed by Algorithm 2, so stages can be chained without overflow."""
    reducer = ShoupModMul(P)
    companions = reducer.precompute(psi)
    hi, lo = ct_butterfly_lazy(a, b, psi, companions, reducer)
    assert 0 <= hi < 4 * P
    assert 0 <= lo < 4 * P
    assert hi % P == (a + b * psi) % P
    assert lo % P == (a - b * psi) % P


def test_butterfly_instruction_count_ordering():
    shoup = butterfly_instruction_count(ShoupModMul(P))
    native = butterfly_instruction_count(NativeModMul(P))
    assert shoup < native
    assert butterfly_instruction_count(ShoupModMul(P), lazy=False) > shoup
