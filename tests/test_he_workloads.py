"""Deeper HE workload tests: multi-operation circuits on encrypted data.

These integration tests run small but realistic evaluation chains — the kind
of workloads whose NTT cost the paper sets out to reduce — and check exact
end-to-end correctness against plaintext computation.
"""

from __future__ import annotations

import random

import pytest

from repro.he import (
    BatchEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    HEParams,
    KeyGenerator,
    NoiseRefresher,
)


@pytest.fixture(scope="module")
def context():
    """A toy HE context with enough primes for a few multiplications."""
    params = HEParams(n=64, plaintext_modulus=257, prime_bits=45, prime_count=4, name="workload")
    keygen = KeyGenerator(params, seed=21)
    secret = keygen.secret_key()
    public = keygen.public_key()
    relin = keygen.relinearization_key()
    return {
        "params": params,
        "encoder": BatchEncoder(params, keygen.basis),
        "encryptor": Encryptor(params, public, seed=22),
        "decryptor": Decryptor(params, secret),
        "evaluator": Evaluator(params),
        "relin": relin,
    }


def decrypt_slots(context, ciphertext, count):
    return context["encoder"].decode(context["decryptor"].decrypt(ciphertext))[:count]


def test_encrypted_dot_product(context):
    """Slot-wise dot-product accumulation: sum_i x_i * y_i via multiply + rotations-free add."""
    t = context["params"].plaintext_modulus
    rng = random.Random(1)
    xs = [[rng.randrange(t) for _ in range(4)] for _ in range(3)]
    ys = [[rng.randrange(t) for _ in range(4)] for _ in range(3)]

    evaluator = context["evaluator"]
    accumulator = None
    for x, y in zip(xs, ys):
        cx = context["encryptor"].encrypt(context["encoder"].encode(x))
        cy = context["encryptor"].encrypt(context["encoder"].encode(y))
        term = evaluator.relinearize(evaluator.multiply(cx, cy), context["relin"])
        accumulator = term if accumulator is None else evaluator.add(accumulator, term)

    expected = [
        sum(x[i] * y[i] for x, y in zip(xs, ys)) % t
        for i in range(4)
    ]
    assert decrypt_slots(context, accumulator, 4) == expected


def test_encrypted_polynomial_evaluation(context):
    """Evaluate 3*x^2 + 2*x + 1 slot-wise on encrypted data."""
    t = context["params"].plaintext_modulus
    rng = random.Random(2)
    x = [rng.randrange(t) for _ in range(5)]
    evaluator = context["evaluator"]
    encoder = context["encoder"]

    cx = context["encryptor"].encrypt(encoder.encode(x))
    x_squared = evaluator.relinearize(evaluator.square(cx), context["relin"])
    term2 = evaluator.multiply_plain(x_squared, encoder.encode([3] * context["params"].n))
    term1 = evaluator.multiply_plain(cx, encoder.encode([2] * context["params"].n))
    result = evaluator.add_plain(evaluator.add(term2, term1), encoder.encode([1] * context["params"].n))

    expected = [(3 * v * v + 2 * v + 1) % t for v in x]
    assert decrypt_slots(context, result, 5) == expected


def test_two_sequential_multiplications_with_mod_switching(context):
    """x * y * z with relinearisation and a modulus switch between the products."""
    t = context["params"].plaintext_modulus
    rng = random.Random(3)
    x = [rng.randrange(t) for _ in range(4)]
    y = [rng.randrange(t) for _ in range(4)]
    z = [rng.randrange(t) for _ in range(4)]
    evaluator = context["evaluator"]
    encoder = context["encoder"]
    encryptor = context["encryptor"]

    cx, cy, cz = (encryptor.encrypt(encoder.encode(v)) for v in (x, y, z))
    # Relinearise at the top level (where the key lives), then switch down.
    xy = evaluator.relinearize(evaluator.multiply(cx, cy), context["relin"])
    xy = evaluator.mod_switch_to_next(xy)
    cz = evaluator.mod_switch_to_next(cz)
    # The second product is decrypted as a size-3 ciphertext: the decryptor
    # handles higher-degree ciphertexts and level-reduced keys directly.
    xyz = evaluator.multiply(xy, cz)
    assert xyz.size == 3

    expected = [(a * b * c) % t for a, b, c in zip(x, y, z)]
    assert decrypt_slots(context, xyz, 4) == expected
    assert context["decryptor"].noise_budget_bits(xyz) > 0


def test_refresh_enables_longer_chains(context):
    """A chain of squarings with a noise refresh in the middle stays correct."""
    t = context["params"].plaintext_modulus
    evaluator = context["evaluator"]
    encoder = context["encoder"]
    x = [3, 5, 7]
    ciphertext = context["encryptor"].encrypt(encoder.encode(x))
    refresher = NoiseRefresher(context["encryptor"], context["decryptor"])

    value = [v % t for v in x]
    for round_index in range(3):
        ciphertext = evaluator.relinearize(evaluator.square(ciphertext), context["relin"])
        value = [(v * v) % t for v in value]
        if round_index == 1:
            ciphertext = refresher.refresh(ciphertext)
    assert decrypt_slots(context, ciphertext, 3) == value
