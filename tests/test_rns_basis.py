"""Tests for the RNS basis and CRT reconstruction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modarith.primes import generate_ntt_primes
from repro.rns.basis import RnsBasis

N = 1 << 6


def make_basis(count=3, bits=30):
    return RnsBasis.generate(N, count, bit_size=bits)


def test_generate_basis_properties():
    basis = make_basis(4)
    assert basis.count == 4
    assert len(basis) == 4
    assert basis.n == N
    expected = 1
    for p in basis:
        expected *= p
        assert p % (2 * N) == 1
    assert basis.modulus == expected
    assert basis.log_q == expected.bit_length()
    assert basis[0] == basis.primes[0]


def test_basis_validation_errors():
    primes = generate_ntt_primes(30, 2, N)
    with pytest.raises(ValueError):
        RnsBasis(primes=(), n=N)
    with pytest.raises(ValueError):
        RnsBasis(primes=(primes[0], primes[0]), n=N)
    with pytest.raises(ValueError):
        RnsBasis(primes=(15,), n=N)  # not prime
    with pytest.raises(ValueError):
        RnsBasis(primes=(998244353 + 2,), n=N)  # not congruent / not prime


def test_from_primes_roundtrip():
    primes = generate_ntt_primes(30, 3, N)
    basis = RnsBasis.from_primes(primes, N)
    assert basis.primes == tuple(primes)


def test_crt_roundtrip_small_values():
    basis = make_basis(3)
    for value in (0, 1, 42, basis.modulus - 1, basis.modulus // 2):
        assert basis.from_residues(basis.to_residues(value)) == value


def test_crt_residues_are_reduced():
    basis = make_basis(3)
    residues = basis.to_residues(basis.modulus + 5)
    assert basis.from_residues(residues) == 5
    for r, p in zip(residues, basis.primes):
        assert 0 <= r < p


def test_centered_reconstruction():
    basis = make_basis(2)
    assert basis.from_residues_centered(basis.to_residues(-3)) == -3
    assert basis.from_residues_centered(basis.to_residues(7)) == 7
    half = basis.modulus // 2
    assert basis.from_residues_centered(basis.to_residues(half)) == half
    assert basis.from_residues_centered(basis.to_residues(half + 1)) == half + 1 - basis.modulus


def test_from_residues_length_check():
    basis = make_basis(3)
    with pytest.raises(ValueError):
        basis.from_residues([1, 2])


def test_drop_last():
    basis = make_basis(4)
    smaller = basis.drop_last(1)
    assert smaller.count == 3
    assert smaller.primes == basis.primes[:3]
    with pytest.raises(ValueError):
        basis.drop_last(4)
    with pytest.raises(ValueError):
        basis.drop_last(0)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0))
def test_crt_roundtrip_property(value):
    basis = RnsBasis.from_primes(generate_ntt_primes(30, 3, N), N)
    reduced = value % basis.modulus
    assert basis.from_residues(basis.to_residues(value)) == reduced


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=-(10**18), max_value=10**18))
def test_centered_roundtrip_property(value):
    basis = RnsBasis.from_primes(generate_ntt_primes(30, 3, N), N)
    assert abs(value) < basis.modulus // 2
    assert basis.from_residues_centered(basis.to_residues(value)) == value
