"""Unit tests for fixed-width word helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.modarith.word import (
    WORD32,
    WORD64,
    WordSpec,
    bit_length_fits,
    mask,
    mul_hi,
    mul_lo,
    mul_wide,
    wrap_add,
    wrap_mul,
    wrap_sub,
)


def test_word_spec_properties():
    assert WORD32.modulus == 2**32
    assert WORD64.modulus == 2**64
    assert WORD32.max_value == 2**32 - 1
    assert WORD64.contains(2**64 - 1)
    assert not WORD64.contains(2**64)
    assert not WORD64.contains(-1)


def test_mask_truncates_to_word():
    assert mask(2**64 + 5) == 5
    assert mask(2**32 + 7, WORD32) == 7
    assert mask(3) == 3


def test_wrap_add_wraps():
    assert wrap_add(WORD64.max_value, 1) == 0
    assert wrap_add(10, 20) == 30
    assert wrap_add(WORD32.max_value, 2, WORD32) == 1


def test_wrap_sub_wraps():
    assert wrap_sub(0, 1) == WORD64.max_value
    assert wrap_sub(5, 3) == 2


def test_wrap_mul_keeps_low_word():
    assert wrap_mul(2**63, 2) == 0
    assert wrap_mul(3, 4) == 12


def test_mul_wide_splits_product():
    hi, lo = mul_wide(2**63, 4)
    assert hi == 2
    assert lo == 0
    hi, lo = mul_wide(123, 456)
    assert hi == 0
    assert lo == 123 * 456


def test_mul_hi_lo_consistency():
    a, b = 0xDEADBEEFCAFEBABE, 0x123456789ABCDEF
    assert mul_hi(a, b) * 2**64 + mul_lo(a, b) == a * b


def test_bit_length_fits():
    assert bit_length_fits(0, WORD32)
    assert bit_length_fits(2**32 - 1, WORD32)
    assert not bit_length_fits(2**32, WORD32)
    assert not bit_length_fits(-1, WORD32)


@given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=0, max_value=2**64 - 1))
def test_mul_wide_reconstructs_product(a, b):
    hi, lo = mul_wide(a, b)
    assert hi * 2**64 + lo == a * b
    assert 0 <= lo < 2**64


@given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=0, max_value=2**64 - 1))
def test_wrap_ops_match_modular_semantics(a, b):
    assert wrap_add(a, b) == (a + b) % 2**64
    assert wrap_sub(a, b) == (a - b) % 2**64
    assert wrap_mul(a, b) == (a * b) % 2**64


def test_custom_word_spec():
    w8 = WordSpec(bits=8)
    assert w8.modulus == 256
    assert wrap_add(200, 100, w8) == 44
    assert mul_hi(16, 16, w8) == 1
