"""Tests for the experiment harness: every paper table/figure regenerates with the right shape."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, format_experiment, format_table, run_all, run_experiment
from repro.experiments import (
    ablation_ot_base,
    ablation_word_size,
    fig01_modmul,
    fig03_batching,
    fig04_high_radix,
    fig05_dft_high_radix,
    fig07_coalescing,
    fig08_table_size,
    fig09_preload,
    fig11_per_thread,
    fig12_radix_combos,
    fig13_batch_sweep,
    prior_work,
    table2_summary,
)
from repro.experiments.report import ExperimentResult
from repro.gpu.costmodel import GpuCostModel

MODEL = GpuCostModel()


# ---------------------------------------------------------------- report plumbing


def test_format_table_and_experiment():
    result = ExperimentResult(
        experiment_id="X",
        title="demo",
        columns=["a", "b"],
        rows=[{"a": 1, "b": 2.5}, {"a": 10, "b": None}],
        notes=["hello"],
    )
    text = format_experiment(result)
    assert "X — demo" in text
    assert "note: hello" in text
    assert "2.500" in text
    assert result.column("a") == [1, 10]
    assert result.row_by("a", 10)["b"] is None
    with pytest.raises(KeyError):
        result.row_by("a", 99)
    assert format_table(["only"], []) == "only"


def test_registry_contains_all_paper_artifacts():
    for key in ("fig1", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig11", "fig12",
                "fig13", "table2", "prior_work"):
        assert key in EXPERIMENTS
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_run_all_produces_one_result_per_experiment():
    results = run_all(MODEL)
    assert len(results) == len(EXPERIMENTS)
    for result in results:
        assert isinstance(result, ExperimentResult)
        assert result.rows
        assert result.columns


# ---------------------------------------------------------------- per-figure shapes


def test_fig1_shoup_vs_native_ratio():
    result = fig01_modmul.run(MODEL)
    shoup = result.row_by("modmul", "Shoup")
    assert 2.0 < shoup["model speedup vs native"] < 3.2  # paper: 2.37x


def test_fig3_batching_saturates():
    result = fig03_batching.run(MODEL)
    first, last = result.rows[0], result.rows[-1]
    assert last["batch"] == 21
    assert 1.5 < last["NTT speedup vs batch=1"] < 2.5  # paper: 1.92x
    assert 1.5 < last["DFT speedup vs batch=1"] < 2.5  # paper: 1.84x
    assert last["NTT DRAM utilization"] > 0.8  # paper: 86.7%
    assert first["NTT DRAM utilization"] < last["NTT DRAM utilization"]


def test_fig4_best_radix_and_collapse():
    result = fig04_high_radix.run(MODEL)
    for log_n in (16, 17):
        subset = [r for r in result.rows if r["logN"] == log_n]
        best = min(subset, key=lambda r: r["model time (us)"])
        assert best["radix"] == 16  # paper's best radix
        radix2 = next(r for r in subset if r["radix"] == 2)
        assert 2.0 < radix2["model time (us)"] / best["model time (us)"] < 3.5  # paper: 2.41x
    radix32 = result.row_by("radix", 32)
    assert radix32["DRAM utilization"] < 0.7


def test_fig4_measured_engine_columns():
    """Every radix row carries a positive measured-engine time from the backend path."""
    result = fig04_high_radix.run(MODEL)
    for row in result.rows:
        assert row["measured time (ms)"] > 0
        assert row["measured speedup vs radix-2"] > 0
    radix2 = result.row_by("radix", 2)
    assert radix2["measured speedup vs radix-2"] == pytest.approx(1.0)


def test_fig5_dft_best_radix():
    result = fig05_dft_high_radix.run(MODEL)
    subset = [r for r in result.rows if r["logN"] == 17]
    best = min(subset, key=lambda r: r["model time (us)"])
    assert best["radix"] == 32  # paper's best DFT radix
    assert all(r["measured NTT time (ms)"] > 0 for r in result.rows)


def test_fig7_coalescing_gain():
    result = fig07_coalescing.run(MODEL)
    for row in result.rows:
        assert 1.1 < row["speedup from coalescing"] < 1.5  # paper mean: 21.6%


def test_fig8_twiddle_growth():
    result = fig08_table_size.run(MODEL)
    ratios = result.column("twiddle / input ratio")
    assert ratios[-1] == pytest.approx(0.5)
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert result.rows[-1]["twiddle bytes (with Shoup)"] == result.rows[-1]["input bytes"]


def test_fig9_preload_gain():
    result = fig09_preload.run(MODEL)
    for row in result.rows:
        assert 1.0 < row["speedup from preloading"] < 1.3  # paper mean: 8.4%


def test_fig11_smem_beats_register_and_per_thread_ordering():
    result = fig11_per_thread.run(MODEL)
    for row in result.rows:
        assert row["NTT 8-pt (us)"] < row["NTT 2-pt (us)"]
        assert row["NTT 8-pt OT last-1 (us)"] < row["NTT 8-pt (us)"]
        assert row["DFT 8-pt (us)"] < row["NTT 8-pt (us)"]


def test_fig12_ot_speedup_and_traffic():
    result = fig12_radix_combos.run(MODEL)
    for row in result.rows:
        assert 1.04 < row["OT speedup"] < 1.20  # paper: 8-10%
        assert 0.10 < row["DRAM reduction"] < 0.30  # paper: 23.5-25.1%
        assert row["BW util w/ OT"] < row["BW util w/o OT"]  # paper: utilisation drops
        # measured companion: the scaled four-step split really ran
        assert row["measured four-step (ms)"] > 0
        k1, k2 = (int(v) for v in row["measured split"].split("x"))
        assert k1 >= 2 and k2 >= 1 and (k1 * k2) & (k1 * k2 - 1) == 0


def test_fig12_scaled_split_preserves_product():
    for log_n, splits in fig12_radix_combos.SPLITS_BY_LOGN.items():
        for k1, k2 in splits:
            for measure_log_n in (8, 12):
                m1, m2 = fig12_radix_combos.scaled_split(log_n, k1, k2, measure_log_n)
                assert m1 * m2 == 1 << measure_log_n
                assert m1 >= 2 and m2 >= 1


def test_fig13_linear_in_np():
    result = fig13_batch_sweep.run(MODEL)
    saturated = [r for r in result.rows if r["np"] >= 21]
    per_prime = [r["model time per prime (us)"] for r in saturated]
    assert max(per_prime) / min(per_prime) < 1.05  # linear once saturated
    assert all(r["measured time (ms)"] > 0 for r in result.rows)


def test_table2_speedups_in_range():
    result = table2_summary.run(MODEL)
    assert len(result.rows) == 4
    for row in result.rows:
        assert 3.0 < row["SMEM w/o OT speedup"] < 5.5   # paper 3.4-4.3x
        assert row["SMEM w/ OT speedup"] > row["SMEM w/o OT speedup"]  # OT helps
        assert 3.3 < row["SMEM w/ OT speedup"] < 6.0    # paper 3.8-4.7x
        # absolute modelled times are within 35% of the paper's measurements
        assert row["radix-2 (us)"] == pytest.approx(row["paper radix-2 (us)"], rel=0.35)
        assert row["SMEM w/o OT (us)"] == pytest.approx(row["paper SMEM w/o OT (us)"], rel=0.35)


def test_prior_work_speedups():
    result = prior_work.run(MODEL)
    for row in result.rows:
        assert 4.0 < row["model speedup"] < 9.0  # paper: 6.48-6.56x


def test_word_size_ablation_small_difference():
    result = ablation_word_size.run(MODEL)
    times = result.column("model time (us)")
    difference = abs(times[0] - times[1]) / max(times)
    assert difference < 0.15  # paper: ~5%


def test_word_size_ablation_measured_columns():
    """Both word-size rows carry a real measured time from the production
    forward_ntt_batch path — the 60-bit row rides the wide-word window."""
    result = ablation_word_size.run(MODEL)
    assert all(row["measured (ms)"] > 0 for row in result.rows)
    assert any("wide-word" in note for note in result.notes)


def test_word_size_ablation_honours_prime_bits_override():
    from repro.experiments.measured import set_measure_prime_bits

    set_measure_prime_bits(32)
    try:
        result = ablation_word_size.run(MODEL)
        assert any("x 32-bit rows (wide-word" in note for note in result.notes)
    finally:
        set_measure_prime_bits(None)


def test_ntt_share_measured_share_is_sane():
    from repro.experiments import ntt_share

    result = ntt_share.run(MODEL)
    for row in result.rows:
        assert 0.0 < row["measured NTT share"] < 1.0
        assert row["measured NTT (ms)"] < row["measured total (ms)"]


# ------------------------------------------------------------------- CLI


def test_cli_runs_selected_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["fig8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8" in out


def test_cli_rejects_unknown_keys_and_backends(capsys):
    from repro.experiments.__main__ import main

    assert main(["fig99"]) == 2
    assert main(["--backend", "no-such-backend", "fig8"]) == 2
    assert main(["--engine", "no-such-engine", "fig8"]) == 2
    assert main(["--engine", "stockham:4", "fig8"]) == 2  # malformed parameter
    assert main(["--p-bits", "70", "fig8"]) == 2  # beyond the wide-word ceiling
    assert main(["--p-bits", "5", "fig8"]) == 2  # no NTT primes that small
    assert main(["--backend", "parallel", "--shards", "0", "fig8"]) == 2
    assert main(["--backend", "parallel", "--engine", "no-such", "fig8"]) == 2
    # --shards without the sharding backend is rejected, not ignored
    assert main(["--backend", "numpy", "--shards", "2", "fig8"]) == 2
    # rejected invocations leak no process-wide defaults: resolution still
    # follows the environment precedence, not the arguments just refused
    import os

    from repro.backends import get_backend

    assert get_backend().name == (os.environ.get("REPRO_BACKEND") or "numpy")
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out
    assert "parallel backend:" in out  # --list reports shard/worker info


def test_cli_exits_nonzero_when_an_experiment_raises(capsys, monkeypatch):
    """A raising experiment is reported on stderr, the rest still run, exit is 1."""
    from repro.experiments import registry
    from repro.experiments.__main__ import main

    def boom(model=None):
        raise RuntimeError("synthetic failure")

    broken = dict(registry.EXPERIMENTS)
    broken["fig8"] = boom
    monkeypatch.setattr(registry, "EXPERIMENTS", broken)
    monkeypatch.setattr("repro.experiments.__main__.EXPERIMENTS", broken)
    assert main(["fig8", "fig9"]) == 1
    captured = capsys.readouterr()
    assert "synthetic failure" in captured.err
    assert "Figure 9" in captured.out  # later experiments still ran


def test_ot_base_ablation_prefers_moderate_bases():
    result = ablation_ot_base.run(MODEL)
    by_base = {row["OT base"]: row["time (us)"] for row in result.rows}
    assert min(by_base, key=by_base.get) in (256, 1024)  # paper: 1024
    assert by_base[16] > by_base[1024]  # tiny bases pay too many regenerations/refetches
    stored = {row["OT base"]: row["stored twiddles per prime"] for row in result.rows}
    assert stored[1024] == 1024 + (1 << 17) // 1024
