"""Tests for on-the-fly twiddling (OT) — table factorisation and equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.on_the_fly import OnTheFlyConfig, OnTheFlyTwiddleGenerator
from repro.core.twiddle import TwiddleTable
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity

N = 1 << 8
P = generate_ntt_primes(60, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, P)


def test_config_validation():
    with pytest.raises(ValueError):
        OnTheFlyConfig(base=3)
    with pytest.raises(ValueError):
        OnTheFlyConfig(base=0)
    with pytest.raises(ValueError):
        OnTheFlyConfig(ot_stages=-1)
    assert OnTheFlyConfig().base == 1024


def test_table_entries_formula():
    config = OnTheFlyConfig(base=16, ot_stages=1)
    assert config.table_entries(1 << 8) == 16 + 16
    assert config.table_entries(1 << 10) == 16 + 64
    # the paper's example: base-1024 at N = 2^17 stores 1024 + 128 factors
    assert OnTheFlyConfig(base=1024).table_entries(1 << 17) == 1024 + (1 << 17) // 1024
    # base >= n degenerates to the full table
    assert OnTheFlyConfig(base=1024).table_entries(256) == 256


def test_covered_table_indices():
    config = OnTheFlyConfig(base=16, ot_stages=1)
    assert config.covered_table_indices(N) == range(N // 2, N)
    config2 = OnTheFlyConfig(base=16, ot_stages=2)
    assert config2.covered_table_indices(N) == range(N // 4, N)
    config0 = OnTheFlyConfig(base=16, ot_stages=0)
    assert len(config0.covered_table_indices(N)) == 0


def test_regenerated_twiddles_match_full_table():
    """Every regenerated twiddle must equal the corresponding full-table entry."""
    table = TwiddleTable.build(N, P, PSI)
    generator = OnTheFlyTwiddleGenerator(N, P, PSI, OnTheFlyConfig(base=16, ot_stages=1))
    for index in range(N):
        value, companion = generator.twiddle(index)
        assert value == table.forward[index]
        assert companion == table.reducer.precompute(value)[0]


def test_inverse_generator_matches_inverse_table():
    table = TwiddleTable.build(N, P, PSI)
    generator = OnTheFlyTwiddleGenerator(
        N, P, PSI, OnTheFlyConfig(base=16, ot_stages=1), inverse=True
    )
    for index in range(0, N, 7):
        assert generator.twiddle(index)[0] == table.inverse[index]


def test_apply_to_matches_direct_multiplication():
    table = TwiddleTable.build(N, P, PSI)
    generator = OnTheFlyTwiddleGenerator(N, P, PSI, OnTheFlyConfig(base=16, ot_stages=1))
    operand = 0x123456789ABCDEF % P
    for index in (0, 1, 15, 16, 17, 100, N - 1):
        assert generator.apply_to(operand, index) == (operand * table.forward[index]) % P


def test_regeneration_counter():
    generator = OnTheFlyTwiddleGenerator(N, P, PSI, OnTheFlyConfig(base=16, ot_stages=1))
    assert generator.regeneration_muls == 0
    # exponent 0 and exponents < base or multiples of base need no extra mul
    generator.twiddle(0)
    assert generator.regeneration_muls == 0
    # find an index whose exponent splits across both tables
    split_index = next(
        i for i in range(N) if generator.exponent_for_index(i) % 16 and generator.exponent_for_index(i) >= 16
    )
    generator.twiddle(split_index)
    assert generator.regeneration_muls == 1
    generator.reset_counters()
    assert generator.regeneration_muls == 0


def test_stored_entries_much_smaller_than_full_table():
    config = OnTheFlyConfig(base=16, ot_stages=1)
    generator = OnTheFlyTwiddleGenerator(N, P, PSI, config)
    assert generator.stored_entries == 16 + N // 16
    assert generator.stored_entries < N
    assert generator.stored_bytes(with_shoup=True) == generator.stored_entries * 16
    assert generator.stored_bytes(with_shoup=False) == generator.stored_entries * 8


def test_exponent_for_index_bounds():
    generator = OnTheFlyTwiddleGenerator(N, P, PSI, OnTheFlyConfig(base=16))
    with pytest.raises(ValueError):
        generator.exponent_for_index(-1)
    with pytest.raises(ValueError):
        generator.exponent_for_index(N)


def test_rejects_non_power_of_two_n():
    with pytest.raises(ValueError):
        OnTheFlyTwiddleGenerator(100, P, PSI, OnTheFlyConfig(base=16))


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from([2, 4, 8, 16, 32, 64]),
    st.integers(min_value=0, max_value=N - 1),
)
def test_factorisation_equivalence_property(base, index):
    """For every base and every index the regenerated twiddle equals psi^bitrev(index)."""
    table = TwiddleTable.build(N, P, PSI)
    generator = OnTheFlyTwiddleGenerator(N, P, PSI, OnTheFlyConfig(base=base, ot_stages=2))
    assert generator.twiddle(index)[0] == table.forward[index]
