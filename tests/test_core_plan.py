"""Tests for NTT execution plans."""

from __future__ import annotations

import pytest

from repro.core.on_the_fly import OnTheFlyConfig
from repro.core.plan import NTTAlgorithm, NTTPlan, best_smem_plan, default_smem_split


def test_radix2_plan_structure():
    plan = NTTPlan(n=1 << 10, algorithm=NTTAlgorithm.RADIX2)
    assert plan.stage_groups == [1] * 10
    assert plan.passes == 10
    assert plan.label == "radix-2"


def test_high_radix_plan_structure():
    plan = NTTPlan(n=1 << 16, algorithm=NTTAlgorithm.HIGH_RADIX, radix=16)
    assert plan.stage_groups == [4, 4, 4, 4]
    assert plan.passes == 4
    assert plan.label == "radix-16"
    uneven = NTTPlan(n=1 << 17, algorithm=NTTAlgorithm.HIGH_RADIX, radix=16)
    assert uneven.stage_groups == [4, 4, 4, 4, 1]
    assert uneven.passes == 5


def test_smem_plan_structure_and_default_split():
    plan = NTTPlan(n=1 << 17, algorithm=NTTAlgorithm.SMEM)
    k1, k2 = plan.smem_split
    assert k1 * k2 == 1 << 17
    assert plan.passes == 2
    assert default_smem_split(1 << 17) == (256, 512)
    assert default_smem_split(1 << 16) == (256, 256)
    assert default_smem_split(1 << 14) == (128, 128)


def test_smem_plan_explicit_split():
    plan = NTTPlan(n=1 << 17, algorithm=NTTAlgorithm.SMEM, kernel1_size=128, kernel2_size=1024)
    assert plan.smem_split == (128, 1024)
    assert plan.stage_groups == [7, 10]
    assert "128x1024" in plan.label


def test_plan_validation():
    with pytest.raises(ValueError):
        NTTPlan(n=100)
    with pytest.raises(ValueError):
        NTTPlan(n=64, word_size_bits=48)
    with pytest.raises(ValueError):
        NTTPlan(n=1 << 10, algorithm=NTTAlgorithm.HIGH_RADIX, radix=3)
    with pytest.raises(ValueError):
        NTTPlan(n=1 << 10, algorithm=NTTAlgorithm.HIGH_RADIX, radix=1 << 11)
    with pytest.raises(ValueError):
        NTTPlan(n=1 << 10, algorithm=NTTAlgorithm.SMEM, kernel1_size=64, kernel2_size=64)
    with pytest.raises(ValueError):
        NTTPlan(n=1 << 10, algorithm=NTTAlgorithm.SMEM, per_thread_points=3)


def test_ot_label_and_best_plan():
    plan = best_smem_plan(1 << 17, ot_stages=1)
    assert plan.ot is not None
    assert plan.ot.base == 1024
    assert "+OT(last 1)" in plan.label
    no_ot = best_smem_plan(1 << 17, ot_stages=0)
    assert no_ot.ot is None
    assert "+OT" not in no_ot.label
    two = best_smem_plan(1 << 16, ot_stages=2)
    assert two.ot.ot_stages == 2


def test_plans_are_hashable_and_frozen():
    plan = NTTPlan(n=1 << 12)
    with pytest.raises(AttributeError):
        plan.n = 1 << 13
    assert hash(plan) == hash(NTTPlan(n=1 << 12))


def test_ot_config_embedded_in_plan():
    ot = OnTheFlyConfig(base=256, ot_stages=2)
    plan = NTTPlan(n=1 << 14, ot=ot)
    assert plan.ot.base == 256
    assert plan.ot.covered_table_indices(1 << 14) == range(1 << 12, 1 << 14)
