"""Cross-check and selection tests for the pluggable NTT-engine layer.

Every registered engine must be bit-for-bit interchangeable on every
backend: forward output equal to the bit-reverse-permuted reference
transform of :mod:`repro.transforms.reference`, exact round-trips, and the
correct negacyclic wrap — over both the vectorised (≤ 30-bit) and the
scalar-fallback (> 30-bit) prime regimes.  Selection is pinned end to end:
explicit argument > ``set_default_engine`` > ``REPRO_NTT_ENGINE`` >
auto-tuner, including a full ``multiply → relinearize → mod_switch`` chain
under a non-default engine with zero boundary conversions.
"""

from __future__ import annotations

import random

import pytest

from repro.backends import (
    NttAutoTuner,
    available_engines,
    get_engine,
    register_engine,
    set_default_engine,
)
from repro.backends.engines import (
    DEFAULT_AUTOTUNE_CANDIDATES,
    ENGINE_ENV_VAR,
    Radix2Engine,
    default_engine_spec,
    parse_engine_spec,
)
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import get_backend
from repro.backends.scalar import ScalarBackend
from repro.he import HEParams, HeContext
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.transforms.bitrev import (
    bit_reverse,
    bit_reverse_index_array,
    bit_reverse_indices,
    bit_reverse_permute,
    log2_exact,
)
from repro.transforms.reference import (
    naive_negacyclic_convolution,
    naive_negacyclic_ntt,
)

#: Every registered engine, including parameterised variants of the
#: configurable ones (small radix / off-default split).
ENGINE_SPECS = ("radix2", "high_radix", "high_radix:4", "four_step", "four_step:16", "stockham")
BACKEND_NAMES = ("scalar", "numpy")
PRIME_BITS = (30, 60)  # vectorised regime and per-prime fallback regime

#: Fixed per-regime seeds for the randomized cross-check vectors — every
#: random stream in this module is derived from these (or from a literal
#: seed at the call site), so a failure on one CI matrix leg replays
#: bit-identically on every other.
CROSS_CHECK_SEEDS = {30: 210, 60: 420}  # bits * 7
WRAP_SEEDS = {30: 130, 60: 160}  # 100 + bits


def make_backend(name: str, engine: str | None = None):
    return ScalarBackend(engine=engine) if name == "scalar" else NumpyBackend(engine=engine)


def random_rows(primes, n, seed):
    rng = random.Random(seed)
    return [[rng.randrange(p) for _ in range(n)] for p in primes]


# ------------------------------------------------------------------ registry


def test_registry_exposes_the_algorithm_zoo():
    assert set(available_engines()) >= {"radix2", "high_radix", "four_step", "stockham"}
    assert len(available_engines()) >= 4
    assert get_engine("stockham") is get_engine("stockham")  # flyweight cache
    assert get_engine("high_radix").radix == 16
    assert get_engine("high_radix:8").radix == 8
    assert get_engine("four_step:64").n1 == 64
    assert parse_engine_spec("high_radix:8") == ("high_radix", 8)
    assert parse_engine_spec("radix2") == ("radix2", None)


def test_registry_rejects_bad_specs():
    with pytest.raises(KeyError):
        get_engine("no-such-engine")
    with pytest.raises(ValueError):
        get_engine("radix2:4")  # parameterless engine
    with pytest.raises(ValueError):
        get_engine("high_radix:3")  # not a power of two
    with pytest.raises(ValueError):
        get_engine("stockham:abc")
    with pytest.raises(ValueError):
        register_engine("radix2", lambda param: Radix2Engine())  # duplicate


def test_set_default_engine_validates_and_clears():
    try:
        set_default_engine("stockham")
        assert default_engine_spec() == "stockham"
        with pytest.raises(KeyError):
            set_default_engine("missing")
    finally:
        set_default_engine(None)
    assert default_engine_spec() in (None, *ENGINE_SPECS)  # env may set one


# --------------------------------------------------------------- cross-check


@pytest.mark.parametrize("bits", PRIME_BITS)
@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("spec", ENGINE_SPECS)
def test_engine_matches_reference_and_round_trips(spec, backend_name, bits):
    """Forward == bit-reversed naive transform; inverse restores the input."""
    n = 64
    p = generate_ntt_primes(bits, 1, n)[0]
    (row,) = random_rows([p], n, seed=CROSS_CHECK_SEEDS[bits])
    psi = primitive_root_of_unity(2 * n, p)
    expected = bit_reverse_permute(naive_negacyclic_ntt(row, psi, p))

    backend = make_backend(backend_name, engine=spec)
    tensor = backend.from_rows([row], [p])
    forward = backend.forward_ntt_batch(tensor)
    assert forward.to_rows()[0] == expected
    assert backend.inverse_ntt_batch(forward).to_rows()[0] == row


@pytest.mark.parametrize("bits", PRIME_BITS)
@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("spec", ENGINE_SPECS)
def test_engine_negacyclic_wrap(spec, backend_name, bits):
    """iNTT(NTT(a) ⊙ NTT(b)) equals the schoolbook negacyclic convolution."""
    n = 32
    p = generate_ntt_primes(bits, 1, n)[0]
    rng = random.Random(WRAP_SEEDS[bits])
    a = [rng.randrange(p) for _ in range(n)]
    b = [rng.randrange(p) for _ in range(n)]
    expected = naive_negacyclic_convolution(a, b, p)

    backend = make_backend(backend_name, engine=spec)
    fa = backend.forward_ntt_batch(backend.from_rows([a], [p]))
    fb = backend.forward_ntt_batch(backend.from_rows([b], [p]))
    product = backend.inverse_ntt_batch(backend.mul(fa, fb))
    assert product.to_rows()[0] == expected


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_engines_bit_identical_on_batches_with_repeated_primes(backend_name):
    """All engines emit the same bits for a wide mixed-word batch."""
    n = 128
    primes = generate_ntt_primes(30, 2, n) + generate_ntt_primes(60, 1, n)
    batch_primes = [p for p in primes for _ in range(2)]
    rows = random_rows(batch_primes, n, seed=5)
    outputs = {}
    for spec in ENGINE_SPECS:
        backend = make_backend(backend_name, engine=spec)
        tensor = backend.from_rows(rows, batch_primes)
        outputs[spec] = backend.forward_ntt_batch(tensor).to_rows()
    reference = outputs["radix2"]
    for spec, rows_out in outputs.items():
        assert rows_out == reference, spec


# ------------------------------------------------------------------ selection


class _ProbeEngine(Radix2Engine):
    """Counts how often any backend routed a transform through it."""

    name = "probe"
    spec = "probe"
    calls = 0

    def forward_row(self, row, transformer):
        type(self).calls += 1
        return super().forward_row(row, transformer)

    def forward_array(self, block, tables):
        type(self).calls += 1
        return super().forward_array(block, tables)


def _ensure_probe_registered():
    try:
        register_engine("probe", lambda param: _ProbeEngine())
    except ValueError:
        pass  # already registered by an earlier test


def _forward_once(backend, n=32, bits=30):
    p = generate_ntt_primes(bits, 1, n)[0]
    (row,) = random_rows([p], n, seed=1)
    backend.forward_ntt_batch(backend.from_rows([row], [p]))


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_env_var_selects_engine(backend_name, monkeypatch):
    _ensure_probe_registered()
    monkeypatch.setenv(ENGINE_ENV_VAR, "probe")
    before = _ProbeEngine.calls
    _forward_once(make_backend(backend_name))
    assert _ProbeEngine.calls > before


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_explicit_engine_beats_env_var(backend_name, monkeypatch):
    _ensure_probe_registered()
    monkeypatch.setenv(ENGINE_ENV_VAR, "probe")
    before = _ProbeEngine.calls
    backend = make_backend(backend_name, engine="stockham")
    _forward_once(backend)
    assert _ProbeEngine.calls == before  # env never consulted
    assert backend.engine == "stockham"
    assert backend.engine_choices == {}  # and no auto-tuning either


def test_process_default_beats_env_var(monkeypatch):
    _ensure_probe_registered()
    monkeypatch.setenv(ENGINE_ENV_VAR, "probe")
    before = _ProbeEngine.calls
    try:
        set_default_engine("radix2")
        _forward_once(make_backend("numpy"))
    finally:
        set_default_engine(None)
    assert _ProbeEngine.calls == before


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_autotuner_caches_winner_per_shape(backend_name, monkeypatch):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    backend = make_backend(backend_name)
    n, bits = 64, 30
    p = generate_ntt_primes(bits, 1, n)[0]
    rows = random_rows([p, p], n, seed=2)
    tensor = backend.from_rows(rows, [p, p])
    backend.forward_ntt_batch(tensor)
    key = (n, p.bit_length(), 2)
    assert backend.engine_choices == {key: backend.engine_choices[key]}
    assert backend.engine_choices[key] in DEFAULT_AUTOTUNE_CANDIDATES
    timings = backend.engine_timings[key]
    assert set(timings) == set(DEFAULT_AUTOTUNE_CANDIDATES)
    assert min(timings, key=timings.__getitem__) == backend.engine_choices[key]
    # a second transform of the same shape does not re-tune
    choices_before = backend.engine_choices
    backend.inverse_ntt_batch(backend.forward_ntt_batch(tensor))
    assert backend.engine_choices == choices_before


def test_set_engine_validates_and_unpins():
    backend = NumpyBackend()
    with pytest.raises(KeyError):
        backend.set_engine("missing")
    backend.set_engine("four_step:16")
    assert backend.engine == "four_step:16"
    backend.set_engine(None)
    assert backend.engine is None


# ----------------------------------------------------------- HE end-to-end


def _params_30bit() -> HEParams:
    return HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)


@pytest.mark.parametrize("spec", ["stockham", "four_step", "high_radix:4"])
def test_full_chain_under_non_default_engine_zero_conversions(spec):
    """Acceptance: multiply → relinearize → mod_switch under a pinned
    non-default engine stays resident (zero conversions) and decrypts
    bit-identically to the default engine."""
    results = {}
    for engine in (None, spec):
        ctx = HeContext.create(_params_30bit(), backend="numpy", engine=engine)
        encryptor = ctx.encryptor()
        evaluator = ctx.evaluator()
        relin = ctx.relinearization_key()
        ct_a = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
        ct_b = encryptor.encrypt(ctx.encoder().encode([4, 5, 6]))
        before = ctx.backend.conversion_count
        switched = evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
        )
        assert ctx.backend.conversion_count == before, "chain left resident storage"
        results[engine] = [poly.to_coeff_lists() for poly in switched.polys]
        t = ctx.params.plaintext_modulus
        decoded = ctx.encoder().decode(ctx.decryptor().decrypt(switched))
        assert decoded[:3] == [(x * y) % t for x, y in zip([1, 2, 3], [4, 5, 6])]
    assert results[None] == results[spec]  # engines are bit-interchangeable


def test_context_engine_pin_does_not_leak_into_registry():
    shared = get_backend("numpy")
    ctx = HeContext.create(_params_30bit(), backend="numpy", engine="stockham")
    assert ctx.engine == "stockham"
    assert ctx.backend is not shared
    assert shared.engine is None


def test_context_pins_caller_owned_backend_in_place():
    backend = NumpyBackend()
    ctx = HeContext.create(_params_30bit(), backend=backend, engine="high_radix:8")
    assert ctx.backend is backend
    assert backend.engine == "high_radix:8"


def test_env_var_reaches_the_he_layer(monkeypatch):
    _ensure_probe_registered()
    monkeypatch.setenv(ENGINE_ENV_VAR, "probe")
    before = _ProbeEngine.calls
    ctx = HeContext.create(_params_30bit(), backend="scalar")
    encryptor = ctx.encryptor()
    ct = encryptor.encrypt(ctx.encoder().encode([7, 8]))
    ctx.evaluator().square(ct)
    assert _ProbeEngine.calls > before


def test_autotuner_pick_returns_registered_winner():
    tuner = NttAutoTuner(candidates=("radix2", "stockham"), repeats=1)
    backend = NumpyBackend()
    n = 64
    p = generate_ntt_primes(30, 1, n)[0]
    winner, timings = tuner.pick(lambda engine: backend._autotune_run(engine, n, p, 2))
    assert winner in ("radix2", "stockham")
    assert set(timings) == {"radix2", "stockham"}
    assert all(value > 0 for value in timings.values())


# ------------------------------------------------------------ bitrev helper


def test_bit_reverse_indices_doubling_matches_per_element():
    for n in (1, 2, 8, 64, 256):
        bits = log2_exact(n)
        assert bit_reverse_indices(n) == [bit_reverse(i, bits) for i in range(n)]


def test_bit_reverse_index_array_is_cached_and_consistent():
    array = bit_reverse_index_array(128)
    assert array is bit_reverse_index_array(128)  # cache hit
    assert list(array) == bit_reverse_indices(128)
    values = list(range(128))
    permuted = bit_reverse_permute(values)
    assert [values[i] for i in array] == permuted
