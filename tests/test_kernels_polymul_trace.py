"""Tests for the end-to-end polynomial-multiplication model and the profile report."""

from __future__ import annotations

import pytest

from repro.core.on_the_fly import OnTheFlyConfig
from repro.gpu.costmodel import GpuCostModel
from repro.gpu.trace import profile_report, summarize
from repro.kernels.polymul import (
    PolynomialMultiplyEstimate,
    dyadic_multiply_launch,
    polynomial_multiply_model,
)
from repro.kernels.smem import smem_ntt_model

MODEL = GpuCostModel()
N = 1 << 17
NP = 21


def test_dyadic_launch_traffic():
    launch = dyadic_multiply_launch(N, NP)
    assert launch.traffic.data_read == 2 * N * NP * 8
    assert launch.traffic.data_written == N * NP * 8
    assert launch.compute_slots > 0


def test_polynomial_multiply_breakdown():
    estimate = polynomial_multiply_model(N, NP, MODEL, 256, 512)
    assert isinstance(estimate, PolynomialMultiplyEstimate)
    assert estimate.total_time_us == pytest.approx(
        estimate.forward_a.time_us
        + estimate.forward_b.time_us
        + estimate.inverse.time_us
        + estimate.dyadic_time_us
    )
    assert estimate.ntt_time_us < estimate.total_time_us
    # The introduction's point: NTTs dominate the polynomial product.
    assert estimate.ntt_share > 0.5


def test_polynomial_multiply_benefits_from_ot():
    base = polynomial_multiply_model(N, NP, MODEL, 256, 512)
    with_ot = polynomial_multiply_model(
        N, NP, MODEL, 256, 512, ot=OnTheFlyConfig(base=1024, ot_stages=2)
    )
    assert with_ot.total_time_us < base.total_time_us
    assert with_ot.dyadic_time_us == pytest.approx(base.dyadic_time_us)


def test_summarize_and_profile_report():
    result = smem_ntt_model(N, NP, MODEL, 256, 512)
    totals = summarize(result.estimates)
    assert totals["time_us"] == pytest.approx(result.time_us)
    assert totals["dram_mb"] == pytest.approx(result.dram_mb)
    assert 0 < totals["bandwidth_utilization"] < 1
    assert 0 < totals["occupancy"] <= 1

    report = profile_report(result.estimates, title="smem profile")
    assert "smem profile" in report
    assert "Kernel-1" in report and "Kernel-2" in report
    assert "total" in report
    assert len(report.splitlines()) >= 7


def test_summarize_empty_sequence():
    totals = summarize([])
    assert totals == {
        "time_us": 0.0,
        "dram_mb": 0.0,
        "bandwidth_utilization": 0.0,
        "occupancy": 0.0,
    }
