"""Tests for the HE serving layer: tenants, batching, protocol, HTTP round trips."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.serialization import ciphertext_from_dict, ciphertext_to_dict
from repro.he import HeContext
from repro.he.params import HEParams, toy_params
from repro.service import (
    AsyncServiceClient,
    ServerThread,
    ServiceClient,
    ServiceError,
    TenantCache,
    build_request,
    execute_group,
    jsonable,
    params_hash,
)
from repro.service.protocol import trace_sizes, validate_request
from repro.telemetry.metrics import MetricsRegistry

SEED = 424242


def _session(params=None, seed=SEED, backend=None):
    context = HeContext.create(params or toy_params(), seed=seed, backend=backend)
    return context, context.encryptor(), context.encoder()


def _polys(ct):
    return [poly.to_coeff_lists() for poly in ct.polys]


# -- params hashing / tenant cache -----------------------------------------------------


def test_params_hash_is_stable_and_discriminating():
    params = toy_params()
    assert params_hash(params, 1) == params_hash(toy_params(), 1)
    assert params_hash(params, 1) != params_hash(params, 2)
    different = HEParams(
        n=params.n,
        plaintext_modulus=params.plaintext_modulus,
        prime_bits=params.prime_bits,
        prime_count=params.prime_count + 1,
    )
    assert params_hash(params, 1) != params_hash(different, 1)


def test_tenant_cache_returns_cached_context_for_same_hash():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        first = cache.get(toy_params(), 7)
        again = cache.get(toy_params(), 7)
        assert again is first
        assert again.context is first.context
        assert len(cache.tenants()) == 1
    finally:
        cache.close()


def test_tenant_cache_isolates_different_params_and_seeds():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        a = cache.get(toy_params(), 7)
        b = cache.get(toy_params(), 8)
        c = cache.get(
            HEParams(n=64, plaintext_modulus=257, prime_bits=40, prime_count=2), 7
        )
        assert len({a.key, b.key, c.key}) == 3
        assert a.context is not b.context
        # Dedicated backend instances per tenant — never a shared singleton.
        assert a.context.backend is not b.context.backend
        assert a.context.backend is not c.context.backend
    finally:
        cache.close()


def test_tenant_metrics_do_not_bleed_but_aggregate_into_root():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        busy = cache.get(toy_params(), 7)
        idle = cache.get(toy_params(), 8)
        enc = busy.context.encryptor()
        encoder = busy.context.encoder()
        ct = enc.encrypt(encoder.encode([1, 2, 3]))
        execute_group(busy, ("multiply",), [[ct, ct]])

        assert busy.metrics()["plan.compiled"] == 1
        assert idle.metrics()["plan.compiled"] == 0  # no bleed across tenants
        assert root.value("plan.compiled") == 1  # but the root aggregates
    finally:
        cache.close()


# -- protocol validation ---------------------------------------------------------------


def test_validate_request_rejections():
    params = toy_params()
    context, enc, encoder = _session(params)
    ct = ciphertext_to_dict(enc.encrypt(encoder.encode([1])))
    good = build_request(params, ["multiply"], [ct, ct], seed=SEED)
    validate_request(good)

    cases = [
        (dict(good, format_version=99), "format_version"),
        (dict(good, params="nope"), "params"),
        (dict(good, params=dict(good["params"], extra=1)), "unknown params"),
        (dict(good, seed="x"), "seed"),
        (dict(good, ops=[]), "ops"),
        (dict(good, ops=["fly"]), "unknown first op"),
        (dict(good, ops=["multiply", "multiply"]), "unknown chain op"),
        (dict(good, ciphertexts=[ct]), "takes 2"),
        (dict(good, ciphertexts=[ct, {"kind": "x"}]), "not a serialised"),
    ]
    for payload, fragment in cases:
        with pytest.raises(ServiceError) as err:
            validate_request(payload)
        assert err.value.status == 400
        assert fragment in err.value.message

    # Ciphertexts under different parameters than the request's.
    other = HEParams(n=64, plaintext_modulus=257, prime_bits=40, prime_count=2)
    mismatch = build_request(other, ["multiply"], [ct, ct], seed=SEED)
    with pytest.raises(ServiceError, match="different parameters"):
        validate_request(mismatch)


def test_trace_sizes_models_every_chain():
    assert trace_sizes(("multiply",), [2, 2]) == [3]
    assert trace_sizes(("multiply", "relinearize", "mod_switch"), [2, 2]) == [3, 2, 2]
    assert trace_sizes(("square", "relinearize"), [2]) == [3, 2]
    assert trace_sizes(("add",), [2, 3]) == [3]
    assert trace_sizes(("negate", "negate"), [2]) == [2, 2]
    with pytest.raises(ValueError, match="relinearisation"):
        trace_sizes(("square", "relinearize"), [3])


def test_jsonable_flattens_tuple_keyed_gauges():
    snapshot = {"ntt.engine_choices": {(256, 30, 4): "high_radix"}, "n": 1}
    encoded = json.dumps(jsonable(snapshot))
    assert json.loads(encoded) == {
        "ntt.engine_choices": {"256,30,4": "high_radix"},
        "n": 1,
    }


# -- group execution == per-request execution ------------------------------------------

CHAINS = [
    ("multiply",),
    ("multiply", "relinearize"),
    ("multiply", "relinearize", "mod_switch"),
    ("multiply", "relinearize", "mod_switch", "negate"),
    ("square", "relinearize"),
    ("add",),
    ("sub", "mod_switch"),
    ("negate",),
]


def _reference(context, ops, args):
    ev = context.evaluator()
    first = ops[0]
    if first in ("multiply", "add", "sub"):
        result = getattr(ev, first)(args[0], args[1])
    elif first == "square":
        result = ev.square(args[0])
    else:
        result = ev.negate(args[0])
    for op in ops[1:]:
        if op == "relinearize":
            result = ev.relinearize(result, context.relinearization_key())
        elif op == "mod_switch":
            result = ev.mod_switch_to_next(result)
        else:
            result = ev.negate(result)
    return result


@pytest.mark.parametrize("ops", CHAINS, ids=["+".join(c) for c in CHAINS])
def test_execute_group_matches_per_request_evaluator(ops):
    from repro.service.protocol import FIRST_OPS

    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        tenant = cache.get(toy_params(), 5)
        enc = tenant.context.encryptor()
        encoder = tenant.context.encoder()
        arity = FIRST_OPS[ops[0]]
        requests = [
            [
                enc.encrypt(encoder.encode([r + 1, i + 2, 3]))
                for i in range(arity)
            ]
            for r in range(3)
        ]
        batched = execute_group(tenant, ops, requests)
        assert len(batched) == 3
        for request, got in zip(requests, batched):
            want = _reference(tenant.context, ops, request)
            assert got.level == want.level
            assert _polys(got) == _polys(want)
    finally:
        cache.close()


def test_execute_group_compiles_once_per_shape():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        tenant = cache.get(toy_params(), 5)
        enc = tenant.context.encryptor()
        encoder = tenant.context.encoder()

        def fresh_requests():
            return [
                [enc.encrypt(encoder.encode([r, 1])) for _ in range(2)]
                for r in range(4)
            ]

        execute_group(tenant, ("multiply", "relinearize"), fresh_requests())
        execute_group(tenant, ("multiply", "relinearize"), fresh_requests())
        snapshot = tenant.metrics()
        assert snapshot["plan.compiled"] == 1
        assert snapshot["plan.cache_hits"] == 1
    finally:
        cache.close()


def test_execute_group_rejects_heterogeneous_batches():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        tenant = cache.get(toy_params(), 5)
        enc = tenant.context.encryptor()
        encoder = tenant.context.encoder()
        ev = tenant.context.evaluator()
        plain = enc.encrypt(encoder.encode([1]))
        widened = ev.multiply(plain, plain)  # size 3
        with pytest.raises(ValueError, match="different shapes"):
            execute_group(tenant, ("negate",), [[plain], [widened]])
    finally:
        cache.close()


# -- HTTP round trips ------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["scalar", "numpy", "parallel"])
def test_http_compute_is_bit_for_bit_with_local_execution(backend):
    params = toy_params()
    local, enc, encoder = _session(params)
    ct_a = enc.encrypt(encoder.encode([1, 2, 3, 4]))
    ct_b = enc.encrypt(encoder.encode([5, 6, 7, 8]))
    ops = ["multiply", "relinearize", "mod_switch"]

    with ServerThread(backend=backend, shards=2, batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)
        assert client.health()["status"] == "ok"
        got = client.compute(params, ops, [ct_a, ct_b], seed=SEED)

    want = _reference(local, tuple(ops), [ct_a, ct_b])
    assert got.level == want.level
    assert _polys(got) == _polys(want)
    decoded = local.encoder().decode(local.decryptor().decrypt(got))
    assert decoded[:4] == [
        (x * y) % params.plaintext_modulus
        for x, y in zip([1, 2, 3, 4], [5, 6, 7, 8])
    ]


def test_http_concurrent_requests_coalesce_into_fewer_plans():
    params = toy_params()
    local, enc, encoder = _session(params)
    pairs = [
        (
            enc.encrypt(encoder.encode([r + 1, 2])),
            enc.encrypt(encoder.encode([3, r + 4])),
        )
        for r in range(6)
    ]
    ops = ["multiply", "relinearize", "mod_switch"]

    # A generous window so all six requests (issued concurrently from one
    # event loop) reliably land inside one batch even on slow CI runners.
    with ServerThread(batch_window=0.25, max_batch=8) as server:
        client = AsyncServiceClient("127.0.0.1", server.port)

        async def run_all():
            responses = await asyncio.gather(
                *[
                    client.compute_raw(params, ops, [a, b], seed=SEED)
                    for a, b in pairs
                ]
            )
            return responses, await client.metrics()

        responses, metrics = asyncio.run(run_all())

    for (a, b), response in zip(pairs, responses):
        got = ciphertext_from_dict(response["result"])
        want = _reference(local, tuple(ops), [a, b])
        assert _polys(got) == _polys(want)
    assert any(response["batch_size"] > 1 for response in responses)

    server_metrics = metrics["server"]
    assert server_metrics["service.requests"] == 6
    assert server_metrics["service.batched_requests"] == 6
    # The throughput claim, structurally: fewer batches than requests, and
    # fewer plan executions than requests on the tenant doing the work.
    assert server_metrics["service.batches"] < server_metrics["service.requests"]
    [tenant_metrics] = metrics["tenants"].values()
    plan_executions = tenant_metrics["plan.compiled"] + tenant_metrics["plan.cache_hits"]
    assert plan_executions < 6
    json.dumps(metrics)  # the whole surface stays JSON-safe


def test_http_multi_tenant_metrics_isolation():
    params = toy_params()
    local_a, enc_a, encoder_a = _session(params, seed=1)
    local_b, enc_b, encoder_b = _session(params, seed=2)
    ct_a = enc_a.encrypt(encoder_a.encode([1, 2]))
    ct_b = enc_b.encrypt(encoder_b.encode([3, 4]))

    with ServerThread(batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)
        client.compute(params, ["multiply"], [ct_a, ct_a], seed=1)
        client.compute(params, ["multiply"], [ct_b, ct_b], seed=2)
        client.compute(params, ["multiply"], [ct_b, ct_b], seed=2)
        metrics = client.metrics()

    key_a, key_b = params_hash(params, 1), params_hash(params, 2)
    tenants = metrics["tenants"]
    assert set(tenants) == {key_a, key_b}
    assert tenants[key_a]["plan.compiled"] == 1
    assert tenants[key_a]["plan.cache_hits"] == 0
    assert tenants[key_b]["plan.compiled"] == 1
    assert tenants[key_b]["plan.cache_hits"] == 1
    assert metrics["server"]["service.requests"] == 3
    assert metrics["server"]["service.tenants"] == 2


def test_http_error_paths():
    with ServerThread(batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)

        with pytest.raises(ServiceError) as err:
            client._request("POST", "/v1/compute", {"format_version": 99})
        assert err.value.status == 400

        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404

        # Level mismatch passes validation but is rejected by the HE layer
        # as a clean 400, not a connection-killing crash.
        params = toy_params()
        context, enc, encoder = _session(params)
        ct = enc.encrypt(encoder.encode([1]))
        switched = context.evaluator().mod_switch_to_next(
            _reference(context, ("multiply", "relinearize"), [ct, ct])
        )
        with pytest.raises(ServiceError) as err:
            client.compute(params, ["add"], [ct, switched], seed=SEED)
        assert err.value.status == 400

        metrics = client.metrics()
        assert metrics["server"]["service.errors"] == 3
