"""Tests for the HE serving layer: tenants, batching, protocol, HTTP round trips."""

from __future__ import annotations

import asyncio
import io
import json
import os

import pytest

from repro.core.serialization import ciphertext_from_dict, ciphertext_to_dict
from repro.he import HeContext
from repro.he.params import HEParams, toy_params
from repro.service import (
    AsyncServiceClient,
    ServerThread,
    ServiceClient,
    ServiceError,
    TenantCache,
    build_request,
    execute_group,
    jsonable,
    params_hash,
)
from repro.service.protocol import trace_sizes, validate_request
from repro.telemetry.metrics import MetricsRegistry

SEED = 424242


def _session(params=None, seed=SEED, backend=None):
    context = HeContext.create(params or toy_params(), seed=seed, backend=backend)
    return context, context.encryptor(), context.encoder()


def _polys(ct):
    return [poly.to_coeff_lists() for poly in ct.polys]


# -- params hashing / tenant cache -----------------------------------------------------


def test_params_hash_is_stable_and_discriminating():
    params = toy_params()
    assert params_hash(params, 1) == params_hash(toy_params(), 1)
    assert params_hash(params, 1) != params_hash(params, 2)
    different = HEParams(
        n=params.n,
        plaintext_modulus=params.plaintext_modulus,
        prime_bits=params.prime_bits,
        prime_count=params.prime_count + 1,
    )
    assert params_hash(params, 1) != params_hash(different, 1)


def test_tenant_cache_returns_cached_context_for_same_hash():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        first = cache.get(toy_params(), 7)
        again = cache.get(toy_params(), 7)
        assert again is first
        assert again.context is first.context
        assert len(cache.tenants()) == 1
    finally:
        cache.close()


def test_tenant_cache_isolates_different_params_and_seeds():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        a = cache.get(toy_params(), 7)
        b = cache.get(toy_params(), 8)
        c = cache.get(
            HEParams(n=64, plaintext_modulus=257, prime_bits=40, prime_count=2), 7
        )
        assert len({a.key, b.key, c.key}) == 3
        assert a.context is not b.context
        # Dedicated backend instances per tenant — never a shared singleton.
        assert a.context.backend is not b.context.backend
        assert a.context.backend is not c.context.backend
    finally:
        cache.close()


def test_tenant_metrics_do_not_bleed_but_aggregate_into_root():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        busy = cache.get(toy_params(), 7)
        idle = cache.get(toy_params(), 8)
        enc = busy.context.encryptor()
        encoder = busy.context.encoder()
        ct = enc.encrypt(encoder.encode([1, 2, 3]))
        execute_group(busy, ("multiply",), [[ct, ct]])

        assert busy.metrics()["plan.compiled"] == 1
        assert idle.metrics()["plan.compiled"] == 0  # no bleed across tenants
        assert root.value("plan.compiled") == 1  # but the root aggregates
    finally:
        cache.close()


# -- protocol validation ---------------------------------------------------------------


def test_validate_request_rejections():
    params = toy_params()
    context, enc, encoder = _session(params)
    ct = ciphertext_to_dict(enc.encrypt(encoder.encode([1])))
    good = build_request(params, ["multiply"], [ct, ct], seed=SEED)
    validate_request(good)

    cases = [
        (dict(good, format_version=99), "format_version"),
        (dict(good, params="nope"), "params"),
        (dict(good, params=dict(good["params"], extra=1)), "unknown params"),
        (dict(good, seed="x"), "seed"),
        (dict(good, ops=[]), "ops"),
        (dict(good, ops=["fly"]), "unknown first op"),
        (dict(good, ops=["multiply", "multiply"]), "unknown chain op"),
        (dict(good, ciphertexts=[ct]), "takes 2"),
        (dict(good, ciphertexts=[ct, {"kind": "x"}]), "not a serialised"),
    ]
    for payload, fragment in cases:
        with pytest.raises(ServiceError) as err:
            validate_request(payload)
        assert err.value.status == 400
        assert fragment in err.value.message

    # Ciphertexts under different parameters than the request's.
    other = HEParams(n=64, plaintext_modulus=257, prime_bits=40, prime_count=2)
    mismatch = build_request(other, ["multiply"], [ct, ct], seed=SEED)
    with pytest.raises(ServiceError, match="different parameters"):
        validate_request(mismatch)


def test_trace_sizes_models_every_chain():
    assert trace_sizes(("multiply",), [2, 2]) == [3]
    assert trace_sizes(("multiply", "relinearize", "mod_switch"), [2, 2]) == [3, 2, 2]
    assert trace_sizes(("square", "relinearize"), [2]) == [3, 2]
    assert trace_sizes(("add",), [2, 3]) == [3]
    assert trace_sizes(("negate", "negate"), [2]) == [2, 2]
    with pytest.raises(ValueError, match="relinearisation"):
        trace_sizes(("square", "relinearize"), [3])


def test_jsonable_flattens_tuple_keyed_gauges():
    snapshot = {"ntt.engine_choices": {(256, 30, 4): "high_radix"}, "n": 1}
    encoded = json.dumps(jsonable(snapshot))
    assert json.loads(encoded) == {
        "ntt.engine_choices": {"256,30,4": "high_radix"},
        "n": 1,
    }


# -- group execution == per-request execution ------------------------------------------

CHAINS = [
    ("multiply",),
    ("multiply", "relinearize"),
    ("multiply", "relinearize", "mod_switch"),
    ("multiply", "relinearize", "mod_switch", "negate"),
    ("square", "relinearize"),
    ("add",),
    ("sub", "mod_switch"),
    ("negate",),
]


def _reference(context, ops, args):
    ev = context.evaluator()
    first = ops[0]
    if first in ("multiply", "add", "sub"):
        result = getattr(ev, first)(args[0], args[1])
    elif first == "square":
        result = ev.square(args[0])
    else:
        result = ev.negate(args[0])
    for op in ops[1:]:
        if op == "relinearize":
            result = ev.relinearize(result, context.relinearization_key())
        elif op == "mod_switch":
            result = ev.mod_switch_to_next(result)
        else:
            result = ev.negate(result)
    return result


@pytest.mark.parametrize("ops", CHAINS, ids=["+".join(c) for c in CHAINS])
def test_execute_group_matches_per_request_evaluator(ops):
    from repro.service.protocol import FIRST_OPS

    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        tenant = cache.get(toy_params(), 5)
        enc = tenant.context.encryptor()
        encoder = tenant.context.encoder()
        arity = FIRST_OPS[ops[0]]
        requests = [
            [
                enc.encrypt(encoder.encode([r + 1, i + 2, 3]))
                for i in range(arity)
            ]
            for r in range(3)
        ]
        batched = execute_group(tenant, ops, requests)
        assert len(batched) == 3
        for request, got in zip(requests, batched):
            want = _reference(tenant.context, ops, request)
            assert got.level == want.level
            assert _polys(got) == _polys(want)
    finally:
        cache.close()


def test_execute_group_compiles_once_per_shape():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        tenant = cache.get(toy_params(), 5)
        enc = tenant.context.encryptor()
        encoder = tenant.context.encoder()

        def fresh_requests():
            return [
                [enc.encrypt(encoder.encode([r, 1])) for _ in range(2)]
                for r in range(4)
            ]

        execute_group(tenant, ("multiply", "relinearize"), fresh_requests())
        execute_group(tenant, ("multiply", "relinearize"), fresh_requests())
        snapshot = tenant.metrics()
        assert snapshot["plan.compiled"] == 1
        assert snapshot["plan.cache_hits"] == 1
    finally:
        cache.close()


def test_execute_group_rejects_heterogeneous_batches():
    root = MetricsRegistry()
    cache = TenantCache(root)
    try:
        tenant = cache.get(toy_params(), 5)
        enc = tenant.context.encryptor()
        encoder = tenant.context.encoder()
        ev = tenant.context.evaluator()
        plain = enc.encrypt(encoder.encode([1]))
        widened = ev.multiply(plain, plain)  # size 3
        with pytest.raises(ValueError, match="different shapes"):
            execute_group(tenant, ("negate",), [[plain], [widened]])
    finally:
        cache.close()


# -- HTTP round trips ------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["scalar", "numpy", "parallel"])
def test_http_compute_is_bit_for_bit_with_local_execution(backend):
    params = toy_params()
    local, enc, encoder = _session(params)
    ct_a = enc.encrypt(encoder.encode([1, 2, 3, 4]))
    ct_b = enc.encrypt(encoder.encode([5, 6, 7, 8]))
    ops = ["multiply", "relinearize", "mod_switch"]

    with ServerThread(backend=backend, shards=2, batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)
        assert client.health()["status"] == "ok"
        got = client.compute(params, ops, [ct_a, ct_b], seed=SEED)

    want = _reference(local, tuple(ops), [ct_a, ct_b])
    assert got.level == want.level
    assert _polys(got) == _polys(want)
    decoded = local.encoder().decode(local.decryptor().decrypt(got))
    assert decoded[:4] == [
        (x * y) % params.plaintext_modulus
        for x, y in zip([1, 2, 3, 4], [5, 6, 7, 8])
    ]


def test_http_concurrent_requests_coalesce_into_fewer_plans():
    params = toy_params()
    local, enc, encoder = _session(params)
    pairs = [
        (
            enc.encrypt(encoder.encode([r + 1, 2])),
            enc.encrypt(encoder.encode([3, r + 4])),
        )
        for r in range(6)
    ]
    ops = ["multiply", "relinearize", "mod_switch"]

    # A generous window so all six requests (issued concurrently from one
    # event loop) reliably land inside one batch even on slow CI runners.
    with ServerThread(batch_window=0.25, max_batch=8) as server:
        client = AsyncServiceClient("127.0.0.1", server.port)

        async def run_all():
            responses = await asyncio.gather(
                *[
                    client.compute_raw(params, ops, [a, b], seed=SEED)
                    for a, b in pairs
                ]
            )
            return responses, await client.metrics()

        responses, metrics = asyncio.run(run_all())

    for (a, b), response in zip(pairs, responses):
        got = ciphertext_from_dict(response["result"])
        want = _reference(local, tuple(ops), [a, b])
        assert _polys(got) == _polys(want)
    assert any(response["batch_size"] > 1 for response in responses)

    server_metrics = metrics["server"]
    assert server_metrics["service.requests"] == 6
    assert server_metrics["service.batched_requests"] == 6
    # The throughput claim, structurally: fewer batches than requests, and
    # fewer plan executions than requests on the tenant doing the work.
    assert server_metrics["service.batches"] < server_metrics["service.requests"]
    [tenant_metrics] = metrics["tenants"].values()
    plan_executions = tenant_metrics["plan.compiled"] + tenant_metrics["plan.cache_hits"]
    assert plan_executions < 6
    json.dumps(metrics)  # the whole surface stays JSON-safe


def test_http_multi_tenant_metrics_isolation():
    params = toy_params()
    local_a, enc_a, encoder_a = _session(params, seed=1)
    local_b, enc_b, encoder_b = _session(params, seed=2)
    ct_a = enc_a.encrypt(encoder_a.encode([1, 2]))
    ct_b = enc_b.encrypt(encoder_b.encode([3, 4]))

    with ServerThread(batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)
        client.compute(params, ["multiply"], [ct_a, ct_a], seed=1)
        client.compute(params, ["multiply"], [ct_b, ct_b], seed=2)
        client.compute(params, ["multiply"], [ct_b, ct_b], seed=2)
        metrics = client.metrics()

    key_a, key_b = params_hash(params, 1), params_hash(params, 2)
    tenants = metrics["tenants"]
    assert set(tenants) == {key_a, key_b}
    assert tenants[key_a]["plan.compiled"] == 1
    assert tenants[key_a]["plan.cache_hits"] == 0
    assert tenants[key_b]["plan.compiled"] == 1
    assert tenants[key_b]["plan.cache_hits"] == 1
    assert metrics["server"]["service.requests"] == 3
    assert metrics["server"]["service.tenants"] == 2


def test_http_error_paths():
    with ServerThread(batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)

        with pytest.raises(ServiceError) as err:
            client._request("POST", "/v1/compute", {"format_version": 99})
        assert err.value.status == 400

        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404

        # Level mismatch passes validation but is rejected by the HE layer
        # as a clean 400, not a connection-killing crash.
        params = toy_params()
        context, enc, encoder = _session(params)
        ct = enc.encrypt(encoder.encode([1]))
        switched = context.evaluator().mod_switch_to_next(
            _reference(context, ("multiply", "relinearize"), [ct, ct])
        )
        with pytest.raises(ServiceError) as err:
            client.compute(params, ["add"], [ct, switched], seed=SEED)
        assert err.value.status == 400

        metrics = client.metrics()
        assert metrics["server"]["service.errors"] == 3
        # All three failures were client mistakes: the 4xx/5xx split
        # attributes every one of them, and nothing to the server class.
        assert metrics["server"]["service.errors.4xx"] == 3
        assert metrics["server"]["service.errors.5xx"] == 0


# -- request-scoped observability ------------------------------------------------------


def test_validate_request_request_id_rules():
    from repro.service.protocol import new_request_id

    params = toy_params()
    context, enc, encoder = _session(params)
    ct = ciphertext_to_dict(enc.encrypt(encoder.encode([1])))
    base = build_request(params, ["multiply"], [ct, ct], seed=SEED)

    # Omitted is fine (the server mints one); a well-formed id round-trips.
    assert validate_request(dict(base))[4] is None
    good = dict(base, request_id="load-gen_01.retry:2")
    assert validate_request(good)[4] == "load-gen_01.retry:2"
    minted = new_request_id()
    assert validate_request(dict(base, request_id=minted))[4] == minted

    for bad in (42, "", "x" * 129, "has spaces", "semi;colon", "new\nline"):
        with pytest.raises(ServiceError) as err:
            validate_request(dict(base, request_id=bad))
        assert err.value.status == 400
        assert "request_id" in err.value.message


def test_http_request_id_round_trip_and_error_correlation():
    params = toy_params()
    context, enc, encoder = _session(params)
    ct = enc.encrypt(encoder.encode([1, 2]))
    ct_payload = ciphertext_to_dict(ct)

    with ServerThread(batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)

        # The caller's id comes back verbatim in the response envelope.
        response = client.compute_raw(
            params, ["multiply"], [ct, ct], seed=SEED, request_id="caller-pick-1"
        )
        assert response["request_id"] == "caller-pick-1"

        # Without one, the client mints an id the server echoes.
        response = client.compute_raw(params, ["multiply"], [ct, ct], seed=SEED)
        assert response["request_id"]

        # A malformed id is a 400 whose body still carries a request id,
        # so even the rejection correlates with its access-log line.
        bad = build_request(params, ["multiply"], [ct_payload, ct_payload], seed=SEED)
        bad["request_id"] = "has spaces"
        status, body = client._raw_request("POST", "/v1/compute", bad)
        assert status == 400
        payload = json.loads(body)
        assert "request_id" in payload["error"]
        assert payload["request_id"]

        metrics = client.metrics()
        assert metrics["server"]["service.errors.4xx"] == 1
        assert metrics["server"]["service.errors.5xx"] == 0
        # Per-stage latency summaries surface per tenant, with percentiles.
        [tenant_metrics] = metrics["tenants"].values()
        for stage in (
            "service.latency.queue_seconds",
            "service.latency.batch_wait_seconds",
            "service.latency.execute_seconds",
            "service.latency.serialize_seconds",
            "service.latency.total_seconds",
        ):
            summary = tenant_metrics[stage]
            assert summary["count"] == 2, stage
            assert summary["min"] <= summary["p50"] <= summary["p99"], stage
        # Batch occupancy is fleet-wide accounting: it lives on the root.
        assert metrics["server"]["service.batch_size"]["count"] >= 1


def test_http_healthz_reports_runtime_facts():
    from repro.service.protocol import PROTOCOL_VERSION

    params = toy_params()
    context, enc, encoder = _session(params)
    ct = enc.encrypt(encoder.encode([1]))

    with ServerThread(backend="numpy", shards=2, batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)
        health = client.health()
        assert health["status"] == "ok"
        assert health["format_version"] == PROTOCOL_VERSION
        assert health["backend"] == "numpy"
        assert health["shards"] == 2
        assert health["tenants"] == 0
        assert health["uptime_seconds"] >= 0
        assert health["tracing"] is False
        assert isinstance(health["profiling"], bool)
        client.compute(params, ["multiply"], [ct, ct], seed=SEED)
        assert client.health()["tenants"] == 1


def test_http_metrics_prometheus_exposition():
    params = toy_params()
    context, enc, encoder = _session(params)
    ct = enc.encrypt(encoder.encode([1, 2]))

    with ServerThread(batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)
        client.compute(params, ["multiply"], [ct, ct], seed=SEED)
        text = client.metrics_text()
        # The JSON content type stays the default for plain GETs.
        status, body = client._raw_request("GET", "/v1/metrics")
        assert status == 200
        assert json.loads(body)["server"]["service.requests"] == 1

    lines = text.splitlines()
    assert "# TYPE repro_service_requests_total counter" in lines
    assert "repro_service_requests_total 1" in lines
    # Latency histograms export as summaries with percentile labels, both
    # fleet-wide (unlabelled) and per tenant.
    assert "# TYPE repro_service_latency_total_seconds summary" in lines
    assert 'repro_service_latency_total_seconds{quantile="0.5"} ' in text
    assert 'repro_service_latency_total_seconds{quantile="0.99",tenant="' in text
    assert "repro_service_latency_total_seconds_count 1" in lines
    assert "repro_service_batch_size_sum" in text


def test_http_dashboard_serves_selfcontained_html():
    with ServerThread(batch_window=0.001) as server:
        client = ServiceClient("127.0.0.1", server.port)
        status, body = client._raw_request("GET", "/v1/dashboard")
    assert status == 200
    html = body.decode("utf-8")
    assert "<html" in html
    assert "/v1/metrics" in html  # polls the JSON metrics endpoint
    assert "50.04" in html  # the paper's NTT share, next to the live one


def test_http_trace_endpoint_404_and_409_paths():
    from repro.telemetry import TRACER

    try:
        with ServerThread(batch_window=0.001) as server:
            client = ServiceClient("127.0.0.1", server.port)
            # Tracing off: the endpoint says so rather than a bare miss.
            with pytest.raises(ServiceError) as err:
                client.trace("anything")
            assert err.value.status == 409
            assert "tracing" in err.value.message
            # Tracing on, unknown id: a 404.
            TRACER.start()
            with pytest.raises(ServiceError) as err:
                client.trace("never-served")
            assert err.value.status == 404
    finally:
        TRACER.stop()
        TRACER.clear()


def test_http_access_log_correlates_every_path(tmp_path):
    from repro.telemetry import JsonLinesLog

    params = toy_params()
    context, enc, encoder = _session(params)
    ct = enc.encrypt(encoder.encode([1]))
    stream = io.StringIO()

    with ServerThread(
        batch_window=0.001, access_log=JsonLinesLog(stream)
    ) as server:
        client = ServiceClient("127.0.0.1", server.port)
        client.compute_raw(
            params, ["multiply"], [ct, ct], seed=SEED, request_id="logged-1"
        )
        with pytest.raises(ServiceError):
            client._request("GET", "/v1/nope")

    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert all(r["event"] == "request" for r in records)
    [compute] = [r for r in records if r["path"] == "/v1/compute"]
    assert compute["status"] == 200
    assert compute["request_id"] == "logged-1"
    assert compute["duration_ms"] >= 0
    assert compute["batch_size"] >= 1
    assert compute["tenant"]
    [miss] = [r for r in records if r["path"] == "/v1/nope"]
    assert miss["status"] == 404
    assert miss["error"]
    assert miss["request_id"]  # server-minted: every line correlates


def _walk_tree(node, parent=None):
    yield node, parent
    for child in node["children"]:
        yield from _walk_tree(child, node)


def test_http_trace_reassembles_cross_process_spans(monkeypatch):
    """The tentpole acceptance criterion: one HTTP request on the parallel
    backend yields, from ``/v1/trace/<id>``, a single tree rooted at
    ``service.request`` that includes worker-recorded pool spans (worker
    PIDs preserved) under the dispatch that submitted them."""
    import repro.service.tenants as tenants_mod
    from repro.backends.parallel import ParallelBackend
    from repro.telemetry import TRACER

    # Tenant backends come from build_backend(); force pool dispatch at toy
    # sizes by injecting thresholds the same way the direct-pool test does.
    monkeypatch.setattr(
        tenants_mod,
        "build_backend",
        lambda name: ParallelBackend(
            shards=2, transform_threshold=1, pointwise_threshold=1
        ),
    )

    params = toy_params()
    context, enc, encoder = _session(params)
    ct_a = enc.encrypt(encoder.encode([1, 2, 3, 4]))
    ct_b = enc.encrypt(encoder.encode([5, 6, 7, 8]))
    ops = ["multiply", "relinearize", "mod_switch"]

    try:
        with ServerThread(backend="parallel", batch_window=0.001) as server:
            client = ServiceClient("127.0.0.1", server.port)
            # Warm run first: pool spin-up and plan compile off the trace.
            client.compute(params, ops, [ct_a, ct_b], seed=SEED)
            TRACER.start()
            response = client.compute_raw(
                params, ops, [ct_a, ct_b], seed=SEED, request_id="pool-trace-1"
            )
            assert response["request_id"] == "pool-trace-1"
            trace = client.trace("pool-trace-1")
        TRACER.stop()

        assert trace["request_id"] == "pool-trace-1"
        tree = trace["trace"]
        assert tree["name"] == "service.request"
        assert tree["attrs"]["request_id"] == "pool-trace-1"
        assert tree["attrs"]["ops"] == "+".join(ops)

        nodes = list(_walk_tree(tree))
        names = {node["name"] for node, _ in nodes}
        for expected in (
            "service.prepare",
            "service.batch",
            "plan.execute",
            "service.serialize",
        ):
            assert expected in names, expected

        # Worker spans crossed the process boundary: recorded under a
        # worker PID, parented under the dispatch inside a plan stage.
        main_pid = os.getpid()
        tasks = [
            (node, parent) for node, parent in nodes if node["name"] == "pool.task"
        ]
        assert tasks, "no worker spans in the served trace"
        for task, dispatch in tasks:
            assert task["pid"] != main_pid
            assert dispatch["name"] == "pool.dispatch"
        dispatch_parents = {
            parent["name"]
            for node, parent in nodes
            if node["name"] == "pool.dispatch"
        }
        assert dispatch_parents == {"plan.stage"}
    finally:
        TRACER.stop()
        TRACER.clear()


def test_http_coalesced_batch_trace_names_every_rider():
    """When k requests fuse into one plan, each rider's trace contains the
    shared ``service.batch`` subtree, attributed to all k request ids —
    grafted (and marked shared) for every rider but the one whose root
    parents it."""
    from repro.telemetry import TRACER

    params = toy_params()
    local, enc, encoder = _session(params)
    pairs = [
        (
            enc.encrypt(encoder.encode([r + 1, 2])),
            enc.encrypt(encoder.encode([3, r + 4])),
        )
        for r in range(3)
    ]
    ops = ["multiply", "relinearize"]
    rids = ["rider-a", "rider-b", "rider-c"]

    try:
        TRACER.start()
        with ServerThread(batch_window=0.25, max_batch=8) as server:
            client = AsyncServiceClient("127.0.0.1", server.port)

            async def run_all():
                responses = await asyncio.gather(
                    *[
                        client.compute_raw(
                            params, ops, [a, b], seed=SEED, request_id=rid
                        )
                        for (a, b), rid in zip(pairs, rids)
                    ]
                )
                traces = [await client.trace(rid) for rid in rids]
                return responses, traces

            responses, traces = asyncio.run(run_all())
        TRACER.stop()

        assert all(r["request_id"] == rid for r, rid in zip(responses, rids))
        batches = {}
        for rid, trace in zip(rids, traces):
            tree = trace["trace"]
            assert tree["attrs"]["request_id"] == rid
            batch_nodes = [
                node
                for node, _ in _walk_tree(tree)
                if node["name"] == "service.batch"
            ]
            assert batch_nodes, "rider %s has no batch in its trace" % rid
            [batch] = batch_nodes
            riders = tuple(batch["attrs"]["request_ids"])
            assert rid in riders
            # The fused execution itself is in every rider's tree.
            subtree_names = {n["name"] for n, _ in _walk_tree(batch)}
            assert "plan.execute" in subtree_names
            batches.setdefault(riders, []).append(bool(batch.get("shared")))

        # Issued concurrently inside a generous window: coalescing happened.
        assert any(len(riders) > 1 for riders in batches)
        for riders, shared_flags in batches.items():
            if len(shared_flags) > 1:
                # Exactly one rider owns the subtree; the rest see a graft.
                assert sorted(shared_flags) == [False] + [True] * (
                    len(shared_flags) - 1
                )
    finally:
        TRACER.stop()
        TRACER.clear()
