"""Tests for fused evaluator execution and the fluent pipeline API.

Pins the user-facing half of the op-graph redesign:

* every evaluator operation is bit-for-bit identical between ``fused`` and
  ``eager`` modes, on scalar, numpy and pool-forced parallel backends;
* a whole ``multiply → relinearize → mod_switch`` expression compiles into
  **one** plan that executes in ≤ 3 pool dispatches with zero boundary
  conversions on the forced-pool parallel backend;
* plans compile once per shape (`plan_cache_hits`), shared sub-expressions
  lower once, and the expression API validates pipelines/levels the same way
  the eager evaluator does;
* ``RnsPolynomial.__mul__`` products match between modes.
"""

from __future__ import annotations

import random

import pytest

from repro.backends import set_default_execution_mode
from repro.backends.parallel import ParallelBackend
from repro.he import HeContext, HEParams
from repro.rns.poly import RnsPolynomial

PARAMS = HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)


def forced_parallel():
    return ParallelBackend(shards=2, transform_threshold=1, pointwise_threshold=1)


def make_context(backend):
    return HeContext.create(PARAMS, backend=backend, seed=7)


def coeffs(ciphertext):
    return [poly.to_coeff_lists() for poly in ciphertext.polys]


@pytest.fixture(params=["scalar", "numpy", "parallel"])
def context(request):
    backend = forced_parallel() if request.param == "parallel" else request.param
    ctx = make_context(backend)
    yield ctx
    if isinstance(ctx.backend, ParallelBackend):
        ctx.backend.close()


# ------------------------------------------------- fused == eager, every op


def test_every_evaluator_op_bit_identical_between_modes(context):
    encryptor = context.encryptor(seed=11)
    encoder = context.encoder()
    relin = context.relinearization_key()
    plain = encoder.encode([2, 0, 1])
    ct_a = encryptor.encrypt(encoder.encode([1, 2, 3]))
    ct_b = encryptor.encrypt(encoder.encode([4, 5, 6]))
    fused = context.evaluator(mode="fused")
    eager = context.evaluator(mode="eager")
    assert fused.mode == "fused" and eager.mode == "eager"

    product_f = fused.multiply(ct_a, ct_b)
    product_e = eager.multiply(ct_a, ct_b)
    cases = [
        (product_f, product_e),
        (fused.add(ct_a, ct_b), eager.add(ct_a, ct_b)),
        (fused.sub(ct_a, ct_b), eager.sub(ct_a, ct_b)),
        (fused.add(ct_a, product_f), eager.add(ct_a, product_e)),  # mixed sizes
        (fused.sub(ct_a, product_f), eager.sub(ct_a, product_e)),
        (fused.negate(ct_a), eager.negate(ct_a)),
        (fused.square(ct_a), eager.square(ct_a)),
        (fused.add_plain(ct_a, plain), eager.add_plain(ct_a, plain)),
        (fused.multiply_plain(ct_a, plain), eager.multiply_plain(ct_a, plain)),
        (fused.relinearize(product_f, relin), eager.relinearize(product_e, relin)),
        (fused.mod_switch_to_next(ct_a), eager.mod_switch_to_next(ct_a)),
    ]
    for index, (got, expected) in enumerate(cases):
        assert coeffs(got) == coeffs(expected), index
        assert got.level == expected.level, index
    # NTT accounting matches between the modes for the headline ops.
    assert fused.ntt_invocations == eager.ntt_invocations


def test_pipeline_chain_matches_eager_chain(context):
    encryptor = context.encryptor(seed=11)
    encoder = context.encoder()
    relin = context.relinearization_key()
    ct_a = encryptor.encrypt(encoder.encode([1, 2, 3]))
    ct_b = encryptor.encrypt(encoder.encode([4, 5, 6]))

    eager = context.evaluator(mode="eager")
    expected = eager.mod_switch_to_next(
        eager.relinearize(eager.multiply(ct_a, ct_b), relin)
    )

    pipe = context.pipeline()
    result = (pipe.load(ct_a) * pipe.load(ct_b)).relinearize(relin).mod_switch().run()
    assert coeffs(result) == coeffs(expected)
    assert result.level == expected.level == 1

    decoded = context.encoder().decode(context.decryptor().decrypt(result))
    t = PARAMS.plaintext_modulus
    assert decoded[:3] == [(x * y) % t for x, y in zip([1, 2, 3], [4, 5, 6])]


# ------------------------------------------------------ fusion acceptance


def test_pipeline_chain_three_dispatches_zero_conversions():
    """The acceptance pin: multiply → relinearize → mod_switch through the
    pool-forced parallel backend is ≤ 3 pool dispatches (one fused stage per
    cross-row barrier) and fully resident."""
    backend = forced_parallel()
    try:
        ctx = make_context(backend)
        encryptor = ctx.encryptor(seed=11)
        relin = ctx.relinearization_key()
        ct_a = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
        ct_b = encryptor.encrypt(ctx.encoder().encode([4, 5, 6]))
        pipe = ctx.pipeline()
        expr = (pipe.load(ct_a) * pipe.load(ct_b)).relinearize(relin).mod_switch()

        backend.reset_dispatch_count()
        backend.reset_conversion_count()
        result = expr.run()
        assert backend.dispatch_count <= 3, backend.dispatch_count
        assert backend.dispatch_count >= 1, "chain never reached the pool"
        assert backend.conversion_count == 0, "chain left resident storage"

        # The per-op fused evaluator pays at most one dispatch per op too.
        evaluator = ctx.evaluator(mode="fused")
        backend.reset_dispatch_count()
        chained = evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
        )
        assert backend.dispatch_count <= 3
        assert coeffs(chained) == coeffs(result)

        # ... while the eager path pays one per backend method call.
        eager = ctx.evaluator(mode="eager")
        backend.reset_dispatch_count()
        eager.mod_switch_to_next(
            eager.relinearize(eager.multiply(ct_a, ct_b), relin)
        )
        assert backend.dispatch_count > 3
    finally:
        backend.close()


def test_pipeline_compiles_once_per_shape():
    ctx = make_context("numpy")
    encryptor = ctx.encryptor(seed=11)
    relin = ctx.relinearization_key()
    pipe = ctx.pipeline()
    results = []
    for seed in (1, 2, 3):
        rng_input = [seed, seed + 1, seed + 2]
        ct = encryptor.encrypt(ctx.encoder().encode(rng_input))
        expr = pipe.load(ct).square().relinearize(relin).mod_switch()
        results.append(expr.run())
    assert pipe.evaluator.plans_compiled == 1
    assert pipe.evaluator.plan_cache_hits == 2
    assert len({str(coeffs(result)) for result in results}) == 3


def test_pipeline_distinguishes_key_component_domains():
    """Key component domains are part of the compiled plan (coefficient
    components get forward-NTT nodes), so a same-shaped expression with an
    NTT-resident key must not reuse the coefficient-key plan."""
    from repro.he.keys import RelinearizationKey

    ctx = make_context("numpy")
    encryptor = ctx.encryptor(seed=11)
    relin = ctx.relinearization_key()
    ntt_relin = RelinearizationKey(
        components=[(rk0.to_ntt(), rk1.to_ntt()) for rk0, rk1 in relin.components]
    )
    ct_a = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
    ct_b = encryptor.encrypt(ctx.encoder().encode([4, 5, 6]))
    pipe = ctx.pipeline()
    first = (pipe.load(ct_a) * pipe.load(ct_b)).relinearize(relin).run()
    second = (pipe.load(ct_a) * pipe.load(ct_b)).relinearize(ntt_relin).run()
    assert pipe.evaluator.plans_compiled == 2  # distinct plans, no aliasing
    assert coeffs(first) == coeffs(second)
    t = PARAMS.plaintext_modulus
    decoded = ctx.encoder().decode(ctx.decryptor().decrypt(second))
    assert decoded[:3] == [(x * y) % t for x, y in zip([1, 2, 3], [4, 5, 6])]


def test_shared_subexpressions_lower_once():
    ctx = make_context("numpy")
    encryptor = ctx.encryptor(seed=11)
    ct_a = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
    ct_b = encryptor.encrypt(ctx.encoder().encode([4, 5, 6]))
    pipe = ctx.pipeline()
    a, b = pipe.load(ct_a), pipe.load(ct_b)
    shared = a * b
    result = (shared + shared).run()
    eager = ctx.evaluator(mode="eager")
    product = eager.multiply(ct_a, ct_b)
    assert coeffs(result) == coeffs(eager.add(product, product))


def test_pipeline_validates_usage():
    ctx = make_context("numpy")
    encryptor = ctx.encryptor(seed=11)
    relin = ctx.relinearization_key()
    ct = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
    pipe = ctx.pipeline()
    other = ctx.pipeline()
    with pytest.raises(TypeError, match="expects a Ciphertext"):
        pipe.load("not a ciphertext")
    with pytest.raises(ValueError, match="different pipelines"):
        pipe.load(ct) * other.load(ct)
    with pytest.raises(ValueError, match="different pipeline"):
        pipe.run(other.load(ct))

    # Level mismatches surface during lowering, like the eager checks.
    evaluator = ctx.evaluator(mode="eager")
    switched = evaluator.mod_switch_to_next(ct)
    with pytest.raises(ValueError, match="different levels"):
        (pipe.load(ct) * pipe.load(switched)).run()
    with pytest.raises(ValueError, match="different levels"):
        (pipe.load(ct) + pipe.load(switched)).run()

    # Relinearising a size-2 ciphertext is a fused no-op copy.
    relinearised = pipe.load(ct).relinearize(relin).run()
    assert coeffs(relinearised) == coeffs(ct)

    # Switching past the last level raises exactly like the eager path.
    last = evaluator.mod_switch_to_next(switched)
    with pytest.raises(ValueError, match="below a single prime"):
        pipe.load(last).mod_switch().run()


def test_evaluator_mode_resolution(monkeypatch):
    ctx = make_context("numpy")
    monkeypatch.delenv("REPRO_EXECUTION", raising=False)
    assert ctx.evaluator().mode == "fused"
    monkeypatch.setenv("REPRO_EXECUTION", "eager")
    assert ctx.evaluator().mode == "eager"
    assert ctx.evaluator(mode="fused").mode == "fused"
    try:
        set_default_execution_mode("fused")
        assert ctx.evaluator().mode == "fused"
    finally:
        set_default_execution_mode(None)


# --------------------------------------------------------- polynomial layer


@pytest.mark.parametrize("backend_name", ["scalar", "numpy"])
def test_poly_product_identical_between_modes(backend_name, monkeypatch):
    ctx = make_context(backend_name)
    rng = random.Random(5)
    a = RnsPolynomial.random_uniform(ctx.basis, PARAMS.n, rng, backend=ctx.backend)
    b = RnsPolynomial.random_uniform(ctx.basis, PARAMS.n, rng, backend=ctx.backend)
    monkeypatch.delenv("REPRO_EXECUTION", raising=False)
    fused = a * b
    monkeypatch.setenv("REPRO_EXECUTION", "eager")
    eager = a * b
    assert fused == eager
    assert fused.domain == eager.domain
