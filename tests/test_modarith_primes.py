"""Tests for NTT-friendly prime generation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modarith.primes import (
    PrimeChain,
    generate_ntt_primes,
    generate_prime_chain,
    is_ntt_prime,
    is_probable_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 97, 998244353, 0xFFFFFFFF00000001, (1 << 61) - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 100, 561, 341550071728321, (1 << 61) - 2]


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites(n):
    assert not is_probable_prime(n)


def test_is_ntt_prime_congruence():
    # 998244353 = 119 * 2^23 + 1, so it supports NTTs up to N = 2^22.
    assert is_ntt_prime(998244353, 1 << 10)
    assert is_ntt_prime(998244353, 1 << 22)
    assert not is_ntt_prime(998244353, 1 << 23)
    assert not is_ntt_prime(998244354, 1 << 10)


def test_is_ntt_prime_rejects_non_power_of_two_n():
    with pytest.raises(ValueError):
        is_ntt_prime(998244353, 3)


def test_generate_ntt_primes_properties():
    n = 1 << 10
    primes = generate_ntt_primes(30, 5, n)
    assert len(primes) == 5
    assert len(set(primes)) == 5
    for p in primes:
        assert p.bit_length() == 30
        assert p % (2 * n) == 1
        assert is_probable_prime(p)
    assert primes == sorted(primes, reverse=True)


def test_generate_ntt_primes_60bit():
    n = 1 << 12
    primes = generate_ntt_primes(60, 3, n)
    for p in primes:
        assert p.bit_length() == 60
        assert p % (2 * n) == 1


def test_generate_ntt_primes_errors():
    with pytest.raises(ValueError):
        generate_ntt_primes(1, 1, 16)
    with pytest.raises(ValueError):
        generate_ntt_primes(30, 0, 16)
    with pytest.raises(ValueError):
        generate_ntt_primes(30, 1, 17)
    with pytest.raises(ValueError):
        generate_ntt_primes(10, 1, 1 << 10)  # 2^10 <= 2n
    with pytest.raises(ValueError):
        generate_ntt_primes(14, 1000, 1 << 10)  # not enough primes of that size


def test_prime_chain_modulus_and_logq():
    chain = generate_prime_chain(30, 4, 1 << 10)
    assert isinstance(chain, PrimeChain)
    assert chain.count == 4
    product = 1
    for p in chain.primes:
        product *= p
    assert chain.modulus == product
    assert chain.log_q == product.bit_length()
    assert chain.n == 1 << 10
    assert chain.bit_size == 30


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=4, max_value=10))
def test_generated_primes_support_requested_ntt_size(log_n):
    n = 1 << log_n
    primes = generate_ntt_primes(25, 2, n)
    for p in primes:
        assert is_ntt_prime(p, n)
