"""Tests for the NTT engine and batched execution."""

from __future__ import annotations

import random

import pytest

from repro.core.batching import BatchedNTT
from repro.core.engine import NTTEngine
from repro.core.on_the_fly import OnTheFlyConfig
from repro.core.plan import NTTAlgorithm, NTTPlan
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.rns.basis import RnsBasis
from repro.transforms.cooley_tukey import ntt_forward, ntt_inverse
from repro.transforms.reference import naive_negacyclic_convolution

N = 1 << 7
P = generate_ntt_primes(60, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, P)

PLANS = [
    NTTPlan(n=N, algorithm=NTTAlgorithm.RADIX2),
    NTTPlan(n=N, algorithm=NTTAlgorithm.HIGH_RADIX, radix=16),
    NTTPlan(n=N, algorithm=NTTAlgorithm.SMEM, per_thread_points=4),
    NTTPlan(n=N, ot=OnTheFlyConfig(base=16, ot_stages=1)),
    NTTPlan(n=N, ot=OnTheFlyConfig(base=16, ot_stages=2)),
]


def random_poly(seed=0):
    rng = random.Random(seed)
    return [rng.randrange(P) for _ in range(N)]


@pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.label)
def test_engine_matches_reference_regardless_of_plan(plan):
    engine = NTTEngine(N, P, plan, psi=PSI)
    values = random_poly(1)
    assert engine.forward(values) == ntt_forward(values, PSI, P)
    assert engine.inverse(engine.forward(values)) == values
    assert engine.inverse(ntt_forward(values, PSI, P)) == ntt_inverse(
        ntt_forward(values, PSI, P), PSI, P
    )


def test_engine_multiply_matches_schoolbook():
    engine = NTTEngine(N, P, psi=PSI)
    rng = random.Random(2)
    a = [rng.randrange(1000) for _ in range(N)]
    b = [rng.randrange(1000) for _ in range(N)]
    assert engine.multiply(a, b) == naive_negacyclic_convolution(a, b, P)


def test_engine_validates_input_length():
    engine = NTTEngine(N, P, psi=PSI)
    with pytest.raises(ValueError):
        engine.forward([1] * (N + 1))
    with pytest.raises(ValueError):
        engine.inverse([1] * (N - 1))


def test_engine_rejects_mismatched_plan():
    plan = NTTPlan(n=N * 2)
    with pytest.raises(ValueError):
        NTTEngine(N, P, plan)


def test_execution_report_without_ot():
    engine = NTTEngine(N, P, NTTPlan(n=N, algorithm=NTTAlgorithm.RADIX2), psi=PSI)
    _, report = engine.forward_with_report(random_poly(3))
    assert report.n == N
    assert report.passes == 7  # log2(128) radix-2 passes
    assert report.butterflies == (N // 2) * 7
    assert report.table_fetches == N - 1
    assert report.regenerated == 0
    assert report.regeneration_muls == 0
    assert report.resident_table_entries == N
    assert report.resident_table_bytes == N * 16
    assert report.total_twiddle_uses == N - 1


def test_execution_report_with_ot():
    plan = NTTPlan(n=N, ot=OnTheFlyConfig(base=16, ot_stages=1))
    engine = NTTEngine(N, P, plan, psi=PSI)
    _, report = engine.forward_with_report(random_poly(4))
    # Last stage has N/2 twiddles, all regenerated; the rest come from the table.
    assert report.regenerated == N // 2
    assert report.table_fetches == N - 1 - N // 2
    assert report.regeneration_muls > 0
    assert report.butterflies == (N // 2) * 7
    # The resident table shrinks: uncovered N/2 entries plus the factored tables.
    assert report.resident_table_entries == N // 2 + 16 + N // 16
    assert report.resident_table_entries < N


def test_ot_reduces_resident_table_for_large_n():
    """At bootstrappable sizes the OT-covered last stage halves the table (Fig. 12c)."""
    n = 1 << 12
    p = generate_ntt_primes(60, 1, n)[0]
    baseline = NTTEngine(n, p, NTTPlan(n=n))
    with_ot = NTTEngine(n, p, NTTPlan(n=n, ot=OnTheFlyConfig(base=64, ot_stages=1)))
    assert with_ot.resident_table_bytes() < baseline.resident_table_bytes()
    ratio = with_ot.resident_table_bytes() / baseline.resident_table_bytes()
    assert 0.45 < ratio < 0.6


def test_inverse_report_with_ot_matches_roundtrip():
    plan = NTTPlan(n=N, ot=OnTheFlyConfig(base=16, ot_stages=2))
    engine = NTTEngine(N, P, plan, psi=PSI)
    values = random_poly(5)
    transformed, _ = engine.forward_with_report(values)
    restored, report = engine.inverse_with_report(transformed)
    assert restored == values
    assert report.regenerated == N // 2 + N // 4


# ---------------------------------------------------------------- batching


def test_batched_ntt_matches_per_prime_engines():
    basis = RnsBasis.generate(N, 3, bit_size=30)
    batch = BatchedNTT(basis, N)
    rng = random.Random(6)
    rows = [[rng.randrange(p) for _ in range(N)] for p in basis.primes]
    results = batch.forward(rows)
    for row, transformed, p, engine in zip(rows, results, basis.primes, batch.engines):
        assert transformed == engine.forward(row)
    assert batch.inverse(results) == rows


def test_batched_report_aggregates():
    basis = RnsBasis.generate(N, 4, bit_size=30)
    batch = BatchedNTT(basis, N)
    rng = random.Random(7)
    rows = [[rng.randrange(p) for _ in range(N)] for p in basis.primes]
    _, report = batch.forward_with_report(rows)
    assert report.batch_size == 4
    assert len(report.reports) == 4
    assert report.butterflies == 4 * (N // 2) * 7
    assert report.table_fetches == 4 * (N - 1)
    assert report.regenerated == 0
    # twiddle tables grow linearly with np — the key NTT-vs-DFT difference
    assert report.resident_table_bytes == 4 * N * 16
    assert batch.resident_table_bytes() == 4 * N * 16


def test_batched_multiply():
    basis = RnsBasis.generate(N, 2, bit_size=30)
    batch = BatchedNTT(basis, N)
    rng = random.Random(8)
    rows_a = [[rng.randrange(100) for _ in range(N)] for _ in basis.primes]
    rows_b = [[rng.randrange(100) for _ in range(N)] for _ in basis.primes]
    products = batch.multiply(rows_a, rows_b)
    for p, row_a, row_b, product in zip(basis.primes, rows_a, rows_b, products):
        assert product == naive_negacyclic_convolution(row_a, row_b, p)


def test_batched_row_count_validation():
    basis = RnsBasis.generate(N, 2, bit_size=30)
    batch = BatchedNTT(basis, N)
    with pytest.raises(ValueError):
        batch.forward([[0] * N])
    assert batch.batch_size == 2
