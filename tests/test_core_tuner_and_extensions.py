"""Tests for the plan auto-tuner and the extension experiments."""

from __future__ import annotations

import pytest

from repro.core.on_the_fly import OnTheFlyConfig
from repro.core.plan import NTTAlgorithm, NTTPlan
from repro.core.tuner import PlanTuner, TunedPlan
from repro.experiments import device_sensitivity, ntt_share, run_experiment
from repro.gpu.costmodel import GpuCostModel
from repro.gpu.device import A100_LIKE, TITAN_V

MODEL = GpuCostModel()


# ---------------------------------------------------------------- tuner


def test_candidate_plans_cover_all_families():
    tuner = PlanTuner(MODEL)
    plans = tuner.candidate_plans(1 << 17)
    algorithms = {plan.algorithm for plan in plans}
    assert algorithms == {NTTAlgorithm.RADIX2, NTTAlgorithm.HIGH_RADIX, NTTAlgorithm.SMEM}
    assert any(plan.ot is not None for plan in plans)
    assert any(plan.ot is None for plan in plans)
    with pytest.raises(ValueError):
        tuner.candidate_plans(1000)


def test_small_transform_falls_back_to_default_split():
    tuner = PlanTuner(MODEL)
    plans = tuner.candidate_plans(1 << 10)
    smem_plans = [plan for plan in plans if plan.algorithm is NTTAlgorithm.SMEM]
    assert smem_plans  # fallback produced at least one SMEM candidate


def test_best_plan_matches_paper_conclusion():
    """The tuned best configuration for (2^17, 21) is an SMEM plan with OT."""
    tuner = PlanTuner(MODEL)
    best = tuner.best(1 << 17, 21)
    assert isinstance(best, TunedPlan)
    assert best.plan.algorithm is NTTAlgorithm.SMEM
    assert best.plan.ot is not None and best.plan.ot.ot_stages >= 1
    assert best.plan.per_thread_points in (4, 8)


def test_ranking_is_sorted_and_radix2_is_worst_family():
    tuner = PlanTuner(MODEL)
    ranking = tuner.rank(1 << 16, 21)
    times = [tuned.time_us for tuned in ranking]
    assert times == sorted(times)
    radix2_time = next(
        tuned.time_us for tuned in ranking if tuned.plan.algorithm is NTTAlgorithm.RADIX2
    )
    assert radix2_time == pytest.approx(max(times), rel=0.2)


def test_evaluate_single_plan():
    tuner = PlanTuner(MODEL)
    plan = NTTPlan(n=1 << 16, ot=OnTheFlyConfig(base=1024, ot_stages=1))
    tuned = tuner.evaluate(plan, 21)
    assert tuned.time_us > 0
    assert tuned.dram_mb > 0
    assert 0 < tuned.bandwidth_utilization < 1


def test_tuner_default_model():
    tuner = PlanTuner()
    assert tuner.model.device.name == TITAN_V.name


# ---------------------------------------------------------------- extension experiments


def test_ntt_share_experiment_matches_motivation():
    result = ntt_share.run(MODEL)
    assert len(result.rows) == 1
    row = result.rows[0]
    assert 0.35 < row["model NTT share"] < 0.65  # paper: 50.04%
    assert row["NTT traffic (MB)"] > 0
    assert row["other traffic (MB)"] > 0
    assert ntt_share.non_ntt_passes(48) == 18


def test_device_sensitivity_experiment():
    result = device_sensitivity.run(MODEL)
    titan = result.row_by("device", TITAN_V.name)
    a100 = result.row_by("device", A100_LIKE.name)
    # conclusions survive the device change…
    assert titan["speedup vs radix-2"] > 3.0
    assert a100["speedup vs radix-2"] > 3.0
    assert a100["OT speedup"] > 1.0
    # …while absolute times scale with the extra bandwidth.
    assert a100["SMEM+OT (us)"] < titan["SMEM+OT (us)"]


def test_new_experiments_registered():
    assert run_experiment("ntt_share", MODEL).rows
    assert run_experiment("devices", MODEL).rows
