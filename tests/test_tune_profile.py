"""Tests for the ahead-of-time autotune profile (save / load / env preload)."""

from __future__ import annotations

import json

import pytest

from repro.backends.engines import (
    TUNE_PROFILE_ENV_VAR,
    load_tune_profile,
    save_tune_profile,
    tune_profile_to_dict,
)
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.parallel import ParallelBackend
from repro.modarith.primes import generate_ntt_primes


@pytest.fixture(autouse=True)
def _dynamic_selection(monkeypatch):
    """Engine selection must fall through to the tuner for these tests."""
    monkeypatch.delenv("REPRO_NTT_ENGINE", raising=False)
    monkeypatch.delenv(TUNE_PROFILE_ENV_VAR, raising=False)


def _tune_one_shape(backend, n=256, rows=4):
    [p] = generate_ntt_primes(30, 1, n)
    tensor = backend.from_rows(
        [[(i * 17 + j) % p for j in range(n)] for i in range(rows)], [p] * rows
    )
    backend.forward_ntt_batch(tensor)
    return (n, p.bit_length(), rows)


def test_profile_roundtrip_through_file(tmp_path):
    tuned = NumpyBackend()
    key = _tune_one_shape(tuned)
    assert key in tuned.engine_choices  # the tuner ran

    path = save_tune_profile(tuned, tmp_path / "profile.json")
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["kind"] == "tune_profile"
    assert payload["format_version"] == 1
    assert payload["entries"][0]["engine"] == tuned.engine_choices[key]

    fresh = NumpyBackend()
    assert fresh.engine_choices == {}
    assert load_tune_profile(fresh, path) == len(payload["entries"])
    assert fresh.engine_choices == tuned.engine_choices
    assert fresh.engine_timings == tuned.engine_timings


def test_loaded_shape_skips_the_autotuner(tmp_path):
    tuned = NumpyBackend()
    key = _tune_one_shape(tuned)
    path = save_tune_profile(tuned, tmp_path / "profile.json")

    fresh = NumpyBackend()
    load_tune_profile(fresh, path)
    timings_before = fresh.engine_timings[key]
    _tune_one_shape(fresh)  # same shape: must use the profiled verdict
    # A tuner run would overwrite the timings with fresh measurements; the
    # profiled ones surviving proves no race happened.
    assert fresh.engine_timings[key] == timings_before


def test_env_var_preloads_every_new_backend(tmp_path, monkeypatch):
    tuned = NumpyBackend()
    _tune_one_shape(tuned)
    path = save_tune_profile(tuned, tmp_path / "profile.json")

    monkeypatch.setenv(TUNE_PROFILE_ENV_VAR, str(path))
    assert NumpyBackend().engine_choices == tuned.engine_choices


def test_parallel_backend_profiles_through_its_inner(tmp_path):
    tuned = NumpyBackend()
    _tune_one_shape(tuned)
    path = save_tune_profile(tuned, tmp_path / "profile.json")

    sharded = ParallelBackend(shards=2)
    try:
        assert load_tune_profile(sharded, path) == 1
        assert sharded.engine_choices == tuned.engine_choices
        # And the round trip back out reads the same verdicts.
        assert tune_profile_to_dict(sharded) == tune_profile_to_dict(tuned)
    finally:
        sharded.close()


def test_unknown_engine_and_bad_version_are_rejected():
    backend = NumpyBackend()
    with pytest.raises(KeyError):
        load_tune_profile(
            backend,
            {
                "kind": "tune_profile",
                "format_version": 1,
                "entries": [{"n": 256, "p_bits": 30, "batch": 4, "engine": "warp9"}],
            },
        )
    with pytest.raises(ValueError, match="format_version"):
        load_tune_profile(
            backend, {"kind": "tune_profile", "format_version": 99, "entries": []}
        )
    with pytest.raises(ValueError, match="tune profile"):
        load_tune_profile(backend, {"kind": "ciphertext"})
