"""Exactness tests for the wide-word (> 2^31) vectorised array paths.

The wide-word window (``wideops.py``) lets the numpy and parallel backends
run 32–62-bit primes fully vectorised instead of falling back to per-prime
scalar arithmetic.  These tests pin the acceptance criteria:

* **bit-for-bit exactness** — every array operation (all four NTT engines
  forward/inverse, pointwise add/sub/neg/mul/scalar_mul, digit_broadcast,
  mod_switch_drop_last) matches :class:`ScalarBackend` exactly across the
  whole window, including worst-case all-``p-1`` operands and primes just
  below the 2^62 ceiling;
* **strategy equivalence** — the limb-decomposition and float64-quotient
  Shoup strategies produce identical results where both apply, and forcing
  the float strategy outside its validity range is rejected;
* **residency** — wide transforms and a full 60-bit HE chain charge zero
  conversions and zero ``fallback.rows`` on numpy and parallel (pooled and
  inline) backends.
"""

from __future__ import annotations

import random

import pytest

from repro.backends.numpy_backend import NumpyBackend
from repro.backends.parallel import ParallelBackend
from repro.backends.scalar import ScalarBackend
from repro.backends.wideops import (
    FLOAT_SHOUP_LIMIT,
    NARROW_MUL_LIMIT,
    WIDE_MUL_LIMIT,
    select_strategy,
)
from repro.he import HEParams, HeContext
from repro.modarith.primes import generate_ntt_primes

N = 64
WIDE_BITS = (32, 40, 50, 60, 62)  # spans both strategies up to the ceiling
ENGINE_SPECS = ("radix2", "high_radix:4", "four_step", "stockham")


def wide_rows(primes, n, seed):
    """Random residue rows with the first row pinned to worst-case p-1."""
    rng = random.Random(seed)
    rows = [[rng.randrange(p) for _ in range(n)] for p in primes]
    rows[0] = [primes[0] - 1] * n
    return rows


def scalar_reference():
    return ScalarBackend()


class residency:
    """Context manager asserting a compute section stays on the resident
    array path: zero conversions and zero fallback rows charged inside.

    ``from_rows``/``to_rows`` legitimately charge the conversion counter
    (they *are* boundary crossings), so exactness comparisons convert
    outside the guarded section.
    """

    def __init__(self, backend):
        self.backend = backend

    def __enter__(self):
        self.conv = self.backend.conversion_count
        self.fall = self.backend.fallback_rows
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            assert self.backend.conversion_count == self.conv
            assert self.backend.fallback_rows == self.fall


# ------------------------------------------------------------ strategy map


def test_strategy_selection_covers_the_window():
    """Float quotient below 2^50, limb decomposition above — and forcing
    the float strategy past its validity bound is rejected."""
    for bits in (32, 40, 49, 50, 60, 62):
        for p in generate_ntt_primes(bits, 2, N):
            want = "float" if p < FLOAT_SHOUP_LIMIT else "limb"
            assert select_strategy(p) == want
    assert NARROW_MUL_LIMIT < FLOAT_SHOUP_LIMIT < WIDE_MUL_LIMIT


# ------------------------------------------------------- transform crosscheck


@pytest.mark.parametrize("spec", ENGINE_SPECS)
@pytest.mark.parametrize("bits", WIDE_BITS)
def test_wide_transforms_match_scalar(bits, spec):
    primes = generate_ntt_primes(bits, 2, N)
    batch = [p for p in primes for _ in range(2)]
    rows = wide_rows(batch, N, seed=bits)

    scalar = scalar_reference()
    expected = scalar.forward_ntt_batch(scalar.from_rows(rows, batch)).to_rows()

    backend = NumpyBackend(engine=spec)
    tensor = backend.from_rows(rows, batch)
    with residency(backend):
        forward = backend.forward_ntt_batch(tensor)
        back = backend.inverse_ntt_batch(forward)
    assert forward.to_rows() == expected
    assert back.to_rows() == tensor.to_rows()


# ------------------------------------------------------- pointwise crosscheck


@pytest.mark.parametrize("bits", WIDE_BITS)
def test_wide_pointwise_ops_match_scalar(bits):
    primes = generate_ntt_primes(bits, 3, N)
    rows_a = wide_rows(primes, N, seed=bits * 3)
    rows_b = wide_rows(primes, N, seed=bits * 3 + 1)
    big_scalar = primes[0] - 1  # worst-case scalar operand

    scalar = scalar_reference()
    sa = scalar.from_rows(rows_a, primes)
    sb = scalar.from_rows(rows_b, primes)

    backend = NumpyBackend()
    na = backend.from_rows(rows_a, primes)
    nb = backend.from_rows(rows_b, primes)

    with residency(backend):
        got = {
            "add": backend.add(na, nb),
            "sub": backend.sub(na, nb),
            "neg": backend.neg(na),
            "mul": backend.mul(na, nb),
            "scalar_mul": backend.scalar_mul(na, big_scalar),
        }
    assert got["add"].to_rows() == scalar.add(sa, sb).to_rows()
    assert got["sub"].to_rows() == scalar.sub(sa, sb).to_rows()
    assert got["neg"].to_rows() == scalar.neg(sa).to_rows()
    assert got["mul"].to_rows() == scalar.mul(sa, sb).to_rows()
    assert (
        got["scalar_mul"].to_rows()
        == scalar.scalar_mul(sa, big_scalar).to_rows()
    )


@pytest.mark.parametrize("bits", WIDE_BITS)
def test_wide_digit_broadcast_and_mod_switch_match_scalar(bits):
    t = 257
    primes = generate_ntt_primes(bits, 3, N)
    rows = wide_rows(primes, N, seed=bits * 5)

    scalar = scalar_reference()
    st = scalar.from_rows(rows, primes)
    backend = NumpyBackend()
    nt = backend.from_rows(rows, primes)

    with residency(backend):
        digits = [backend.digit_broadcast(nt, i) for i in range(len(primes))]
        switched = backend.mod_switch_drop_last(nt, t)
    for index, digit in enumerate(digits):
        assert digit.to_rows() == scalar.digit_broadcast(st, index).to_rows()
    assert switched.to_rows() == scalar.mod_switch_drop_last(st, t).to_rows()


# ----------------------------------------------------------- strategy forcing


@pytest.mark.parametrize("strategy", ["limb", "float"])
def test_forced_strategies_agree_with_scalar(strategy, monkeypatch):
    """At 40 bits both Shoup strategies apply; forcing either stays exact."""
    monkeypatch.setenv("REPRO_WIDE_STRATEGY", strategy)
    primes = generate_ntt_primes(40, 2, N)
    rows = wide_rows(primes, N, seed=40)

    scalar = scalar_reference()
    expected = scalar.forward_ntt_batch(scalar.from_rows(rows, primes)).to_rows()

    backend = NumpyBackend(engine="radix2")
    tensor = backend.from_rows(rows, primes)
    with residency(backend):
        forward = backend.forward_ntt_batch(tensor)
    assert forward.to_rows() == expected


def test_float_strategy_rejected_above_its_limit(monkeypatch):
    monkeypatch.setenv("REPRO_WIDE_STRATEGY", "float")
    primes = generate_ntt_primes(60, 1, N)
    backend = NumpyBackend(engine="radix2")
    tensor = backend.from_rows(wide_rows(primes, N, seed=60), primes)
    with pytest.raises(ValueError, match="float"):
        backend.forward_ntt_batch(tensor)


def test_wide_window_can_be_pinned_off(monkeypatch):
    """REPRO_WIDE_WORD=0 restores the legacy 30-bit gate (scalar fallback)."""
    monkeypatch.setenv("REPRO_WIDE_WORD", "0")
    primes = generate_ntt_primes(60, 2, N)
    rows = wide_rows(primes, N, seed=61)

    scalar = scalar_reference()
    expected = scalar.forward_ntt_batch(scalar.from_rows(rows, primes)).to_rows()

    backend = NumpyBackend()
    forward = backend.forward_ntt_batch(backend.from_rows(rows, primes))
    assert forward.to_rows() == expected  # fallback is still exact
    assert backend.fallback_rows == len(primes)


# -------------------------------------------------------------- parallel


def test_parallel_wide_matches_scalar_pooled_and_inline():
    bits = 62
    primes = generate_ntt_primes(bits, 2, N)
    batch = [p for p in primes for _ in range(2)]
    rows = wide_rows(batch, N, seed=bits)

    scalar = scalar_reference()
    st = scalar.from_rows(rows, batch)
    expected_fwd = scalar.forward_ntt_batch(st).to_rows()
    expected_mul = scalar.mul(st, st).to_rows()

    pooled = ParallelBackend(shards=2, transform_threshold=1, pointwise_threshold=1)
    inline = ParallelBackend(shards=2)  # toy shapes stay below the crossover
    try:
        for backend in (pooled, inline):
            tensor = backend.from_rows(rows, batch)
            with residency(backend):
                forward = backend.forward_ntt_batch(tensor)
                back = backend.inverse_ntt_batch(forward)
                product = backend.mul(tensor, tensor)
            assert forward.to_rows() == expected_fwd
            assert back.to_rows() == tensor.to_rows()
            assert product.to_rows() == expected_mul
        assert pooled.pool_dispatch_count > 0
        assert inline.pool_dispatch_count == 0
    finally:
        pooled.close()
        inline.close()


# ------------------------------------------------------------ 60-bit chain


@pytest.mark.parametrize("backend_name", ["numpy", "parallel"])
def test_chain_60bit_stays_resident_and_matches_scalar(backend_name):
    """multiply -> relinearize -> mod_switch at 60-bit primes: bit-for-bit
    with the scalar backend, with zero conversions and zero fallback rows."""
    params = HEParams(n=64, plaintext_modulus=257, prime_bits=60, prime_count=3)

    def run(backend):
        ctx = HeContext.create(params, backend=backend, seed=7)
        encryptor = ctx.encryptor(seed=11)
        evaluator = ctx.evaluator()
        relin = ctx.relinearization_key()
        ct = encryptor.encrypt(ctx.encoder().encode([5, 4, 3]))
        with residency(backend):
            out = evaluator.mod_switch_to_next(
                evaluator.relinearize(evaluator.square(ct), relin)
            )
        return ctx, [poly.to_coeff_lists() for poly in out.polys]

    _, expected = run(ScalarBackend())

    if backend_name == "numpy":
        backend = NumpyBackend()
    else:
        backend = ParallelBackend(
            shards=2, transform_threshold=1, pointwise_threshold=1
        )
    try:
        ctx, got = run(backend)
        assert got == expected
        assert backend.fallback_rows == 0
        assert ctx.metrics().get("fallback.rows", 0) == 0
    finally:
        if backend_name == "parallel":
            backend.close()
