"""Tests for the op-graph plan IR and ``ComputeBackend.execute``.

Pins the acceptance criteria of the op-graph execution redesign:

* **eager compat** — every legacy :class:`ComputeBackend` method is
  cross-checked bit-for-bit against its one-op plan, on all three backends,
  on both word-size regimes (30-bit vectorised, 60-bit per-prime fallback);
* **builder/IR validation** — malformed graphs fail at build or inference
  time with actionable errors, and unknown names everywhere (backends,
  engines, modes) name the valid plan nodes and the ``--fused/--eager``
  switch;
* **fused scheduling** — stage splitting at cross-row nodes, per-worker row
  ranges through concat/split chains, and the parallel backend's fallbacks
  (big rows, misaligned operands, heap inputs, single shard) all yield
  bit-identical results;
* **execution-mode resolution** — explicit > default > ``REPRO_EXECUTION``
  > fused.
"""

from __future__ import annotations

import random

import pytest

from repro.backends import (
    NODE_NAMES,
    OpGraph,
    get_backend,
    get_engine,
    ops,
    resolve_execution_mode,
    set_default_execution_mode,
)
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.parallel import ParallelBackend
from repro.backends.scalar import ScalarBackend
from repro.modarith.primes import generate_ntt_primes

N = 64
PRIME_BITS = (30, 60)


def random_rows(primes, n, seed):
    rng = random.Random(seed)
    return [[rng.randrange(p) for _ in range(n)] for p in primes]


def forced_parallel():
    return ParallelBackend(shards=2, transform_threshold=1, pointwise_threshold=1)


@pytest.fixture(scope="module")
def backends():
    pooled = forced_parallel()
    yield {"scalar": ScalarBackend(), "numpy": NumpyBackend(), "parallel": pooled}
    pooled.close()


def one_op_plan(build):
    """Compile a plan whose body is ``build(graph, *input values)``."""
    graph = OpGraph()
    a = graph.input("a")
    b = graph.input("b")
    graph.output("out", build(graph, a, b))
    return graph.compile()


# --------------------------------------------------- eager-compat cross-check


@pytest.mark.parametrize("bits", PRIME_BITS)
@pytest.mark.parametrize("name", ["scalar", "numpy", "parallel"])
def test_every_eager_method_matches_its_one_op_plan(name, bits, backends):
    """The eager compatibility layer and one-node plans are bit-for-bit
    interchangeable on every backend and both word-size regimes."""
    backend = backends[name]
    distinct = generate_ntt_primes(bits, 3, N)
    primes = [p for p in distinct for _ in range(2)]
    rows_a = random_rows(primes, N, seed=bits)
    rows_b = random_rows(primes, N, seed=100 + bits)
    a = backend.from_rows(rows_a, primes)
    b = backend.from_rows(rows_b, primes)

    unary_cases = {
        "forward_ntt_batch": lambda g, x, y: g.forward_ntt(x),
        "inverse_ntt_batch": lambda g, x, y: g.inverse_ntt(x),
        "neg": lambda g, x, y: g.neg(x),
        "copy": lambda g, x, y: g.copy(x),
    }
    for method, build in unary_cases.items():
        eager = getattr(backend, method)(a)
        planned = backend.execute(one_op_plan(build), {"a": a, "b": b})["out"]
        assert planned.to_rows() == eager.to_rows(), method

    binary_cases = {
        "add": lambda g, x, y: g.add(x, y),
        "sub": lambda g, x, y: g.sub(x, y),
        "mul": lambda g, x, y: g.mul(x, y),
        "concat": lambda g, x, y: g.concat([x, y]),
    }
    for method, build in binary_cases.items():
        if method == "concat":
            eager = backend.concat([a, b])
        else:
            eager = getattr(backend, method)(a, b)
        planned = backend.execute(one_op_plan(build), {"a": a, "b": b})["out"]
        assert planned.to_rows() == eager.to_rows(), method

    parameterised = {
        "scalar_mul": (
            lambda g, x, y: g.scalar_mul(x, 123457),
            lambda: backend.scalar_mul(a, 123457),
        ),
        "slice_rows": (
            lambda g, x, y: g.slice_rows(x, 1, 4),
            lambda: backend.slice_rows(a, 1, 4),
        ),
        "digit_broadcast": (
            lambda g, x, y: g.digit_broadcast(x, 1),
            lambda: backend.digit_broadcast(a, 1),
        ),
    }
    for method, (build, eager_call) in parameterised.items():
        planned = backend.execute(one_op_plan(build), {"a": a, "b": b})["out"]
        assert planned.to_rows() == eager_call().to_rows(), method

    # mod_switch needs a distinct-prime basis; split is slice_rows sugar.
    basis = generate_ntt_primes(bits, 4, N)
    ms_rows = random_rows(basis, N, seed=200 + bits)
    tensor = backend.from_rows(ms_rows, basis)
    graph = OpGraph()
    src = graph.input("a")
    graph.output("out", graph.mod_switch_drop_last(src, 257))
    planned = backend.execute(graph.compile(), {"a": tensor})["out"]
    assert planned.to_rows() == backend.mod_switch_drop_last(tensor, 257).to_rows()

    graph = OpGraph()
    src = graph.input("a")
    first, second = graph.split(src, [1, 3])
    graph.output("first", first)
    graph.output("second", second)
    outs = backend.execute(graph.compile(), {"a": tensor})
    eager_first, eager_second = backend.split(tensor, [1, 3])
    assert outs["first"].to_rows() == eager_first.to_rows()
    assert outs["second"].to_rows() == eager_second.to_rows()


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_multi_op_plan_bit_identical_across_backends(bits, backends):
    """A full product + mod-switch + digit plan agrees across all backends
    and performs zero boundary conversions."""
    primes = generate_ntt_primes(bits, 4, N)
    rows_a = random_rows(primes, N, seed=7 + bits)
    rows_b = random_rows(primes, N, seed=8 + bits)
    graph = OpGraph()
    a = graph.input("a")
    b = graph.input("b")
    fwd = graph.forward_ntt(graph.concat([a, b]))
    fa, fb = graph.split(fwd, [4, 4])
    coeff = graph.inverse_ntt(graph.mul(fa, fb))
    graph.output("switched", graph.mod_switch_drop_last(coeff, 257))
    graph.output("digit", graph.digit_broadcast(coeff, 2))
    plan = graph.compile()

    results = {}
    for name, backend in backends.items():
        ta = backend.from_rows(rows_a, primes)
        tb = backend.from_rows(rows_b, primes)
        before = backend.conversion_count
        outs = backend.execute(plan, {"a": ta, "b": tb})
        if bits == 30:
            assert backend.conversion_count == before, name
        results[name] = {key: value.to_rows() for key, value in outs.items()}
    assert results["scalar"] == results["numpy"] == results["parallel"]


def test_plan_execution_rejects_foreign_and_missing_inputs(backends):
    primes = generate_ntt_primes(30, 2, N)
    rows = random_rows(primes, N, seed=3)
    plan = one_op_plan(lambda g, a, b: g.add(a, b))
    numpy_backend = backends["numpy"]
    scalar_backend = backends["scalar"]
    tensor = numpy_backend.from_rows(rows, primes)
    with pytest.raises(ValueError, match="owned by backend"):
        scalar_backend.execute(plan, {"a": tensor, "b": tensor})
    with pytest.raises(ValueError, match="plan input 'b' was not bound"):
        numpy_backend.execute(plan, {"a": tensor})
    pooled = backends["parallel"]
    with pytest.raises(ValueError, match="owned by backend"):
        pooled.execute(plan, {"a": tensor, "b": tensor})
    own = pooled.from_rows(rows, primes)
    with pytest.raises(ValueError, match="plan input 'b' was not bound"):
        pooled.execute(plan, {"a": own})


# ------------------------------------------------------------- IR validation


def test_graph_builder_validates_structure():
    graph = OpGraph()
    a = graph.input("a")
    with pytest.raises(ValueError, match="duplicate plan input"):
        graph.input("a")
    with pytest.raises(ValueError, match="not the index of an existing node"):
        graph.forward_ntt(99)
    with pytest.raises(ValueError, match="empty value sequence"):
        graph.concat([])
    with pytest.raises(ValueError, match="invalid slice bounds"):
        graph.slice_rows(a, 3, 1)
    with pytest.raises(ValueError, match="at least one output"):
        graph.compile()
    graph.output("x", a)
    with pytest.raises(ValueError, match="duplicate plan output"):
        graph.output("x", a)
    plan = graph.compile()
    assert plan.input_names == ("a",)
    assert plan.output_names == ("x",)
    assert len(plan) == 1
    assert hash(plan) == hash(plan)


def test_infer_primes_mirrors_eager_validation():
    graph = OpGraph()
    a = graph.input("a")
    b = graph.input("b")
    graph.output("x", graph.add(a, b))
    plan = graph.compile()
    with pytest.raises(ValueError, match="prime mismatch"):
        ops.infer_primes(plan, {"a": (17, 17), "b": (17, 97)})
    inferred = ops.infer_primes(plan, {"a": (17, 97), "b": (17, 97)})
    assert inferred[-1] == (17, 97)

    graph = OpGraph()
    a = graph.input("a")
    graph.output("x", graph.mod_switch_drop_last(a, 5))
    with pytest.raises(ValueError, match="below a single prime"):
        ops.infer_primes(graph.compile(), {"a": (17,)})

    graph = OpGraph()
    a = graph.input("a")
    graph.output("x", graph.digit_broadcast(a, 5))
    with pytest.raises(ValueError, match="digit index 5 out of range"):
        ops.infer_primes(graph.compile(), {"a": (17, 97)})


def test_ir_edge_cases_from_rewritten_plans(backends):
    """Shapes an optimiser pass could (buggily) produce must fail in static
    validation — or, when legal, execute cleanly — on every backend.

    ``ops.Plan`` is a plain frozen dataclass, so a rewrite can construct
    nodes the :class:`OpGraph` builder would have rejected; ``infer_primes``
    (and through it ``interpret`` and the parallel scheduler) is the
    backstop."""
    # Empty concat: builder rejects it, a hand-rolled Plan must die in
    # validation on every execution path, before any backend work.
    empty_concat = ops.Plan(
        (ops.Input("a"), ops.Concat(())), (("out", 1),)
    )
    primes = generate_ntt_primes(30, 2, N)
    with pytest.raises(ValueError, match="empty value sequence"):
        ops.infer_primes(empty_concat, {"a": tuple(primes)})
    for backend in backends.values():
        a = backend.from_rows(random_rows(primes, N, seed=3), primes)
        with pytest.raises(ValueError, match="empty value sequence"):
            backend.execute(empty_concat, {"a": a})

    # Slice out of range after (a buggy) elimination shrank its source.
    bad_slice = ops.Plan(
        (ops.Input("a"), ops.SliceRows(0, 1, 5)), (("out", 1),)
    )
    with pytest.raises(ValueError, match="out of range"):
        ops.infer_primes(bad_slice, {"a": tuple(primes)})
    for backend in backends.values():
        a = backend.from_rows(random_rows(primes, N, seed=3), primes)
        with pytest.raises(ValueError, match="out of range"):
            backend.execute(bad_slice, {"a": a})

    # Copy chains are legal (fold_structure collapses them; a partial fold
    # may leave a chain) and must execute to the same rows.
    chain = ops.Plan(
        (ops.Input("a"), ops.Copy(0), ops.Copy(1), ops.Copy(2)),
        (("out", 3),),
    )
    for backend in backends.values():
        rows = random_rows(primes, N, seed=5)
        a = backend.from_rows(rows, primes)
        assert backend.execute(chain, {"a": a})["out"].to_rows() == rows

    # Two outputs referencing the same node: CSE merges output expressions
    # deliberately; both names must resolve (aliased handles are fine for
    # reads).
    aliased = ops.Plan(
        (ops.Input("a"), ops.Neg(0)), (("x", 1), ("y", 1))
    )
    for backend in backends.values():
        rows = random_rows(primes, N, seed=7)
        a = backend.from_rows(rows, primes)
        out = backend.execute(aliased, {"a": a})
        assert out["x"].to_rows() == out["y"].to_rows()


def test_unknown_name_errors_list_plan_nodes_and_flags():
    with pytest.raises(KeyError) as backend_error:
        get_backend("no-such-backend")
    with pytest.raises(KeyError) as engine_error:
        get_engine("no-such-engine")
    for excinfo in (backend_error, engine_error):
        message = str(excinfo.value)
        assert "--fused/--eager" in message
        for node in ("forward_ntt", "digit_broadcast", "mod_switch_drop_last"):
            assert node in message
    assert "REPRO_EXECUTION" in str(backend_error.value)


# ------------------------------------------------------- fused scheduling


def test_split_stages_cuts_at_cross_row_intermediates():
    graph = OpGraph()
    a = graph.input("a")
    # Cross-row read of an *input* needs no cut...
    d0 = graph.digit_broadcast(a, 0)
    # ...but a cross-row read of an intermediate does.
    f = graph.forward_ntt(d0)
    inv = graph.inverse_ntt(f)
    d1 = graph.digit_broadcast(inv, 1)
    graph.output("x", d1)
    plan = graph.compile()
    stages = ops.split_stages(plan)
    assert len(stages) == 2
    assert stages[0] == [1, 2, 3]  # digit(input), forward, inverse
    assert stages[1] == [4]  # digit(intermediate) after the barrier
    outs = ops.stage_outputs(plan, stages)
    assert outs[0] == [3]  # only the value the next stage reads materialises
    assert outs[1] == [4]


def test_shard_stage_aligns_concat_split_chains():
    graph = OpGraph()
    a = graph.input("a")
    b = graph.input("b")
    fwd = graph.forward_ntt(graph.concat([a, b]))
    fa, fb = graph.split(fwd, [3, 3])
    graph.output("x", graph.mul(fa, fb))
    plan = graph.compile()
    primes = ops.infer_primes(plan, {"a": (17,) * 3, "b": (17,) * 3})
    [stage] = ops.split_stages(plan)
    schedule = ops.shard_stage(plan, stage, primes, {0, 1}, 2)
    assert schedule is not None
    # Worker 0 owns rows 0:2 of each 3-row input; through the concat its
    # share of the 6-row batch is the union {0:2, 3:5}; the split pieces
    # re-align with the inputs, so the final mul pairs cleanly.
    assert schedule[0][2] == schedule[0][3] == ((0, 2), (3, 5))  # concat, fwd
    assert schedule[0][4] == schedule[0][5] == ((0, 2),)  # the split pieces
    assert schedule[1][6] == ((2, 3),)  # worker 1's share of the product


def test_shard_stage_reports_misalignment():
    graph = OpGraph()
    a = graph.input("a")
    left = graph.slice_rows(a, 0, 2)
    right = graph.slice_rows(a, 1, 3)
    graph.output("x", graph.add(left, right))
    plan = graph.compile()
    primes = ops.infer_primes(plan, {"a": (17, 17, 17)})
    [stage] = ops.split_stages(plan)
    assert ops.shard_stage(plan, stage, primes, {0}, 2) is None


def test_parallel_falls_back_for_misaligned_plans():
    p = generate_ntt_primes(30, 1, N)[0]
    primes = [p, p, p]
    rows = random_rows(primes, N, seed=11)
    graph = OpGraph()
    a = graph.input("a")
    graph.output("x", graph.add(graph.slice_rows(a, 0, 2), graph.slice_rows(a, 1, 3)))
    plan = graph.compile()
    scalar = ScalarBackend()
    expected = scalar.execute(plan, {"a": scalar.from_rows(rows, primes)})["x"].to_rows()
    pooled = forced_parallel()
    try:
        got = pooled.execute(plan, {"a": pooled.from_rows(rows, primes)})["x"]
        assert got.to_rows() == expected
    finally:
        pooled.close()


def test_parallel_promotes_heap_inputs_and_handles_single_shard():
    primes = generate_ntt_primes(30, 2, N)
    batch = [p for p in primes for _ in range(2)]
    rows = random_rows(batch, N, seed=12)
    plan = one_op_plan(lambda g, a, b: g.inverse_ntt(g.forward_ntt(a)))
    reference = NumpyBackend()
    expected = reference.execute(
        plan, {"a": reference.from_rows(rows, batch), "b": reference.from_rows(rows, batch)}
    )["out"].to_rows()

    # Heap (sub-crossover) inputs are promoted into shared memory for the
    # fused dispatch; the round trip is still bit-exact.
    pooled = ParallelBackend(shards=2, transform_threshold=1 << 40, pointwise_threshold=1 << 40)
    try:
        heap_a = pooled.from_rows(rows, batch)
        assert heap_a.segment is None
        pooled._transform_threshold = 1  # force dispatch with heap inputs
        before = pooled.dispatch_count
        got = pooled.execute(plan, {"a": heap_a, "b": heap_a})["out"]
        assert got.to_rows() == expected
        assert pooled.dispatch_count == before + 1
    finally:
        pooled.close()

    # A single-shard backend interprets eagerly (nothing to fuse across).
    single = ParallelBackend(shards=1, transform_threshold=1, pointwise_threshold=1)
    try:
        got = single.execute(
            plan,
            {"a": single.from_rows(rows, batch), "b": single.from_rows(rows, batch)},
        )["out"]
        assert got.to_rows() == expected
        assert single.dispatch_count == 0
    finally:
        single.close()


def test_parallel_inline_plan_below_crossover_counts_no_dispatch():
    primes = generate_ntt_primes(30, 2, N)
    rows = random_rows(primes, N, seed=13)
    plan = one_op_plan(lambda g, a, b: g.mul(g.forward_ntt(a), g.forward_ntt(b)))
    backend = ParallelBackend(shards=2)  # default thresholds: toy shapes inline
    try:
        a = backend.from_rows(rows, primes)
        b = backend.from_rows(rows, primes)
        before = backend.conversion_count
        out = backend.execute(plan, {"a": a, "b": b})["out"]
        assert backend.dispatch_count == 0
        assert not backend.pool_running
        assert backend.conversion_count == before
        reference = NumpyBackend()
        expected = reference.execute(
            plan,
            {"a": reference.from_rows(rows, primes), "b": reference.from_rows(rows, primes)},
        )["out"]
        assert out.to_rows() == expected.to_rows()
    finally:
        backend.close()


# ------------------------------------------------------- execution mode


def test_execution_mode_resolution_precedence(monkeypatch):
    monkeypatch.delenv(ops.EXECUTION_ENV_VAR, raising=False)
    assert resolve_execution_mode() == "fused"
    monkeypatch.setenv(ops.EXECUTION_ENV_VAR, "eager")
    assert resolve_execution_mode() == "eager"
    try:
        set_default_execution_mode("fused")
        assert resolve_execution_mode() == "fused"  # default beats env
        assert resolve_execution_mode("eager") == "eager"  # explicit beats default
    finally:
        set_default_execution_mode(None)
    assert resolve_execution_mode() == "eager"  # env visible again
    monkeypatch.setenv(ops.EXECUTION_ENV_VAR, "sideways")
    with pytest.raises(ValueError, match="--fused/--eager"):
        resolve_execution_mode()
    with pytest.raises(ValueError, match="unknown execution mode"):
        set_default_execution_mode("sideways")
