"""Shared fixtures for the test suite.

Correctness tests run at moderate transform sizes (N = 2^4 .. 2^12) so the
whole suite stays fast while still exercising every code path; the paper's
full-scale parameters (N = 2^14 .. 2^17, np up to 45) are exercised through
the analytic performance model in the experiment tests and benchmarks, where
no per-coefficient arithmetic is required.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity


@pytest.fixture(autouse=True)
def _deterministic_global_seed(request):
    """Reseed the module-level RNG per test, derived from the test id.

    The randomized cross-backend chain tests (``test_he_context.py``,
    ``test_engines.py``, ``test_parallel_backend.py``) construct their own
    explicitly seeded ``random.Random`` streams; this fixture additionally
    pins any stray use of the *global* ``random`` functions so a failure
    seen on one CI matrix leg replays bit-identically on every other.
    """
    random.seed(zlib.crc32(request.node.nodeid.encode()))


@pytest.fixture(scope="session")
def small_prime() -> int:
    """A 17-bit NTT prime compatible with N up to 2^10."""
    return generate_ntt_primes(17, 1, 1 << 10)[0]


@pytest.fixture(scope="session")
def prime_60bit() -> int:
    """A 60-bit NTT prime compatible with N up to 2^12 (paper's word size)."""
    return generate_ntt_primes(60, 1, 1 << 12)[0]


@pytest.fixture(scope="session")
def prime_30bit() -> int:
    """A 30-bit NTT prime compatible with N up to 2^12 (single-word case)."""
    return generate_ntt_primes(30, 1, 1 << 12)[0]


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for reproducible random vectors."""
    return random.Random(0xC0FFEE)


def make_root(n: int, p: int) -> int:
    """Convenience helper returning a primitive 2N-th root of unity mod p."""
    return primitive_root_of_unity(2 * n, p)
