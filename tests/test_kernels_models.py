"""Tests for the GPU kernel models (radix-2, high-radix, SMEM, DFT, OT)."""

from __future__ import annotations

import pytest

from repro.core.on_the_fly import OnTheFlyConfig
from repro.core.plan import NTTAlgorithm, NTTPlan
from repro.gpu.costmodel import GpuCostModel
from repro.kernels.base import (
    KernelModelResult,
    dft_registers_for_radix,
    ntt_registers_for_radix,
    smem_thread_registers,
)
from repro.kernels.high_radix import high_radix_dft_model, high_radix_ntt_model
from repro.kernels.radix2 import butterfly_slots_for_modmul, radix2_ntt_model
from repro.kernels.smem import per_thread_rounds, smem_dft_model, smem_model_from_plan, smem_ntt_model

MODEL = GpuCostModel()
N = 1 << 17
NP = 21


# ---------------------------------------------------------------- registers


def test_register_tables_monotone_and_spill():
    previous = 0
    for radix in (2, 4, 8, 16, 32, 64, 128):
        ntt = ntt_registers_for_radix(radix)
        dft = dft_registers_for_radix(radix)
        assert ntt > previous
        assert ntt > dft  # the prime + Shoup companion overhead
        previous = ntt
    assert ntt_registers_for_radix(128) > 255  # spills to LMEM
    assert ntt_registers_for_radix(256) == 2 * 256 + 26  # extrapolation path
    assert dft_registers_for_radix(256) == 256 + 26
    assert smem_thread_registers(8) == ntt_registers_for_radix(8)
    assert smem_thread_registers(8, ntt=False) == dft_registers_for_radix(8)


# ---------------------------------------------------------------- radix-2


def test_radix2_model_structure():
    result = radix2_ntt_model(N, NP, MODEL)
    assert isinstance(result, KernelModelResult)
    assert result.kernel_count == 17  # one kernel per stage
    assert result.label == "radix-2"
    assert result.time_us > 0
    # Data traffic: 17 stages x read+write of N x np 8-byte words, plus twiddles.
    assert result.dram_bytes > 17 * 2 * N * NP * 8
    assert result.dram_bytes < 17 * 2 * N * NP * 8 * 1.2


def test_radix2_batch_validation():
    with pytest.raises(ValueError):
        radix2_ntt_model(N, 0, MODEL)


def test_butterfly_slots_lookup():
    assert butterfly_slots_for_modmul("shoup", MODEL) == MODEL.calibration.shoup_butterfly_slots
    assert butterfly_slots_for_modmul("native", MODEL) > butterfly_slots_for_modmul("shoup", MODEL)
    assert butterfly_slots_for_modmul("barrett", MODEL) > butterfly_slots_for_modmul("shoup", MODEL)
    with pytest.raises(ValueError):
        butterfly_slots_for_modmul("montgomery-ish", MODEL)


def test_shoup_beats_native_modulo():
    """Figure 1's shape: the Shoup variant is at least 2x faster at (2^17, 45)."""
    shoup = radix2_ntt_model(N, 45, MODEL, modmul="shoup")
    native = radix2_ntt_model(N, 45, MODEL, modmul="native")
    assert native.time_us / shoup.time_us > 2.0


def test_batching_improves_per_transform_time():
    """Figure 3's shape: batching 21 NTTs gives a 1.5-2.5x per-NTT speedup."""
    single = radix2_ntt_model(N, 1, MODEL).time_us
    batched = radix2_ntt_model(N, 21, MODEL).time_us / 21
    assert 1.5 < single / batched < 2.5
    # and the batched run approaches the saturated bandwidth
    assert radix2_ntt_model(N, 21, MODEL).bandwidth_utilization > 0.8


# ---------------------------------------------------------------- high radix


def test_high_radix_traffic_decreases_with_radix():
    traffic = [high_radix_ntt_model(N, NP, r, MODEL).dram_mb for r in (4, 8, 16, 32, 64)]
    assert traffic == sorted(traffic, reverse=True)


def test_best_ntt_radix_is_16():
    """Figure 4's headline: radix-16 is the sweet spot for NTT."""
    times = {r: high_radix_ntt_model(N, NP, r, MODEL).time_us for r in (4, 8, 16, 32, 64, 128)}
    times[2] = radix2_ntt_model(N, NP, MODEL).time_us
    assert min(times, key=times.get) == 16
    # and the speedup over radix-2 is in the right ballpark (paper: 2.41x)
    assert 2.0 < times[2] / times[16] < 3.5


def test_best_dft_radix_is_32():
    """Figure 5's headline: the DFT tolerates one more radix doubling."""
    times = {r: high_radix_dft_model(N, NP, r, MODEL).time_us for r in (4, 8, 16, 32, 64, 128)}
    assert min(times, key=times.get) == 32


def test_ntt_occupancy_lower_than_dft_at_radix32():
    """Section VI-B: NTT occupancy is ~31% lower than DFT at radix-32."""
    ntt = high_radix_ntt_model(N, NP, 32, MODEL).occupancy
    dft = high_radix_dft_model(N, NP, 32, MODEL).occupancy
    assert ntt < dft
    assert 0.15 < 1 - ntt / dft < 0.45


def test_radix32_bandwidth_collapse():
    """Figure 4(c): the achieved bandwidth drops to ~60% at radix-32."""
    util = high_radix_ntt_model(N, NP, 32, MODEL).bandwidth_utilization
    assert 0.45 < util < 0.7
    assert high_radix_ntt_model(N, NP, 16, MODEL).bandwidth_utilization > util


def test_dft_twiddle_table_shared_across_batch():
    """Section IV: the DFT twiddle table does not grow with the batch size,
    while the NTT's table traffic scales linearly with np."""
    dft_single = high_radix_dft_model(N, 1, 16, MODEL)
    dft_batched = high_radix_dft_model(N, NP, 16, MODEL)
    ntt_single = high_radix_ntt_model(N, 1, 16, MODEL)
    ntt_batched = high_radix_ntt_model(N, NP, 16, MODEL)
    assert dft_batched.dram_bytes < NP * dft_single.dram_bytes  # shared table saves bytes
    assert ntt_batched.dram_bytes == pytest.approx(NP * ntt_single.dram_bytes, rel=1e-6)


# ---------------------------------------------------------------- SMEM


def test_per_thread_rounds():
    assert per_thread_rounds(512, 8) == 3
    assert per_thread_rounds(512, 2) == 9
    assert per_thread_rounds(256, 8) == 3
    assert per_thread_rounds(64, 8) == 2
    assert per_thread_rounds(8, 8) == 1


def test_smem_model_two_kernels():
    result = smem_ntt_model(N, NP, MODEL, 256, 512)
    assert result.kernel_count == 2
    assert result.estimates[0].name.startswith("Kernel-1")
    assert result.estimates[1].name.startswith("Kernel-2")
    assert "smem 256x512" in result.label


def test_smem_split_validation():
    with pytest.raises(ValueError):
        smem_ntt_model(N, NP, MODEL, 256, 256)


def test_smem_beats_register_high_radix():
    """Figure 11(a): every SMEM configuration beats the best register implementation."""
    register_best = high_radix_ntt_model(N, NP, 16, MODEL).time_us
    for per_thread in (4, 8):
        for split in ((512, 256), (256, 512), (128, 1024)):
            smem = smem_ntt_model(N, NP, MODEL, *split, per_thread_points=per_thread)
            assert smem.time_us < register_best


def test_smem_radix2_speedup_in_paper_range():
    """Table II: SMEM is 3.4-4.3x faster than radix-2 (model tolerance 3-5x)."""
    for log_n in (14, 17):
        n = 1 << log_n
        split = (128, 128) if log_n == 14 else (256, 512)
        radix2 = radix2_ntt_model(n, NP, MODEL).time_us
        smem = smem_ntt_model(n, NP, MODEL, *split).time_us
        assert 3.0 < radix2 / smem < 5.0


def test_small_per_thread_ntt_is_slower():
    """Figure 11(a): 2-point per-thread NTTs lose to 8-point (more synchronisations)."""
    two = smem_ntt_model(N, NP, MODEL, 512, 256, per_thread_points=2).time_us
    eight = smem_ntt_model(N, NP, MODEL, 512, 256, per_thread_points=8).time_us
    assert two > eight * 1.1


def test_coalescing_speeds_up_kernel1():
    """Figure 7: coalesced Kernel-1 is 15-40% faster than the uncoalesced one."""
    coalesced = smem_ntt_model(N, NP, MODEL, 256, 512, coalesced=True).estimates[0]
    uncoalesced = smem_ntt_model(N, NP, MODEL, 256, 512, coalesced=False).estimates[0]
    assert 1.15 < uncoalesced.time_us / coalesced.time_us < 1.45


def test_twiddle_preload_speeds_up_kernel1():
    """Figure 9: preloading the twiddles into SMEM helps Kernel-1 by a few percent."""
    preload = smem_ntt_model(N, NP, MODEL, 256, 512, preload_twiddles=True).estimates[0]
    plain = smem_ntt_model(N, NP, MODEL, 256, 512, preload_twiddles=False).estimates[0]
    assert 1.02 < plain.time_us / preload.time_us < 1.3


def test_ot_reduces_traffic_and_time():
    """Figure 12: OT removes ~20-25% of the DRAM traffic and ~8-13% of the time."""
    base = smem_ntt_model(N, NP, MODEL, 256, 512)
    with_ot = smem_ntt_model(N, NP, MODEL, 256, 512, ot=OnTheFlyConfig(base=1024, ot_stages=2))
    traffic_reduction = 1 - with_ot.dram_mb / base.dram_mb
    speedup = base.time_us / with_ot.time_us
    assert 0.15 < traffic_reduction < 0.30
    assert 1.05 < speedup < 1.20
    # OT shifts the bottleneck: bandwidth utilisation drops (paper: by ~16.7%)
    assert with_ot.bandwidth_utilization < base.bandwidth_utilization


def test_ot_single_stage_saves_less_than_two():
    one = smem_ntt_model(N, NP, MODEL, 256, 512, ot=OnTheFlyConfig(1024, 1))
    two = smem_ntt_model(N, NP, MODEL, 256, 512, ot=OnTheFlyConfig(1024, 2))
    assert two.dram_mb < one.dram_mb


def test_dft_smem_model_runs_and_is_faster_than_ntt():
    ntt = smem_ntt_model(N, NP, MODEL, 256, 512)
    dft = smem_dft_model(N, NP, MODEL, 256, 512)
    assert dft.time_us < ntt.time_us  # shared twiddle table, cheaper arithmetic
    assert dft.kernel_count == 2


def test_smem_model_from_plan_dispatch():
    radix2 = smem_model_from_plan(NTTPlan(n=N, algorithm=NTTAlgorithm.RADIX2), NP, MODEL)
    assert radix2.kernel_count == 17
    high = smem_model_from_plan(NTTPlan(n=N, algorithm=NTTAlgorithm.HIGH_RADIX, radix=16), NP, MODEL)
    assert high.kernel_count == 5
    smem = smem_model_from_plan(NTTPlan(n=N, ot=OnTheFlyConfig(1024, 1)), NP, MODEL)
    assert smem.kernel_count == 2
    assert "+OT" in smem.label


def test_figure13_linearity_in_batch_size():
    """Figure 13: execution time grows linearly in np once the GPU is saturated."""
    t21 = smem_ntt_model(N, 21, MODEL, 256, 512).time_us
    t42 = smem_ntt_model(N, 42, MODEL, 256, 512).time_us
    assert t42 / t21 == pytest.approx(2.0, rel=0.05)
