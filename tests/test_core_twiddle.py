"""Tests for the twiddle-table construction and size accounting."""

from __future__ import annotations

import pytest

from repro.modarith.modops import mul_mod
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.core.twiddle import TwiddleTable, stage_input_entries, stage_table_entries
from repro.transforms.cooley_tukey import forward_twiddle_table, inverse_twiddle_table

N = 1 << 6
P = generate_ntt_primes(60, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, P)


def test_build_matches_free_functions():
    table = TwiddleTable.build(N, P, PSI)
    assert table.forward == forward_twiddle_table(N, PSI, P)
    assert table.inverse == inverse_twiddle_table(N, PSI, P)


def test_build_derives_root_when_missing():
    table = TwiddleTable.build(N, P)
    assert pow(table.psi, 2 * N, P) == 1
    assert pow(table.psi, N, P) == P - 1


def test_shoup_companions_are_consistent():
    table = TwiddleTable.build(N, P, PSI)
    reducer = table.reducer
    for w, w_bar in zip(table.forward, table.forward_shoup):
        assert w_bar == reducer.precompute(w)[0]
    # companions actually produce correct products
    w, w_bar = table.forward_entry(5)
    assert reducer.mul_by_constant(123456789, w, (w_bar,)) == (123456789 * w) % P
    w, w_bar = table.inverse_entry(7)
    assert reducer.mul_by_constant(987654321, w, (w_bar,)) == (987654321 * w) % P


def test_size_accounting():
    table = TwiddleTable.build(N, P, PSI)
    assert table.entries == N
    assert table.words_per_entry == 2
    assert table.bytes_per_direction(with_shoup=True) == N * 2 * 8
    assert table.bytes_per_direction(with_shoup=False) == N * 8
    assert table.total_bytes() == 2 * N * 2 * 8
    assert table.stages == 6


def test_stage_accounting_matches_figure8_shape():
    """Twiddle entries double per stage while input stays constant (Figure 8)."""
    assert [stage_table_entries(s) for s in range(1, 7)] == [1, 2, 4, 8, 16, 32]
    assert stage_input_entries(N) == N
    table = TwiddleTable.build(N, P, PSI)
    assert sum(stage_table_entries(s) for s in range(1, table.stages + 1)) == N - 1
    assert table.stage_bytes(1) == 16
    assert table.stage_bytes(6, with_shoup=False) == 32 * 8
    with pytest.raises(ValueError):
        stage_table_entries(0)
    with pytest.raises(ValueError):
        stage_input_entries(100)


def test_validation():
    with pytest.raises(ValueError):
        TwiddleTable(n=48, p=P, psi=PSI)
    with pytest.raises(ValueError):
        TwiddleTable(n=N, p=998244353 - 2, psi=3)


def test_paper_table_size_example():
    """Section IV: for N = 2^17 and np = 45 with Shoup companions the forward
    tables alone occupy 2 * N * np * 8 bytes ≈ 90 MB — far beyond on-chip SRAM."""
    n = 1 << 17
    np_count = 45
    per_prime_bytes = n * 2 * 8  # one direction, with companions
    total = per_prime_bytes * np_count
    assert total > 64 * 1024  # bigger than CMEM
    assert total > 128 * 1024 * 80  # bigger than all SMEM on an 80-SM GPU
    assert total == 94371840  # exactly 90 MiB
