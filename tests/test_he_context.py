"""Tests for the :class:`HeContext` facade and the resident data plane.

Covers the API-redesign acceptance criteria:

* the three-line quickstart works;
* the backend is pinned at context creation — flipping ``REPRO_BACKEND``
  mid-session cannot mix backends inside one context;
* a ``multiply → relinearize → mod_switch_to_next`` chain on the NumPy
  backend performs **zero** list ↔ ndarray conversions (backend counter);
* scalar and numpy backends stay bit-for-bit equivalent over randomized
  ``multiply / square / relinearize / mod_switch`` chains on the resident
  path;
* domain- and ring-mismatch errors still raise on the handle-based API.
"""

from __future__ import annotations

import random

import pytest

from repro.backends import BACKEND_ENV_VAR, get_backend
from repro.he import Evaluator, HEParams, HeContext, toy_params
from repro.rns.poly import Domain, RnsPolynomial


def _params_30bit(n=64, t=257, count=3) -> HEParams:
    """30-bit primes keep the numpy backend fully on the vectorised path."""
    return HEParams(n=n, plaintext_modulus=t, prime_bits=30, prime_count=count)


# ---------------------------------------------------------------- facade


def test_quickstart_three_liner():
    ctx = HeContext.create(toy_params())
    ct = ctx.encryptor().encrypt(ctx.encoder().encode([1, 2, 3]))
    assert ctx.encoder().decode(ctx.decryptor().decrypt(ct))[:3] == [1, 2, 3]


def test_context_components_share_pinned_backend():
    ctx = HeContext.create(_params_30bit(), backend="numpy")
    assert ctx.backend.name == "numpy"
    assert ctx.keygen.backend is ctx.backend
    assert ctx.evaluator().backend is ctx.backend
    assert ctx.encryptor().backend is ctx.backend
    assert ctx.encoder().backend is ctx.backend
    assert ctx.integer_encoder().backend is ctx.backend
    assert ctx.secret_key().s.backend is ctx.backend
    for rk0, rk1 in ctx.relinearization_key().components:
        assert rk0.backend is ctx.backend and rk1.backend is ctx.backend


def test_context_warms_twiddle_tables():
    ctx = HeContext.create(_params_30bit(), backend="scalar")
    built = ctx.backend.resident_contexts
    assert built >= ctx.basis.count
    # the first real operation must not grow the cache for the session basis
    ct = ctx.encryptor().encrypt(ctx.encoder().encode([4]))
    ctx.evaluator().multiply(ct, ct)
    assert ctx.backend.resident_contexts == built


def test_integer_encoder_round_trip():
    ctx = HeContext.create(toy_params())
    encoder = ctx.integer_encoder()
    ct = ctx.encryptor().encrypt(encoder.encode(123))
    assert encoder.decode(ctx.decryptor().decrypt(ct)) == 123


def test_relinearization_key_is_cached():
    ctx = HeContext.create(_params_30bit())
    assert ctx.relinearization_key() is ctx.relinearization_key()


# ---------------------------------------------------------------- pinning


def test_env_flip_mid_session_does_not_mix_backends(monkeypatch):
    """Regression: HeContext resolves the registry once; a REPRO_BACKEND flip
    mid-session affects new contexts only, never an existing one."""
    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    ctx = HeContext.create(_params_30bit())
    assert ctx.backend.name == "numpy"

    monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
    # every factory product and every polynomial created through the context
    # still lives on the pinned backend
    assert ctx.evaluator().backend is ctx.backend
    assert ctx.encryptor().backend is ctx.backend
    encryptor = ctx.encryptor()
    ct = encryptor.encrypt(ctx.encoder().encode([1, 2]))
    assert all(poly.backend is ctx.backend for poly in ct.polys)
    product = ctx.evaluator().multiply(ct, ct)
    assert all(poly.backend is ctx.backend for poly in product.polys)
    # while a *new* context picks up the flipped environment
    assert HeContext.create(_params_30bit()).backend.name == "scalar"
    assert get_backend().name == "scalar"


# ---------------------------------------------------- resident acceptance


def test_chain_performs_zero_conversions_on_numpy_backend():
    """Acceptance: multiply → relinearize → mod_switch_to_next stays entirely
    in backend-native storage (zero list ↔ ndarray conversions)."""
    ctx = HeContext.create(_params_30bit(), backend="numpy")
    encryptor = ctx.encryptor()
    evaluator = ctx.evaluator()
    relin = ctx.relinearization_key()
    ct_a = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
    ct_b = encryptor.encrypt(ctx.encoder().encode([4, 5, 6]))

    before = ctx.backend.conversion_count
    switched = evaluator.mod_switch_to_next(
        evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
    )
    assert ctx.backend.conversion_count == before, "chain left resident storage"

    t = ctx.params.plaintext_modulus
    decoded = ctx.encoder().decode(ctx.decryptor().decrypt(switched))
    assert decoded[:3] == [(x * y) % t for x, y in zip([1, 2, 3], [4, 5, 6])]


def test_square_and_add_stay_resident_on_numpy_backend():
    ctx = HeContext.create(_params_30bit(), backend="numpy")
    encryptor = ctx.encryptor()
    evaluator = ctx.evaluator()
    ct = encryptor.encrypt(ctx.encoder().encode([2, 3]))
    before = ctx.backend.conversion_count
    evaluator.add(evaluator.square(ct), evaluator.negate(evaluator.square(ct)))
    assert ctx.backend.conversion_count == before


# ------------------------------------------------- cross-backend chains
#
# Every chain is driven by an explicit per-test seed (the parametrised
# value seeds both the plaintexts and the operation schedule, the context
# seed pins the key material) so a divergence on any CI matrix leg replays
# bit-identically everywhere.


def _chain_backends():
    """scalar / numpy / pool-forced parallel, freshly constructed per test."""
    from repro.backends.parallel import ParallelBackend

    return {
        "scalar": "scalar",
        "numpy": "numpy",
        "parallel": ParallelBackend(
            shards=2, transform_threshold=1, pointwise_threshold=1
        ),
    }


def _random_chain(context: HeContext, seed: int):
    """Run a randomized multiply/square/relinearize/mod_switch chain."""
    rng = random.Random(seed)
    t = context.params.plaintext_modulus
    encryptor = context.encryptor(seed=seed + 1)
    evaluator = context.evaluator()
    relin = context.relinearization_key()
    ct = encryptor.encrypt(
        context.encoder().encode([rng.randrange(t) for _ in range(8)])
    )
    other = encryptor.encrypt(
        context.encoder().encode([rng.randrange(t) for _ in range(8)])
    )
    for _ in range(4):
        op = rng.choice(("multiply", "square", "add", "sub"))
        if op == "multiply":
            ct = evaluator.relinearize(evaluator.multiply(ct, other), relin)
        elif op == "square":
            ct = evaluator.relinearize(evaluator.square(ct), relin)
        elif op == "add":
            ct = evaluator.add(ct, other)
        else:
            ct = evaluator.sub(ct, other)
    if rng.random() < 0.8 and ct.basis.count > 1:
        ct = evaluator.mod_switch_to_next(ct)
        other = None  # different level now; chain ends here
    return ct


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_randomized_chains_bit_identical_across_backends(seed):
    params = _params_30bit(n=64, t=257, count=4)
    results = {}
    backends = _chain_backends()
    try:
        for name, backend in backends.items():
            context = HeContext.create(params, backend=backend, seed=7)
            ct = _random_chain(context, seed)
            results[name] = (
                ct.level,
                [poly.to_coeff_lists() for poly in ct.polys],
            )
    finally:
        backends["parallel"].close()
    assert results["scalar"] == results["numpy"] == results["parallel"]


@pytest.mark.parametrize("seed", [5, 9])
def test_randomized_chains_decrypt_identically_across_backends(seed):
    """Same chains, checked at the plaintext level (covers CRT boundaries)."""
    params = _params_30bit(n=64, t=257, count=4)
    decoded = {}
    backends = _chain_backends()
    try:
        for name, backend in backends.items():
            context = HeContext.create(params, backend=backend, seed=7)
            ct = _random_chain(context, seed)
            decoded[name] = context.encoder().decode(context.decryptor().decrypt(ct))
    finally:
        backends["parallel"].close()
    assert decoded["scalar"] == decoded["numpy"] == decoded["parallel"]


# ----------------------------------------------------- mismatch errors


def test_domain_mismatch_raises_on_handle_api():
    ctx = HeContext.create(_params_30bit())
    basis = ctx.basis
    a = RnsPolynomial.random_uniform(basis, ctx.params.n, random.Random(0), backend=ctx.backend)
    b = a.to_ntt()
    assert b.domain is Domain.NTT
    with pytest.raises(ValueError):
        _ = a + b
    with pytest.raises(ValueError):
        _ = a * b


def test_ring_mismatch_raises_on_handle_api():
    ctx = HeContext.create(_params_30bit(count=3))
    encryptor = ctx.encryptor()
    evaluator = ctx.evaluator()
    ct = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
    switched = evaluator.mod_switch_to_next(ct)
    with pytest.raises(ValueError):
        evaluator.add(switched, ct)
    # plaintexts encoded for the wrong level are rejected, not corrupted
    stray = RnsPolynomial.from_coefficients(
        [1] * ctx.params.n, ct.basis.drop_last(1), backend=ctx.backend
    )
    with pytest.raises(ValueError):
        evaluator.multiply_plain(ct, stray)
    with pytest.raises(ValueError):
        evaluator.add_plain(ct, stray)


def test_relinearization_key_level_mismatch_raises():
    ctx = HeContext.create(_params_30bit(count=3))
    encryptor = ctx.encryptor()
    evaluator = ctx.evaluator()
    relin = ctx.relinearization_key()
    ct = encryptor.encrypt(ctx.encoder().encode([1]))
    product = evaluator.multiply(ct, ct)
    switched = evaluator.mod_switch_to_next(product)
    with pytest.raises(ValueError):
        evaluator.relinearize(switched, relin)
