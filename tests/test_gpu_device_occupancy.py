"""Tests for the GPU device description and occupancy calculator."""

from __future__ import annotations

import pytest

from repro.gpu.device import A100_LIKE, DeviceSpec, TITAN_V
from repro.gpu.occupancy import occupancy, registers_with_spill


def test_titan_v_datasheet_numbers():
    assert TITAN_V.sm_count == 80
    assert TITAN_V.cores_per_sm == 64
    assert TITAN_V.max_warps_per_sm == 64
    assert TITAN_V.register_file_bytes_per_sm == 256 * 1024
    assert TITAN_V.cmem_bytes == 64 * 1024
    assert TITAN_V.peak_bandwidth_gbps == pytest.approx(651.0)
    assert TITAN_V.memory_transaction_bytes == 32
    TITAN_V.validate()
    A100_LIKE.validate()


def test_lane_throughput_and_bandwidth_units():
    assert TITAN_V.lane_throughput_per_second == pytest.approx(80 * 64 * 1.2e9)
    assert TITAN_V.peak_bandwidth_bytes_per_us == pytest.approx(651e3)


def test_device_validation_catches_nonsense():
    bad = DeviceSpec(
        name="bad", sm_count=0, cores_per_sm=64, clock_ghz=1.0, registers_per_sm=1,
        max_registers_per_thread=255, smem_bytes_per_sm=1, smem_bytes_per_block_max=1,
        cmem_bytes=1, max_threads_per_sm=2048, max_threads_per_block=1024,
        max_blocks_per_sm=32, warp_size=32, peak_bandwidth_gbps=100, l2_bytes=1,
        memory_transaction_bytes=32, dram_capacity_bytes=1,
    )
    with pytest.raises(ValueError):
        bad.validate()


def test_registers_with_spill():
    assert registers_with_spill(100, TITAN_V) == (100, 0)
    assert registers_with_spill(255, TITAN_V) == (255, 0)
    assert registers_with_spill(290, TITAN_V) == (255, 140)


def test_occupancy_thread_limited():
    result = occupancy(TITAN_V, threads_per_block=256, registers_per_thread=16)
    assert result.limiter == "threads"
    assert result.blocks_per_sm == 8
    assert result.warps_per_sm == 64
    assert result.occupancy == 1.0
    assert result.spilled_bytes_per_thread == 0


def test_occupancy_register_limited():
    result = occupancy(TITAN_V, threads_per_block=256, registers_per_thread=70)
    assert result.limiter == "registers"
    assert result.blocks_per_sm == 65536 // (70 * 256)
    assert result.occupancy < 1.0


def test_occupancy_smem_limited():
    result = occupancy(
        TITAN_V, threads_per_block=256, registers_per_thread=32, smem_bytes_per_block=40 * 1024
    )
    assert result.limiter == "shared_memory"
    assert result.blocks_per_sm == 2


def test_occupancy_spill_reported():
    result = occupancy(TITAN_V, threads_per_block=256, registers_per_thread=300)
    assert result.spilled_bytes_per_thread == (300 - 255) * 4
    assert result.blocks_per_sm >= 1


def test_occupancy_zero_when_block_does_not_fit():
    result = occupancy(
        TITAN_V, threads_per_block=256, registers_per_thread=32,
        smem_bytes_per_block=200 * 1024,
    )
    assert result.blocks_per_sm == 0
    assert result.occupancy == 0.0


def test_occupancy_validation():
    with pytest.raises(ValueError):
        occupancy(TITAN_V, threads_per_block=0, registers_per_thread=32)
    with pytest.raises(ValueError):
        occupancy(TITAN_V, threads_per_block=2048, registers_per_thread=32)
    with pytest.raises(ValueError):
        occupancy(TITAN_V, threads_per_block=256, registers_per_thread=-1)


def test_occupancy_monotone_in_register_pressure():
    previous = 65.0
    for registers in (16, 32, 48, 64, 96, 128, 255):
        result = occupancy(TITAN_V, threads_per_block=256, registers_per_thread=registers)
        assert result.warps_per_sm <= previous
        previous = result.warps_per_sm
