"""Cross-implementation integration tests.

Every transform implementation in the library (scalar Cooley-Tukey engine,
Stockham, four-step, vectorised backend, RNS polynomial layer, HE evaluator)
must agree on the same mathematics.  These tests pin the implementations
against each other end to end — the kind of consistency a downstream user
relies on when mixing backends.
"""

from __future__ import annotations

import random

import pytest

from repro.core import NTTEngine, NTTPlan, OnTheFlyConfig
from repro.experiments.__main__ import main as experiments_main
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomial
from repro.transforms.bitrev import bit_reverse_permute
from repro.transforms.cooley_tukey import NegacyclicTransformer
from repro.transforms.four_step import four_step_negacyclic_ntt
from repro.transforms.stockham import stockham_ntt_forward
from repro.transforms.vectorized import VectorizedNTT

N = 1 << 6
P30 = generate_ntt_primes(30, 1, N)[0]
PSI30 = primitive_root_of_unity(2 * N, P30)


def random_poly(n, p, seed):
    rng = random.Random(seed)
    return [rng.randrange(p) for _ in range(n)]


def test_all_forward_implementations_agree():
    """Engine, transformer, Stockham, four-step and vectorised backends agree."""
    values = random_poly(N, P30, seed=1)
    transformer = NegacyclicTransformer(N, P30, PSI30)
    engine = NTTEngine(N, P30, NTTPlan(n=N, ot=OnTheFlyConfig(base=16, ot_stages=2)), psi=PSI30)
    vectorised = VectorizedNTT(N, P30, PSI30)

    bit_reversed = transformer.forward(values)
    natural = bit_reverse_permute(bit_reversed)

    assert engine.forward(values) == bit_reversed
    assert vectorised.forward(values) == bit_reversed
    assert stockham_ntt_forward(values, PSI30, P30) == natural
    assert four_step_negacyclic_ntt(values, PSI30, P30) == natural


def test_all_multiplication_paths_agree():
    """The polynomial product is identical through every available path."""
    a = random_poly(N, P30, seed=2)
    b = random_poly(N, P30, seed=3)
    transformer = NegacyclicTransformer(N, P30, PSI30)
    engine = NTTEngine(N, P30, psi=PSI30)
    vectorised = VectorizedNTT(N, P30, PSI30)
    basis = RnsBasis.from_primes([P30], N)
    rns_product = (
        RnsPolynomial.from_coefficients(a, basis) * RnsPolynomial.from_coefficients(b, basis)
    ).to_big_coefficients()

    expected = transformer.multiply(a, b)
    assert engine.multiply(a, b) == expected
    assert vectorised.multiply(a, b) == expected
    assert rns_product == expected


def test_engine_with_30bit_prime_plan_variants():
    """The engine accepts single-word primes and every plan family gives identical values."""
    from repro.core.plan import NTTAlgorithm

    values = random_poly(N, P30, seed=4)
    reference = NTTEngine(N, P30, NTTPlan(n=N, algorithm=NTTAlgorithm.RADIX2), psi=PSI30).forward(values)
    for plan in (
        NTTPlan(n=N, algorithm=NTTAlgorithm.HIGH_RADIX, radix=8, word_size_bits=32),
        NTTPlan(n=N, algorithm=NTTAlgorithm.SMEM, per_thread_points=4),
    ):
        assert NTTEngine(N, P30, plan, psi=PSI30).forward(values) == reference


def test_experiments_cli_entry_point(capsys):
    """The ``python -m repro.experiments`` entry point runs selected experiments."""
    assert experiments_main(["fig8"]) == 0
    captured = capsys.readouterr().out
    assert "Figure 8" in captured
    assert experiments_main(["not-an-experiment"]) == 2
    captured = capsys.readouterr()
    assert "unknown experiment" in captured.err
