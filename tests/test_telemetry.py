"""Telemetry subsystem tests: tracer, metrics registry, exporters, and the
cross-layer/cross-process integration the ISSUE's acceptance criteria pin.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.backends.base import uninstrumented
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.parallel import ParallelBackend
from repro.backends.scalar import ScalarBackend
from repro.he import HeContext, HEParams
from repro.telemetry import (
    NULL_SPAN,
    TRACER,
    MetricsRegistry,
    chrome_trace,
    format_summary,
    summarize,
    write_chrome_trace,
)
from repro.telemetry.tracer import ATTRS, NAME, PARENT, PHASE, PID, SID, TS


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with a disabled, empty tracer."""
    TRACER.stop()
    TRACER.clear()
    yield
    TRACER.stop()
    TRACER.clear()


def _params(n=64, prime_count=3):
    return HEParams(
        n=n, plaintext_modulus=257, prime_bits=30, prime_count=prime_count
    )


def _chain(ctx, evaluator=None):
    """The canonical multiply → relinearize → mod-switch chain."""
    evaluator = evaluator if evaluator is not None else ctx.evaluator()
    enc = ctx.encryptor()
    ct = enc.encrypt(ctx.integer_encoder().encode(7))
    return evaluator.mod_switch_to_next(
        evaluator.relinearize(
            evaluator.multiply(ct, ct), ctx.relinearization_key()
        )
    )


# ------------------------------------------------------------------ tracer


def test_disabled_span_is_the_null_singleton():
    assert TRACER.span("anything", attr=1) is NULL_SPAN
    with TRACER.span("anything") as span:
        assert span is NULL_SPAN
        assert span.sid is None
    assert TRACER.events() == []


def test_spans_nest_and_balance():
    TRACER.start()
    with TRACER.span("outer", k=1) as outer:
        with TRACER.span("inner") as inner:
            pass
        with TRACER.span("inner2") as inner2:
            pass
    TRACER.stop()
    events = TRACER.events()
    assert [e[PHASE] for e in events] == ["B", "B", "E", "B", "E", "E"]
    # Both children link to the outer span; the outer span is a root.
    assert inner.parent == outer.sid
    assert inner2.parent == outer.sid
    assert outer.parent is None
    begins = sorted(e[SID] for e in events if e[PHASE] == "B")
    ends = sorted(e[SID] for e in events if e[PHASE] == "E")
    assert begins == ends
    # End timestamps never precede their begin.
    opened = {e[SID]: e[TS] for e in events if e[PHASE] == "B"}
    for e in events:
        if e[PHASE] == "E":
            assert e[TS] >= opened[e[SID]]


def test_span_parents_are_per_thread():
    TRACER.start()
    seen = {}

    def record(tag):
        with TRACER.span("worker-root") as root:
            seen[tag] = root.parent

    with TRACER.span("main-root"):
        threads = [
            threading.Thread(target=record, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    TRACER.stop()
    # The other threads never see the main thread's open span as a parent.
    assert seen == {0: None, 1: None}


def test_ingest_reparents_and_clamps():
    TRACER.start()
    with TRACER.span("dispatch") as dispatch:
        pass
    foreign = [
        ("B", "pool.task", 0.0, 4242, 1, "4242.1", None, None),
        ("B", "op.mul", 0.5, 4242, 1, "4242.2", "4242.1", None),
        ("E", "op.mul", 1.5, 4242, 1, "4242.2", "4242.1", None),
        ("E", "pool.task", 99.0, 4242, 1, "4242.1", None, None),
    ]
    TRACER.ingest(foreign, dispatch.sid, lo=10.0, hi=11.0)
    TRACER.stop()
    ingested = TRACER.events()[2:]
    roots = [e for e in ingested if e[NAME] == "pool.task"]
    assert all(e[PARENT] == dispatch.sid for e in roots)
    # Nested parents are preserved; timestamps are clamped into [lo, hi].
    assert all(e[PARENT] == "4242.1" for e in ingested if e[NAME] == "op.mul")
    assert all(10.0 <= e[TS] <= 11.0 for e in ingested)


# ----------------------------------------------------------------- metrics


def test_metrics_counters_cascade_to_parent():
    parent = MetricsRegistry()
    child = MetricsRegistry(parent=parent)
    child.inc("x", 3)
    child.inc("x")
    assert child.value("x") == 4
    assert parent.value("x") == 4
    # zero() is the local-only compatibility shim.
    child.zero("x")
    assert child.value("x") == 0
    assert parent.value("x") == 4
    # reset() cascades down through the weak child links.
    parent.inc("y")
    parent.reset()
    assert parent.value("x") == parent.value("y") == 0
    assert child.value("x") == 0


def test_metrics_gauges_and_histograms():
    reg = MetricsRegistry()
    state = {"v": 5}
    reg.set_gauge("g", lambda: state["v"])
    reg.observe("h", 2.0)
    reg.observe("h", 4.0)
    snap = reg.snapshot()
    assert snap["g"] == 5
    exact = {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0}
    assert {k: snap["h"][k] for k in exact} == exact
    # Snapshots also carry estimated percentiles, bracketed by min/max.
    assert 2.0 <= snap["h"]["p50"] <= snap["h"]["p90"] <= snap["h"]["p99"] <= 4.0
    state["v"] = 9
    assert reg.snapshot()["g"] == 9
    reg.reset()
    snap = reg.snapshot()
    assert "h" not in snap
    assert snap["g"] == 9  # gauges report live state; reset leaves them


def test_histogram_quantiles_estimate_within_bucket_tolerance():
    reg = MetricsRegistry()
    for value in range(1, 1001):
        reg.observe("lat", float(value))
    # Log buckets at 8/octave: any estimate within ~±4.5% of the truth.
    assert reg.quantile("lat", 0.5) == pytest.approx(500.0, rel=0.05)
    assert reg.quantile("lat", 0.99) == pytest.approx(990.0, rel=0.05)
    # The extremes are exact (clamped to the tracked min/max).
    assert reg.quantile("lat", 0.0) == 1.0
    assert reg.quantile("lat", 1.0) == 1000.0
    summary = reg.histogram("lat")
    assert summary["count"] == 1000
    assert summary["p50"] == reg.quantile("lat", 0.5)
    # A single sample reports itself at every percentile, zeros included
    # (non-positive samples land in the reserved zero bucket).
    reg.observe("one", 0.0)
    assert reg.quantile("one", 0.5) == 0.0
    assert reg.histogram("one")["p99"] == 0.0
    # Absent names and malformed q are clean errors, not KeyErrors.
    assert reg.quantile("nope", 0.5) is None
    assert reg.histogram("nope") is None
    with pytest.raises(ValueError, match="quantile"):
        reg.quantile("lat", 1.5)


def test_histogram_observations_cascade_to_parent_quantiles():
    parent = MetricsRegistry()
    child = MetricsRegistry(parent=parent)
    child.observe("lat", 1.0)
    child.observe("lat", 3.0)
    parent.observe("lat", 9.0)
    assert child.histogram("lat")["count"] == 2
    assert parent.histogram("lat")["count"] == 3
    assert parent.histogram("lat")["max"] == 9.0


def test_declared_counters_appear_in_snapshot_at_zero():
    reg = MetricsRegistry()
    reg.declare("a.b", "c.d")
    assert reg.snapshot() == {"a.b": 0, "c.d": 0}


# ------------------------------------------------- backend counter shims


def test_backend_shims_match_registry():
    backend = ScalarBackend(engine="radix2")
    tensor = backend.from_rows([[1, 2, 3, 4]], [97])
    backend.to_rows(tensor)
    assert backend.conversion_count == 2
    assert backend.metrics.value("conversions.rows") == 2
    backend.reset_conversion_count()
    assert backend.conversion_count == 0
    assert backend.metrics.value("conversions.rows") == 0


@pytest.mark.parametrize("backend_name", ["scalar", "numpy", "parallel"])
def test_context_metrics_snapshot_covers_every_surface(backend_name):
    if backend_name == "parallel":
        backend = ParallelBackend(shards=2)
    elif backend_name == "numpy":
        backend = NumpyBackend()
    else:
        backend = ScalarBackend()
    try:
        ctx = HeContext.create(_params(), backend=backend, engine="radix2")
        _chain(ctx)
        snap = ctx.metrics()
        for key in (
            "conversions.rows",
            "pool.dispatches",
            "plan.compiled",
            "plan.cache_hits",
            "ntt.invocations",
            "ntt.engine_choices",
            "ntt.engine_timings",
        ):
            assert key in snap, key
        assert snap["ntt.invocations"] > 0
        assert snap["plan.compiled"] > 0
        if backend_name == "parallel":
            assert "shm.bytes_in_use" in snap
    finally:
        if backend_name == "parallel":
            backend.close()


def test_reset_metrics_zeroes_every_counter_in_one_call():
    ctx = HeContext.create(_params(), backend=NumpyBackend(), engine="radix2")
    evaluator = ctx.evaluator()
    _chain(ctx, evaluator)
    assert ctx.metrics()["ntt.invocations"] > 0
    assert ctx.backend.conversion_count > 0
    ctx.reset_metrics()
    snap = ctx.metrics()
    assert snap["conversions.rows"] == 0
    assert snap["ntt.invocations"] == 0
    assert snap["plan.compiled"] == 0
    assert snap["plan.cache_hits"] == 0
    # The cascade reached the evaluator the context handed out earlier.
    assert evaluator.ntt_invocations == 0
    assert evaluator.plans_compiled == 0
    # A second run through the *same* evaluator re-registers cache hits
    # (the plan cache itself is untouched by a metrics reset).
    _chain(ctx, evaluator)
    assert evaluator.plan_cache_hits > 0
    assert evaluator.plans_compiled == 0


def test_autotune_histogram_lands_in_backend_metrics():
    from repro.modarith.primes import generate_ntt_primes

    backend = ScalarBackend()  # no pin: first transform races the tuner
    [p] = generate_ntt_primes(30, 1, 64)
    tensor = backend.from_rows([[i % p for i in range(64)]] * 2, [p, p])
    backend.forward_ntt_batch(tensor)
    snap = backend.metrics.snapshot()
    assert snap["ntt.autotune_seconds"]["count"] >= 1
    assert backend.engine_choices  # the verdict surfaced on the gauge too
    assert snap["ntt.engine_choices"] == backend.engine_choices


# --------------------------------------------------- instrumented tracing


def test_traced_chain_records_op_and_plan_spans():
    ctx = HeContext.create(_params(), backend=NumpyBackend(), engine="radix2")
    TRACER.start()
    _chain(ctx)
    TRACER.stop()
    names = {e[NAME] for e in TRACER.events() if e[PHASE] == "B"}
    for expected in (
        "plan.compile",
        "plan.execute",
        "op.forward_ntt",
        "op.inverse_ntt",
        "op.mul",
        "ntt.engine",
        "op.mod_switch",
    ):
        assert expected in names, expected


def test_disabled_tracing_adds_no_events_and_no_counter_drift():
    """The overhead guard: with tracing off, the instrumented stack does
    exactly the work the uninstrumented stack does — same conversions,
    same dispatch count, zero events."""
    ctx = HeContext.create(_params(), backend=NumpyBackend(), engine="radix2")
    ctx.reset_metrics()
    _chain(ctx)
    instrumented = ctx.metrics()
    assert TRACER.events() == []

    with uninstrumented():
        ctx2 = HeContext.create(
            _params(), backend=NumpyBackend(), engine="radix2"
        )
        ctx2.reset_metrics()
        _chain(ctx2)
        baseline = ctx2.metrics()
    assert instrumented["conversions.rows"] == baseline["conversions.rows"]
    assert instrumented["pool.dispatches"] == baseline["pool.dispatches"]
    assert instrumented["ntt.invocations"] == baseline["ntt.invocations"]


def test_pool_worker_spans_nest_under_their_stage():
    """Trace integrity across the process boundary: worker spans ship back
    with shard results and appear as children of the dispatch that
    submitted them, inside the stage and plan spans, with worker PIDs."""
    backend = ParallelBackend(
        shards=2, transform_threshold=1, pointwise_threshold=1
    )
    try:
        ctx = HeContext.create(_params(), backend=backend, engine="radix2")
        pipe = ctx.pipeline()
        enc = ctx.encryptor()
        ct = enc.encrypt(ctx.integer_encoder().encode(7))

        def run():
            x = pipe.load(ct)
            return (
                (x * x)
                .relinearize(ctx.relinearization_key())
                .mod_switch()
                .run()
            )

        run()  # warm: pool spin-up and plan compile stay off the trace
        TRACER.start()
        run()
        TRACER.stop()
        events = TRACER.events()

        begins = {e[SID]: e for e in events if e[PHASE] == "B"}
        by_name = {}
        for e in begins.values():
            by_name.setdefault(e[NAME], []).append(e)
        assert by_name.get("pool.task"), "no worker spans were ingested"

        # Every begin has exactly one end (pairs balance).
        assert sorted(e[SID] for e in events if e[PHASE] == "B") == sorted(
            e[SID] for e in events if e[PHASE] == "E"
        )

        main_pid = os.getpid()
        for task in by_name["pool.task"]:
            assert task[PID] != main_pid  # recorded in the worker
            dispatch = begins[task[PARENT]]
            assert dispatch[NAME] == "pool.dispatch"
            stage = begins[dispatch[PARENT]]
            assert stage[NAME] == "plan.stage"
            plan = begins[stage[PARENT]]
            assert plan[NAME] == "plan.execute"
            # Clamped into the dispatch interval.
            dispatch_end = next(
                e
                for e in events
                if e[PHASE] == "E" and e[SID] == dispatch[SID]
            )
            assert dispatch[TS] <= task[TS] <= dispatch_end[TS]
        # Worker-side kernel spans arrive nested under their pool.task.
        task_sids = {e[SID] for e in by_name["pool.task"]}
        worker_ops = [
            e
            for e in begins.values()
            if e[NAME].startswith("op.") and e[PID] != main_pid
        ]
        assert worker_ops
        for op in worker_ops:
            node = op
            while node[PARENT] is not None and node[SID] not in task_sids:
                node = begins[node[PARENT]]
            assert node[SID] in task_sids
    finally:
        backend.close()


# ------------------------------------------------- stack-free request roots


def test_begin_end_and_span_under_stitch_across_stacks():
    TRACER.start()
    root = TRACER.begin("service.request", request_id="r1", ops="multiply")
    # begin() leaves the thread stack untouched: an unrelated span opened
    # now is a root, not a child of the request.
    with TRACER.span("bystander") as bystander:
        pass
    with TRACER.span_under(root, "service.prepare") as prepare:
        with TRACER.span("boundary.from_rows") as conversion:
            pass
    TRACER.end(root, "service.request")
    TRACER.stop()
    assert bystander.parent is None
    assert prepare.parent == root
    # span_under still pushes the current thread's stack, so synchronous
    # children opened inside its body nest normally.
    assert conversion.parent == prepare.sid
    events = TRACER.events()
    root_events = [e for e in events if e[SID] == root]
    assert [e[PHASE] for e in root_events] == ["B", "E"]
    assert root_events[0][ATTRS] == {"request_id": "r1", "ops": "multiply"}


def test_begin_returns_none_and_end_noops_while_disabled():
    assert TRACER.begin("service.request") is None
    TRACER.end(None, "service.request")
    with TRACER.span_under(None, "anything") as span:
        assert span is NULL_SPAN
    assert TRACER.events() == []


# ------------------------------------------------------ request span trees


def _synthetic_coalesced_trace():
    """Two served requests riding one shared batch, as raw event tuples."""
    return [
        ("B", "service.request", 0.0, 10, 1, "10.1", None, {"request_id": "a"}),
        ("B", "service.request", 0.1, 10, 1, "10.2", None, {"request_id": "b"}),
        ("B", "service.prepare", 0.2, 10, 2, "10.3", "10.1", {"tenant": "t"}),
        ("E", "service.prepare", 0.3, 10, 2, "10.3", "10.1", None),
        # The shared batch: parented under rider a's root, naming both.
        ("B", "service.batch", 0.4, 10, 2, "10.4", "10.1",
         {"request_ids": ("a", "b"), "size": 2}),
        ("B", "plan.execute", 0.5, 10, 2, "10.5", "10.4", None),
        ("B", "pool.task", 0.55, 77, 1, "77.1", "10.5", None),
        ("E", "pool.task", 0.58, 77, 1, "77.1", "10.5", None),
        ("E", "plan.execute", 0.6, 10, 2, "10.5", "10.4", None),
        ("E", "service.batch", 0.7, 10, 2, "10.4", "10.1", None),
        ("E", "service.request", 0.8, 10, 1, "10.1", None, None),
        ("E", "service.request", 0.9, 10, 1, "10.2", None, None),
    ]


def test_request_tree_reassembles_direct_and_shared_subtrees():
    from repro.telemetry import request_ids, request_tree

    events = _synthetic_coalesced_trace()
    assert request_ids(events) == ["a", "b"]

    def walk(node):
        yield node
        for child in node["children"]:
            yield from walk(child)

    tree_a = request_tree(events, "a")
    assert tree_a["name"] == "service.request"
    assert tree_a["attrs"]["request_id"] == "a"
    by_name_a = {node["name"]: node for node in walk(tree_a)}
    # Rider a owns the batch: reachable through parent sids, not grafted.
    assert "shared" not in by_name_a["service.batch"]
    assert by_name_a["service.prepare"]["attrs"] == {"tenant": "t"}
    # Worker spans keep their PID, and times are µs relative to the root.
    assert by_name_a["pool.task"]["pid"] == 77
    assert by_name_a["pool.task"]["start_us"] == pytest.approx(0.55e6)
    assert tree_a["start_us"] == 0.0
    assert tree_a["duration_us"] == pytest.approx(0.8e6)

    tree_b = request_tree(events, "b")
    by_name_b = {node["name"]: node for node in walk(tree_b)}
    # Rider b gets the same subtree grafted in, marked shared.
    batch = by_name_b["service.batch"]
    assert batch["shared"] is True
    assert batch["attrs"]["request_ids"] == ("a", "b")
    assert "plan.execute" in by_name_b and "pool.task" in by_name_b
    # But not rider a's private prepare span.
    assert "service.prepare" not in by_name_b

    assert request_tree(events, "nope") is None


def test_request_tree_survives_open_spans_and_repeated_ids():
    from repro.telemetry import request_tree

    events = [
        ("B", "service.request", 0.0, 10, 1, "10.1", None, {"request_id": "a"}),
        ("E", "service.request", 0.5, 10, 1, "10.1", None, None),
        # The id was reused later; the tree must be the latest root, even
        # though its end was never captured (still in flight).
        ("B", "service.request", 1.0, 10, 1, "10.2", None, {"request_id": "a"}),
        ("B", "service.prepare", 1.1, 10, 2, "10.3", "10.2", None),
    ]
    tree = request_tree(events, "a")
    assert tree["sid"] == "10.2"
    assert tree["duration_us"] is None  # open span: no end yet
    assert [child["name"] for child in tree["children"]] == ["service.prepare"]


# -------------------------------------------------------- sampling profiler


def test_profiler_sample_once_attributes_tagged_threads(tmp_path):
    from repro.telemetry import SamplingProfiler, profile_tag

    profiler = SamplingProfiler(interval=0.001)
    ready = threading.Event()
    release = threading.Event()

    def tenant_work_parked():
        with profile_tag("tenant:abc"):
            ready.set()
            release.wait(timeout=30)

    worker = threading.Thread(target=tenant_work_parked)
    worker.start()
    try:
        assert ready.wait(timeout=30)
        profiler.sample_once()
    finally:
        release.set()
        worker.join()

    assert profiler.sample_count == 1
    lines = profiler.collapsed()
    tagged = [line for line in lines if line.startswith("tenant:abc;")]
    assert tagged, lines
    # The collapsed stack reads root→leaf: tag first, parked frame inside.
    assert any("tenant_work_parked" in line for line in tagged)
    # Every line is "frame;frame;... count" — flamegraph.pl's input format.
    path = tmp_path / "profile.txt"
    profiler.write_collapsed(str(path))
    written = path.read_text().splitlines()
    assert written == lines
    for line in written:
        stack, _, count = line.rpartition(" ")
        assert stack and int(count) >= 1


def test_profile_tag_is_reentrant_per_thread():
    from repro.telemetry.profiler import _TAGS, profile_tag

    ident = threading.get_ident()
    assert _TAGS.get(ident) is None
    with profile_tag("tenant:outer"):
        assert _TAGS[ident] == "tenant:outer"
        with profile_tag("tenant:inner"):
            assert _TAGS[ident] == "tenant:inner"
        assert _TAGS[ident] == "tenant:outer"
    assert ident not in _TAGS


def test_profiler_lifecycle_and_validation():
    from repro.telemetry import SamplingProfiler

    with pytest.raises(ValueError, match="interval"):
        SamplingProfiler(interval=0.0)
    profiler = SamplingProfiler(interval=0.001)
    assert not profiler.running
    profiler.start()
    profiler.start()  # idempotent while running
    assert profiler.running
    profiler.stop()
    assert not profiler.running
    profiler.sample_once()
    assert profiler.sample_count == 1
    profiler.reset()
    assert profiler.sample_count == 0
    assert profiler.collapsed() == []


# ------------------------------------------------- prometheus text format


def test_prometheus_rendering_families_labels_and_escaping():
    from repro.telemetry.prometheus import CONTENT_TYPE, render_registries

    assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")
    root = MetricsRegistry()
    tenant = MetricsRegistry(parent=root)
    tenant.inc("service.requests", 3)
    tenant.observe("service.latency.total_seconds", 0.25)
    root.set_gauge("shm.bytes_in_use", lambda: 1024)
    # Structured gauges have no Prometheus representation: JSON-only.
    root.set_gauge("ntt.engine_choices", lambda: {(64, 30, 2): "radix2"})
    text = render_registries(root, {'key"quoted': tenant})
    lines = text.splitlines()
    assert text.endswith("\n")

    # Counters: name mangling, _total suffix, root unlabelled + tenant
    # labelled under one family, label values escaped.
    assert "# TYPE repro_service_requests_total counter" in lines
    assert "repro_service_requests_total 3" in lines
    assert 'repro_service_requests_total{tenant="key\\"quoted"} 3' in lines

    # Histograms export as summaries: quantiles plus exact sum/count.
    assert "# TYPE repro_service_latency_total_seconds summary" in lines
    assert (
        'repro_service_latency_total_seconds{quantile="0.5",tenant="key\\"quoted"} 0.25'
        in lines
    )
    assert (
        'repro_service_latency_total_seconds_sum{tenant="key\\"quoted"} 0.25'
        in lines
    )
    assert (
        'repro_service_latency_total_seconds_count{tenant="key\\"quoted"} 1'
        in lines
    )

    # Numeric gauges export; structured ones are silently excluded.
    assert "repro_shm_bytes_in_use 1024" in lines
    assert "repro_ntt_engine_choices" not in text
    # One TYPE declaration per family, however many registries sampled it.
    type_lines = [line for line in lines if line.startswith("# TYPE ")]
    assert len(type_lines) == len(set(type_lines))


# ------------------------------------------------------- JSON-lines logging


def test_json_lines_log_drops_none_and_degrades_unsafe_values():
    import io

    from repro.telemetry import JsonLinesLog

    stream = io.StringIO()
    log = JsonLinesLog(stream)
    record = log.write(
        "request", status=200, tenant=None, oddball={"frozen", "set"}
    )
    log.close()  # never closes a caller-owned stream
    [line] = stream.getvalue().splitlines()
    parsed = json.loads(line)
    assert parsed["ts"] == record["ts"] and parsed["status"] == record["status"]
    assert parsed["event"] == "request"
    assert parsed["status"] == 200
    assert parsed["ts"] > 0
    assert "tenant" not in parsed  # None-valued context is dropped
    assert isinstance(parsed["oddball"], str)  # degraded, never raised


def test_json_lines_log_appends_to_path(tmp_path):
    from repro.telemetry import JsonLinesLog

    path = tmp_path / "access.log"
    log = JsonLinesLog(str(path))
    log.write("request", status=200)
    log.close()
    again = JsonLinesLog(str(path))  # append mode: reopening never truncates
    again.write("request", status=404, error="no route")
    again.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["status"] for r in records] == [200, 404]
    assert records[1]["error"] == "no route"


# --------------------------------------------------------------- exporters


def test_chrome_trace_round_trips_with_required_fields(tmp_path):
    ctx = HeContext.create(_params(), backend=NumpyBackend(), engine="radix2")
    TRACER.start()
    _chain(ctx)
    TRACER.stop()
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), TRACER.events())
    loaded = json.loads(path.read_text())
    events = loaded["traceEvents"]
    assert events
    for entry in events:
        for field in ("ph", "pid", "tid"):
            assert field in entry, field
        if entry["ph"] in ("B", "E"):
            assert "ts" in entry and entry["ts"] >= 0
    # Begin/end counts balance in the export too.
    assert sum(1 for e in events if e["ph"] == "B") == sum(
        1 for e in events if e["ph"] == "E"
    )
    # A metadata event names the (single) process.
    assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)


def test_summarize_self_time_partitions_and_ntt_share():
    ctx = HeContext.create(_params(), backend=NumpyBackend(), engine="radix2")
    TRACER.start()
    _chain(ctx)
    TRACER.stop()
    stats = summarize(TRACER.events())
    assert 0.0 < stats["ntt_share"] <= 1.0
    # Self time partitions: per-name self sums to the reported total.
    total = sum(entry["self"] for entry in stats["names"].values())
    assert total == pytest.approx(stats["total_self_seconds"])
    # And never exceeds inclusive time.
    for entry in stats["names"].values():
        assert entry["self"] <= entry["total"] + 1e-12
    text = format_summary(stats)
    assert "measured NTT time share" in text
    assert "op.forward_ntt" in text


def test_summarize_drops_unbalanced_spans():
    TRACER.start()
    with TRACER.span("closed"):
        pass
    # Forge a begin whose end was never captured.
    TRACER._events.append(("B", "dangling", 0.0, 1, 1, "1.999", None, None))
    TRACER.stop()
    stats = summarize(TRACER.events())
    assert "dangling" not in stats["names"]
    assert "closed" in stats["names"]


def test_summarize_guards_empty_and_zero_duration_traces():
    # No events at all: every aggregate is zero, nothing divides by zero.
    stats = summarize([])
    assert stats == {
        "names": {},
        "total_self_seconds": 0.0,
        "ntt_self_seconds": 0.0,
        "ntt_share": 0.0,
    }
    text = format_summary(stats)
    assert "measured NTT time share: 0.0%" in text

    # Balanced spans of exactly zero duration: total self time is zero,
    # so the share (and every per-name share line) must stay defined.
    zero = [
        ("B", "op.forward_ntt", 1.0, 1, 1, "1.1", None, None),
        ("E", "op.forward_ntt", 1.0, 1, 1, "1.1", None, None),
        ("B", "op.mul", 2.0, 1, 1, "1.2", None, None),
        ("E", "op.mul", 2.0, 1, 1, "1.2", None, None),
    ]
    stats = summarize(zero)
    assert stats["total_self_seconds"] == 0.0
    assert stats["ntt_share"] == 0.0
    text = format_summary(stats)
    assert "op.forward_ntt" in text and "0.0%" in text

    # And the chrome exporter accepts an empty capture too.
    assert chrome_trace([]) == {"traceEvents": []}


def test_traced_ntt_share_reports_a_real_share():
    from repro.experiments.measured import traced_ntt_share

    result = traced_ntt_share(backend="numpy", engine="high_radix")
    assert 0.0 < result["share"] <= 1.0
    assert result["ntt_ms"] > 0.0
    assert result["total_ms"] >= result["ntt_ms"]


# -------------------------------------------------------------------- CLI


def test_experiments_list_shows_engine_verdicts(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "engine" in out
    assert ("auto-tuner verdicts" in out) or ("engine pin is in force" in out)


def test_experiments_trace_flag_writes_chrome_trace(tmp_path, capsys):
    from repro.experiments.__main__ import main

    path = tmp_path / "cli_trace.json"
    try:
        assert main(["ntt_share", "--trace", str(path)]) == 0
    finally:
        TRACER.stop()
        TRACER.clear()
    out = capsys.readouterr().out
    assert "measured NTT time share" in out
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"]
