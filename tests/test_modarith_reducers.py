"""Tests for the modular-multiplication strategies (native/Barrett/Shoup/Montgomery)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modarith.primes import generate_ntt_primes
from repro.modarith.reducers import (
    REDUCER_NAMES,
    BarrettModMul,
    MontgomeryModMul,
    NativeModMul,
    OpCost,
    ShoupModMul,
    make_reducer,
)
from repro.modarith.word import WORD32, WORD64

P60 = generate_ntt_primes(60, 1, 1 << 12)[0]
P30 = generate_ntt_primes(30, 1, 1 << 10)[0]


@pytest.mark.parametrize("name", REDUCER_NAMES)
def test_make_reducer_returns_named_strategy(name):
    reducer = make_reducer(name, P60)
    assert reducer.name == name
    assert reducer.p == P60


def test_make_reducer_unknown_name():
    with pytest.raises(ValueError):
        make_reducer("fancy", P60)


def test_modulus_bound_enforced():
    # p must be < 2^62 for 64-bit lazy arithmetic.
    with pytest.raises(ValueError):
        NativeModMul((1 << 63) - 25, WORD64)
    with pytest.raises(ValueError):
        ShoupModMul(P60, WORD32)  # 60-bit prime cannot use 32-bit words
    with pytest.raises(ValueError):
        NativeModMul(2)


@pytest.mark.parametrize("name", REDUCER_NAMES)
@pytest.mark.parametrize("p", [P30, P60])
def test_mul_matches_native_semantics(name, p):
    reducer = make_reducer(name, p)
    cases = [(0, 0), (1, 1), (p - 1, p - 1), (12345, 67890), (p - 2, 3)]
    for a, b in cases:
        assert reducer.mul(a, b) == (a * b) % p


def test_shoup_mul_by_constant_matches_reference():
    reducer = ShoupModMul(P60)
    constant = 987654321987654321 % P60
    companions = reducer.precompute(constant)
    for a in (0, 1, P60 - 1, 2**61 % P60, 424242):
        assert reducer.mul_by_constant(a, constant, companions) == (a * constant) % P60


def test_shoup_accepts_lazy_operands_up_to_4p():
    """Algorithm 4 admits 0 <= b < 4p; the result must still be correct mod p."""
    reducer = ShoupModMul(P60)
    constant = 0x123456789ABCDEF % P60
    companions = reducer.precompute(constant)
    for b in (P60, 2 * P60 - 1, 3 * P60 + 7, 4 * P60 - 1):
        result = reducer.mul_by_constant(b, constant, companions)
        assert result % P60 == (b * constant) % P60
        assert 0 <= result < 2 * P60


def test_shoup_precompute_validates_range():
    reducer = ShoupModMul(P60)
    with pytest.raises(ValueError):
        reducer.precompute(P60)
    with pytest.raises(ValueError):
        reducer.precompute(-1)


def test_barrett_reduce_double_word():
    reducer = BarrettModMul(P60)
    assert reducer.mu == (1 << 128) // P60
    for value in (0, P60 - 1, P60, 2 * P60 + 3, (P60 - 1) ** 2):
        assert reducer.reduce(value) == value % P60
    with pytest.raises(ValueError):
        reducer.reduce(-1)


def test_montgomery_domain_roundtrip():
    reducer = MontgomeryModMul(P60)
    for a in (0, 1, 2, P60 - 1, 123456789):
        assert reducer.from_montgomery(reducer.to_montgomery(a)) == a


def test_montgomery_mul_in_domain():
    reducer = MontgomeryModMul(P60)
    a, b = 111111111111111, 222222222222222
    am, bm = reducer.to_montgomery(a), reducer.to_montgomery(b)
    assert reducer.from_montgomery(reducer.mul_montgomery(am, bm)) == (a * b) % P60


def test_cost_metadata_shapes():
    """The relative instruction counts must reflect the paper's ordering:
    Shoup < Barrett < native, and Shoup needs one extra precomputed word."""
    shoup = ShoupModMul(P60).cost
    barrett = BarrettModMul(P60).cost
    native = NativeModMul(P60).cost
    assert isinstance(shoup, OpCost)
    assert shoup.instructions < barrett.instructions < native.instructions
    assert native.latency_cycles >= 500
    assert shoup.precomputed_words == 1
    assert native.precomputed_words == 0
    assert barrett.precomputed_words == 0


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=P60 - 1), st.integers(min_value=0, max_value=P60 - 1))
def test_all_reducers_agree(a, b):
    expected = (a * b) % P60
    for name in REDUCER_NAMES:
        assert make_reducer(name, P60).mul(a, b) == expected


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=4 * P60 - 1), st.integers(min_value=0, max_value=P60 - 1))
def test_shoup_lazy_property(b, w):
    reducer = ShoupModMul(P60)
    result = reducer.mul_by_constant(b, w, reducer.precompute(w))
    assert result % P60 == (b * w) % P60
    assert 0 <= result < 2 * P60
