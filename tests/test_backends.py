"""Cross-check suite for the pluggable compute backends.

Every backend must be bit-for-bit interchangeable: same forward/inverse NTT
outputs as the reference :class:`NegacyclicTransformer`, same pointwise
arithmetic, and identical HE ciphertexts end to end.  The NumPy backend is
exercised in both of its regimes — vectorised (≤ 30-bit primes) and
per-prime scalar fallback (60-bit primes).
"""

from __future__ import annotations

import random

import pytest

from repro.backends import (
    BACKEND_ENV_VAR,
    ComputeBackend,
    ScalarBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.backends.numpy_backend import MUL_VECTORIZED_LIMIT, NumpyBackend
from repro.he import (
    BatchEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    HEParams,
    KeyGenerator,
)
from repro.modarith.primes import generate_ntt_primes
from repro.rns.basis import RnsBasis
from repro.rns.poly import Domain, RnsPolynomial, TransformerCache
from repro.transforms.cooley_tukey import NegacyclicTransformer
from repro.transforms.reference import naive_negacyclic_convolution

SIZES = [64, 256, 1024, 4096]
PRIME_BITS = [30, 60]


@pytest.fixture(scope="module")
def scalar() -> ScalarBackend:
    return ScalarBackend()


@pytest.fixture(scope="module")
def vectorized() -> NumpyBackend:
    return NumpyBackend()


def random_rows(primes, n, seed):
    rng = random.Random(seed)
    return [[rng.randrange(p) for _ in range(n)] for p in primes]


# ------------------------------------------------------------------ transforms


@pytest.mark.parametrize("bits", PRIME_BITS)
@pytest.mark.parametrize("n", SIZES)
def test_backends_match_reference_transformer(n, bits, scalar, vectorized):
    """NumpyBackend == ScalarBackend == NegacyclicTransformer, both domains."""
    p = generate_ntt_primes(bits, 1, n)[0]
    (row,) = random_rows([p], n, seed=n * bits)
    reference = NegacyclicTransformer(n, p)
    expected_forward = reference.forward(row)
    for backend in (scalar, vectorized):
        forward = backend.forward_ntt_batch([row], [p])[0]
        assert forward == expected_forward, backend.name
        assert backend.inverse_ntt_batch([forward], [p])[0] == row, backend.name


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_batch_with_repeated_primes(bits, scalar, vectorized):
    """Rows sharing a modulus (cross-polynomial batching) transform correctly."""
    n = 256
    primes = generate_ntt_primes(bits, 2, n)
    batch_primes = [p for p in primes for _ in range(3)]
    rows = random_rows(batch_primes, n, seed=bits)
    expected = scalar.forward_ntt_batch(rows, batch_primes)
    assert vectorized.forward_ntt_batch(rows, batch_primes) == expected
    assert vectorized.inverse_ntt_batch(expected, batch_primes) == rows


def test_numpy_backend_mixed_word_sizes(scalar, vectorized):
    """One batch mixing 30-bit (vectorised) and 60-bit (fallback) primes."""
    n = 128
    primes = generate_ntt_primes(30, 2, n) + generate_ntt_primes(60, 2, n)
    assert primes[0] < MUL_VECTORIZED_LIMIT <= primes[-1]
    rows = random_rows(primes, n, seed=3)
    expected = scalar.forward_ntt_batch(rows, primes)
    assert vectorized.forward_ntt_batch(rows, primes) == expected
    assert vectorized.inverse_ntt_batch(expected, primes) == rows


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_pointwise_ops_agree(bits, scalar, vectorized):
    n = 64
    primes = generate_ntt_primes(bits, 3, n)
    rows_a = random_rows(primes, n, seed=10 + bits)
    rows_b = random_rows(primes, n, seed=20 + bits)
    for op in ("add_batch", "sub_batch", "mul_batch"):
        expected = getattr(scalar, op)(rows_a, rows_b, primes)
        assert getattr(vectorized, op)(rows_a, rows_b, primes) == expected, op
    assert vectorized.neg_batch(rows_a, primes) == scalar.neg_batch(rows_a, primes)
    assert vectorized.scalar_mul_batch(rows_a, 987654321, primes) == (
        scalar.scalar_mul_batch(rows_a, 987654321, primes)
    )


def test_batch_shape_validation(scalar, vectorized):
    n = 64
    p = generate_ntt_primes(30, 1, n)[0]
    (row,) = random_rows([p], n, seed=4)
    for backend in (scalar, vectorized):
        with pytest.raises(ValueError):
            backend.forward_ntt_batch([row], [p, p])
        with pytest.raises(ValueError):
            backend.add_batch([row], [row, row], [p])
        # ragged batches are rejected identically by every backend
        with pytest.raises(ValueError):
            backend.forward_ntt_batch([row, row[: n // 2]], [p, p])
        with pytest.raises(ValueError):
            backend.mul_batch([row], [row[: n // 2]], [p])


# ------------------------------------------------------------------ RNS layer


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_rns_polynomial_round_trip_identical_across_backends(bits):
    n = 64
    basis = RnsBasis.generate(n, 3, bit_size=bits)
    rng = random.Random(bits)
    coefficients = [rng.randrange(-1000, 1000) for _ in range(n)]
    polys = {
        name: RnsPolynomial.from_coefficients(
            coefficients, basis, cache=TransformerCache(name)
        )
        for name in ("scalar", "numpy")
    }
    ntts = {name: poly.to_ntt() for name, poly in polys.items()}
    assert ntts["scalar"].residues == ntts["numpy"].residues
    for name, ntt in ntts.items():
        assert ntt.to_coefficient().residues == polys[name].residues, name


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_rns_polynomial_multiply_matches_naive_convolution(bits):
    n = 32
    basis = RnsBasis.generate(n, 2, bit_size=bits)
    rng = random.Random(100 + bits)
    a = [rng.randrange(50) for _ in range(n)]
    b = [rng.randrange(50) for _ in range(n)]
    expected = naive_negacyclic_convolution(a, b, basis.modulus)
    for name in ("scalar", "numpy"):
        cache = TransformerCache(name)
        pa = RnsPolynomial.from_coefficients(a, basis, cache=cache)
        pb = RnsPolynomial.from_coefficients(b, basis, cache=cache)
        assert (pa * pb).to_big_coefficients() == expected, name


# ------------------------------------------------------------------- HE layer


def _he_context(params: HEParams, backend_name: str):
    keygen = KeyGenerator(params, seed=7)
    return {
        "encoder": BatchEncoder(params, keygen.basis),
        "encryptor": Encryptor(params, keygen.public_key(), seed=11),
        "decryptor": Decryptor(params, keygen.secret_key()),
        "evaluator": Evaluator(params, backend=backend_name),
        "relin": keygen.relinearization_key(),
    }


def _he_params_30bit() -> HEParams:
    # 30-bit primes keep the whole pipeline on the vectorised path.
    return HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)


@pytest.mark.parametrize("params", [None, "30bit"], ids=["60bit-fallback", "30bit-vectorized"])
@pytest.mark.parametrize("backend_name", ["scalar", "numpy"])
def test_he_multiply_round_trip_per_backend(backend_name, params):
    """encrypt → multiply → relinearize → decrypt works under every backend."""
    he_params = (
        _he_params_30bit()
        if params == "30bit"
        else HEParams(n=64, plaintext_modulus=257, prime_bits=40, prime_count=3)
    )
    context = _he_context(he_params, backend_name)
    t = he_params.plaintext_modulus
    rng = random.Random(42)
    a = [rng.randrange(t) for _ in range(6)]
    b = [rng.randrange(t) for _ in range(6)]
    ca = context["encryptor"].encrypt(context["encoder"].encode(a))
    cb = context["encryptor"].encrypt(context["encoder"].encode(b))
    product = context["evaluator"].relinearize(
        context["evaluator"].multiply(ca, cb), context["relin"]
    )
    decoded = context["encoder"].decode(context["decryptor"].decrypt(product))
    assert decoded[:6] == [(x * y) % t for x, y in zip(a, b)]


def test_he_ciphertexts_identical_across_backends():
    """The acceptance bar: scalar and numpy evaluators emit identical bits."""
    he_params = _he_params_30bit()
    results = {}
    for backend_name in ("scalar", "numpy"):
        context = _he_context(he_params, backend_name)
        t = he_params.plaintext_modulus
        a = context["encryptor"].encrypt(context["encoder"].encode([5, 6, 7]))
        b = context["encryptor"].encrypt(context["encoder"].encode([9, 10, 11]))
        product = context["evaluator"].relinearize(
            context["evaluator"].multiply(a, b), context["relin"]
        )
        results[backend_name] = [poly.residues for poly in product.polys]
    assert results["scalar"] == results["numpy"]


# ------------------------------------------------------------------- registry


def test_registry_explicit_selection_and_caching():
    assert set(available_backends()) >= {"scalar", "numpy"}
    assert get_backend("scalar").name == "scalar"
    assert get_backend("scalar") is get_backend("scalar")
    assert get_backend("numpy").name == "numpy"
    with pytest.raises(KeyError):
        get_backend("no-such-backend")


def test_registry_env_override(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
    assert get_backend().name == "scalar"
    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    assert get_backend().name == "numpy"
    # the env override reaches polynomials bound to the default cache
    basis = RnsBasis.generate(32, 1, bit_size=30)
    poly = RnsPolynomial.from_coefficients([1] * 32, basis)
    monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
    assert poly.backend.name == "scalar"


def test_registry_default_and_custom_backend():
    class _Probe(ScalarBackend):
        name = "probe"

    try:
        register_backend("probe", _Probe)
        with pytest.raises(ValueError):
            register_backend("probe", _Probe)
        set_default_backend("probe")
        assert get_backend().name == "probe"
        assert isinstance(get_backend(), ComputeBackend)
        with pytest.raises(KeyError):
            set_default_backend("missing")
    finally:
        set_default_backend(None)
