"""Cross-check suite for the pluggable compute backends.

Every backend must be bit-for-bit interchangeable: same forward/inverse NTT
outputs as the reference :class:`NegacyclicTransformer`, same pointwise
arithmetic, and identical HE ciphertexts end to end.  The NumPy backend is
exercised in both of its regimes — vectorised (≤ 30-bit primes) and
per-prime scalar fallback (60-bit primes).  All operations go through the
handle-based :class:`ResidueTensor` API; explicit ``from_rows`` / ``to_rows``
boundaries enter and leave residency.
"""

from __future__ import annotations

import random

import pytest

from repro.backends import (
    BACKEND_ENV_VAR,
    ComputeBackend,
    ResidueTensor,
    ScalarBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.backends.numpy_backend import MUL_VECTORIZED_LIMIT, NumpyBackend
from repro.he import Evaluator, HEParams, HeContext
from repro.modarith.primes import generate_ntt_primes
from repro.rns.basis import RnsBasis
from repro.rns.poly import Domain, RnsPolynomial
from repro.transforms.cooley_tukey import NegacyclicTransformer
from repro.transforms.reference import naive_negacyclic_convolution

SIZES = [64, 256, 1024, 4096]
PRIME_BITS = [30, 60]


@pytest.fixture(scope="module")
def scalar() -> ScalarBackend:
    return ScalarBackend()


@pytest.fixture(scope="module")
def vectorized() -> NumpyBackend:
    return NumpyBackend()


def random_rows(primes, n, seed):
    rng = random.Random(seed)
    return [[rng.randrange(p) for _ in range(n)] for p in primes]


def forward_rows(backend, rows, primes):
    """Rows-in/rows-out forward NTT through the handle boundary."""
    return backend.forward_ntt_batch(backend.from_rows(rows, primes)).to_rows()


def inverse_rows(backend, rows, primes):
    return backend.inverse_ntt_batch(backend.from_rows(rows, primes)).to_rows()


# ------------------------------------------------------------------ transforms


@pytest.mark.parametrize("bits", PRIME_BITS)
@pytest.mark.parametrize("n", SIZES)
def test_backends_match_reference_transformer(n, bits, scalar, vectorized):
    """NumpyBackend == ScalarBackend == NegacyclicTransformer, both domains."""
    p = generate_ntt_primes(bits, 1, n)[0]
    (row,) = random_rows([p], n, seed=n * bits)
    reference = NegacyclicTransformer(n, p)
    expected_forward = reference.forward(row)
    for backend in (scalar, vectorized):
        forward = forward_rows(backend, [row], [p])[0]
        assert forward == expected_forward, backend.name
        assert inverse_rows(backend, [forward], [p])[0] == row, backend.name


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_batch_with_repeated_primes(bits, scalar, vectorized):
    """Rows sharing a modulus (cross-polynomial batching) transform correctly."""
    n = 256
    primes = generate_ntt_primes(bits, 2, n)
    batch_primes = [p for p in primes for _ in range(3)]
    rows = random_rows(batch_primes, n, seed=bits)
    expected = forward_rows(scalar, rows, batch_primes)
    assert forward_rows(vectorized, rows, batch_primes) == expected
    assert inverse_rows(vectorized, expected, batch_primes) == rows


def test_numpy_backend_mixed_word_sizes(scalar, vectorized):
    """One batch mixing 30-bit (native) and 60-bit (wide-word) primes."""
    n = 128
    primes = generate_ntt_primes(30, 2, n) + generate_ntt_primes(60, 2, n)
    assert primes[0] < MUL_VECTORIZED_LIMIT <= primes[-1]
    rows = random_rows(primes, n, seed=3)
    expected = forward_rows(scalar, rows, primes)
    assert forward_rows(vectorized, rows, primes) == expected
    assert inverse_rows(vectorized, expected, primes) == rows


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_pointwise_ops_agree(bits, scalar, vectorized):
    n = 64
    primes = generate_ntt_primes(bits, 3, n)
    rows_a = random_rows(primes, n, seed=10 + bits)
    rows_b = random_rows(primes, n, seed=20 + bits)
    results = {}
    for backend in (scalar, vectorized):
        a = backend.from_rows(rows_a, primes)
        b = backend.from_rows(rows_b, primes)
        results[backend.name] = {
            "add": backend.add(a, b).to_rows(),
            "sub": backend.sub(a, b).to_rows(),
            "mul": backend.mul(a, b).to_rows(),
            "neg": backend.neg(a).to_rows(),
            "scalar_mul": backend.scalar_mul(a, 987654321).to_rows(),
        }
    assert results["scalar"] == results["numpy"]


def test_batch_shape_validation(scalar, vectorized):
    n = 64
    p = generate_ntt_primes(30, 1, n)[0]
    (row,) = random_rows([p], n, seed=4)
    for backend in (scalar, vectorized):
        with pytest.raises(ValueError):
            backend.from_rows([row], [p, p])
        # ragged batches are rejected identically by every backend
        with pytest.raises(ValueError):
            backend.from_rows([row, row[: n // 2]], [p, p])
        a = backend.from_rows([row], [p])
        b = backend.from_rows([row, row], [p, p])
        with pytest.raises(ValueError):
            backend.add(a, b)


def test_foreign_tensors_are_rejected(scalar, vectorized):
    """Tensors are opaque handles owned by one backend — no implicit crossing."""
    n = 32
    p = generate_ntt_primes(30, 1, n)[0]
    (row,) = random_rows([p], n, seed=5)
    scalar_tensor = scalar.from_rows([row], [p])
    numpy_tensor = vectorized.from_rows([row], [p])
    with pytest.raises(ValueError):
        vectorized.forward_ntt_batch(scalar_tensor)
    with pytest.raises(ValueError):
        scalar.add(scalar_tensor, numpy_tensor)


def test_structural_ops_round_trip(scalar, vectorized):
    """concat/split/slice_rows/copy preserve rows and never alias storage."""
    n = 64
    primes = generate_ntt_primes(30, 3, n)
    rows = random_rows(primes, n, seed=6)
    for backend in (scalar, vectorized):
        tensor = backend.from_rows(rows, primes)
        stacked = backend.concat([tensor, tensor])
        assert stacked.count == 2 * len(primes)
        assert stacked.to_rows() == rows + rows
        first, second = backend.split(stacked, [len(primes), len(primes)])
        assert first.to_rows() == rows and second.to_rows() == rows
        assert backend.slice_rows(tensor, 0, 2).to_rows() == rows[:2]
        duplicate = backend.copy(tensor)
        assert backend.tensor_equal(duplicate, tensor)
        # mutating the duplicate's storage must not reach the original
        transformed = backend.forward_ntt_batch(duplicate)
        assert backend.tensor_equal(tensor, backend.from_rows(rows, primes))
        assert isinstance(transformed, ResidueTensor)


def test_conversion_counter_tracks_boundaries():
    """from_rows/to_rows are counted; resident op chains are free."""
    backend = NumpyBackend()
    n = 64
    primes = generate_ntt_primes(30, 2, n)
    rows = random_rows(primes, n, seed=7)
    assert backend.conversion_count == 0
    tensor = backend.from_rows(rows, primes)
    assert backend.conversion_count == len(primes)
    resident = backend.mul(
        backend.forward_ntt_batch(tensor), backend.forward_ntt_batch(tensor)
    )
    resident = backend.inverse_ntt_batch(resident)
    assert backend.conversion_count == len(primes)  # chain stayed resident
    resident.to_rows()
    assert backend.conversion_count == 2 * len(primes)
    backend.reset_conversion_count()
    assert backend.conversion_count == 0


def test_numpy_fallback_conversions_are_charged(monkeypatch):
    """With the wide window pinned off, 60-bit primes route per-prime through
    the scalar fallback — and both the boundary crossings and the fallback
    rows that implies are visible in the counters."""
    monkeypatch.setenv("REPRO_WIDE_WORD", "0")
    backend = NumpyBackend()
    n = 64
    primes = generate_ntt_primes(60, 2, n)
    rows = random_rows(primes, n, seed=8)
    tensor = backend.from_rows(rows, primes)
    backend.reset_conversion_count()
    backend.forward_ntt_batch(tensor)
    assert backend.conversion_count > 0
    assert backend.fallback_rows == len(primes)


def test_numpy_wide_word_stays_resident():
    """60-bit primes run the exact wide-word array path by default: the whole
    transform round trip charges zero conversions and zero fallback rows."""
    backend = NumpyBackend()
    n = 64
    primes = generate_ntt_primes(60, 2, n)
    rows = random_rows(primes, n, seed=8)
    tensor = backend.from_rows(rows, primes)
    backend.reset_conversion_count()
    transformed = backend.forward_ntt_batch(tensor)
    backend.inverse_ntt_batch(transformed)
    assert backend.conversion_count == 0
    assert backend.fallback_rows == 0


# ------------------------------------------------------------------ RNS layer


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_rns_polynomial_round_trip_identical_across_backends(bits):
    n = 64
    basis = RnsBasis.generate(n, 3, bit_size=bits)
    rng = random.Random(bits)
    coefficients = [rng.randrange(-1000, 1000) for _ in range(n)]
    polys = {
        name: RnsPolynomial.from_coefficients(coefficients, basis, backend=name)
        for name in ("scalar", "numpy")
    }
    ntts = {name: poly.to_ntt() for name, poly in polys.items()}
    assert ntts["scalar"].to_coeff_lists() == ntts["numpy"].to_coeff_lists()
    for name, ntt in ntts.items():
        assert ntt.to_coefficient() == polys[name], name


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_rns_polynomial_multiply_matches_naive_convolution(bits):
    n = 32
    basis = RnsBasis.generate(n, 2, bit_size=bits)
    rng = random.Random(100 + bits)
    a = [rng.randrange(50) for _ in range(n)]
    b = [rng.randrange(50) for _ in range(n)]
    expected = naive_negacyclic_convolution(a, b, basis.modulus)
    for name in ("scalar", "numpy"):
        pa = RnsPolynomial.from_coefficients(a, basis, backend=name)
        pb = RnsPolynomial.from_coefficients(b, basis, backend=name)
        assert (pa * pb).to_big_coefficients() == expected, name


def test_rns_polynomial_pins_backend_at_creation():
    """A polynomial's backend is fixed when its tensor is created."""
    basis = RnsBasis.generate(32, 2, bit_size=30)
    poly = RnsPolynomial.from_coefficients([1] * 32, basis, backend="scalar")
    assert poly.backend.name == "scalar"
    rebound = poly.with_backend("numpy")
    assert rebound.backend.name == "numpy"
    assert rebound == poly  # bit-identical residues either way
    assert poly.with_backend(poly.backend) is poly


# ------------------------------------------------------------------- HE layer


def _he_params_30bit() -> HEParams:
    # 30-bit primes keep the whole pipeline on the vectorised path.
    return HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)


@pytest.mark.parametrize("params", [None, "30bit"], ids=["60bit-wide", "30bit-vectorized"])
@pytest.mark.parametrize("backend_name", ["scalar", "numpy"])
def test_he_multiply_round_trip_per_backend(backend_name, params):
    """encrypt → multiply → relinearize → decrypt works under every backend."""
    he_params = (
        _he_params_30bit()
        if params == "30bit"
        else HEParams(n=64, plaintext_modulus=257, prime_bits=40, prime_count=3)
    )
    context = HeContext.create(he_params, backend=backend_name, seed=7)
    t = he_params.plaintext_modulus
    rng = random.Random(42)
    a = [rng.randrange(t) for _ in range(6)]
    b = [rng.randrange(t) for _ in range(6)]
    encryptor = context.encryptor(seed=11)
    evaluator = context.evaluator()
    ca = encryptor.encrypt(context.encoder().encode(a))
    cb = encryptor.encrypt(context.encoder().encode(b))
    product = evaluator.relinearize(
        evaluator.multiply(ca, cb), context.relinearization_key()
    )
    decoded = context.encoder().decode(context.decryptor().decrypt(product))
    assert decoded[:6] == [(x * y) % t for x, y in zip(a, b)]


def test_he_ciphertexts_identical_across_backends():
    """The acceptance bar: scalar and numpy evaluators emit identical bits."""
    he_params = _he_params_30bit()
    results = {}
    for backend_name in ("scalar", "numpy"):
        context = HeContext.create(he_params, backend=backend_name, seed=7)
        encryptor = context.encryptor(seed=11)
        evaluator = context.evaluator()
        a = encryptor.encrypt(context.encoder().encode([5, 6, 7]))
        b = encryptor.encrypt(context.encoder().encode([9, 10, 11]))
        product = evaluator.relinearize(
            evaluator.multiply(a, b), context.relinearization_key()
        )
        results[backend_name] = [poly.to_coeff_lists() for poly in product.polys]
    assert results["scalar"] == results["numpy"]


def test_evaluator_adopts_foreign_ciphertexts():
    """Ciphertexts made on one backend evaluate correctly on another (with an
    explicit, counted boundary crossing)."""
    he_params = _he_params_30bit()
    producer = HeContext.create(he_params, backend="numpy", seed=7)
    encryptor = producer.encryptor(seed=11)
    ct = encryptor.encrypt(producer.encoder().encode([3, 1, 4]))
    scalar_evaluator = Evaluator(he_params, backend="scalar")
    doubled = scalar_evaluator.add(ct, ct)
    assert doubled.polys[0].backend.name == "scalar"
    decoded = producer.encoder().decode(producer.decryptor().decrypt(doubled))
    assert decoded[:3] == [6, 2, 8]


# ------------------------------------------------------------------- registry


def test_registry_explicit_selection_and_caching():
    assert set(available_backends()) >= {"scalar", "numpy"}
    assert get_backend("scalar").name == "scalar"
    assert get_backend("scalar") is get_backend("scalar")
    assert get_backend("numpy").name == "numpy"
    with pytest.raises(KeyError):
        get_backend("no-such-backend")
    instance = get_backend("scalar")
    assert resolve_backend(instance) is instance
    assert resolve_backend("numpy") is get_backend("numpy")


def test_registry_env_override(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
    assert get_backend().name == "scalar"
    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    assert get_backend().name == "numpy"
    # the env override is read at *creation* time: a polynomial built under
    # one default stays pinned to it when the environment later changes
    basis = RnsBasis.generate(32, 1, bit_size=30)
    poly = RnsPolynomial.from_coefficients([1] * 32, basis)
    assert poly.backend.name == "numpy"
    monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
    assert poly.backend.name == "numpy"
    assert RnsPolynomial.from_coefficients([1] * 32, basis).backend.name == "scalar"


def test_registry_default_and_custom_backend():
    class _Probe(ScalarBackend):
        name = "probe"

    try:
        register_backend("probe", _Probe)
        with pytest.raises(ValueError):
            register_backend("probe", _Probe)
        set_default_backend("probe")
        assert get_backend().name == "probe"
        assert isinstance(get_backend(), ComputeBackend)
        with pytest.raises(KeyError):
            set_default_backend("missing")
    finally:
        set_default_backend(None)
