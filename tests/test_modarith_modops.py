"""Unit and property tests for scalar modular operations."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.modarith.modops import (
    add_mod,
    inv_mod,
    lazy_reduce,
    mul_mod,
    neg_mod,
    pow_mod,
    sub_mod,
)

P = 998244353  # classic NTT prime (119 * 2^23 + 1)


def test_add_mod_basic():
    assert add_mod(1, 2, 7) == 3
    assert add_mod(5, 6, 7) == 4
    assert add_mod(6, 1, 7) == 0


def test_sub_mod_basic():
    assert sub_mod(5, 3, 7) == 2
    assert sub_mod(3, 5, 7) == 5
    assert sub_mod(0, 0, 7) == 0


def test_neg_mod_basic():
    assert neg_mod(0, 7) == 0
    assert neg_mod(3, 7) == 4


def test_mul_mod_basic():
    assert mul_mod(3, 5, 7) == 1
    assert mul_mod(0, 5, 7) == 0


def test_pow_mod_positive_and_negative_exponents():
    assert pow_mod(2, 10, P) == 1024
    assert pow_mod(2, 0, P) == 1
    inv2 = pow_mod(2, -1, P)
    assert mul_mod(2, inv2, P) == 1
    assert pow_mod(2, -3, P) == pow_mod(inv2, 3, P)


def test_inv_mod_roundtrip():
    for a in (1, 2, 3, 12345, P - 1):
        assert mul_mod(a, inv_mod(a, P), P) == 1


def test_inv_mod_zero_raises():
    with pytest.raises(ZeroDivisionError):
        inv_mod(0, P)
    with pytest.raises(ZeroDivisionError):
        inv_mod(P, P)


def test_lazy_reduce_in_bound():
    assert lazy_reduce(0, 7) == 0
    assert lazy_reduce(3 * 7 + 2, 7) == 2
    assert lazy_reduce(4 * 7 - 1, 7) == 6


def test_lazy_reduce_out_of_bound_raises():
    with pytest.raises(ValueError):
        lazy_reduce(4 * 7, 7)
    with pytest.raises(ValueError):
        lazy_reduce(-1, 7)


@given(st.integers(min_value=0, max_value=P - 1), st.integers(min_value=0, max_value=P - 1))
def test_add_sub_inverse_property(a, b):
    assert sub_mod(add_mod(a, b, P), b, P) == a
    assert add_mod(sub_mod(a, b, P), b, P) == a


@given(st.integers(min_value=1, max_value=P - 1))
def test_inverse_property(a):
    assert mul_mod(a, inv_mod(a, P), P) == 1


@given(
    st.integers(min_value=0, max_value=P - 1),
    st.integers(min_value=0, max_value=P - 1),
    st.integers(min_value=0, max_value=P - 1),
)
def test_mul_distributes_over_add(a, b, c):
    left = mul_mod(a, add_mod(b, c, P), P)
    right = add_mod(mul_mod(a, b, P), mul_mod(a, c, P), P)
    assert left == right
