"""Tests for the sharded multi-core ``parallel`` backend.

Pins the acceptance criteria of the parallel-execution subsystem:

* **bit-for-bit interchangeability** — every operation of the
  :class:`~repro.backends.base.ComputeBackend` interface matches the scalar
  and numpy backends exactly, on both word-size regimes (30-bit native,
  60-bit wide-word vectorised), whether the work is dispatched to the worker
  pool or runs inline below the crossover;
* **ownership** — foreign tensors are rejected in both directions;
* **residency** — a ``multiply → relinearize → mod_switch`` chain through
  the whole HE stack performs zero boundary conversions even when every
  operation is force-dispatched through the pool (payload rows cross
  process boundaries via shared memory, never via pickled lists);
* **lifecycle** — the pool is lazy (no workers before the first dispatch),
  survives a worker crash by rebuilding and retrying once, and the
  shared-memory arena releases segments when tensors die;
* **configuration** — shard-count resolution precedence and the
  ``HeContext.create(backend="parallel", shards=...)`` plumbing.

Pool-dispatching tests force the crossover down (``transform_threshold=1``)
so toy shapes exercise the sharded path; crossover tests use the defaults.
"""

from __future__ import annotations

import random

import pytest

from repro.backends import SHARDS_ENV_VAR, get_backend, set_default_shards
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.parallel import (
    DEFAULT_POINTWISE_THRESHOLD,
    DEFAULT_TRANSFORM_THRESHOLD,
    ParallelBackend,
    ParallelTensor,
)
from repro.backends.pool import get_arena, plan_shards, resolve_shard_count
from repro.backends.scalar import ScalarBackend
from repro.he import HEParams, HeContext
from repro.modarith.primes import generate_ntt_primes

PRIME_BITS = (30, 60)  # native narrow regime and wide-word vectorised regime
N = 64


def random_rows(primes, n, seed):
    rng = random.Random(seed)
    return [[rng.randrange(p) for _ in range(n)] for p in primes]


def forced_backend(shards=2):
    """A parallel backend whose every multi-row operation hits the pool."""
    return ParallelBackend(shards=shards, transform_threshold=1, pointwise_threshold=1)


@pytest.fixture(scope="module")
def pooled():
    backend = forced_backend()
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def references():
    return {"scalar": ScalarBackend(), "numpy": NumpyBackend()}


# ------------------------------------------------------------- cross-checks


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_transforms_bit_identical_to_scalar_and_numpy(bits, pooled, references):
    primes = generate_ntt_primes(bits, 2, N)
    batch = [p for p in primes for _ in range(3)]  # repeats: the Fig. 3 shape
    rows = random_rows(batch, N, seed=bits)
    expected = {}
    for name, backend in references.items():
        tensor = backend.from_rows(rows, batch)
        expected[name] = backend.forward_ntt_batch(tensor).to_rows()
    assert expected["scalar"] == expected["numpy"]

    before = pooled.pool_dispatch_count
    tensor = pooled.from_rows(rows, batch)
    forward = pooled.forward_ntt_batch(tensor)
    assert pooled.pool_dispatch_count > before, "transform did not shard"
    assert forward.to_rows() == expected["scalar"]
    assert pooled.inverse_ntt_batch(forward).to_rows() == rows


@pytest.mark.parametrize("bits", PRIME_BITS)
def test_pointwise_and_rns_ops_bit_identical(bits, pooled, references):
    numpy_backend = references["numpy"]
    primes = generate_ntt_primes(bits, 2, N)
    batch = [p for p in primes for _ in range(2)]
    rows_a = random_rows(batch, N, seed=10 + bits)
    rows_b = random_rows(batch, N, seed=20 + bits)
    a_np, b_np = numpy_backend.from_rows(rows_a, batch), numpy_backend.from_rows(rows_b, batch)
    a, b = pooled.from_rows(rows_a, batch), pooled.from_rows(rows_b, batch)

    assert pooled.add(a, b).to_rows() == numpy_backend.add(a_np, b_np).to_rows()
    assert pooled.sub(a, b).to_rows() == numpy_backend.sub(a_np, b_np).to_rows()
    assert pooled.mul(a, b).to_rows() == numpy_backend.mul(a_np, b_np).to_rows()
    assert pooled.neg(a).to_rows() == numpy_backend.neg(a_np).to_rows()
    assert (
        pooled.scalar_mul(a, 123457).to_rows()
        == numpy_backend.scalar_mul(a_np, 123457).to_rows()
    )
    assert (
        pooled.digit_broadcast(a, 1).to_rows()
        == numpy_backend.digit_broadcast(a_np, 1).to_rows()
    )
    # modulus switching needs a distinct-prime RNS basis
    basis = generate_ntt_primes(bits, 4, N)
    ms_rows = random_rows(basis, N, seed=30 + bits)
    switched = pooled.mod_switch_drop_last(pooled.from_rows(ms_rows, basis), 257)
    expected = numpy_backend.mod_switch_drop_last(
        numpy_backend.from_rows(ms_rows, basis), 257
    )
    assert switched.to_rows() == expected.to_rows()


def test_mixed_word_size_batch(pooled, references):
    """One batch spanning both regimes shards correctly."""
    primes = generate_ntt_primes(30, 2, N) + generate_ntt_primes(60, 2, N)
    rows = random_rows(primes, N, seed=3)
    expected = references["scalar"].forward_ntt_batch(
        references["scalar"].from_rows(rows, primes)
    ).to_rows()
    produced = pooled.forward_ntt_batch(pooled.from_rows(rows, primes)).to_rows()
    assert produced == expected


def test_structural_ops_round_trip(pooled):
    primes = generate_ntt_primes(30, 2, N)
    batch = [p for p in primes for _ in range(3)]
    rows = random_rows(batch, N, seed=4)
    tensor = pooled.from_rows(rows, batch)
    first, second = pooled.split(tensor, [2, 4])
    assert first.count == 2 and second.count == 4
    # slices of a shared-memory tensor are views sharing the refcounted
    # segment (zero copy); concat reassembles the original bits
    assert first.segment is tensor.segment
    assert pooled.concat([first, second]).to_rows() == rows
    sliced = pooled.slice_rows(tensor, 1, 4)
    assert sliced.to_rows() == rows[1:4]
    duplicate = pooled.copy(tensor)
    assert pooled.tensor_equal(duplicate, tensor)
    assert duplicate.data is not tensor.data


# --------------------------------------------------------------- ownership


def test_foreign_tensors_rejected_both_directions(pooled, references):
    numpy_backend = references["numpy"]
    primes = generate_ntt_primes(30, 1, N)
    rows = random_rows(primes, N, seed=5)
    parallel_tensor = pooled.from_rows(rows, primes)
    numpy_tensor = numpy_backend.from_rows(rows, primes)
    with pytest.raises(ValueError):
        pooled.forward_ntt_batch(numpy_tensor)
    with pytest.raises(ValueError):
        numpy_backend.forward_ntt_batch(parallel_tensor)
    other = forced_backend()
    try:
        with pytest.raises(ValueError):
            other.neg(parallel_tensor)  # even another parallel instance
    finally:
        other.close()


def test_shape_validation(pooled):
    with pytest.raises(ValueError):
        pooled.from_rows([[1, 2], [3]], [17, 17])  # ragged
    with pytest.raises(ValueError):
        pooled.from_rows([[1, 2]], [17, 17])  # count mismatch
    with pytest.raises(ValueError):
        pooled.concat([])


# ------------------------------------------------- residency / zero copy


def test_forced_pool_chain_performs_zero_conversions():
    """multiply → relinearize → mod_switch through the whole HE stack with
    every operation sharded across the pool: payload rows travel via shared
    memory, so the parallel backend's conversion counter stays untouched."""
    backend = forced_backend()
    try:
        params = HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)
        ctx = HeContext.create(params, backend=backend)
        encryptor = ctx.encryptor()
        evaluator = ctx.evaluator()
        relin = ctx.relinearization_key()
        ct_a = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
        ct_b = encryptor.encrypt(ctx.encoder().encode([4, 5, 6]))
        dispatches = backend.pool_dispatch_count
        before = backend.conversion_count
        switched = evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
        )
        assert backend.conversion_count == before, "chain left resident storage"
        assert backend.pool_dispatch_count > dispatches, "chain never sharded"
        t = params.plaintext_modulus
        decoded = ctx.encoder().decode(ctx.decryptor().decrypt(switched))
        assert decoded[:3] == [(x * y) % t for x, y in zip([1, 2, 3], [4, 5, 6])]
    finally:
        backend.close()


def test_dispatch_count_accounts_every_pool_round_trip():
    """`dispatch_count` is the pool round-trip odometer: one per eager op
    above the crossover, one per fused plan stage, zero inline — and the
    fused multiply → relinearize → mod_switch chain reads ≤ 3 (satellite
    acceptance of the op-graph redesign)."""
    backend = forced_backend()
    try:
        primes = generate_ntt_primes(30, 2, N)
        batch = [p for p in primes for _ in range(2)]
        tensor = backend.from_rows(random_rows(batch, N, seed=21), batch)
        assert backend.dispatch_count == 0
        assert backend.pool_dispatch_count == 0  # compatibility alias
        forward = backend.forward_ntt_batch(tensor)  # eager: 1 round trip
        assert backend.dispatch_count == 1
        backend.add(forward, forward)  # eager: 1 more
        assert backend.dispatch_count == 2
        assert backend.pool_dispatch_count == backend.dispatch_count
        backend.reset_dispatch_count()
        assert backend.dispatch_count == 0

        params = HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)
        ctx = HeContext.create(params, backend=backend)
        encryptor = ctx.encryptor()
        evaluator = ctx.evaluator(mode="fused")
        relin = ctx.relinearization_key()
        ct_a = encryptor.encrypt(ctx.encoder().encode([1, 2, 3]))
        ct_b = encryptor.encrypt(ctx.encoder().encode([4, 5, 6]))
        backend.reset_dispatch_count()
        backend.reset_conversion_count()
        evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
        )
        # One fused plan per op; relinearize costs one extra stage when its
        # digit source arrives as a plan input (single stage) — the chain
        # budget is one dispatch per homomorphic operation.
        assert 1 <= backend.dispatch_count <= 3, backend.dispatch_count
        assert backend.conversion_count == 0
        # Worker-side work never dispatches again: the counter is already
        # complete across the process boundary (mirroring, like the
        # conversion counter, happens per round trip).
        eager = ctx.evaluator(mode="eager")
        backend.reset_dispatch_count()
        eager.mod_switch_to_next(
            eager.relinearize(eager.multiply(ct_a, ct_b), relin)
        )
        assert backend.dispatch_count > 3  # one per backend method call
    finally:
        backend.close()


def test_chain_bit_identical_across_all_three_backends():
    params = HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=3)
    results = {}
    for name, backend in (
        ("scalar", "scalar"),
        ("numpy", "numpy"),
        ("parallel", forced_backend()),
    ):
        ctx = HeContext.create(params, backend=backend, seed=7)
        encryptor = ctx.encryptor(seed=11)
        evaluator = ctx.evaluator()
        relin = ctx.relinearization_key()
        ct = encryptor.encrypt(ctx.encoder().encode([9, 8, 7]))
        out = evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.square(ct), relin)
        )
        results[name] = [poly.to_coeff_lists() for poly in out.polys]
        if isinstance(backend, ParallelBackend):
            backend.close()
    assert results["scalar"] == results["numpy"] == results["parallel"]


def test_fallback_conversions_visible_across_process_boundary(monkeypatch):
    """With the wide window pinned off, the > 30-bit per-prime fallback
    crossings (and fallback rows) charged inside the workers are mirrored
    onto the parallel backend's counters, matching the numpy backend's
    accounting for the same transform — sharding must be invisible to the
    base.py boundary contract."""
    monkeypatch.setenv("REPRO_WIDE_WORD", "0")
    numpy_backend = NumpyBackend()
    narrow_pool = forced_backend()  # fresh pool: workers fork with the env set
    try:
        primes = generate_ntt_primes(60, 2, N)
        batch = [p for p in primes for _ in range(2)]
        rows = random_rows(batch, N, seed=17)

        numpy_tensor = numpy_backend.from_rows(rows, batch)
        before = numpy_backend.conversion_count
        numpy_backend.forward_ntt_batch(numpy_tensor)
        expected = numpy_backend.conversion_count - before
        assert expected > 0  # 60-bit rows leave the resident array per op
        assert numpy_backend.fallback_rows == len(batch)

        tensor = narrow_pool.from_rows(rows, batch)
        before = narrow_pool.conversion_count
        narrow_pool.forward_ntt_batch(tensor)
        assert narrow_pool.conversion_count - before == expected
        assert narrow_pool.fallback_rows == len(batch)

        # ... while the vectorised regime stays at zero even when sharded
        primes30 = generate_ntt_primes(30, 2, N)
        batch30 = [p for p in primes30 for _ in range(2)]
        tensor30 = narrow_pool.from_rows(random_rows(batch30, N, seed=18), batch30)
        before = narrow_pool.conversion_count
        narrow_pool.forward_ntt_batch(tensor30)
        assert narrow_pool.conversion_count == before
    finally:
        narrow_pool.close()


def test_wide_word_resident_across_process_boundary(pooled):
    """In the default wide regime, 60-bit transforms stay on the exact
    vectorised array path inside every worker: zero conversions and zero
    fallback rows are mirrored back across the pool."""
    primes = generate_ntt_primes(60, 2, N)
    batch = [p for p in primes for _ in range(2)]
    tensor = pooled.from_rows(random_rows(batch, N, seed=17), batch)
    conv_before = pooled.conversion_count
    fb_before = pooled.fallback_rows
    forward = pooled.forward_ntt_batch(tensor)
    pooled.inverse_ntt_batch(forward)
    assert pooled.conversion_count == conv_before
    assert pooled.fallback_rows == fb_before


def test_segments_released_when_tensors_die(pooled):
    import gc

    arena = get_arena()
    primes = generate_ntt_primes(30, 2, N)
    before = arena.live_segments
    tensor = pooled.from_rows(random_rows(primes, N, seed=6), primes)
    forward = pooled.forward_ntt_batch(tensor)
    assert arena.live_segments >= before + 2
    del tensor, forward
    gc.collect()
    # a sweep runs on the next allocation; live accounting is immediate
    assert arena.live_segments <= before


# ----------------------------------------------------------- pool lifecycle


def test_pool_is_lazy_below_the_crossover():
    backend = ParallelBackend(shards=2)  # default thresholds
    try:
        assert not backend.pool_running
        primes = generate_ntt_primes(30, 2, N)
        rows = random_rows([p for p in primes for _ in range(2)], N, seed=8)
        batch = [p for p in primes for _ in range(2)]
        tensor = backend.from_rows(rows, batch)
        forward = backend.forward_ntt_batch(tensor)
        assert backend.pool_dispatch_count == 0, "toy shape paid the pool tax"
        assert not backend.pool_running
        assert tensor.segment is None, "sub-crossover tensor went to /dev/shm"
        # the inline path is still the real engine path, bit-for-bit
        reference = NumpyBackend()
        assert forward.to_rows() == reference.forward_ntt_batch(
            reference.from_rows(rows, batch)
        ).to_rows()
    finally:
        backend.close()


def test_thresholds_separate_transform_and_pointwise():
    assert DEFAULT_TRANSFORM_THRESHOLD < DEFAULT_POINTWISE_THRESHOLD
    backend = ParallelBackend(
        shards=2,
        transform_threshold=1,
        pointwise_threshold=1 << 40,  # pointwise effectively never dispatches
    )
    try:
        primes = generate_ntt_primes(30, 2, N)
        batch = [p for p in primes for _ in range(2)]
        tensor = backend.from_rows(random_rows(batch, N, seed=9), batch)
        backend.forward_ntt_batch(tensor)
        transforms = backend.pool_dispatch_count
        assert transforms == 1
        backend.add(tensor, tensor)
        assert backend.pool_dispatch_count == transforms  # stayed inline
    finally:
        backend.close()


def test_pool_restarts_after_worker_crash(pooled):
    primes = generate_ntt_primes(30, 2, N)
    batch = [p for p in primes for _ in range(2)]
    tensor = pooled.from_rows(random_rows(batch, N, seed=12), batch)
    expected = pooled.forward_ntt_batch(tensor).to_rows()
    restarts = pooled._pool.restarts
    pooled._pool.crash_for_test()  # kill a worker abruptly
    recovered = pooled.forward_ntt_batch(tensor).to_rows()
    assert recovered == expected
    assert pooled._pool.restarts == restarts + 1
    assert pooled.pool_running


def test_worker_exceptions_propagate(pooled):
    primes = generate_ntt_primes(30, 4, N)
    rows = random_rows(primes, N, seed=13)
    tensor = pooled.from_rows(rows, primes)
    with pytest.raises(ValueError):
        # t shares a factor with q_last -> not invertible, raised in-worker
        pooled.mod_switch_drop_last(tensor, primes[-1])


# ------------------------------------------------------------ configuration


def test_shard_count_resolution_precedence(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
    assert resolve_shard_count(5) == 5
    assert resolve_shard_count() >= 1  # cpu fallback
    monkeypatch.setenv(SHARDS_ENV_VAR, "3")
    assert resolve_shard_count() == 3
    try:
        set_default_shards(4)
        assert resolve_shard_count() == 4  # default beats env
        assert resolve_shard_count(2) == 2  # explicit beats default
    finally:
        set_default_shards(None)
    monkeypatch.setenv(SHARDS_ENV_VAR, "zero")
    with pytest.raises(ValueError):
        resolve_shard_count()
    monkeypatch.setenv(SHARDS_ENV_VAR, "-1")
    with pytest.raises(ValueError):
        resolve_shard_count()
    with pytest.raises(ValueError):
        resolve_shard_count(0)
    with pytest.raises(ValueError):
        set_default_shards(0)


def test_plan_shards_balances_contiguously():
    assert plan_shards(6, 2) == [(0, 3), (3, 6)]
    assert plan_shards(7, 3) == [(0, 3), (3, 5), (5, 7)]
    assert plan_shards(2, 8) == [(0, 1), (1, 2)]  # never more shards than rows
    assert plan_shards(5, 1) == [(0, 5)]


def test_registry_resolves_parallel_and_reports_env_overrides():
    backend = get_backend("parallel")
    assert isinstance(backend, ParallelBackend)
    assert get_backend("parallel") is backend  # cached singleton
    with pytest.raises(KeyError) as excinfo:
        get_backend("no-such-backend")
    message = str(excinfo.value)
    assert "parallel" in message
    assert "REPRO_BACKEND" in message
    assert "REPRO_NTT_ENGINE" in message
    assert "REPRO_SHARDS" in message


def test_parallel_cannot_wrap_itself():
    with pytest.raises(ValueError):
        ParallelBackend(inner="parallel")


def test_inner_backend_keeps_factory_configuration():
    """The inline inner instance is factory-built, so configuration applied
    by a registered factory (e.g. a pinned engine) reaches the
    sub-crossover path exactly as it reaches the workers."""
    from repro.backends import register_backend

    try:
        register_backend(
            "tuned-for-test", lambda: NumpyBackend(engine="stockham")
        )
    except ValueError:
        pass  # registered by an earlier run of this module
    backend = ParallelBackend(inner="tuned-for-test")
    try:
        assert backend.inner.engine == "stockham"
        assert backend.engine == "stockham"
    finally:
        backend.close()


def test_context_shards_pin_does_not_leak_into_registry():
    shared = get_backend("parallel")
    params = HEParams(n=64, plaintext_modulus=257, prime_bits=30, prime_count=2)
    ctx = HeContext.create(params, backend="parallel", shards=2)
    assert ctx.backend is not shared
    assert ctx.backend.shards == 2
    with pytest.raises(ValueError):
        HeContext.create(params, backend="numpy", shards=2)


def test_context_engine_pin_reaches_the_workers():
    backend = ParallelBackend(
        shards=2, engine="stockham", transform_threshold=1, pointwise_threshold=1
    )
    try:
        assert backend.engine == "stockham"
        primes = generate_ntt_primes(30, 2, N)
        batch = [p for p in primes for _ in range(2)]
        rows = random_rows(batch, N, seed=14)
        produced = backend.forward_ntt_batch(backend.from_rows(rows, batch)).to_rows()
        reference = NumpyBackend(engine="radix2")
        expected = reference.forward_ntt_batch(
            reference.from_rows(rows, batch)
        ).to_rows()
        assert produced == expected  # engines are bit-interchangeable
        backend.set_engine(None)
        assert backend.engine is None
    finally:
        backend.close()


def test_shared_buffer_capability():
    backend = forced_backend()
    try:
        primes = generate_ntt_primes(30, 2, N)
        tensor = backend.from_rows(random_rows(primes, N, seed=15), primes)
        name, first_row, rows, n = tensor.shared_buffer()
        assert (first_row, rows, n) == (0, 2, N)
        view = backend.slice_rows(tensor, 1, 2)
        assert view.shared_buffer() == (name, 1, 1, N)
        # sub-crossover (heap) tensors report no shared storage
        small = ParallelBackend(shards=2)
        heap_tensor = small.from_rows(random_rows(primes, N, seed=16), primes)
        assert heap_tensor.shared_buffer() is None
        small.close()
        # and so does every non-parallel backend (the contract default)
        numpy_tensor = NumpyBackend().from_rows([[1] * 4], [17])
        assert numpy_tensor.shared_buffer() is None
    finally:
        backend.close()
