"""Tests for the four-step NTT decomposition and the vectorised NumPy backend."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modarith.modops import inv_mod
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.transforms.bitrev import bit_reverse_permute
from repro.transforms.cooley_tukey import NegacyclicTransformer, ntt_forward
from repro.transforms.four_step import (
    default_split,
    four_step_cyclic_ntt,
    four_step_negacyclic_intt,
    four_step_negacyclic_ntt,
)
from repro.transforms.reference import naive_negacyclic_convolution, naive_negacyclic_ntt
from repro.transforms.stockham import stockham_cyclic_ntt
from repro.transforms.vectorized import MAX_VECTORIZED_MODULUS_BITS, VectorizedNTT

N = 64
P = generate_ntt_primes(30, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, P)


def random_poly(n, p, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(p) for _ in range(n)]


# ---------------------------------------------------------------- four-step


def test_default_split_balanced():
    assert default_split(1 << 6) == (8, 8)
    assert default_split(1 << 17) == (256, 512)
    assert default_split(2) == (1, 2)


def test_four_step_cyclic_matches_stockham():
    omega = (PSI * PSI) % P
    values = random_poly(N, P, seed=1)
    assert four_step_cyclic_ntt(values, omega, P) == stockham_cyclic_ntt(values, omega, P)


@pytest.mark.parametrize("n1", [1, 2, 4, 8, 16, 32, 64])
def test_four_step_negacyclic_matches_reference_for_every_split(n1):
    values = random_poly(N, P, seed=2)
    expected = naive_negacyclic_ntt(values, PSI, P)
    assert four_step_negacyclic_ntt(values, PSI, P, n1=n1) == expected


def test_four_step_equals_bitreversed_cooley_tukey():
    values = random_poly(N, P, seed=3)
    ct = ntt_forward(values, PSI, P)
    assert four_step_negacyclic_ntt(values, PSI, P) == bit_reverse_permute(ct)


def test_four_step_roundtrip():
    values = random_poly(N, P, seed=4)
    transformed = four_step_negacyclic_ntt(values, PSI, P)
    assert four_step_negacyclic_intt(transformed, PSI, P) == values
    # mismatched split on the way back still works (the split is internal)
    assert four_step_negacyclic_intt(transformed, PSI, P, n1=4) == values


def test_four_step_validation():
    with pytest.raises(ValueError):
        four_step_cyclic_ntt([1, 2, 3], 1, P)
    with pytest.raises(ValueError):
        four_step_cyclic_ntt([0] * N, 1, P, n1=3)
    with pytest.raises(ValueError):
        four_step_negacyclic_ntt([1, 2, 3], PSI, P)
    with pytest.raises(ValueError):
        four_step_negacyclic_intt([1, 2, 3], PSI, P)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=3, max_value=6), st.integers(min_value=0, max_value=2**30))
def test_four_step_property_various_sizes(log_n, seed):
    n = 1 << log_n
    p = generate_ntt_primes(28, 1, n)[0]
    psi = primitive_root_of_unity(2 * n, p)
    values = random_poly(n, p, seed=seed)
    expected = naive_negacyclic_ntt(values, psi, p)
    assert four_step_negacyclic_ntt(values, psi, p) == expected


# ---------------------------------------------------------------- vectorised backend


def test_vectorized_rejects_large_moduli_and_bad_sizes():
    big_prime = generate_ntt_primes(60, 1, N)[0]
    with pytest.raises(ValueError):
        VectorizedNTT(N, big_prime)
    with pytest.raises(ValueError):
        VectorizedNTT(48, P)
    with pytest.raises(ValueError):
        VectorizedNTT(N, 998244353 - 2)
    assert MAX_VECTORIZED_MODULUS_BITS == 30


def test_vectorized_matches_scalar_forward_and_inverse():
    scalar = NegacyclicTransformer(N, P, PSI)
    vectorised = VectorizedNTT(N, P, PSI)
    values = random_poly(N, P, seed=5)
    assert vectorised.forward(values) == scalar.forward(values)
    transformed = scalar.forward(values)
    assert vectorised.inverse(transformed) == scalar.inverse(transformed)


def test_vectorized_roundtrip_and_multiply():
    vectorised = VectorizedNTT(N, P, PSI)
    a = random_poly(N, P, seed=6)
    b = random_poly(N, P, seed=7)
    assert vectorised.inverse(vectorised.forward(a)) == a
    assert vectorised.multiply(a, b) == naive_negacyclic_convolution(a, b, P)


def test_vectorized_derives_root_and_validates_length():
    vectorised = VectorizedNTT(N, P)
    values = random_poly(N, P, seed=8)
    assert vectorised.inverse(vectorised.forward(values)) == values
    with pytest.raises(ValueError):
        vectorised.forward([1] * (N - 1))


def test_vectorized_larger_size_against_scalar():
    n = 1 << 9
    p = generate_ntt_primes(30, 1, n)[0]
    scalar = NegacyclicTransformer(n, p)
    vectorised = VectorizedNTT(n, p, scalar.psi)
    values = random_poly(n, p, seed=9)
    assert vectorised.forward(values) == scalar.forward(values)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**30))
def test_vectorized_roundtrip_property(seed):
    vectorised = VectorizedNTT(N, P, PSI)
    values = random_poly(N, P, seed=seed)
    assert vectorised.inverse(vectorised.forward(values)) == values
