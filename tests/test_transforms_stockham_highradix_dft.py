"""Tests for the Stockham NTT, pass-structured (high-radix) NTT, and the FFT counterpart."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.transforms.bitrev import bit_reverse_permute
from repro.transforms.cooley_tukey import forward_twiddle_table, ntt_forward
from repro.transforms.dft import fft_forward, fft_inverse, naive_dft
from repro.transforms.high_radix import (
    ntt_forward_by_passes,
    plan_stage_groups,
    radix_of_group,
    run_pass,
)
from repro.transforms.reference import naive_negacyclic_ntt
from repro.transforms.stockham import stockham_ntt_forward, stockham_ntt_inverse

N = 64
P = generate_ntt_primes(30, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, P)


def random_poly(n, p, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(p) for _ in range(n)]


# ---------------------------------------------------------------- Stockham


def test_stockham_forward_matches_naive_natural_order():
    values = random_poly(N, P, seed=1)
    assert stockham_ntt_forward(values, PSI, P) == naive_negacyclic_ntt(values, PSI, P)


def test_stockham_forward_equals_bitreversed_cooley_tukey():
    values = random_poly(N, P, seed=2)
    ct = ntt_forward(values, PSI, P)
    assert stockham_ntt_forward(values, PSI, P) == bit_reverse_permute(ct)


def test_stockham_roundtrip():
    values = random_poly(N, P, seed=3)
    assert stockham_ntt_inverse(stockham_ntt_forward(values, PSI, P), PSI, P) == values


def test_stockham_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        stockham_ntt_forward([1, 2, 3], PSI, P)
    with pytest.raises(ValueError):
        stockham_ntt_inverse([1, 2, 3], PSI, P)


# ---------------------------------------------------------------- high radix


def test_plan_stage_groups_exact_division():
    assert plan_stage_groups(1 << 16, 16) == [4, 4, 4, 4]
    assert plan_stage_groups(1 << 17, 2) == [1] * 17
    assert plan_stage_groups(1 << 12, 1 << 12) == [12]


def test_plan_stage_groups_remainder_goes_last():
    assert plan_stage_groups(1 << 17, 16) == [4, 4, 4, 4, 1]
    assert plan_stage_groups(1 << 10, 8) == [3, 3, 3, 1]


def test_plan_stage_groups_validation():
    with pytest.raises(ValueError):
        plan_stage_groups(100, 4)
    with pytest.raises(ValueError):
        plan_stage_groups(64, 3)
    with pytest.raises(ValueError):
        plan_stage_groups(64, 128)


def test_radix_of_group():
    assert radix_of_group(1) == 2
    assert radix_of_group(4) == 16
    assert radix_of_group(11) == 2048


@pytest.mark.parametrize("radix", [2, 4, 8, 16, 64])
def test_pass_structured_ntt_matches_radix2(radix):
    values = random_poly(N, P, seed=4)
    expected = ntt_forward(values, PSI, P)
    data = list(values)
    table = forward_twiddle_table(N, PSI, P)
    stats = ntt_forward_by_passes(data, table, P, plan_stage_groups(N, radix))
    assert data == expected
    assert sum(s.stages for s in stats) == 6  # log2(64)
    assert all(s.element_loads == N and s.element_stores == N for s in stats)


def test_pass_stats_accounting():
    values = random_poly(N, P, seed=5)
    table = forward_twiddle_table(N, PSI, P)
    data = list(values)
    stats = ntt_forward_by_passes(data, table, P, [3, 3])
    # First pass covers stages m=1,2,4 -> 1+2+4 = 7 twiddles; second m=8,16,32 -> 56.
    assert stats[0].twiddle_loads == 7
    assert stats[1].twiddle_loads == 56
    assert stats[0].butterflies == 3 * N // 2
    assert stats[0].radix == 8
    # Total twiddles across all stages of a radix-2 NTT is N - 1.
    assert sum(s.twiddle_loads for s in stats) == N - 1


def test_run_pass_partial_stage_window():
    """Running all stages through run_pass in two chunks equals the full transform."""
    values = random_poly(N, P, seed=6)
    expected = ntt_forward(values, PSI, P)
    table = forward_twiddle_table(N, PSI, P)
    data = list(values)
    run_pass(data, table, P, first_stage_m=1, stage_count=2)
    run_pass(data, table, P, first_stage_m=4, stage_count=4)
    assert data == expected


def test_ntt_forward_by_passes_validates_groups():
    table = forward_twiddle_table(N, PSI, P)
    with pytest.raises(ValueError):
        ntt_forward_by_passes([0] * N, table, P, [3, 2])  # sums to 5, not 6


# ---------------------------------------------------------------- DFT / FFT


def test_fft_forward_matches_naive_dft():
    rng = random.Random(7)
    values = [complex(rng.random(), rng.random()) for _ in range(N)]
    fast = bit_reverse_permute(fft_forward(values))
    reference = naive_dft(values)
    assert np.allclose(np.asarray(fast), reference, atol=1e-9)


def test_fft_roundtrip():
    rng = random.Random(8)
    values = [complex(rng.random(), rng.random()) for _ in range(N)]
    back = fft_inverse(fft_forward(values))
    assert np.allclose(np.asarray(back), np.asarray(values), atol=1e-9)


def test_fft_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        fft_forward([1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        fft_inverse([1.0, 2.0, 3.0])


def test_fft_and_ntt_share_loop_structure():
    """The FFT twiddle table has the same length/layout as the NTT table so the
    memory-traffic comparison in the paper is apples-to-apples."""
    from repro.transforms.dft import dft_twiddle_table

    assert len(dft_twiddle_table(N)) == len(forward_twiddle_table(N, PSI, P))
    assert dft_twiddle_table(N)[0] == 1
