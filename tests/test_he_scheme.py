"""End-to-end tests for the RNS-BGV homomorphic-encryption layer."""

from __future__ import annotations

import random

import pytest

from repro.rns.poly import RnsPolynomial
from repro.he import (
    BatchEncoder,
    BootstrapWorkloadModel,
    Ciphertext,
    Decryptor,
    Encryptor,
    Evaluator,
    HEParams,
    IntegerEncoder,
    KeyGenerator,
    NoiseRefresher,
    bootstrappable_params,
    generate_bgv_primes,
    small_params,
    toy_params,
)


@pytest.fixture(scope="module")
def he():
    """A fully keyed toy HE context shared by the module's tests."""
    params = toy_params()
    keygen = KeyGenerator(params, seed=7)
    secret = keygen.secret_key()
    public = keygen.public_key()
    relin = keygen.relinearization_key()
    return {
        "params": params,
        "keygen": keygen,
        "secret": secret,
        "public": public,
        "relin": relin,
        "encoder": BatchEncoder(params, keygen.basis),
        "encryptor": Encryptor(params, public, seed=11),
        "decryptor": Decryptor(params, secret),
        "evaluator": Evaluator(params),
    }


def slots(he, count, seed=0):
    rng = random.Random(seed)
    t = he["params"].plaintext_modulus
    return [rng.randrange(t) for _ in range(count)]


# ---------------------------------------------------------------- params


def test_params_validation():
    with pytest.raises(ValueError):
        HEParams(n=100, plaintext_modulus=257, prime_bits=40, prime_count=3)
    with pytest.raises(ValueError):
        HEParams(n=64, plaintext_modulus=1, prime_bits=40, prime_count=3)
    with pytest.raises(ValueError):
        HEParams(n=64, plaintext_modulus=257, prime_bits=40, prime_count=0)
    with pytest.raises(ValueError):
        bootstrappable_params(log_n=13)


def test_bgv_primes_satisfy_double_congruence():
    primes = generate_bgv_primes(40, 3, 64, 257)
    for p in primes:
        assert p % (2 * 64) == 1
        assert p % 257 == 1
    with pytest.raises(ValueError):
        generate_bgv_primes(10, 1, 64, 257)


def test_preset_params():
    assert toy_params().n == 64
    assert small_params().plaintext_modulus == 65537
    boot = bootstrappable_params(17, 21)
    assert boot.n == 1 << 17
    assert boot.prime_count == 21
    assert boot.log_q == 60 * 21


# ---------------------------------------------------------------- encoding


def test_batch_encoder_roundtrip(he):
    values = slots(he, he["encoder"].slot_count, seed=1)
    plaintext = he["encoder"].encode(values)
    decoded = he["encoder"].decode(plaintext.to_big_coefficients(centered=False))
    assert decoded == values


def test_batch_encoder_pads_short_inputs(he):
    plaintext = he["encoder"].encode([5, 6])
    decoded = he["encoder"].decode(plaintext.to_big_coefficients())
    assert decoded[:2] == [5, 6]
    assert all(v == 0 for v in decoded[2:])


def test_batch_encoder_rejects_too_many_values(he):
    with pytest.raises(ValueError):
        he["encoder"].encode([0] * (he["encoder"].slot_count + 1))


def test_batch_encoder_requires_ntt_prime_t():
    params = HEParams(n=64, plaintext_modulus=17, prime_bits=40, prime_count=2)
    keygen = KeyGenerator(params)
    with pytest.raises(ValueError):
        BatchEncoder(params, keygen.basis)


def test_integer_encoder(he):
    encoder = IntegerEncoder(he["params"], he["keygen"].basis)
    plaintext = encoder.encode(123)
    ct = he["encryptor"].encrypt(plaintext)
    assert encoder.decode(he["decryptor"].decrypt(ct)) == 123


# ---------------------------------------------------------------- encrypt/decrypt


def test_encrypt_decrypt_roundtrip(he):
    values = slots(he, 8, seed=2)
    ct = he["encryptor"].encrypt(he["encoder"].encode(values))
    assert ct.size == 2
    decoded = he["encoder"].decode(he["decryptor"].decrypt(ct))
    assert decoded[:8] == values


def test_fresh_noise_budget_positive(he):
    ct = he["encryptor"].encrypt(he["encoder"].encode([1, 2, 3]))
    budget = he["decryptor"].noise_budget_bits(ct)
    assert budget > 50  # toy params: Q ~ 2^120, fresh noise tiny


def test_ciphertext_validation(he):
    ct = he["encryptor"].encrypt(he["encoder"].encode([1]))
    with pytest.raises(ValueError):
        Ciphertext(polys=[ct.polys[0]], params=he["params"])
    copied = ct.copy()
    assert copied.polys[0] == ct.polys[0]
    assert copied.polys[0].tensor is not ct.polys[0].tensor
    # residues differing in a single bit compare unequal (via a rebuilt poly —
    # the resident tensor itself is opaque and never mutated in place)
    rows = copied.polys[0].to_coeff_lists()
    rows[0][0] ^= 1
    tweaked = RnsPolynomial.from_residue_rows(
        rows, copied.polys[0].basis, backend=copied.polys[0].backend
    )
    assert tweaked != ct.polys[0]


# ---------------------------------------------------------------- homomorphic ops


def test_homomorphic_addition_and_subtraction(he):
    t = he["params"].plaintext_modulus
    a, b = slots(he, 6, seed=3), slots(he, 6, seed=4)
    ca = he["encryptor"].encrypt(he["encoder"].encode(a))
    cb = he["encryptor"].encrypt(he["encoder"].encode(b))
    summed = he["encoder"].decode(he["decryptor"].decrypt(he["evaluator"].add(ca, cb)))
    diff = he["encoder"].decode(he["decryptor"].decrypt(he["evaluator"].sub(ca, cb)))
    assert summed[:6] == [(x + y) % t for x, y in zip(a, b)]
    assert diff[:6] == [(x - y) % t for x, y in zip(a, b)]


def test_homomorphic_negation(he):
    t = he["params"].plaintext_modulus
    a = slots(he, 4, seed=5)
    ca = he["encryptor"].encrypt(he["encoder"].encode(a))
    negated = he["encoder"].decode(he["decryptor"].decrypt(he["evaluator"].negate(ca)))
    assert negated[:4] == [(-x) % t for x in a]


def test_homomorphic_multiplication_and_relinearisation(he):
    t = he["params"].plaintext_modulus
    a, b = slots(he, 6, seed=6), slots(he, 6, seed=7)
    ca = he["encryptor"].encrypt(he["encoder"].encode(a))
    cb = he["encryptor"].encrypt(he["encoder"].encode(b))
    product = he["evaluator"].multiply(ca, cb)
    assert product.size == 3
    decoded = he["encoder"].decode(he["decryptor"].decrypt(product))
    assert decoded[:6] == [(x * y) % t for x, y in zip(a, b)]
    relinearised = he["evaluator"].relinearize(product, he["relin"])
    assert relinearised.size == 2
    decoded_relin = he["encoder"].decode(he["decryptor"].decrypt(relinearised))
    assert decoded_relin[:6] == [(x * y) % t for x, y in zip(a, b)]


def test_plain_operations(he):
    t = he["params"].plaintext_modulus
    a, b = slots(he, 5, seed=8), slots(he, 5, seed=9)
    ca = he["encryptor"].encrypt(he["encoder"].encode(a))
    plain_b = he["encoder"].encode(b)
    mul = he["encoder"].decode(he["decryptor"].decrypt(he["evaluator"].multiply_plain(ca, plain_b)))
    add = he["encoder"].decode(he["decryptor"].decrypt(he["evaluator"].add_plain(ca, plain_b)))
    assert mul[:5] == [(x * y) % t for x, y in zip(a, b)]
    assert add[:5] == [(x + y) % t for x, y in zip(a, b)]


def test_multiplication_consumes_noise_budget(he):
    a = slots(he, 4, seed=10)
    ca = he["encryptor"].encrypt(he["encoder"].encode(a))
    fresh_budget = he["decryptor"].noise_budget_bits(ca)
    squared = he["evaluator"].relinearize(he["evaluator"].square(ca), he["relin"])
    assert he["decryptor"].noise_budget_bits(squared) < fresh_budget


def test_level_mismatch_raises(he):
    a = slots(he, 4, seed=11)
    ca = he["encryptor"].encrypt(he["encoder"].encode(a))
    cb = he["encryptor"].encrypt(he["encoder"].encode(a))
    switched = he["evaluator"].mod_switch_to_next(ca)
    with pytest.raises(ValueError):
        he["evaluator"].add(switched, cb)


def test_relinearize_requires_size3(he):
    a = he["encryptor"].encrypt(he["encoder"].encode([1]))
    relinearised = he["evaluator"].relinearize(a, he["relin"])
    assert relinearised.size == 2  # size-2 input passes through unchanged


def test_mod_switch_preserves_plaintext(he):
    t = he["params"].plaintext_modulus
    a, b = slots(he, 6, seed=12), slots(he, 6, seed=13)
    ca = he["encryptor"].encrypt(he["encoder"].encode(a))
    cb = he["encryptor"].encrypt(he["encoder"].encode(b))
    product = he["evaluator"].relinearize(he["evaluator"].multiply(ca, cb), he["relin"])
    switched = he["evaluator"].mod_switch_to_next(product)
    assert switched.basis.count == product.basis.count - 1
    assert switched.level == product.level + 1
    decoded = he["encoder"].decode(he["decryptor"].decrypt(switched))
    assert decoded[:6] == [(x * y) % t for x, y in zip(a, b)]


def test_evaluator_counts_ntt_invocations(he):
    evaluator = Evaluator(he["params"])
    assert evaluator.ntt_invocations == 0
    a = he["encryptor"].encrypt(he["encoder"].encode([1, 2]))
    evaluator.multiply(a, a)
    # multiply(a, a) on a size-2 ciphertext: 4 forward + 3 inverse NTTs per prime.
    basis_size = a.basis.count
    assert evaluator.ntt_invocations == (2 * a.size + (2 * a.size - 1)) * basis_size


def test_plain_ops_reject_mismatched_ring(he):
    """Plaintexts encoded for a different basis are rejected, not corrupted."""
    a = he["encryptor"].encrypt(he["encoder"].encode([1, 2, 3]))
    wrong_basis = a.basis.drop_last(1)
    stray = RnsPolynomial.from_coefficients([1] * he["params"].n, wrong_basis)
    with pytest.raises(ValueError):
        he["evaluator"].multiply_plain(a, stray)
    with pytest.raises(ValueError):
        he["evaluator"].add_plain(a, stray)


def test_square_transforms_operand_once(he):
    """square() forward-transforms its operand once — half the NTTs of multiply(a, a)."""
    a = he["encryptor"].encrypt(he["encoder"].encode([3, 4]))
    basis_size = a.basis.count
    multiplier, squarer = Evaluator(he["params"]), Evaluator(he["params"])
    product = multiplier.multiply(a, a)
    squared = squarer.square(a)
    # Identical bits either way, but square() saves a.size forward transforms
    # per prime.
    assert [p.residues for p in squared.polys] == [p.residues for p in product.polys]
    assert multiplier.ntt_invocations == (2 * a.size + (2 * a.size - 1)) * basis_size
    assert squarer.ntt_invocations == (a.size + (2 * a.size - 1)) * basis_size
    assert squarer.ntt_invocations < multiplier.ntt_invocations


# ---------------------------------------------------------------- bootstrap


def test_noise_refresher_restores_budget(he):
    a = slots(he, 4, seed=14)
    ca = he["encryptor"].encrypt(he["encoder"].encode(a))
    worn = he["evaluator"].relinearize(he["evaluator"].square(ca), he["relin"])
    refresher = NoiseRefresher(he["encryptor"], he["decryptor"])
    refreshed = refresher.refresh(worn)
    t = he["params"].plaintext_modulus
    assert he["encoder"].decode(he["decryptor"].decrypt(refreshed))[:4] == [
        (x * x) % t for x in a
    ]
    assert he["decryptor"].noise_budget_bits(refreshed) > he["decryptor"].noise_budget_bits(worn)


def test_bootstrap_workload_model_scales_with_parameters():
    small = BootstrapWorkloadModel(bootstrappable_params(14, 21)).estimate()
    large = BootstrapWorkloadModel(bootstrappable_params(17, 21)).estimate()
    assert large.ntt_count > small.ntt_count
    assert large.ntt_time_us > small.ntt_time_us
    assert large.total_time_estimate_us > large.ntt_time_us
    assert large.ntt_time_radix2_us > large.ntt_time_us  # the optimised NTT helps
    with pytest.raises(ValueError):
        BootstrapWorkloadModel(bootstrappable_params(17, 21), ntt_share=0.0)


def test_bootstrap_model_counts_match_helper():
    model = BootstrapWorkloadModel(bootstrappable_params(15, 21))
    assert model.ntt_invocations() == model.estimate().ntt_count
