"""Tests for the coalescing model, traffic accounting, and the cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.costmodel import CalibrationConstants, GpuCostModel, KernelLaunch
from repro.gpu.device import TITAN_V
from repro.gpu.memory import TrafficCounter, coalescing_efficiency, transactions_per_warp


# ---------------------------------------------------------------- coalescing


def test_contiguous_access_is_fully_coalesced():
    assert coalescing_efficiency(8, 1, TITAN_V) == 1.0
    assert transactions_per_warp(8, 1, TITAN_V) == 8  # 32 threads * 8 B / 32 B


def test_strided_access_wastes_bandwidth():
    # One 8-byte element per 32-byte transaction: the Figure 6(a) case.
    assert coalescing_efficiency(8, 4, TITAN_V) == pytest.approx(0.25, rel=0.05)
    assert transactions_per_warp(8, 1024, TITAN_V) == 32


def test_large_elements_fill_transactions():
    assert coalescing_efficiency(32, 1, TITAN_V) == 1.0
    assert transactions_per_warp(16, 1, TITAN_V) == 16


def test_transactions_validation():
    with pytest.raises(ValueError):
        transactions_per_warp(0, 1, TITAN_V)
    with pytest.raises(ValueError):
        transactions_per_warp(8, 0, TITAN_V)


@settings(max_examples=40, deadline=None)
@given(st.sampled_from([4, 8, 16, 32]), st.integers(min_value=1, max_value=4096))
def test_efficiency_bounds(element_bytes, stride):
    eff = coalescing_efficiency(element_bytes, stride, TITAN_V)
    assert 0 < eff <= 1.0


# ---------------------------------------------------------------- traffic


def test_traffic_counter_accumulates_by_purpose():
    counter = TrafficCounter()
    counter.add_data_read(1000)
    counter.add_data_write(500)
    counter.add_twiddle_read(250)
    counter.add_spill(50)
    assert counter.data_read == 1000
    assert counter.total == 1800
    assert counter.total_mb == pytest.approx(0.0018)


def test_traffic_counter_efficiency_inflates_traffic():
    counter = TrafficCounter()
    counter.add_data_read(1000, efficiency=0.25)
    assert counter.data_read == 4000


def test_traffic_counter_validation():
    counter = TrafficCounter()
    with pytest.raises(ValueError):
        counter.add_data_read(-1)
    with pytest.raises(ValueError):
        counter.add_data_read(100, efficiency=0.0)
    with pytest.raises(ValueError):
        counter.add_data_read(100, efficiency=1.5)


def test_traffic_counter_merge():
    a = TrafficCounter(data_read=10, data_written=20, twiddle_read=30, spill=40)
    b = TrafficCounter(data_read=1, data_written=2, twiddle_read=3, spill=4)
    merged = a.merged_with(b)
    assert merged.data_read == 11
    assert merged.total == 110
    # merging does not mutate the originals
    assert a.total == 100 and b.total == 10


# ---------------------------------------------------------------- cost model


def make_launch(bytes_moved=100e6, compute=0.0, threads=1 << 20, regs=32, smem=0, syncs=0):
    traffic = TrafficCounter()
    traffic.add_data_read(bytes_moved / 2)
    traffic.add_data_write(bytes_moved / 2)
    return KernelLaunch(
        name="test",
        traffic=traffic,
        compute_slots=compute,
        threads_total=threads,
        threads_per_block=256,
        registers_per_thread=regs,
        smem_bytes_per_block=smem,
        block_syncs=syncs,
    )


def test_memory_bound_kernel_time_matches_bandwidth():
    model = GpuCostModel(TITAN_V)
    estimate = model.estimate(make_launch(bytes_moved=100e6))
    expected = 100e6 / (651e3 * model.calibration.max_bandwidth_fraction)
    assert estimate.memory_time_us == pytest.approx(expected, rel=1e-6)
    assert estimate.time_us >= estimate.memory_time_us
    assert estimate.bandwidth_utilization <= model.calibration.max_bandwidth_fraction + 1e-9


def test_low_parallelism_reduces_bandwidth():
    model = GpuCostModel(TITAN_V)
    full = model.estimate(make_launch(threads=1 << 20))
    starved = model.estimate(make_launch(threads=1 << 14))
    assert starved.memory_time_us > full.memory_time_us


def test_mlp_reaches_saturation_with_fewer_warps():
    model = GpuCostModel(TITAN_V)
    low_mlp = make_launch(threads=1 << 16)
    high_mlp = make_launch(threads=1 << 16)
    high_mlp.loads_in_flight_per_thread = 8
    assert model.estimate(high_mlp).memory_time_us < model.estimate(low_mlp).memory_time_us


def test_compute_bound_kernel():
    model = GpuCostModel(TITAN_V)
    estimate = model.estimate(make_launch(bytes_moved=1e6, compute=1e12))
    expected_compute = 1e12 / TITAN_V.lane_throughput_per_second * 1e6
    assert estimate.compute_time_us == pytest.approx(expected_compute, rel=1e-6)
    assert estimate.time_us > estimate.memory_time_us


def test_sync_penalty_and_launch_overhead():
    model = GpuCostModel(TITAN_V)
    no_sync = model.estimate(make_launch(syncs=0))
    synced = model.estimate(make_launch(syncs=4))
    assert synced.time_us > no_sync.time_us
    expected_ratio = 1 + 4 * model.calibration.sync_penalty
    blended = no_sync.time_us - model.calibration.kernel_launch_us
    assert synced.time_us - model.calibration.kernel_launch_us == pytest.approx(
        blended * expected_ratio, rel=1e-6
    )


def test_register_spill_adds_traffic():
    model = GpuCostModel(TITAN_V)
    spilled = model.estimate(make_launch(regs=300))
    clean = model.estimate(make_launch(regs=100))
    assert spilled.dram_bytes > clean.dram_bytes


def test_kernel_that_does_not_fit_raises():
    model = GpuCostModel(TITAN_V)
    with pytest.raises(ValueError):
        model.estimate(make_launch(smem=200 * 1024))


def test_estimate_sequence_and_total():
    model = GpuCostModel(TITAN_V)
    launches = [make_launch(), make_launch()]
    estimates = model.estimate_sequence(launches)
    assert len(estimates) == 2
    assert model.total_time_us(launches) == pytest.approx(sum(e.time_us for e in estimates))


def test_with_calibration_override():
    model = GpuCostModel(TITAN_V)
    slower = model.with_calibration(max_bandwidth_fraction=0.5)
    assert slower.calibration.max_bandwidth_fraction == 0.5
    assert model.calibration.max_bandwidth_fraction == pytest.approx(0.867)
    assert slower.estimate(make_launch()).memory_time_us > model.estimate(make_launch()).memory_time_us


def test_bandwidth_fraction_ramp_properties():
    model = GpuCostModel(TITAN_V)
    cal = model.calibration
    assert model.bandwidth_fraction(0) == 0
    assert model.bandwidth_fraction(cal.warps_per_sm_for_peak) == pytest.approx(
        cal.max_bandwidth_fraction
    )
    assert model.bandwidth_fraction(1000) == pytest.approx(cal.max_bandwidth_fraction)
    assert model.bandwidth_fraction(10) < model.bandwidth_fraction(20)
