"""Benchmarks for the extension ablations (word size, OT base sweep)."""

from __future__ import annotations

from repro.experiments import ablation_ot_base, ablation_word_size, format_experiment


def test_bench_word_size_ablation(benchmark, cost_model):
    result = benchmark(ablation_word_size.run, cost_model)
    print()
    print(format_experiment(result))
    times = result.column("model time (us)")
    assert abs(times[0] - times[1]) / max(times) < 0.15  # paper: ~5%


def test_bench_ot_base_ablation(benchmark, cost_model):
    result = benchmark(ablation_ot_base.run, cost_model)
    print()
    print(format_experiment(result))
    by_base = {row["OT base"]: row["time (us)"] for row in result.rows}
    assert min(by_base, key=by_base.get) in (256, 1024)  # paper: base-1024
