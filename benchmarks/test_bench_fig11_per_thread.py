"""Benchmark / reproduction of Figure 11 (per-thread NTT/DFT size and first OT results)."""

from __future__ import annotations

from repro.experiments import fig11_per_thread, format_experiment


def test_bench_fig11_per_thread(benchmark, cost_model):
    result = benchmark(fig11_per_thread.run, cost_model)
    print()
    print(format_experiment(result))
    for row in result.rows:
        assert row["NTT 8-pt (us)"] < row["NTT 2-pt (us)"]          # fewer syncs win
        assert row["NTT 8-pt OT last-1 (us)"] < row["NTT 8-pt (us)"]  # OT helps
