"""Benchmark: resident residue tensors vs per-op boundary materialisation.

PR 1 routed every backend call through ``list[list[int]] ↔ ndarray``
conversion at the boundary, so pointwise ops paid O(np·N) Python-object
traffic per call.  The resident-tensor redesign keeps residue matrices in
backend-native storage across a whole chain of operations; this benchmark
pins the payoff by running the same pointwise-heavy NTT-domain workload two
ways on the NumPy backend at the paper-adjacent shape ``N = 4096, np = 8``:

* **resident** — handles flow between backend calls, zero conversions
  (asserted via the backend's conversion counter);
* **materialised** — every operation is bracketed by ``from_rows`` /
  ``to_rows``, reproducing the PR-1 boundary behaviour.

The assertion requires the resident chain to be at least 1.5x faster; in
practice the gap is far larger because the arithmetic itself is a handful of
vectorised array ops while the boundary is ``2 * np * N`` Python-object
conversions per operation.
"""

from __future__ import annotations

import random
import time

from repro.backends.numpy_backend import NumpyBackend
from repro.modarith.primes import generate_ntt_primes

N = 4096
NP = 8
CHAIN_OPS = 24


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _workload():
    primes = generate_ntt_primes(30, NP, N)
    rng = random.Random(0)
    rows_a = [[rng.randrange(p) for _ in range(N)] for p in primes]
    rows_b = [[rng.randrange(p) for _ in range(N)] for p in primes]
    return primes, rows_a, rows_b


def _chain_resident(backend, a, b):
    """Pointwise-heavy chain on resident handles: data never leaves storage."""
    acc = backend.mul(a, b)
    for step in range(CHAIN_OPS):
        acc = backend.mul(acc, b) if step % 2 else backend.add(acc, a)
    return acc


def _chain_materialized(backend, rows_a, rows_b, primes):
    """The same chain with PR-1 semantics: every op crosses the list boundary."""

    def op(op_name, x_rows, y_rows):
        x = backend.from_rows(x_rows, primes)
        y = backend.from_rows(y_rows, primes)
        return getattr(backend, op_name)(x, y).to_rows()

    acc_rows = op("mul", rows_a, rows_b)
    for step in range(CHAIN_OPS):
        acc_rows = (
            op("mul", acc_rows, rows_b) if step % 2 else op("add", acc_rows, rows_a)
        )
    return acc_rows


def test_bench_resident_chain_beats_materialization(benchmark):
    primes, rows_a, rows_b = _workload()
    backend = NumpyBackend()
    a = backend.from_rows(rows_a, primes)
    b = backend.from_rows(rows_b, primes)

    # Identical bits either way, and the resident chain performs zero
    # boundary conversions — the acceptance criterion of the redesign.
    backend.reset_conversion_count()
    resident_result = _chain_resident(backend, a, b)
    assert backend.conversion_count == 0
    assert resident_result.to_rows() == _chain_materialized(
        backend, rows_a, rows_b, primes
    )

    benchmark(_chain_resident, backend, a, b)

    resident_s = _best_of(lambda: _chain_resident(backend, a, b))
    materialized_s = _best_of(
        lambda: _chain_materialized(backend, rows_a, rows_b, primes)
    )
    speedup = materialized_s / resident_s
    print()
    print(
        "Pointwise chain (%d ops), N=%d, np=%d, 30-bit primes, numpy backend"
        % (CHAIN_OPS + 1, N, NP)
    )
    print("  per-op materialisation : %8.2f ms" % (materialized_s * 1e3))
    print("  resident tensors       : %8.2f ms" % (resident_s * 1e3))
    print("  speedup                : %8.2fx" % speedup)
    assert speedup >= 1.5


def test_bench_resident_he_multiply_chain(benchmark):
    """End-to-end HE sanity at toy-ish scale: the multiply → relinearize →
    mod-switch chain stays conversion-free on the numpy backend."""
    from repro.he import HeContext, HEParams

    params = HEParams(n=256, plaintext_modulus=7681, prime_bits=30, prime_count=4)
    context = HeContext.create(params, backend=NumpyBackend())
    encryptor = context.encryptor()
    evaluator = context.evaluator()
    relin = context.relinearization_key()
    ct_a = encryptor.encrypt(context.encoder().encode([1, 2, 3, 4]))
    ct_b = encryptor.encrypt(context.encoder().encode([5, 6, 7, 8]))

    def chain():
        return evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
        )

    context.reset_metrics()
    switched = chain()
    assert context.backend.conversion_count == 0
    decoded = context.encoder().decode(context.decryptor().decrypt(switched))
    assert decoded[:4] == [(x * y) % 7681 for x, y in zip([1, 2, 3, 4], [5, 6, 7, 8])]

    benchmark(chain)
