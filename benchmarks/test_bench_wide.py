"""Benchmark: the wide-word (60-bit) vectorised path vs the big-int fallback.

The paper's headline configurations run ~60-bit RNS primes, which the array
data plane historically routed per prime through the scalar big-int fallback.
The wide-word window (``repro/backends/wideops.py``) keeps those primes on
the vectorised array path with Shoup-companion modular multiplies.  This
benchmark times both regimes on the same shape (``N = 4096``, 60-bit primes)
and pins the acceptance criterion: the wide path sustains at least
``MIN_SPEEDUP``x the fallback's per-row forward-NTT throughput.

The fallback regime is produced with ``REPRO_WIDE_WORD=0`` (the escape hatch
that restores the legacy 30-bit gate), on a much smaller batch — the big-int
path is orders of magnitude slower — and both timings are normalised per row
before comparison.  Outputs of the two regimes are also cross-checked
bit-for-bit on the fallback batch.
"""

from __future__ import annotations

import random
import time

from repro.backends.numpy_backend import NumpyBackend
from repro.modarith.primes import generate_ntt_primes

N = 4096
P_BITS = 60
WIDE_BATCH = 8
FALLBACK_BATCH = 2  # the big-int path is slow; normalise per row
ENGINE = "stockham"  # pinned so neither regime pays autotuner overhead
#: Required per-row throughput advantage of the wide path over the fallback.
MIN_SPEEDUP = 3.0


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(batch):
    primes = generate_ntt_primes(P_BITS, 2, N)
    batch_primes = [primes[i % len(primes)] for i in range(batch)]
    rng = random.Random(N)
    rows = [[rng.randrange(p) for _ in range(N)] for p in batch_primes]
    return batch_primes, rows


def test_bench_wide_vs_fallback_forward_ntt(benchmark, monkeypatch):
    # --- fallback regime: legacy 30-bit gate, per-prime big-int rows -------
    fb_primes, fb_rows = _workload(FALLBACK_BATCH)
    monkeypatch.setenv("REPRO_WIDE_WORD", "0")
    fallback = NumpyBackend(engine=ENGINE)
    fb_tensor = fallback.from_rows(fb_rows, fb_primes)
    fb_out = fallback.forward_ntt_batch(fb_tensor)  # warm
    fb_seconds = _best_of(
        lambda: fallback.forward_ntt_batch(fb_tensor), repeats=2
    )
    assert fallback.fallback_rows > 0, "fallback regime did not engage"
    fb_reference = fb_out.to_rows()
    monkeypatch.delenv("REPRO_WIDE_WORD")

    # --- wide regime: default window, fully vectorised ---------------------
    primes, rows = _workload(WIDE_BATCH)
    wide = NumpyBackend(engine=ENGINE)
    tensor = wide.from_rows(rows, primes)
    wide.forward_ntt_batch(tensor)  # warm twiddles + Shoup companions
    wide_seconds = _best_of(lambda: wide.forward_ntt_batch(tensor))
    assert wide.fallback_rows == 0, "wide regime fell back"

    # exactness cross-check on the fallback batch
    check = wide.forward_ntt_batch(wide.from_rows(fb_rows, fb_primes))
    assert check.to_rows() == fb_reference

    wide_per_row = wide_seconds / WIDE_BATCH
    fb_per_row = fb_seconds / FALLBACK_BATCH
    speedup = fb_per_row / wide_per_row
    print()
    print("Forward NTT, N=%d, %d-bit primes (per-row):" % (N, P_BITS))
    print("  big-int fallback  %8.2f ms" % (fb_per_row * 1e3))
    print("  wide vectorised   %8.2f ms   %.1fx" % (wide_per_row * 1e3, speedup))

    benchmark(wide.forward_ntt_batch, tensor)
    assert speedup >= MIN_SPEEDUP, (
        "wide path only %.2fx the fallback (need >= %.1fx)" % (speedup, MIN_SPEEDUP)
    )
