"""Benchmark / reproduction of Figure 3 (batching sweep for NTT and DFT)."""

from __future__ import annotations

from repro.experiments import fig03_batching, format_experiment


def test_bench_fig03_batching(benchmark, cost_model):
    result = benchmark(fig03_batching.run, cost_model)
    print()
    print(format_experiment(result))
    last = result.rows[-1]
    assert last["NTT speedup vs batch=1"] > 1.5   # paper: 1.92x
    assert last["NTT DRAM utilization"] > 0.8     # paper: 86.7%
