"""Benchmark / reproduction of Figure 1 (Shoup vs native modular multiplication)."""

from __future__ import annotations

from repro.experiments import fig01_modmul, format_experiment


def test_bench_fig01_modmul(benchmark, cost_model):
    result = benchmark(fig01_modmul.run, cost_model)
    print()
    print(format_experiment(result))
    shoup = result.row_by("modmul", "Shoup")
    assert shoup["model speedup vs native"] > 2.0  # paper: 2.37x
