"""Benchmark / reproduction of Table II (radix-2 vs SMEM vs SMEM + OT)."""

from __future__ import annotations

from repro.experiments import format_experiment, table2_summary


def test_bench_table2(benchmark, cost_model):
    result = benchmark(table2_summary.run, cost_model)
    print()
    print(format_experiment(result))
    for row in result.rows:
        assert 3.0 < row["SMEM w/o OT speedup"] < 5.5  # paper: 3.4-4.3x
        assert row["SMEM w/ OT speedup"] > row["SMEM w/o OT speedup"]
