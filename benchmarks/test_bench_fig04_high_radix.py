"""Benchmark / reproduction of Figure 4 (high-radix NTT sweep)."""

from __future__ import annotations

from repro.experiments import fig04_high_radix, format_experiment


def test_bench_fig04_high_radix(benchmark, cost_model):
    result = benchmark(fig04_high_radix.run, cost_model)
    print()
    print(format_experiment(result))
    for log_n in (16, 17):
        subset = [r for r in result.rows if r["logN"] == log_n]
        assert min(subset, key=lambda r: r["model time (us)"])["radix"] == 16  # paper: radix-16 best
