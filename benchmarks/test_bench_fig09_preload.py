"""Benchmark / reproduction of Figure 9 (Kernel-1 twiddle preloading)."""

from __future__ import annotations

from repro.experiments import fig09_preload, format_experiment


def test_bench_fig09_preload(benchmark, cost_model):
    result = benchmark(fig09_preload.run, cost_model)
    print()
    print(format_experiment(result))
    for row in result.rows:
        assert row["speedup from preloading"] > 1.0  # paper mean: 8.4%
