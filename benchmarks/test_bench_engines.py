"""Benchmark: the NTT-engine zoo on the batched data-plane shape.

Races every registered engine on the production path (resident tensor →
``forward_ntt_batch``) at ``N = 4096`` and ``N = 8192`` with a batch of 8
rows over 30-bit primes.  Pins the engine-layer acceptance criteria:

* at least one vectorised non-radix-2 engine beats the radix-2 baseline
  (the pre-engine data plane) by a recorded margin, and
* the auto-tuner picks a non-radix-2 engine for the shape on its own —
  i.e. the default configuration actually ships the speedup.

The structural reason for the margin: radix-2 reduces every butterfly
add/sub with a hardware-division ``%``, while the other engines use the
branch-free conditional subtraction (see ``repro/backends/engines.py``).
"""

from __future__ import annotations

import random
import time

from repro.backends.engines import DEFAULT_AUTOTUNE_CANDIDATES
from repro.backends.numpy_backend import NumpyBackend
from repro.modarith.primes import generate_ntt_primes

BATCH = 8
ENGINE_SPECS = ("radix2", "high_radix", "four_step", "stockham")
#: Required advantage of the best non-radix-2 engine over the baseline.
MIN_SPEEDUP = 1.1


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(n):
    primes = generate_ntt_primes(30, 2, n)
    batch_primes = [primes[i % len(primes)] for i in range(BATCH)]
    rng = random.Random(n)
    rows = [[rng.randrange(p) for _ in range(n)] for p in batch_primes]
    return batch_primes, rows


def _race(n):
    """Time every engine at (n, BATCH); return {spec: seconds} and outputs."""
    primes, rows = _workload(n)
    timings = {}
    outputs = {}
    for spec in ENGINE_SPECS:
        backend = NumpyBackend(engine=spec)
        tensor = backend.from_rows(rows, primes)
        outputs[spec] = backend.forward_ntt_batch(tensor).to_rows()  # warm + check
        timings[spec] = _best_of(lambda b=backend, t=tensor: b.forward_ntt_batch(t))
    reference = outputs["radix2"]
    for spec, produced in outputs.items():
        assert produced == reference, "engine %s diverged from radix2" % spec
    return timings


def _report(n, timings):
    print()
    print("Batched forward NTT engines, N=%d, batch=%d, 30-bit primes" % (n, BATCH))
    baseline = timings["radix2"]
    for spec, seconds in sorted(timings.items(), key=lambda item: item[1]):
        print(
            "  %-12s %8.2f ms   %5.2fx vs radix-2"
            % (spec, seconds * 1e3, baseline / seconds)
        )


def test_bench_engine_zoo_n4096(benchmark):
    timings = _race(4096)
    _report(4096, timings)
    non_radix2 = {s: t for s, t in timings.items() if s != "radix2"}
    best_other = min(non_radix2, key=non_radix2.__getitem__)
    primes, rows = _workload(4096)
    backend = NumpyBackend(engine=best_other)
    tensor = backend.from_rows(rows, primes)
    benchmark(backend.forward_ntt_batch, tensor)
    assert timings["radix2"] / min(non_radix2.values()) >= MIN_SPEEDUP


def test_bench_engine_zoo_n8192(benchmark):
    timings = _race(8192)
    _report(8192, timings)
    primes, rows = _workload(8192)
    backend = NumpyBackend(engine="high_radix")
    tensor = backend.from_rows(rows, primes)
    benchmark(backend.forward_ntt_batch, tensor)
    non_radix2 = {s: t for s, t in timings.items() if s != "radix2"}
    assert timings["radix2"] / min(non_radix2.values()) >= MIN_SPEEDUP


def test_bench_autotuner_ships_the_win(benchmark):
    """The default (auto-tuned) configuration picks a non-radix-2 engine and
    is not slower than the radix-2 baseline at the pinned shape."""
    n = 4096
    primes, rows = _workload(n)
    tuned = NumpyBackend()  # no pin, no env: dynamic selection
    tensor = tuned.from_rows(rows, primes)
    tuned.forward_ntt_batch(tensor)  # triggers the auto-tuner
    choices = tuned.engine_choices
    assert choices, "auto-tuner never ran"
    key = (n, primes[0].bit_length(), BATCH // len(set(primes)))
    chosen = choices.get(key) or next(iter(choices.values()))
    print()
    print("Auto-tuner at N=%d batch=%d chose: %s  (timings: %s)" % (
        n, BATCH, chosen,
        {s: "%.2fms" % (v * 1e3) for s, v in next(iter(tuned.engine_timings.values())).items()},
    ))
    assert chosen in DEFAULT_AUTOTUNE_CANDIDATES
    assert chosen != "radix2"

    baseline = NumpyBackend(engine="radix2")
    base_tensor = baseline.from_rows(rows, primes)
    baseline.forward_ntt_batch(base_tensor)  # warm
    tuned_s = _best_of(lambda: tuned.forward_ntt_batch(tensor))
    base_s = _best_of(lambda: baseline.forward_ntt_batch(base_tensor))
    print("  tuned %.2f ms vs radix-2 %.2f ms (%.2fx)" % (
        tuned_s * 1e3, base_s * 1e3, base_s / tuned_s))
    benchmark(tuned.forward_ntt_batch, tensor)
    assert tuned_s <= base_s * 1.05
