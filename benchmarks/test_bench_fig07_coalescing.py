"""Benchmark / reproduction of Figure 7 (Kernel-1 coalescing)."""

from __future__ import annotations

from repro.experiments import fig07_coalescing, format_experiment


def test_bench_fig07_coalescing(benchmark, cost_model):
    result = benchmark(fig07_coalescing.run, cost_model)
    print()
    print(format_experiment(result))
    for row in result.rows:
        assert row["speedup from coalescing"] > 1.1  # paper mean: 21.6%
