"""Benchmark / reproduction of Figure 13 (execution time vs np at N = 2^17)."""

from __future__ import annotations

from repro.experiments import fig13_batch_sweep, format_experiment


def test_bench_fig13_batch_sweep(benchmark, cost_model):
    result = benchmark(fig13_batch_sweep.run, cost_model)
    print()
    print(format_experiment(result))
    saturated = [r["model time per prime (us)"] for r in result.rows if r["np"] >= 21]
    assert max(saturated) / min(saturated) < 1.05  # linear growth once saturated
