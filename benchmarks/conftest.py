"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one table or figure from the paper's
evaluation section: the benchmark measures the harness (so ``pytest
benchmarks/ --benchmark-only`` exercises every reproduction end to end) and
the test body prints the paper-vs-model table and asserts the qualitative
shape the paper reports.  Run with ``-s`` to see the tables inline; the same
tables are written to ``EXPERIMENTS.md`` by ``examples/regenerate_results.py``.
"""

from __future__ import annotations

import pytest

from repro.gpu.costmodel import GpuCostModel


@pytest.fixture(scope="session")
def cost_model() -> GpuCostModel:
    """One shared Titan V cost model for every benchmark."""
    return GpuCostModel()
