"""Benchmark: plan-optimiser passes vs raw emitted plans.

The compiler subsystem's claim is the paper's lever applied one level up:
NTT/iNTT dominates HE time, so the cheapest transform is the one not run.
This module pins the acceptance criteria of the pass pipeline at a
paper-adjacent shape (``N = 2048``, np = 4):

* **≥ 20% fewer NTT invocations** in steady state (warm constant pool,
  cached plans) for both the canonical ``multiply → relinearize →
  mod_switch`` chain and the bootstrap-shaped circuit — the default passes
  hoist the relinearisation-key and plaintext-diagonal transforms into the
  per-context constant pool and cancel/CSE the rest;
* **no wall-time regression**: the optimised steady state must not be slower
  than the unoptimised one (strictly less transform work, same dispatch
  structure).

Steady state is measured the honest way: one cold run (compilation + pool
seeding) is excluded, then the metrics delta and best-of timing are taken
over warm executions only.  The CI parallel leg exports this module's
timings as ``BENCH_passes.json`` (``--benchmark-json``); node counts of both
plan variants ride along in ``extra_info``.
"""

from __future__ import annotations

import time

from repro.compiler import set_default_passes
from repro.he import HeContext, HEParams, bootstrap_circuit

N = 2048
PRIME_COUNT = 4
PARAMS = HEParams(
    n=N, plaintext_modulus=65537, prime_bits=45, prime_count=PRIME_COUNT
)
MIN_NTT_REDUCTION = 0.20
MAX_SLOWDOWN = 1.10


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(context):
    encryptor = context.encryptor(seed=11)
    encoder = context.encoder()
    relin = context.relinearization_key()
    ct_a = encryptor.encrypt(encoder.encode([1, 2, 3]))
    ct_b = encryptor.encrypt(encoder.encode([4, 5, 6]))
    return relin, ct_a, ct_b


def _steady_state(context, passes, make_runner):
    """(metrics delta, best-of seconds, compiled plan) for warm executions.

    ``passes`` selects the pipeline for the pipeline's evaluator via the
    process-wide default (restored immediately); the cold run pays
    compilation and constant-pool seeding so the measurement is the steady
    state every later execution lives in.
    """
    set_default_passes(passes)
    pipe = context.pipeline()
    set_default_passes(None)
    run = make_runner(pipe)
    run()  # cold: compile, seed the constant pool
    before = context.metrics()
    run()
    diff = HeContext.metrics_diff(before, context.metrics())
    seconds = _best_of(run)
    (plan, _specs, ntt_rows, *_rest), = pipe.evaluator._plan_cache.values()
    return diff, seconds, plan, ntt_rows


def _report(label, off, on, t_off, t_on):
    reduction = 1 - on["ntt.invocations"] / off["ntt.invocations"]
    print()
    print("%s, N=%d, np=%d (steady state)" % (label, N, PRIME_COUNT))
    print(
        "  ntt.invocations : %5d raw -> %5d optimised  (-%.1f%%)"
        % (off["ntt.invocations"], on["ntt.invocations"], 100 * reduction)
    )
    print(
        "  wall time       : %7.2f ms raw -> %7.2f ms optimised"
        % (t_off * 1e3, t_on * 1e3)
    )
    return reduction


def test_bench_passes_chain_ntt_reduction(benchmark):
    context = HeContext.create(PARAMS, backend="numpy", seed=7)
    relin, ct_a, ct_b = _workload(context)

    def make_runner(pipe):
        expr = (
            (pipe.load(ct_a) * pipe.load(ct_b)).relinearize(relin).mod_switch()
        )
        return expr.run

    off, t_off, raw_plan, _ = _steady_state(context, "none", make_runner)
    on, t_on, optimised_plan, _ = _steady_state(context, "default", make_runner)
    reduction = _report(
        "multiply -> relinearize -> mod_switch", off, on, t_off, t_on
    )

    benchmark.extra_info["raw_plan_nodes"] = len(raw_plan)
    benchmark.extra_info["optimised_plan_nodes"] = len(optimised_plan)
    benchmark.extra_info["ntt_invocations_raw"] = off["ntt.invocations"]
    benchmark.extra_info["ntt_invocations_optimised"] = on["ntt.invocations"]

    assert reduction >= MIN_NTT_REDUCTION, (
        "default passes removed only %.1f%% of steady-state NTT invocations"
        % (100 * reduction)
    )
    assert t_on <= t_off * MAX_SLOWDOWN, (
        "optimised steady state regressed wall time: %.2f ms vs %.2f ms"
        % (t_on * 1e3, t_off * 1e3)
    )

    set_default_passes("default")
    pipe = context.pipeline()
    set_default_passes(None)
    run = make_runner(pipe)
    run()  # warm before the harness measures
    benchmark(run)


def test_bench_passes_bootstrap_circuit_ntt_reduction(benchmark):
    context = HeContext.create(PARAMS, backend="numpy", seed=7)
    _, ct, _ = _workload(context)

    def make_runner(pipe):
        expr = bootstrap_circuit(context, pipe, ct, seed=5)
        return expr.run

    off, t_off, raw_plan, _ = _steady_state(context, "none", make_runner)
    on, t_on, optimised_plan, warm_rows = _steady_state(
        context, "default", make_runner
    )
    reduction = _report("bootstrap-shaped circuit", off, on, t_off, t_on)

    benchmark.extra_info["raw_plan_nodes"] = len(raw_plan)
    benchmark.extra_info["optimised_plan_nodes"] = len(optimised_plan)
    benchmark.extra_info["ntt_invocations_raw"] = off["ntt.invocations"]
    benchmark.extra_info["ntt_invocations_optimised"] = on["ntt.invocations"]

    assert reduction >= MIN_NTT_REDUCTION
    assert t_on <= t_off * MAX_SLOWDOWN

    # The static row count of the compiled plan agrees with the counter:
    # warm executions run exactly the transforms the optimised plan retains.
    assert warm_rows == on["ntt.invocations"]

    set_default_passes("default")
    pipe = context.pipeline()
    set_default_passes(None)
    run = make_runner(pipe)
    run()
    benchmark(run)
