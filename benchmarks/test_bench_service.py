"""Benchmark: cross-request batching in the serving layer vs serial execution.

The serving layer's claim is the paper's throughput argument applied to
traffic: ``k`` concurrent requests for the same tenant and op chain lower
into ONE fused plan whose NTT nodes are ``k`` times wider, instead of ``k``
separate plan executions.  This module pins the acceptance criteria:

* **throughput** — at the paper-adjacent shape ``N = 4096`` with 3 primes,
  executing one batched group of 8 concurrent requests (the 8-client load)
  must beat running the same 8 requests serially by ≥ 1.3x on a machine
  with at least 4 cores (skipped below that, where the wide batch has no
  extra hardware to spread onto; the bit-for-bit and plan-count checks
  still run);
* **fewer plans than requests** — structurally, via the tenant's
  ``plan.compiled``/``plan.cache_hits`` counters: the batched run executes
  1 plan for 8 requests where the serial run executes 8;
* **bit-for-bit** — every batched result equals its serial counterpart,
  always, on every machine.

An end-to-end variant drives a live ``ServerThread`` with concurrent
asyncio clients at toy parameters and asserts the same fewer-plans
structure through the HTTP surface.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.he import HeContext
from repro.he.params import HEParams, toy_params
from repro.service import (
    AsyncServiceClient,
    ServerThread,
    TenantCache,
    execute_group,
)
from repro.telemetry.metrics import MetricsRegistry

N = 4096
PRIME_COUNT = 3
REQUESTS = 8  # concurrent same-chain clients coalesced into one group
OPS = ("multiply", "relinearize", "mod_switch")
MIN_SPEEDUP = 1.3
MIN_CORES = 4
SEED = 77


def _speedup_assertion_applies() -> bool:
    """Whether this run should enforce the ≥ 1.3x batching criterion.

    Needs enough cores for the wide batch to spread onto, and — because the
    tier-1 suite runs this module on every CI matrix leg — the assertion is
    owned by the ``REPRO_BACKEND=parallel`` leg (and plain local runs); the
    other legs still run the bit-for-bit and plan-count checks.
    """
    if (os.cpu_count() or 1) < MIN_CORES:
        return False
    return os.environ.get("REPRO_BACKEND") in (None, "", "parallel")


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _plan_executions(tenant) -> int:
    snapshot = tenant.metrics()
    return snapshot["plan.compiled"] + snapshot["plan.cache_hits"]


def test_bench_service_cross_request_batching_speedup(benchmark):
    cores = os.cpu_count() or 1
    params = HEParams(
        n=N, plaintext_modulus=65537, prime_bits=40, prime_count=PRIME_COUNT
    )
    cache = TenantCache(MetricsRegistry(), backend="parallel", shards=max(2, cores - 1))
    try:
        tenant = cache.get(params, SEED)
        encryptor = tenant.context.encryptor()
        encoder = tenant.context.encoder()
        requests = [
            [
                encryptor.encrypt(encoder.encode([r + 1, 2, 3])),
                encryptor.encrypt(encoder.encode([4, r + 5, 6])),
            ]
            for r in range(REQUESTS)
        ]

        def serial():
            return [execute_group(tenant, OPS, [request])[0] for request in requests]

        def batched():
            return execute_group(tenant, OPS, requests)

        # Warm both paths: compile the k=1 and k=8 plans, spawn the pool.
        expected = serial()
        before = _plan_executions(tenant)
        produced = batched()
        batched_plans = _plan_executions(tenant) - before

        # The structural half of the throughput claim: one plan execution
        # serviced all eight requests, where serial took eight.
        assert batched_plans == 1
        before = _plan_executions(tenant)
        serial()
        assert _plan_executions(tenant) - before == REQUESTS

        # Bit-for-bit: batching must be invisible to every client.
        for want, got in zip(expected, produced):
            assert got.level == want.level
            assert [p.to_coeff_lists() for p in got.polys] == [
                p.to_coeff_lists() for p in want.polys
            ]

        serial_s = _best_of(serial, repeats=2)
        batched_s = _best_of(batched, repeats=2)
        speedup = serial_s / batched_s
        print()
        print(
            "Cross-request batching, N=%d, %d primes, %d requests, chain=%s"
            % (N, PRIME_COUNT, REQUESTS, "+".join(OPS))
        )
        print("  serial (8 x k=1 plans): %8.2f ms" % (serial_s * 1e3))
        print("  batched (1 k=8 plan)  : %8.2f ms" % (batched_s * 1e3))
        print("  speedup               : %8.2fx on %d cpu(s)" % (speedup, cores))
        # One pedantic round: the shape is heavy and the comparative timing
        # above is the measurement that matters.
        benchmark.pedantic(batched, rounds=1, iterations=1)
        if _speedup_assertion_applies():
            assert speedup >= MIN_SPEEDUP, (
                "cross-request batching only %.2fx over serial" % speedup
            )
    finally:
        cache.close()


def test_bench_service_end_to_end_fewer_plans_than_requests(benchmark):
    """Six concurrent HTTP clients at toy parameters: the live server must
    coalesce them into fewer plan executions than requests, and every
    response must match local execution bit-for-bit."""
    params = toy_params()
    local = HeContext.create(params, seed=SEED)
    encryptor = local.encryptor()
    encoder = local.encoder()
    pairs = [
        (
            encryptor.encrypt(encoder.encode([r + 1, 2])),
            encryptor.encrypt(encoder.encode([3, r + 4])),
        )
        for r in range(6)
    ]

    with ServerThread(batch_window=0.25, max_batch=8) as server:
        client = AsyncServiceClient("127.0.0.1", server.port)

        async def run_all():
            responses = await asyncio.gather(
                *[
                    client.compute_raw(params, list(OPS), [a, b], seed=SEED)
                    for a, b in pairs
                ]
            )
            return responses, await client.metrics()

        responses, metrics = asyncio.run(run_all())
        benchmark.pedantic(lambda: asyncio.run(run_all()), rounds=1, iterations=1)

    evaluator = local.evaluator()
    relin = local.relinearization_key()
    from repro.core.serialization import ciphertext_from_dict

    for (a, b), response in zip(pairs, responses):
        want = evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(a, b), relin)
        )
        got = ciphertext_from_dict(response["result"])
        assert [p.to_coeff_lists() for p in got.polys] == [
            p.to_coeff_lists() for p in want.polys
        ]

    server_metrics = metrics["server"]
    assert server_metrics["service.requests"] == 6
    assert server_metrics["service.batches"] < server_metrics["service.requests"]
    [tenant_metrics] = metrics["tenants"].values()
    plans = tenant_metrics["plan.compiled"] + tenant_metrics["plan.cache_hits"]
    assert plans < 6, "server executed one plan per request — no coalescing"
