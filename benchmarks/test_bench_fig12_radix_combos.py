"""Benchmark / reproduction of Figure 12 (SMEM radix combinations, OT speedup and traffic)."""

from __future__ import annotations

from repro.experiments import fig12_radix_combos, format_experiment


def test_bench_fig12_radix_combos(benchmark, cost_model):
    result = benchmark(fig12_radix_combos.run, cost_model)
    print()
    print(format_experiment(result))
    for row in result.rows:
        assert 1.04 < row["OT speedup"] < 1.20      # paper: 8-10% per configuration
        assert 0.10 < row["DRAM reduction"] < 0.30  # paper: ~24.5%
