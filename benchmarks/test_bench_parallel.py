"""Benchmark: the sharded ``parallel`` backend vs the single-core numpy path.

The paper's Fig. 3 argument — an HE workload is ``np x polys`` independent
NTTs and throughput comes from running them as one wide batch on parallel
hardware — is what the ``parallel`` backend realises on CPUs.  This module
pins its two acceptance criteria:

* **multi-core speedup** — at the paper-adjacent shape ``N = 8192`` with a
  batch of 16 rows (np = 4 primes x 4 polynomials), the sharded batched
  forward NTT must beat the single-core numpy backend by ≥ 1.5x on a
  machine with at least 4 cores (the assertion is skipped below that,
  where there is nothing to shard onto, but the bit-for-bit check and the
  benchmark still run);
* **crossover** — below the work threshold the backend runs inline on its
  inner backend without ever spawning a worker, so small shapes pay no
  pool tax (asserted structurally via the dispatch counter, plus a loose
  wall-clock bound against raw numpy).

Both backends are pinned to the same NTT engine so the comparison isolates
the sharding, not the engine auto-tuner's verdicts.
"""

from __future__ import annotations

import os
import random
import time

from repro.backends.numpy_backend import NumpyBackend
from repro.backends.parallel import ParallelBackend
from repro.modarith.primes import generate_ntt_primes

N_LARGE = 8192
ROWS_LARGE = 16  # np = 4 primes x 4 polynomials per ciphertext batch
N_SMALL = 256
ROWS_SMALL = 4
ENGINE = "high_radix"  # same engine on both sides: isolate the sharding
MIN_SPEEDUP = 1.5
MIN_CORES = 4


def _speedup_assertion_applies() -> bool:
    """Whether this run should enforce the ≥ 1.5x multi-core criterion.

    Needs enough cores to shard onto, and — because the tier-1 suite runs
    this module on *every* CI matrix leg — the assertion is owned by the
    ``REPRO_BACKEND=parallel`` leg (and by plain local runs); the other
    legs still execute the bit-for-bit check and the timing report.
    """
    if (os.cpu_count() or 1) < MIN_CORES:
        return False
    return os.environ.get("REPRO_BACKEND") in (None, "", "parallel")


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(n, rows):
    primes = generate_ntt_primes(30, 4, n)
    batch_primes = [primes[i % len(primes)] for i in range(rows)]
    rng = random.Random(n + rows)
    return batch_primes, [[rng.randrange(p) for _ in range(n)] for p in batch_primes]


def test_bench_parallel_ntt_speedup(benchmark):
    cores = os.cpu_count() or 1
    shards = max(2, cores - 1)
    primes, rows = _workload(N_LARGE, ROWS_LARGE)

    baseline = NumpyBackend(engine=ENGINE)
    base_tensor = baseline.from_rows(rows, primes)
    sharded = ParallelBackend(shards=shards, engine=ENGINE)
    tensor = sharded.from_rows(rows, primes)
    try:
        # Warm both sides (twiddle tables, worker processes) and pin
        # bit-for-bit equality before timing anything.
        expected = baseline.forward_ntt_batch(base_tensor).to_rows()
        produced = sharded.forward_ntt_batch(tensor)
        assert sharded.pool_dispatch_count >= 1, "large shape did not shard"
        assert produced.to_rows() == expected

        single_s = _best_of(lambda: baseline.forward_ntt_batch(base_tensor))
        sharded_s = _best_of(lambda: sharded.forward_ntt_batch(tensor))
        speedup = single_s / sharded_s
        print()
        print(
            "Batched forward NTT, N=%d, rows=%d, 30-bit primes, engine=%s"
            % (N_LARGE, ROWS_LARGE, ENGINE)
        )
        print("  numpy (1 core)        : %8.2f ms" % (single_s * 1e3))
        print(
            "  parallel (%d shards)   : %8.2f ms" % (shards, sharded_s * 1e3)
        )
        print("  speedup               : %8.2fx on %d cpu(s)" % (speedup, cores))
        benchmark(sharded.forward_ntt_batch, tensor)
        if _speedup_assertion_applies():
            assert speedup >= MIN_SPEEDUP, (
                "sharded NTT only %.2fx over single-core numpy" % speedup
            )
    finally:
        sharded.close()


def test_bench_parallel_crossover_no_small_n_regression(benchmark):
    primes, rows = _workload(N_SMALL, ROWS_SMALL)

    baseline = NumpyBackend(engine=ENGINE)
    base_tensor = baseline.from_rows(rows, primes)
    below = ParallelBackend(shards=max(2, (os.cpu_count() or 1) - 1), engine=ENGINE)
    tensor = below.from_rows(rows, primes)
    try:
        produced = below.forward_ntt_batch(tensor)
        assert produced.to_rows() == baseline.forward_ntt_batch(base_tensor).to_rows()
        # Structural crossover guarantee: nothing was dispatched, no worker
        # was ever spawned, and the small tensor never touched /dev/shm.
        assert below.pool_dispatch_count == 0, "small shape paid the pool tax"
        assert not below.pool_running
        assert tensor.segment is None

        single_s = _best_of(lambda: baseline.forward_ntt_batch(base_tensor), repeats=5)
        inline_s = _best_of(lambda: below.forward_ntt_batch(tensor), repeats=5)
        ratio = inline_s / single_s
        print()
        print(
            "Crossover check, N=%d, rows=%d: numpy %.3f ms vs parallel-inline "
            "%.3f ms (%.2fx)" % (N_SMALL, ROWS_SMALL, single_s * 1e3, inline_s * 1e3, ratio)
        )
        benchmark(below.forward_ntt_batch, tensor)
        # The inline path is the inner backend plus a thin handle wrap; allow
        # generous headroom for timer noise on shared CI runners.
        assert ratio <= 1.6, "inline parallel path regressed at small N"
    finally:
        below.close()


def test_bench_parallel_he_chain_stays_resident(benchmark):
    """End-to-end sanity at toy scale: the multiply → relinearize →
    mod-switch chain under the parallel backend is conversion-free and
    decrypts correctly (inline below the crossover — the pool never spawns
    for toy parameters)."""
    from repro.he import HeContext, HEParams

    backend = ParallelBackend(shards=2)
    try:
        params = HEParams(n=256, plaintext_modulus=7681, prime_bits=30, prime_count=4)
        context = HeContext.create(params, backend=backend)
        encryptor = context.encryptor()
        evaluator = context.evaluator()
        relin = context.relinearization_key()
        ct_a = encryptor.encrypt(context.encoder().encode([1, 2, 3, 4]))
        ct_b = encryptor.encrypt(context.encoder().encode([5, 6, 7, 8]))

        def chain():
            return evaluator.mod_switch_to_next(
                evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
            )

        context.reset_metrics()
        switched = chain()
        assert backend.conversion_count == 0
        assert backend.pool_dispatch_count == 0  # toy shapes stay inline
        decoded = context.encoder().decode(context.decryptor().decrypt(switched))
        assert decoded[:4] == [
            (x * y) % 7681 for x, y in zip([1, 2, 3, 4], [5, 6, 7, 8])
        ]
        benchmark(chain)
    finally:
        backend.close()
