"""Benchmark: scalar vs NumPy compute backend on the paper's batched-NTT shape.

The workload is the paper's unit of batching — ``np`` independent forward
NTTs over an ``np x N`` residue matrix (Section III / Fig. 3) — executed
through the pluggable backend interface.  The assertion pins the tentpole
speedup: the batched uint64 backend must beat the exact big-int path by at
least 5x at ``N = 4096, np = 4`` with 30-bit primes.
"""

from __future__ import annotations

import random
import time

from repro.backends import ScalarBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.core.batching import BatchedNTT
from repro.modarith.primes import generate_ntt_primes
from repro.rns.basis import RnsBasis

N = 4096
NP = 4


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _workload():
    primes = generate_ntt_primes(30, NP, N)
    rng = random.Random(0)
    rows = [[rng.randrange(p) for _ in range(N)] for p in primes]
    return primes, rows


def test_bench_backend_batched_ntt_speedup(benchmark):
    primes, rows = _workload()
    scalar, vectorized = ScalarBackend(), NumpyBackend()
    scalar_tensor = scalar.from_rows(rows, primes)
    numpy_tensor = vectorized.from_rows(rows, primes)
    # Warm both twiddle caches so the timings compare transforms, not tables.
    expected = scalar.forward_ntt_batch(scalar_tensor).to_rows()
    assert vectorized.forward_ntt_batch(numpy_tensor).to_rows() == expected

    result = benchmark(vectorized.forward_ntt_batch, numpy_tensor)
    assert result.to_rows() == expected

    scalar_s = _best_of(lambda: scalar.forward_ntt_batch(scalar_tensor))
    numpy_s = _best_of(lambda: vectorized.forward_ntt_batch(numpy_tensor))
    speedup = scalar_s / numpy_s
    print()
    print("Batched forward NTT, N=%d, np=%d, 30-bit primes" % (N, NP))
    print("  scalar backend : %8.2f ms" % (scalar_s * 1e3))
    print("  numpy backend  : %8.2f ms" % (numpy_s * 1e3))
    print("  speedup        : %8.2fx" % speedup)
    assert speedup >= 5.0


def test_bench_backend_multiply_pipeline(benchmark):
    """Full iNTT(NTT(a) ⊙ NTT(b)) pipeline through BatchedNTT per backend."""
    primes, rows_a = _workload()
    rng = random.Random(1)
    rows_b = [[rng.randrange(p) for _ in range(N)] for p in primes]
    basis = RnsBasis.from_primes(primes, N)
    scalar_batch = BatchedNTT(basis, N, backend=ScalarBackend())
    numpy_batch = BatchedNTT(basis, N, backend=NumpyBackend())
    expected = scalar_batch.multiply(rows_a, rows_b)
    assert numpy_batch.multiply(rows_a, rows_b) == expected

    result = benchmark(numpy_batch.multiply, rows_a, rows_b)
    assert result == expected

    scalar_s = _best_of(lambda: scalar_batch.multiply(rows_a, rows_b), repeats=1)
    numpy_s = _best_of(lambda: numpy_batch.multiply(rows_a, rows_b))
    print()
    print("Negacyclic multiply pipeline, N=%d, np=%d, 30-bit primes" % (N, NP))
    print("  scalar backend : %8.2f ms" % (scalar_s * 1e3))
    print("  numpy backend  : %8.2f ms" % (numpy_s * 1e3))
    print("  speedup        : %8.2fx" % (scalar_s / numpy_s))
    assert scalar_s / numpy_s > 1.0
