"""Benchmark / reproduction of Figure 8 (per-stage twiddle table vs input size)."""

from __future__ import annotations

from repro.experiments import fig08_table_size, format_experiment


def test_bench_fig08_table_size(benchmark, cost_model):
    result = benchmark(fig08_table_size.run, cost_model)
    print()
    print(format_experiment(result))
    assert result.rows[-1]["twiddle / input ratio"] == 0.5
