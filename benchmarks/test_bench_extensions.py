"""Benchmarks for the extension experiments (NTT share, device sensitivity, plan tuner)."""

from __future__ import annotations

from repro.core.tuner import PlanTuner
from repro.experiments import device_sensitivity, format_experiment, ntt_share


def test_bench_ntt_share(benchmark, cost_model):
    result = benchmark(ntt_share.run, cost_model)
    print()
    print(format_experiment(result))
    for row in result.rows:
        assert 0.35 < row["model NTT share"] < 0.65  # paper: 50.04%


def test_bench_device_sensitivity(benchmark, cost_model):
    result = benchmark(device_sensitivity.run, cost_model)
    print()
    print(format_experiment(result))
    assert all(row["speedup vs radix-2"] > 3.0 for row in result.rows)


def test_bench_plan_tuner(benchmark, cost_model):
    tuner = PlanTuner(cost_model)
    best = benchmark(tuner.best, 1 << 17, 21)
    print()
    print("tuned best plan for (2^17, 21): %s — %.1f us" % (best.plan.label, best.time_us))
    assert best.plan.ot is not None
