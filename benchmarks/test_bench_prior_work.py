"""Benchmark / reproduction of the Section VIII comparison against the FPGA prior work [20]."""

from __future__ import annotations

from repro.experiments import format_experiment, prior_work


def test_bench_prior_work(benchmark, cost_model):
    result = benchmark(prior_work.run, cost_model)
    print()
    print(format_experiment(result))
    for row in result.rows:
        assert row["model speedup"] > 4.0  # paper: 6.48-6.56x
