"""Benchmarks of the functional (algorithm-level) NTT implementations.

These measure the pure-Python engine itself — not a reproduction of any paper
figure, but a guard against performance regressions in the library's own hot
paths (twiddle-table construction, forward/inverse transforms, negacyclic
multiplication, batched execution).
"""

from __future__ import annotations

import random

import pytest

from repro.core import BatchedNTT, NTTEngine, NTTPlan, OnTheFlyConfig
from repro.modarith.primes import generate_ntt_primes
from repro.modarith.roots import primitive_root_of_unity
from repro.rns.basis import RnsBasis
from repro.transforms.cooley_tukey import NegacyclicTransformer

N = 1 << 10
PRIME = generate_ntt_primes(60, 1, N)[0]
PSI = primitive_root_of_unity(2 * N, PRIME)
RNG = random.Random(42)
VALUES = [RNG.randrange(PRIME) for _ in range(N)]
OTHER = [RNG.randrange(PRIME) for _ in range(N)]


@pytest.fixture(scope="module")
def transformer():
    return NegacyclicTransformer(N, PRIME, PSI)


@pytest.fixture(scope="module")
def engine():
    return NTTEngine(N, PRIME, NTTPlan(n=N, ot=OnTheFlyConfig(base=64, ot_stages=1)), psi=PSI)


def test_bench_twiddle_table_construction(benchmark):
    benchmark(NegacyclicTransformer, N, PRIME, PSI)


def test_bench_forward_ntt(benchmark, transformer):
    result = benchmark(transformer.forward, VALUES)
    assert len(result) == N


def test_bench_inverse_ntt(benchmark, transformer):
    forward = transformer.forward(VALUES)
    result = benchmark(transformer.inverse, forward)
    assert result == VALUES


def test_bench_negacyclic_multiply(benchmark, transformer):
    result = benchmark(transformer.multiply, VALUES, OTHER)
    assert len(result) == N


def test_bench_engine_forward_with_ot(benchmark, engine):
    result = benchmark(engine.forward, VALUES)
    assert len(result) == N


def test_bench_batched_ntt_forward(benchmark):
    n = 1 << 8
    basis = RnsBasis.generate(n, 4, bit_size=40)
    batch = BatchedNTT(basis, n)
    rng = random.Random(7)
    rows = [[rng.randrange(p) for _ in range(n)] for p in basis.primes]
    result = benchmark(batch.forward, rows)
    assert len(result) == 4
