"""Benchmarks: telemetry overhead, disabled and enabled.

The tracing seam wraps every hot kernel (`forward_ntt_batch`, `mul`, ...)
and the plan executor, so the subsystem's contract is that the *disabled*
path costs nothing a workload can notice: one attribute check per call.
This module pins that contract on the fused multiply → relinearize →
mod_switch chain by timing the instrumented stack (tracing off) against
the same stack with the span wrappers stripped (``uninstrumented()``),
and asserting the overhead stays under 5%.

A second pin covers the *enabled* path end to end: a served HTTP request
with tracing **and** the sampling profiler on must stay within 10% of the
telemetry-off request — the budget that makes "run production with
observability on" a defensible default for the serving layer.

Both run at ``N = 2048, np = 4`` on the numpy backend with a pinned
engine — large enough that real arithmetic dominates, small enough that
best-of-N timing is cheap.  Results are checked bit-identical across the
two configurations before anything is timed.
"""

from __future__ import annotations

import time

from repro.backends.base import uninstrumented
from repro.backends.numpy_backend import NumpyBackend
from repro.he import HeContext, HEParams

N = 2048
PRIME_COUNT = 4
ENGINE = "high_radix"  # pin one engine: isolate the instrumentation
MAX_OVERHEAD = 1.05  # the <5% acceptance criterion
SERVED_MAX_OVERHEAD = 1.10  # tracing + profiler on a served request: <10%
BEST_OF = 9
ATTEMPTS = 3  # re-measure on a noisy-runner miss before failing


def _interleaved_best_of(a, b, repeats=BEST_OF):
    """Best-of timings for two callables with alternating samples, so a
    load spike on a shared runner hits both sides instead of biasing one."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _build_chain():
    params = HEParams(
        n=N, plaintext_modulus=17, prime_bits=30, prime_count=PRIME_COUNT
    )
    context = HeContext.create(
        params, backend=NumpyBackend(engine=ENGINE), seed=7
    )
    encryptor = context.encryptor(seed=11)
    evaluator = context.evaluator(mode="fused")
    relin = context.relinearization_key()
    ct_a = encryptor.encrypt(context.integer_encoder().encode(3))
    ct_b = encryptor.encrypt(context.integer_encoder().encode(5))

    def chain():
        return evaluator.mod_switch_to_next(
            evaluator.relinearize(evaluator.multiply(ct_a, ct_b), relin)
        )

    return chain


def test_bench_telemetry_disabled_overhead(benchmark):
    as_rows = lambda ct: [p.to_coeff_lists() for p in ct.polys]

    # Instrumented stack, tracing off — the production configuration.
    chain = _build_chain()
    wrapped_result = as_rows(chain())  # warm: plan compile, twiddle tables

    # Same stack with the span wrappers stripped off the backend methods.
    # uninstrumented() rebinds *class* attributes and method lookup is
    # dynamic, so which variant runs is decided per call by whether the
    # chain executes inside the context — the same warm backend serves
    # both timings.
    bare_chain = _build_chain()
    with uninstrumented():
        bare_result = as_rows(bare_chain())
    assert bare_result == wrapped_result

    def run_bare():
        with uninstrumented():
            bare_chain()

    ratio = float("inf")
    for attempt in range(ATTEMPTS):
        wrapped_s, bare_s = _interleaved_best_of(chain, run_bare)
        ratio = min(ratio, wrapped_s / bare_s)
        if ratio <= MAX_OVERHEAD:
            break

    print()
    print(
        "multiply -> relinearize -> mod_switch, N=%d, np=%d, numpy, "
        "engine=%s" % (N, PRIME_COUNT, ENGINE)
    )
    print("  uninstrumented        : %8.2f ms" % (bare_s * 1e3))
    print("  instrumented (off)    : %8.2f ms" % (wrapped_s * 1e3))
    print("  overhead              : %8.2f%%" % ((ratio - 1.0) * 100.0))
    benchmark(chain)
    assert ratio <= MAX_OVERHEAD, (
        "disabled telemetry costs %.1f%% (budget is %.0f%%)"
        % ((ratio - 1.0) * 100.0, (MAX_OVERHEAD - 1.0) * 100.0)
    )


def test_bench_served_request_observability_overhead(benchmark):
    """Tracing + sampling profiler on a served request: < 10% overhead.

    Times the full HTTP round trip (client serialise → server batch →
    execute → serialise back) against a live in-process server, with the
    tracer and profiler toggled per sample — interleaved like the disabled
    pin above, so runner noise hits both configurations equally.
    """
    from repro.service import ServerThread, ServiceClient
    from repro.telemetry import PROFILER, TRACER

    params = HEParams(
        n=N, plaintext_modulus=17, prime_bits=30, prime_count=PRIME_COUNT
    )
    context = HeContext.create(params, backend=NumpyBackend(engine=ENGINE), seed=7)
    encryptor = context.encryptor(seed=11)
    encoder = context.integer_encoder()
    ct_a = encryptor.encrypt(encoder.encode(3))
    ct_b = encryptor.encrypt(encoder.encode(5))
    ops = ["multiply", "relinearize", "mod_switch"]

    TRACER.stop()
    TRACER.clear()
    try:
        with ServerThread(
            backend="numpy", batch_window=0.0, max_batch=1
        ) as server:
            client = ServiceClient("127.0.0.1", server.port)

            def request():
                return client.compute_raw(params, ops, [ct_a, ct_b], seed=7)

            baseline = request()  # warm: tenant build, plan compile
            TRACER.start()
            PROFILER.start()
            try:
                traced = request()
            finally:
                TRACER.stop()
                PROFILER.stop()
            # Observability must never change results.
            assert traced["result"] == baseline["result"]
            TRACER.clear()

            ratio = float("inf")
            for attempt in range(ATTEMPTS):
                best_off = best_on = float("inf")
                for _ in range(BEST_OF):
                    start = time.perf_counter()
                    request()
                    best_off = min(best_off, time.perf_counter() - start)
                    TRACER.start()
                    PROFILER.start()
                    try:
                        start = time.perf_counter()
                        request()
                        best_on = min(best_on, time.perf_counter() - start)
                    finally:
                        TRACER.stop()
                        PROFILER.stop()
                    TRACER.clear()
                ratio = min(ratio, best_on / best_off)
                if ratio <= SERVED_MAX_OVERHEAD:
                    break

            print()
            print(
                "served %s, N=%d, np=%d, numpy, engine=%s"
                % ("+".join(ops), N, PRIME_COUNT, ENGINE)
            )
            print("  telemetry off         : %8.2f ms" % (best_off * 1e3))
            print("  tracing + profiler    : %8.2f ms" % (best_on * 1e3))
            print("  overhead              : %8.2f%%" % ((ratio - 1.0) * 100.0))
            benchmark(request)
    finally:
        TRACER.stop()
        TRACER.clear()
        PROFILER.stop()
        PROFILER.reset()
    assert ratio <= SERVED_MAX_OVERHEAD, (
        "served-request observability costs %.1f%% (budget is %.0f%%)"
        % ((ratio - 1.0) * 100.0, (SERVED_MAX_OVERHEAD - 1.0) * 100.0)
    )
