"""Benchmark / reproduction of Figure 5 (high-radix DFT sweep)."""

from __future__ import annotations

from repro.experiments import fig05_dft_high_radix, format_experiment


def test_bench_fig05_dft_high_radix(benchmark, cost_model):
    result = benchmark(fig05_dft_high_radix.run, cost_model)
    print()
    print(format_experiment(result))
    subset = [r for r in result.rows if r["logN"] == 17]
    assert min(subset, key=lambda r: r["model time (us)"])["radix"] == 32  # paper: radix-32 best
