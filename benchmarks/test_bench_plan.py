"""Benchmark: fused plan execution vs eager per-op dispatch.

The op-graph redesign's claim is launch-overhead amortisation: an evaluator
chain compiled into plans reaches the sharded ``parallel`` backend as one
fused task set per stage (≤ 3 pool round trips for
``multiply → relinearize → mod_switch``) instead of one round trip per
backend method, with pointwise work sharded instead of running single-core
inline.  This module pins the two acceptance criteria:

* **fused speedup** — at the paper-adjacent shape ``N = 8192`` (np = 4
  primes) the fused chain must beat the eager chain by ≥ 1.2x on the
  parallel backend on a machine with at least 4 cores (below that the
  assertion is skipped — there is nothing to amortise against — but the
  bit-for-bit check and the timing report still run);
* **bit-for-bit equivalence** — fused and eager chains produce identical
  ciphertexts on scalar, numpy and pool-forced parallel backends.

Both sides run on the *same* backend instance (same pool, same warmed
twiddle tables, same auto-tuner verdicts) so the comparison isolates the
execution model, not the backend state.
"""

from __future__ import annotations

import os
import time

from repro.backends.parallel import ParallelBackend
from repro.he import HeContext, HEParams

N_LARGE = 8192
PRIME_COUNT = 4
PLAINTEXT_MODULUS = 17
ENGINE = "high_radix"  # pin one engine: isolate the execution model
MIN_SPEEDUP = 1.2
MIN_CORES = 4


def _speedup_assertion_applies() -> bool:
    """Whether this run should enforce the ≥ 1.2x fused-over-eager criterion.

    Needs enough cores for dispatch overhead to be the bottleneck worth
    amortising, and — because the tier-1 suite runs this module on *every*
    CI matrix leg — the assertion is owned by the ``REPRO_BACKEND=parallel``
    leg (and by plain local runs); the other legs still execute the
    bit-for-bit check and the timing report.
    """
    if (os.cpu_count() or 1) < MIN_CORES:
        return False
    return os.environ.get("REPRO_BACKEND") in (None, "", "parallel")


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _chain_workload(n: int, backend):
    params = HEParams(
        n=n,
        plaintext_modulus=PLAINTEXT_MODULUS,
        prime_bits=30,
        prime_count=PRIME_COUNT,
    )
    context = HeContext.create(params, backend=backend, seed=7)
    encryptor = context.encryptor(seed=11)
    encoder = context.integer_encoder()
    relin = context.relinearization_key()
    ct_a = encryptor.encrypt(encoder.encode(3))
    ct_b = encryptor.encrypt(encoder.encode(5))
    return context, relin, ct_a, ct_b


def test_bench_plan_fused_vs_eager_chain(benchmark):
    cores = os.cpu_count() or 1
    shards = max(2, cores - 1)
    backend = ParallelBackend(shards=shards, engine=ENGINE)
    try:
        context, relin, ct_a, ct_b = _chain_workload(N_LARGE, backend)
        eager = context.evaluator(mode="eager")
        pipe = context.pipeline()

        def run_eager():
            return eager.mod_switch_to_next(
                eager.relinearize(eager.multiply(ct_a, ct_b), relin)
            )

        def run_fused():
            return (
                (pipe.load(ct_a) * pipe.load(ct_b)).relinearize(relin).mod_switch()
            ).run()

        # Warm both sides (pool workers, twiddle tables, compiled plan) and
        # pin bit-for-bit equality plus the dispatch budget before timing.
        expected = run_eager()
        context.reset_metrics()
        produced = run_fused()
        fused_dispatches = backend.dispatch_count
        assert fused_dispatches <= 3, fused_dispatches
        assert [p.to_coeff_lists() for p in produced.polys] == [
            p.to_coeff_lists() for p in expected.polys
        ]

        eager_s = _best_of(run_eager)
        fused_s = _best_of(run_fused)
        speedup = eager_s / fused_s
        print()
        print(
            "multiply -> relinearize -> mod_switch, N=%d, np=%d, engine=%s"
            % (N_LARGE, PRIME_COUNT, ENGINE)
        )
        print("  eager (per-op dispatch) : %8.2f ms" % (eager_s * 1e3))
        print(
            "  fused (%d dispatches)    : %8.2f ms" % (fused_dispatches, fused_s * 1e3)
        )
        print(
            "  speedup                 : %8.2fx on %d cpu(s), %d shards"
            % (speedup, cores, shards)
        )
        benchmark(run_fused)
        if _speedup_assertion_applies():
            assert speedup >= MIN_SPEEDUP, (
                "fused chain only %.2fx over eager" % speedup
            )
    finally:
        backend.close()


def test_bench_plan_fused_eager_bit_identical_across_backends(benchmark):
    """Small-N correctness sweep: the fused and eager chains agree on every
    backend (pool-forced on parallel so the fused stages really dispatch)."""
    results = {}
    pooled = ParallelBackend(shards=2, transform_threshold=1, pointwise_threshold=1)
    try:
        for name, backend in (("scalar", "scalar"), ("numpy", "numpy"), ("parallel", pooled)):
            context, relin, ct_a, ct_b = _chain_workload(64, backend)
            eager = context.evaluator(mode="eager")
            fused = context.evaluator(mode="fused")
            chain_eager = eager.mod_switch_to_next(
                eager.relinearize(eager.multiply(ct_a, ct_b), relin)
            )
            chain_fused = fused.mod_switch_to_next(
                fused.relinearize(fused.multiply(ct_a, ct_b), relin)
            )
            pipe = context.pipeline()
            chain_pipeline = (
                (pipe.load(ct_a) * pipe.load(ct_b)).relinearize(relin).mod_switch()
            ).run()
            as_rows = lambda ct: [p.to_coeff_lists() for p in ct.polys]
            assert as_rows(chain_eager) == as_rows(chain_fused) == as_rows(chain_pipeline)
            results[name] = as_rows(chain_fused)
        assert results["scalar"] == results["numpy"] == results["parallel"]

        context, relin, ct_a, ct_b = _chain_workload(64, "numpy")
        pipe = context.pipeline()

        def tiny_chain():
            return (
                (pipe.load(ct_a) * pipe.load(ct_b)).relinearize(relin).mod_switch()
            ).run()

        benchmark(tiny_chain)
    finally:
        pooled.close()
