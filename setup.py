"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that the package can also be installed in environments that lack
the ``wheel`` package (legacy ``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
