"""Wire protocol of the HE serving layer: request grammar + validation.

One request is *one ciphertext operation chain* for one tenant::

    {
      "format_version": 1,
      "params": {"n": ..., "plaintext_modulus": ..., "prime_bits": ...,
                 "prime_count": ..., "error_std": ..., "name": ...},
      "seed": 2020,
      "ops": ["multiply", "relinearize", "mod_switch"],
      "ciphertexts": [<ciphertext_to_dict>, ...],
      "request_id": "optional caller-chosen correlation id"
    }

``ops[0]`` consumes the submitted ciphertexts (its arity must equal their
count); every later op transforms the running result.  The response carries
the result ciphertext in the same :mod:`repro.core.serialization` dict form
plus the size of the cross-request batch the operation actually rode in.

Validation happens here — at the HTTP boundary, with
:class:`ServiceError` carrying the status code — so malformed payloads
produce a clear 4xx instead of failing deep inside tensor reconstruction
(the failure mode the ``format_version`` satellite of this layer removes
from the serialization module as well).
"""

from __future__ import annotations

import uuid
from typing import Any

from ..core.serialization import FORMAT_VERSION as _SERIAL_VERSION
from ..he.params import HEParams

__all__ = [
    "PROTOCOL_VERSION",
    "FIRST_OPS",
    "CHAIN_OPS",
    "ServiceError",
    "build_request",
    "new_request_id",
    "validate_request",
    "trace_sizes",
    "jsonable",
]

#: Version of the request/response envelope (distinct from the artefact
#: ``format_version`` inside each serialised ciphertext, which the
#: serialization module checks itself).
PROTOCOL_VERSION = 1

#: Ops allowed to open a chain, mapped to their ciphertext arity.
FIRST_OPS: dict[str, int] = {
    "multiply": 2,
    "add": 2,
    "sub": 2,
    "square": 1,
    "negate": 1,
}

#: Ops allowed after the first (unary transforms of the running result).
CHAIN_OPS = ("relinearize", "mod_switch", "negate")

#: Fields of :class:`~repro.he.params.HEParams` carried in the request.
PARAM_FIELDS = (
    "n", "plaintext_modulus", "prime_bits", "prime_count", "error_std", "name",
)

#: Longest accepted ``request_id`` (ids land in span attributes, log lines
#: and URL paths; the bound keeps hostile ids from bloating all three).
MAX_REQUEST_ID_LEN = 128

#: Characters allowed in a ``request_id`` besides ASCII alphanumerics.
_REQUEST_ID_PUNCT = frozenset("-_.:")


class ServiceError(Exception):
    """A request rejection with the HTTP status it maps to."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def params_dict(params: HEParams) -> dict[str, Any]:
    """The request-side dictionary form of a parameter set."""
    return {field: getattr(params, field) for field in PARAM_FIELDS}


def new_request_id() -> str:
    """A fresh request id (clients generate one when the caller passes none,
    the server generates one for requests that arrive without an id, so
    every log line / trace / error body correlates on *something*)."""
    return uuid.uuid4().hex[:16]


def build_request(
    params: HEParams,
    ops: list[str] | tuple[str, ...],
    ciphertext_payloads: list[dict],
    seed: int = 2020,
    request_id: str | None = None,
) -> dict[str, Any]:
    """Assemble a compute-request envelope (used by both clients)."""
    payload = {
        "format_version": PROTOCOL_VERSION,
        "params": params_dict(params),
        "seed": seed,
        "ops": list(ops),
        "ciphertexts": ciphertext_payloads,
    }
    if request_id is not None:
        payload["request_id"] = request_id
    return payload


def _validate_request_id(payload: dict) -> str | None:
    rid = payload.get("request_id")
    if rid is None:
        return None
    if not isinstance(rid, str) or not rid or len(rid) > MAX_REQUEST_ID_LEN:
        raise ServiceError(
            400,
            "'request_id' must be a non-empty string of at most %d characters"
            % MAX_REQUEST_ID_LEN,
        )
    if not all(
        (ch.isascii() and ch.isalnum()) or ch in _REQUEST_ID_PUNCT for ch in rid
    ):
        raise ServiceError(
            400, "'request_id' may only contain [A-Za-z0-9._:-]"
        )
    return rid


def validate_request(
    payload: Any,
) -> tuple[HEParams, int, tuple[str, ...], list[dict], str | None]:
    """Check a compute request; returns
    ``(params, seed, ops, ct payloads, request_id)``.

    ``request_id`` is the client-chosen correlation id (``None`` when the
    request arrived without one — the server then mints its own).

    Raises:
        ServiceError: With a 4xx status describing exactly what is wrong —
            version mismatch, malformed params, an unknown or mis-aried op
            chain, a malformed request id, or ciphertexts that disagree with
            the request params.
    """
    if not isinstance(payload, dict):
        raise ServiceError(400, "request body must be a JSON object")
    version = payload.get("format_version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            400,
            "unsupported request format_version %r (this server speaks %d)"
            % (version, PROTOCOL_VERSION),
        )
    raw_params = payload.get("params")
    if not isinstance(raw_params, dict):
        raise ServiceError(400, "request is missing the 'params' object")
    unknown = set(raw_params) - set(PARAM_FIELDS)
    if unknown:
        raise ServiceError(
            400, "unknown params fields: %s" % ", ".join(sorted(unknown))
        )
    try:
        params = HEParams(**raw_params)
    except (TypeError, ValueError) as exc:
        raise ServiceError(400, "invalid params: %s" % exc) from None
    seed = payload.get("seed", 2020)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ServiceError(400, "'seed' must be an integer")
    request_id = _validate_request_id(payload)

    ops = payload.get("ops")
    if not isinstance(ops, (list, tuple)) or not ops:
        raise ServiceError(400, "'ops' must be a non-empty list of operation names")
    if not all(isinstance(op, str) for op in ops):
        raise ServiceError(400, "'ops' must be a non-empty list of operation names")
    first, rest = ops[0], ops[1:]
    if first not in FIRST_OPS:
        raise ServiceError(
            400,
            "unknown first op %r (one of: %s)" % (first, ", ".join(sorted(FIRST_OPS))),
        )
    bad = [op for op in rest if op not in CHAIN_OPS]
    if bad:
        raise ServiceError(
            400,
            "unknown chain op %r (after the first op, one of: %s)"
            % (bad[0], ", ".join(CHAIN_OPS)),
        )

    cts = payload.get("ciphertexts")
    if not isinstance(cts, list) or not all(isinstance(ct, dict) for ct in cts):
        raise ServiceError(400, "'ciphertexts' must be a list of serialised ciphertexts")
    arity = FIRST_OPS[first]
    if len(cts) != arity:
        raise ServiceError(
            400,
            "op %r takes %d ciphertext(s), got %d" % (first, arity, len(cts)),
        )
    for index, ct in enumerate(cts):
        if ct.get("kind") != "ciphertext":
            raise ServiceError(400, "ciphertexts[%d] is not a serialised ciphertext" % index)
        if ct.get("format_version", _SERIAL_VERSION) != _SERIAL_VERSION:
            raise ServiceError(
                400,
                "ciphertexts[%d] has unsupported format_version %r"
                % (index, ct.get("format_version")),
            )
        embedded = ct.get("params")
        if embedded != params_dict(params):
            raise ServiceError(
                400,
                "ciphertexts[%d] was encrypted under different parameters "
                "than the request's" % index,
            )
    # The chain must stay well-formed for the sizes these inputs produce.
    try:
        trace_sizes(tuple(ops), [len(ct.get("polys", ())) for ct in cts])
    except ValueError as exc:
        raise ServiceError(400, str(exc)) from None
    return params, seed, tuple(ops), cts, request_id


def trace_sizes(ops: tuple[str, ...], input_sizes: list[int]) -> list[int]:
    """Ciphertext size (component count) after each op of a chain.

    Returns one entry per op; the last entry is the response size.  Raises
    ``ValueError`` on chains that cannot execute (e.g. relinearising a
    size-5 ciphertext), so shape errors surface at validation time instead
    of during plan emission.
    """
    first = ops[0]
    if first in ("multiply",):
        size = input_sizes[0] + input_sizes[1] - 1
    elif first in ("add", "sub"):
        size = max(input_sizes)
    elif first == "square":
        size = 2 * input_sizes[0] - 1
    else:  # negate
        size = input_sizes[0]
    sizes = [size]
    for op in ops[1:]:
        if op == "relinearize":
            if size not in (2, 3):
                raise ValueError(
                    "relinearisation supports size-2/3 ciphertexts only "
                    "(chain reaches size %d)" % size
                )
            size = 2
        sizes.append(size)
    return sizes


def jsonable(value: Any) -> Any:
    """A JSON-safe copy of a metrics snapshot.

    Snapshots may contain tuple-keyed gauge dicts (the autotuner's
    ``(n, p_bits, batch)`` shape keys); JSON needs string keys, so tuples
    are flattened to ``"n,p_bits,batch"`` and anything else non-primitive
    falls back to ``str``.
    """
    if isinstance(value, dict):
        return {
            ",".join(str(part) for part in key) if isinstance(key, tuple) else str(key):
            jsonable(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
