"""HE-as-a-service: the async multi-tenant serving layer.

This package applies the paper's wide-batch throughput claim to *traffic*:
concurrent requests for the same tenant and op chain coalesce into one
cross-request fused plan (stacked along the batch axis with the existing
``Concat``/``SliceRows`` IR nodes), execute once on the pinned backend, and
split back per request — bit-for-bit equal to serial execution.

Layout:

* :mod:`~repro.service.protocol` — request grammar, validation, errors;
* :mod:`~repro.service.tenants` — params-hash-keyed ``HeContext`` cache
  with per-tenant metrics subtrees under the server root;
* :mod:`~repro.service.batching` — the group plan lowering and the asyncio
  coalescer;
* :mod:`~repro.service.server` — the stdlib asyncio HTTP server (and the
  ``python -m repro.experiments serve`` entry point);
* :mod:`~repro.service.client` — sync and asyncio clients.
"""

from .batching import CrossRequestBatcher, execute_group, group_signature
from .client import AsyncServiceClient, ServiceClient
from .protocol import PROTOCOL_VERSION, ServiceError, build_request, jsonable
from .server import HeServer, ServerThread
from .tenants import Tenant, TenantCache, params_hash

__all__ = [
    "PROTOCOL_VERSION",
    "AsyncServiceClient",
    "CrossRequestBatcher",
    "HeServer",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "Tenant",
    "TenantCache",
    "build_request",
    "execute_group",
    "group_signature",
    "jsonable",
    "params_hash",
]
