"""Sync and asyncio clients for the HE serving layer.

Both clients speak the :mod:`repro.service.protocol` envelope: serialised
ciphertexts in, one serialised result out.  The sync client
(:class:`ServiceClient`) wraps :mod:`http.client` for scripts and tests;
the asyncio client (:class:`AsyncServiceClient`) writes HTTP/1.1 over raw
``asyncio`` streams so a load generator can hold many requests in flight
from one thread — which is exactly what gives the server's cross-request
batcher something to coalesce.

Every compute request carries a ``request_id``: the caller's own if given,
otherwise a fresh :func:`~repro.service.protocol.new_request_id`.  The id
comes back in the response envelope (and every error body), names the
request's access-log line, and — when the server traces — retrieves the
request's reassembled span tree via :meth:`ServiceClient.trace`.

Clients encrypt locally and keep their secret keys: the server only ever
sees ciphertexts.  Build the local context with the same ``(params, seed)``
pair the requests name, so client and server derive identical key material
(`HeContext.create` key generation is deterministic in the seed) and
results decrypt under the local secret key.
"""

from __future__ import annotations

import asyncio
import http.client
import json

from ..core.serialization import ciphertext_from_dict, ciphertext_to_dict
from ..he.ciphertext import Ciphertext
from ..he.params import HEParams
from .protocol import ServiceError, build_request, new_request_id

__all__ = ["ServiceClient", "AsyncServiceClient"]


def _decode_response(status: int, body: bytes) -> dict:
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        payload = {"error": body.decode("utf-8", "replace")}
    if status != 200:
        raise ServiceError(status, payload.get("error", "request failed"))
    return payload


class ServiceClient:
    """Blocking HTTP client (one connection per call, stdlib ``http.client``)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _raw_request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        accept: str | None = None,
    ) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            if accept is not None:
                headers["Accept"] = accept
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, body = self._raw_request(method, path, payload)
        return _decode_response(status, body)

    def health(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        """The server's root snapshot plus one snapshot per tenant."""
        return self._request("GET", "/v1/metrics")

    def metrics_text(self) -> str:
        """The same metrics in Prometheus text exposition format."""
        status, body = self._raw_request(
            "GET", "/v1/metrics", accept="text/plain"
        )
        if status != 200:
            raise ServiceError(status, body.decode("utf-8", "replace"))
        return body.decode("utf-8")

    def trace(self, request_id: str) -> dict:
        """The reassembled span tree of one served request.

        Requires the server to run with tracing on (``serve --trace`` /
        ``REPRO_TRACE``); 404s for ids the tracer never saw.
        """
        return self._request("GET", "/v1/trace/%s" % request_id)

    def compute_raw(
        self,
        params: HEParams,
        ops: "list[str] | tuple[str, ...]",
        ciphertexts: "list[Ciphertext]",
        seed: int = 2020,
        request_id: str | None = None,
    ) -> dict:
        """Submit one op chain; returns the full response envelope."""
        payload = build_request(
            params,
            ops,
            [ciphertext_to_dict(ct) for ct in ciphertexts],
            seed=seed,
            request_id=request_id if request_id is not None else new_request_id(),
        )
        return self._request("POST", "/v1/compute", payload)

    def compute(
        self,
        params: HEParams,
        ops: "list[str] | tuple[str, ...]",
        ciphertexts: "list[Ciphertext]",
        seed: int = 2020,
        backend=None,
        request_id: str | None = None,
    ) -> Ciphertext:
        """Submit one op chain; returns the result ciphertext."""
        response = self.compute_raw(
            params, ops, ciphertexts, seed=seed, request_id=request_id
        )
        return ciphertext_from_dict(response["result"], backend=backend)


class AsyncServiceClient:
    """Asyncio client: many in-flight requests from one event loop."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                (
                    "%s %s HTTP/1.1\r\n"
                    "Host: %s:%d\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: %d\r\n"
                    "Connection: close\r\n\r\n"
                    % (method, path, self.host, self.port, len(body))
                ).encode("ascii")
            )
            if body:
                writer.write(body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split()
            if len(parts) < 2 or not parts[1].isdigit():
                raise ServiceError(502, "malformed response from server")
            status = int(parts[1])
            length = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            data = (
                await reader.readexactly(length)
                if length is not None
                else await reader.read(-1)
            )
            return _decode_response(status, data)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def health(self) -> dict:
        return await self._request("GET", "/v1/healthz")

    async def metrics(self) -> dict:
        return await self._request("GET", "/v1/metrics")

    async def trace(self, request_id: str) -> dict:
        """The reassembled span tree of one served request."""
        return await self._request("GET", "/v1/trace/%s" % request_id)

    async def compute_raw(
        self,
        params: HEParams,
        ops: "list[str] | tuple[str, ...]",
        ciphertexts: "list[Ciphertext]",
        seed: int = 2020,
        request_id: str | None = None,
    ) -> dict:
        payload = build_request(
            params,
            ops,
            [ciphertext_to_dict(ct) for ct in ciphertexts],
            seed=seed,
            request_id=request_id if request_id is not None else new_request_id(),
        )
        return await self._request("POST", "/v1/compute", payload)

    async def compute(
        self,
        params: HEParams,
        ops: "list[str] | tuple[str, ...]",
        ciphertexts: "list[Ciphertext]",
        seed: int = 2020,
        backend=None,
        request_id: str | None = None,
    ) -> Ciphertext:
        response = await self.compute_raw(
            params, ops, ciphertexts, seed=seed, request_id=request_id
        )
        return ciphertext_from_dict(response["result"], backend=backend)
