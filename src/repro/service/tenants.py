"""Multi-tenant :class:`~repro.he.context.HeContext` cache for the serving layer.

A *tenant* is one ``(params, key seed)`` pair — the unit at which HE state
can be shared: everyone under the same parameters and seed shares key
material, twiddle caches, compiled plans and (crucially for cross-request
batching) an evaluator whose plan cache the batcher compiles group plans
into.  The cache is keyed by :func:`params_hash`, a stable digest of the
canonical parameter dictionary, which is also the tenant id reported on the
metrics surface.

Isolation properties the tests pin:

* the **same** hash returns the **same** cached tenant (contexts, key
  material and plan caches are shared, so repeat traffic is warm);
* **different** params or seeds build fully isolated tenants — each gets a
  *fresh* backend instance via :func:`~repro.backends.registry.build_backend`
  (never the registry singleton), so backend counters cannot bleed between
  tenants;
* every tenant's registry is a child of the server's root registry: counter
  increments propagate up (fleet totals for free, the
  :class:`~repro.telemetry.metrics.MetricsRegistry` parent-chain semantics),
  while per-tenant snapshots stay per-tenant.
"""

from __future__ import annotations

import hashlib
import json
import threading

from ..backends.registry import build_backend, resolve_backend
from ..he.context import HeContext
from ..he.params import HEParams
from ..telemetry.metrics import MetricsRegistry
from .protocol import params_dict

__all__ = ["params_hash", "Tenant", "TenantCache"]


def params_hash(params: HEParams, seed: int) -> str:
    """Stable tenant id for a ``(parameter set, key seed)`` pair."""
    canonical = dict(params_dict(params), seed=seed)
    blob = json.dumps(canonical, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


class Tenant:
    """One cached HE session: context + evaluator + metrics subtree."""

    __slots__ = ("key", "params", "seed", "context", "evaluator", "registry")

    def __init__(
        self,
        key: str,
        params: HEParams,
        seed: int,
        context: HeContext,
        registry: MetricsRegistry,
    ) -> None:
        self.key = key
        self.params = params
        self.seed = seed
        self.context = context
        #: One shared evaluator per tenant: its plan cache is where the
        #: batcher's cross-request group plans are compiled once per shape.
        self.evaluator = context.evaluator()
        self.registry = registry

    def metrics(self) -> dict:
        """This tenant's own snapshot (backend + context, nobody else's)."""
        return self.context.metrics()


class TenantCache:
    """Thread-safe ``params hash -> Tenant`` cache under one root registry.

    Args:
        root: The server's root metrics registry; every tenant registry is
            created as its child so increments aggregate upward.
        backend: Registry name of the backend each tenant gets a dedicated
            instance of (``None`` resolves the registry default — which
            honours ``REPRO_BACKEND`` — once per tenant build).
        shards: Optional shard count applied when the tenant backend
            shards (the ``parallel`` backend).
    """

    def __init__(
        self,
        root: MetricsRegistry,
        backend: str | None = None,
        shards: int | None = None,
    ) -> None:
        self._root = root
        self._backend_name = backend
        self._shards = shards
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()
        root.set_gauge("service.tenants", lambda: len(self._tenants))

    @property
    def shards(self) -> "int | None":
        """The configured shard count (``None`` = backend default)."""
        return self._shards

    def backend_name(self) -> str:
        """The registry name tenant backends are built from (resolving the
        registry default — which honours ``REPRO_BACKEND`` — when the cache
        was built without an explicit name)."""
        return self._backend_name or resolve_backend(None).name

    def get(self, params: HEParams, seed: int) -> Tenant:
        """The cached tenant for ``(params, seed)``, built on first use."""
        key = params_hash(params, seed)
        with self._lock:
            tenant = self._tenants.get(key)
            if tenant is not None:
                if tenant.params != params or tenant.seed != seed:
                    raise RuntimeError(
                        "params-hash collision for tenant %s" % key
                    )  # pragma: no cover - sha256 collision
                return tenant
            registry = MetricsRegistry(parent=self._root)
            name = self._backend_name or resolve_backend(None).name
            backend = build_backend(name)
            if self._shards is not None and hasattr(backend, "set_shards"):
                backend.set_shards(self._shards)
            # The backend built its registry before the tenant existed;
            # adopt it so conversion/dispatch counters roll up through the
            # tenant into the server root.
            registry.adopt(backend.metrics)
            context = HeContext.create(
                params, backend=backend, seed=seed, metrics_parent=registry
            )
            tenant = Tenant(key, params, seed, context, registry)
            self._tenants[key] = tenant
            return tenant

    def tenants(self) -> dict[str, Tenant]:
        """A point-in-time copy of the live tenant table."""
        with self._lock:
            return dict(self._tenants)

    def close(self) -> None:
        """Shut down every tenant's dedicated backend (worker pools etc.)."""
        with self._lock:
            tenants = list(self._tenants.values())
            self._tenants.clear()
        for tenant in tenants:
            close = getattr(tenant.context.backend, "close", None)
            if close is not None:
                close()
