"""The asyncio HE server: stdlib HTTP/JSON over ``asyncio.start_server``.

Architecture (all stdlib, no web framework):

* the **event loop** owns connection handling, request parsing and the
  batching windows — it never executes HE work, so it stays responsive to
  new arrivals while a batch computes (that responsiveness is what lets
  batches form);
* one **HE executor thread** (``ThreadPoolExecutor(max_workers=1)``) owns
  every touch of backend state: tenant construction, ciphertext
  deserialisation, group execution, response serialisation.  One thread
  means zero backend locking and a meaningful serial baseline — parallelism
  comes from batch *width* on the sharded backend underneath, exactly the
  paper's claim;
* the :class:`~repro.service.batching.CrossRequestBatcher` sits between
  them, coalescing concurrent ``POST /v1/compute`` bodies for the same
  tenant + op chain + shape into one fused plan.

Routes:

* ``POST /v1/compute`` — one op chain over submitted ciphertexts;
* ``GET /v1/metrics`` — the server's root registry snapshot plus one
  snapshot per tenant (per-tenant conversion/dispatch/plan accounting);
* ``GET /v1/healthz`` — liveness.

:class:`ServerThread` hosts the whole loop on a daemon thread for tests,
benchmarks and the in-process load-generator example; ``main()`` is the
``python -m repro.experiments serve`` entry point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from ..core.serialization import ciphertext_from_dict, ciphertext_to_dict
from ..telemetry import enable_tracing, maybe_enable_from_env
from ..telemetry.metrics import MetricsRegistry
from .batching import CrossRequestBatcher
from .protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    jsonable,
    validate_request,
)
from .tenants import TenantCache

__all__ = ["HeServer", "ServerThread", "main"]

#: Largest request body accepted (a ciphertext at large parameters is a few
#: MB of hex; this bounds hostile payloads, not legitimate ones).
MAX_BODY_BYTES = 64 << 20

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            413: "Payload Too Large", 500: "Internal Server Error"}


class HeServer:
    """The serving core: tenant cache + batcher + request handlers.

    Args:
        backend: Registry name each tenant's dedicated backend is built
            from (``None`` honours ``REPRO_BACKEND``).
        shards: Shard count for sharding tenant backends.
        max_batch: Cross-request batch width cap (``1`` disables
            coalescing — the serial baseline).
        batch_window: Seconds the first request of a group waits for
            companions before the batch flushes.
    """

    def __init__(
        self,
        backend: str | None = None,
        shards: int | None = None,
        max_batch: int = 8,
        batch_window: float = 0.005,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.metrics.declare(
            "service.requests",
            "service.errors",
            "service.batches",
            "service.batched_requests",
        )
        self.tenants = TenantCache(self.metrics, backend=backend, shards=shards)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-he"
        )
        self.batcher = CrossRequestBatcher(
            self._executor,
            metrics=self.metrics,
            window_s=batch_window,
            max_batch=max_batch,
        )

    def close(self) -> None:
        """Release every tenant backend and the HE executor."""
        self.tenants.close()
        self._executor.shutdown(wait=True)

    # -- connection handling -----------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._dispatch(reader)
            body = json.dumps(payload).encode("utf-8")
            writer.write(
                (
                    "HTTP/1.1 %d %s\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: %d\r\n"
                    "Connection: close\r\n\r\n"
                    % (status, _REASONS.get(status, "Error"), len(body))
                ).encode("ascii")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _dispatch(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        try:
            method, path, request_body = await self._read_request(reader)
        except ServiceError as exc:
            self.metrics.inc("service.errors")
            return exc.status, {"error": exc.message}
        try:
            if method == "POST" and path == "/v1/compute":
                return 200, await self._compute(request_body)
            if method == "GET" and path == "/v1/metrics":
                return 200, self._metrics_payload()
            if method == "GET" and path == "/v1/healthz":
                return 200, {"status": "ok", "format_version": PROTOCOL_VERSION}
            self.metrics.inc("service.errors")
            return 404, {"error": "no route for %s %s" % (method, path)}
        except ServiceError as exc:
            self.metrics.inc("service.errors")
            return exc.status, {"error": exc.message}
        except ValueError as exc:
            # HE-layer shape/ring rejections are client mistakes, not crashes.
            self.metrics.inc("service.errors")
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            self.metrics.inc("service.errors")
            return 500, {"error": "%s: %s" % (type(exc).__name__, exc)}

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader) -> tuple[str, str, bytes]:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                raise ServiceError(400, "malformed HTTP request line")
            method, path = parts[0], parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY_BYTES:
                raise ServiceError(413, "request body exceeds %d bytes" % MAX_BODY_BYTES)
            body = await reader.readexactly(length) if length else b""
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(400, "malformed HTTP request: %s" % exc) from None
        return method, path, body

    # -- routes ------------------------------------------------------------------
    async def _compute(self, body: bytes) -> dict:
        self.metrics.inc("service.requests")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceError(400, "request body is not valid JSON: %s" % exc) from None
        params, seed, ops, ct_payloads = validate_request(payload)
        loop = asyncio.get_running_loop()
        # Tenant construction and ciphertext reconstruction are backend
        # work — they run on the HE thread, keeping the loop free to
        # coalesce the requests arriving meanwhile.
        tenant, cts = await loop.run_in_executor(
            self._executor, self._prepare, params, seed, ct_payloads
        )
        result, batch_size = await self.batcher.submit(tenant, ops, cts)
        response = await loop.run_in_executor(
            self._executor, ciphertext_to_dict, result
        )
        return {
            "format_version": PROTOCOL_VERSION,
            "tenant": tenant.key,
            "batch_size": batch_size,
            "result": response,
        }

    def _prepare(self, params, seed, ct_payloads):
        tenant = self.tenants.get(params, seed)
        cts = [
            ciphertext_from_dict(payload, backend=tenant.context.backend)
            for payload in ct_payloads
        ]
        return tenant, cts

    def _metrics_payload(self) -> dict:
        return {
            "format_version": PROTOCOL_VERSION,
            "server": jsonable(self.metrics.snapshot()),
            "tenants": {
                key: jsonable(tenant.metrics())
                for key, tenant in self.tenants.tenants().items()
            },
        }

    # -- serving -----------------------------------------------------------------
    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: "threading.Event | None" = None,
        stop: "asyncio.Event | None" = None,
        bound: "list | None" = None,
    ) -> None:
        """Accept connections until ``stop`` is set (forever when ``None``)."""
        server = await asyncio.start_server(self.handle_connection, host, port)
        try:
            if bound is not None:
                bound.append(server.sockets[0].getsockname()[1])
            if ready is not None:
                ready.set()
            if stop is None:
                async with server:
                    await server.serve_forever()
            else:
                async with server:
                    await stop.wait()
        finally:
            self.close()


class ServerThread:
    """Context manager hosting an :class:`HeServer` loop on a daemon thread.

    The with-block receives the started instance with :attr:`port` bound —
    what the tests, the service benchmark and the in-process load-generator
    example use to stand up a real server without blocking the caller.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **server_kwargs) -> None:
        self.host = host
        self.port = port
        self.server = HeServer(**server_kwargs)
        self._ready = threading.Event()
        self._bound: list[int] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.serve(
            self.host, self.port, ready=self._ready, stop=self._stop,
            bound=self._bound,
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._failure = exc
            self._ready.set()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-he-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        if not self._bound:
            raise RuntimeError("server did not bind within 30s")
        self.port = self._bound[0]
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: ``python -m repro.experiments serve [options]``."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments serve",
        description="Serve homomorphic ciphertext ops over HTTP/JSON with "
        "cross-request batching.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8793)
    parser.add_argument(
        "--backend",
        default=None,
        help="registry backend name for tenant contexts (default: REPRO_BACKEND "
        "or the registry default)",
    )
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count for sharding backends")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="cross-request batch width cap (1 = no batching)")
    parser.add_argument("--batch-window", type=float, default=0.005,
                        help="batching window in seconds")
    parser.add_argument("--trace", default=None,
                        help="write a Chrome-trace JSON capture to this path")
    args = parser.parse_args(argv)
    if args.trace is not None:
        enable_tracing(args.trace)
    else:
        maybe_enable_from_env()
    server = HeServer(
        backend=args.backend,
        shards=args.shards,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
    )
    print(
        "serving HE ops on http://%s:%d (backend=%s, max_batch=%d, window=%gs)"
        % (args.host, args.port, args.backend or "default", args.max_batch,
           args.batch_window),
        flush=True,
    )
    try:
        asyncio.run(server.serve(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI smoke
    raise SystemExit(main())
