"""The asyncio HE server: stdlib HTTP/JSON over ``asyncio.start_server``.

Architecture (all stdlib, no web framework):

* the **event loop** owns connection handling, request parsing and the
  batching windows — it never executes HE work, so it stays responsive to
  new arrivals while a batch computes (that responsiveness is what lets
  batches form);
* one **HE executor thread** (``ThreadPoolExecutor(max_workers=1)``) owns
  every touch of backend state: tenant construction, ciphertext
  deserialisation, group execution, response serialisation.  One thread
  means zero backend locking and a meaningful serial baseline — parallelism
  comes from batch *width* on the sharded backend underneath, exactly the
  paper's claim;
* the :class:`~repro.service.batching.CrossRequestBatcher` sits between
  them, coalescing concurrent ``POST /v1/compute`` bodies for the same
  tenant + op chain + shape into one fused plan.

Routes:

* ``POST /v1/compute`` — one op chain over submitted ciphertexts;
* ``GET /v1/metrics`` — the server's root registry snapshot plus one
  snapshot per tenant as JSON, or the Prometheus text exposition format
  when the request ``Accept``\\ s ``text/plain``;
* ``GET /v1/trace/<request_id>`` — the reassembled span tree of one
  served request (requires tracing: ``serve --trace`` / ``REPRO_TRACE``);
* ``GET /v1/dashboard`` — a self-contained live HTML dashboard polling
  the JSON metrics;
* ``GET /v1/healthz`` — liveness plus build/runtime facts (uptime,
  protocol version, backend, shards, live tenant count).

Observability: every request carries a ``request_id`` (client-chosen or
server-minted), which names its root ``service.request`` span, its
access-log line (``--access-log`` / ``REPRO_ACCESS_LOG``) and every error
body.  Per-stage latencies (queue wait, batch-window wait, execute,
serialize, total) land in percentile histograms on the tenant registries.

:class:`ServerThread` hosts the whole loop on a daemon thread for tests,
benchmarks and the in-process load-generator example; ``main()`` is the
``python -m repro.experiments serve`` entry point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..core.serialization import ciphertext_from_dict, ciphertext_to_dict
from ..telemetry import (
    PROFILER,
    REQUEST_SPAN,
    TRACER,
    JsonLinesLog,
    enable_profiling,
    enable_tracing,
    maybe_enable_from_env,
    maybe_enable_profiling_from_env,
    profile_tag,
    request_tree,
    summarize,
)
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from ..telemetry.prometheus import render_registries
from .batching import CrossRequestBatcher
from .dashboard import DASHBOARD_HTML
from .protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    jsonable,
    new_request_id,
    validate_request,
)
from .tenants import TenantCache

__all__ = ["HeServer", "ServerThread", "main"]

#: Largest request body accepted (a ciphertext at large parameters is a few
#: MB of hex; this bounds hostile payloads, not legitimate ones).
MAX_BODY_BYTES = 64 << 20

#: Set to a file path to JSON-lines-log every request the server handles.
ACCESS_LOG_ENV_VAR = "REPRO_ACCESS_LOG"

#: The NTT self-time share of GPU bootstrapping the paper reports; the
#: metrics payload carries it next to the live measured share.
PAPER_NTT_SHARE = 0.5004

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict",
            413: "Payload Too Large", 500: "Internal Server Error"}

_JSON_TYPE = "application/json"


class HeServer:
    """The serving core: tenant cache + batcher + request handlers.

    Args:
        backend: Registry name each tenant's dedicated backend is built
            from (``None`` honours ``REPRO_BACKEND``).
        shards: Shard count for sharding tenant backends.
        max_batch: Cross-request batch width cap (``1`` disables
            coalescing — the serial baseline).
        batch_window: Seconds the first request of a group waits for
            companions before the batch flushes.
        access_log: Where to JSON-lines-log every handled request — a
            path, a ``write()``-able stream, or a prebuilt
            :class:`~repro.telemetry.log.JsonLinesLog` (``None`` disables).
    """

    def __init__(
        self,
        backend: str | None = None,
        shards: int | None = None,
        max_batch: int = 8,
        batch_window: float = 0.005,
        access_log=None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.metrics.declare(
            "service.requests",
            "service.errors",
            "service.errors.4xx",
            "service.errors.5xx",
            "service.batches",
            "service.batched_requests",
        )
        self.tenants = TenantCache(self.metrics, backend=backend, shards=shards)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-he"
        )
        self.batcher = CrossRequestBatcher(
            self._executor,
            metrics=self.metrics,
            window_s=batch_window,
            max_batch=max_batch,
        )
        self._started = time.perf_counter()
        if access_log is None or isinstance(access_log, JsonLinesLog):
            self.access_log = access_log
        else:
            self.access_log = JsonLinesLog(access_log)

    def close(self) -> None:
        """Release every tenant backend, the HE executor and the access log."""
        self.tenants.close()
        self._executor.shutdown(wait=True)
        if self.access_log is not None:
            self.access_log.close()

    # -- connection handling -----------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        try:
            status, content_type, body, log = await self._dispatch(reader)
            if self.access_log is not None:
                self.access_log.write(
                    "request",
                    status=status,
                    duration_ms=round((time.perf_counter() - started) * 1e3, 3),
                    **log,
                )
            writer.write(
                (
                    "HTTP/1.1 %d %s\r\n"
                    "Content-Type: %s\r\n"
                    "Content-Length: %d\r\n"
                    "Connection: close\r\n\r\n"
                    % (status, _REASONS.get(status, "Error"), content_type, len(body))
                ).encode("ascii")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    def _count_error(self, status: int) -> None:
        self.metrics.inc("service.errors")
        if 400 <= status < 500:
            self.metrics.inc("service.errors.4xx")
        elif status >= 500:
            self.metrics.inc("service.errors.5xx")

    def _json(self, status: int, payload: dict, log: dict) -> tuple:
        return status, _JSON_TYPE, json.dumps(payload).encode("utf-8"), log

    def _error(self, status: int, message: str, log: dict) -> tuple:
        """An error response; the body always names the request id so a
        failure correlates with its access-log line and trace."""
        self._count_error(status)
        log["error"] = message
        return self._json(
            status, {"error": message, "request_id": log.get("request_id")}, log
        )

    async def _dispatch(self, reader: asyncio.StreamReader) -> tuple:
        """Route one request; returns ``(status, content type, body bytes,
        access-log fields)``."""
        # Mint a correlation id up front so even a request that dies during
        # parsing has one; _compute swaps in the client's own id.
        log: dict = {"request_id": new_request_id()}
        try:
            method, path, request_body, headers = await self._read_request(reader)
        except ServiceError as exc:
            return self._error(exc.status, exc.message, log)
        log["method"] = method
        log["path"] = path
        try:
            if method == "POST" and path == "/v1/compute":
                return self._json(200, await self._compute(request_body, log), log)
            if method == "GET" and path == "/v1/metrics":
                accept = headers.get("accept", "")
                if "text/plain" in accept or "openmetrics" in accept:
                    text = render_registries(
                        self.metrics,
                        {
                            key: tenant.registry
                            for key, tenant in self.tenants.tenants().items()
                        },
                    )
                    return (
                        200,
                        PROMETHEUS_CONTENT_TYPE,
                        text.encode("utf-8"),
                        log,
                    )
                return self._json(200, self._metrics_payload(), log)
            if method == "GET" and path == "/v1/healthz":
                return self._json(200, self._health_payload(), log)
            if method == "GET" and path.startswith("/v1/trace/"):
                request_id = path[len("/v1/trace/"):]
                log["request_id"] = request_id
                return self._json(200, self._trace_payload(request_id), log)
            if method == "GET" and path == "/v1/dashboard":
                return (
                    200,
                    "text/html; charset=utf-8",
                    DASHBOARD_HTML.encode("utf-8"),
                    log,
                )
            return self._error(404, "no route for %s %s" % (method, path), log)
        except ServiceError as exc:
            return self._error(exc.status, exc.message, log)
        except ValueError as exc:
            # HE-layer shape/ring rejections are client mistakes, not crashes.
            return self._error(400, str(exc), log)
        except Exception as exc:  # pragma: no cover - defensive
            return self._error(500, "%s: %s" % (type(exc).__name__, exc), log)

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes, dict]:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                raise ServiceError(400, "malformed HTTP request line")
            method, path = parts[0], parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY_BYTES:
                raise ServiceError(413, "request body exceeds %d bytes" % MAX_BODY_BYTES)
            body = await reader.readexactly(length) if length else b""
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(400, "malformed HTTP request: %s" % exc) from None
        return method, path, body, headers

    # -- routes ------------------------------------------------------------------
    async def _compute(self, body: bytes, log: dict) -> dict:
        arrived = time.perf_counter()
        self.metrics.inc("service.requests")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceError(400, "request body is not valid JSON: %s" % exc) from None
        params, seed, ops, ct_payloads, client_rid = validate_request(payload)
        request_id = client_rid if client_rid is not None else log["request_id"]
        log["request_id"] = request_id
        # The request root is opened with begin()/end(), never a context
        # manager: the handler is suspended across awaits, and a span held
        # on the thread-local stack across an await would misparent every
        # concurrently-running handler's spans.
        root = TRACER.begin(REQUEST_SPAN, request_id=request_id, ops="+".join(ops))
        try:
            loop = asyncio.get_running_loop()
            # Tenant construction and ciphertext reconstruction are backend
            # work — they run on the HE thread, keeping the loop free to
            # coalesce the requests arriving meanwhile.
            tenant, cts = await loop.run_in_executor(
                self._executor, self._prepare, params, seed, ct_payloads, arrived, root
            )
            log["tenant"] = tenant.key
            result, batch_size = await self.batcher.submit(
                tenant, ops, cts, request_id=request_id, root_sid=root
            )
            log["batch_size"] = batch_size
            response = await loop.run_in_executor(
                self._executor, self._serialize, tenant, result, root
            )
            tenant.registry.observe(
                "service.latency.total_seconds", time.perf_counter() - arrived
            )
            return {
                "format_version": PROTOCOL_VERSION,
                "request_id": request_id,
                "tenant": tenant.key,
                "batch_size": batch_size,
                "result": response,
            }
        finally:
            TRACER.end(root, REQUEST_SPAN)

    def _prepare(self, params, seed, ct_payloads, arrived, root):
        tenant = self.tenants.get(params, seed)
        # Queue wait: arrival on the loop until the HE thread picks it up.
        tenant.registry.observe(
            "service.latency.queue_seconds", time.perf_counter() - arrived
        )
        with profile_tag("tenant:%s" % tenant.key):
            with TRACER.span_under(root, "service.prepare", tenant=tenant.key):
                cts = [
                    ciphertext_from_dict(payload, backend=tenant.context.backend)
                    for payload in ct_payloads
                ]
        return tenant, cts

    def _serialize(self, tenant, result, root):
        started = time.perf_counter()
        with profile_tag("tenant:%s" % tenant.key):
            with TRACER.span_under(root, "service.serialize", tenant=tenant.key):
                payload = ciphertext_to_dict(result)
        tenant.registry.observe(
            "service.latency.serialize_seconds", time.perf_counter() - started
        )
        return payload

    def _health_payload(self) -> dict:
        return {
            "status": "ok",
            "format_version": PROTOCOL_VERSION,
            "uptime_seconds": round(time.perf_counter() - self._started, 6),
            "backend": self.tenants.backend_name(),
            "shards": self.tenants.shards,
            "tenants": len(self.tenants.tenants()),
            "tracing": TRACER.enabled,
            "profiling": PROFILER.running,
        }

    def _trace_payload(self, request_id: str) -> dict:
        tree = request_tree(TRACER.events(), request_id)
        if tree is None:
            if not TRACER.enabled:
                raise ServiceError(
                    409,
                    "tracing is not enabled on this server "
                    "(start it with --trace or REPRO_TRACE)",
                )
            raise ServiceError(
                404,
                "no trace for request id %r (traces exist only for requests "
                "served while tracing was on)" % request_id,
            )
        return {
            "format_version": PROTOCOL_VERSION,
            "request_id": request_id,
            "trace": jsonable(tree),
        }

    @staticmethod
    def _tenant_payload(tenant) -> dict:
        """Context metrics plus the tenant registry's ``service.*`` stats
        (per-stage latency percentiles; what the dashboard charts)."""
        merged = dict(tenant.metrics())
        for name, value in tenant.registry.snapshot().items():
            if name.startswith("service."):
                merged[name] = value
        return jsonable(merged)

    def _metrics_payload(self) -> dict:
        payload = {
            "format_version": PROTOCOL_VERSION,
            "uptime_seconds": round(time.perf_counter() - self._started, 6),
            "server": jsonable(self.metrics.snapshot()),
            "tenants": {
                key: self._tenant_payload(tenant)
                for key, tenant in self.tenants.tenants().items()
            },
        }
        # The measured NTT self-time share, live, next to the paper's
        # number — the dashboard's headline comparison.
        ntt = {"paper_share": PAPER_NTT_SHARE, "traced": TRACER.enabled}
        if TRACER.enabled:
            stats = summarize(TRACER.events())
            ntt["measured_share"] = stats["ntt_share"]
            ntt["total_self_seconds"] = stats["total_self_seconds"]
        else:
            ntt["measured_share"] = None
        payload["ntt"] = ntt
        return payload

    # -- serving -----------------------------------------------------------------
    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: "threading.Event | None" = None,
        stop: "asyncio.Event | None" = None,
        bound: "list | None" = None,
    ) -> None:
        """Accept connections until ``stop`` is set (forever when ``None``)."""
        server = await asyncio.start_server(self.handle_connection, host, port)
        try:
            if bound is not None:
                bound.append(server.sockets[0].getsockname()[1])
            if ready is not None:
                ready.set()
            if stop is None:
                async with server:
                    await server.serve_forever()
            else:
                async with server:
                    await stop.wait()
        finally:
            self.close()


class ServerThread:
    """Context manager hosting an :class:`HeServer` loop on a daemon thread.

    The with-block receives the started instance with :attr:`port` bound —
    what the tests, the service benchmark and the in-process load-generator
    example use to stand up a real server without blocking the caller.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **server_kwargs) -> None:
        self.host = host
        self.port = port
        self.server = HeServer(**server_kwargs)
        self._ready = threading.Event()
        self._bound: list[int] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.serve(
            self.host, self.port, ready=self._ready, stop=self._stop,
            bound=self._bound,
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._failure = exc
            self._ready.set()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-he-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        if not self._bound:
            raise RuntimeError("server did not bind within 30s")
        self.port = self._bound[0]
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: ``python -m repro.experiments serve [options]``."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments serve",
        description="Serve homomorphic ciphertext ops over HTTP/JSON with "
        "cross-request batching.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8793)
    parser.add_argument(
        "--backend",
        default=None,
        help="registry backend name for tenant contexts (default: REPRO_BACKEND "
        "or the registry default)",
    )
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count for sharding backends")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="cross-request batch width cap (1 = no batching)")
    parser.add_argument("--batch-window", type=float, default=0.005,
                        help="batching window in seconds")
    parser.add_argument("--trace", default=None,
                        help="write a Chrome-trace JSON capture to this path")
    parser.add_argument("--profile", default=None,
                        help="write a collapsed-stack sampling profile "
                        "(flamegraph.pl input) to this path")
    parser.add_argument("--access-log", default=None,
                        help="JSON-lines access log path (default: "
                        "REPRO_ACCESS_LOG)")
    args = parser.parse_args(argv)
    if args.trace is not None:
        enable_tracing(args.trace)
    else:
        maybe_enable_from_env()
    if args.profile is not None:
        enable_profiling(args.profile)
    else:
        maybe_enable_profiling_from_env()
    access_log = args.access_log or os.environ.get(ACCESS_LOG_ENV_VAR) or None
    server = HeServer(
        backend=args.backend,
        shards=args.shards,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        access_log=access_log,
    )
    print(
        "serving HE ops on http://%s:%d (backend=%s, max_batch=%d, window=%gs)"
        % (args.host, args.port, args.backend or "default", args.max_batch,
           args.batch_window),
        flush=True,
    )
    try:
        asyncio.run(server.serve(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI smoke
    raise SystemExit(main())
