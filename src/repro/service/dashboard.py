"""The live ops dashboard served at ``GET /v1/dashboard``.

One self-contained HTML page — no external scripts, stylesheets or fonts,
so it works from the stdlib server on an air-gapped box.  It polls
``GET /v1/metrics`` (the JSON view) every two seconds and renders:

* a hero figure: the measured NTT self-time share next to the paper's
  50.04% (requires tracing; shows an em-dash otherwise);
* a KPI row: requests, live QPS, errors (4xx/5xx split), tenants, batch
  occupancy, shared-memory bytes and ``fallback.rows``;
* service latency percentiles (p50/p90/p99 of
  ``service.latency.total_seconds``) over time — an ordinal one-hue ramp,
  since percentiles are ordered;
* per-tenant QPS over time — categorical hues assigned in fixed
  first-seen order and never re-assigned;
* batch-occupancy percentiles, and per-stage latency / per-tenant tables
  (the no-hover, screen-reader-clean view of everything charted).

Failed polls keep the previous render at reduced opacity (no flash); all
dynamic text lands via ``textContent``; dark mode is its own palette
selection, not a filter.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro HE serving dashboard</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;      /* chart surface */
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6;       /* categorical: blue */
    --series-2: #eb6834;       /* orange */
    --series-3: #1baf7a;       /* aqua */
    --ord-1: #86b6ef;          /* ordinal blue ramp: p50 */
    --ord-2: #2a78d6;          /* p90 */
    --ord-3: #104281;          /* p99 */
    --critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5;
      --series-2: #d95926;
      --series-3: #199e70;
      --ord-1: #9ec5f4;
      --ord-2: #3987e5;
      --ord-3: #184f95;
      --critical: #d03b3b;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 20px 24px 40px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 16px; }
  header h1 { font-size: 17px; font-weight: 600; margin: 0; }
  #status { font-size: 12px; color: var(--text-muted); }
  #status.stale { color: var(--critical); }
  .grid { display: grid; gap: 12px; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); margin-bottom: 12px; }
  .card {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 14px 16px;
  }
  .card.stale-hold { opacity: 0.55; }
  .tile .label { font-size: 12px; color: var(--text-secondary); }
  .tile .value { font-size: 22px; font-weight: 600; margin-top: 2px; }
  .tile .sub { font-size: 11px; color: var(--text-muted); margin-top: 2px; }
  .hero { grid-column: 1 / -1; display: flex; align-items: baseline; gap: 18px; flex-wrap: wrap; }
  .hero .value { font-size: 52px; font-weight: 600; line-height: 1.1; }
  .hero .label { font-size: 13px; color: var(--text-secondary); }
  .hero .paper { font-size: 13px; color: var(--text-muted); }
  .charts { display: grid; gap: 12px; grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); margin-bottom: 12px; }
  .chart-card h2, .table-card h2 { font-size: 13px; font-weight: 600; margin: 0 0 2px; }
  .chart-card .subtitle { font-size: 11px; color: var(--text-muted); margin-bottom: 8px; }
  .legend { display: flex; gap: 14px; font-size: 11px; color: var(--text-secondary); margin-bottom: 4px; flex-wrap: wrap; }
  .legend .key { display: inline-block; width: 14px; height: 2px; border-radius: 1px; vertical-align: middle; margin-right: 5px; }
  .legend .key.swatch { height: 9px; width: 9px; border-radius: 2px; }
  svg { display: block; width: 100%; height: auto; }
  svg text { font: 10px system-ui, -apple-system, "Segoe UI", sans-serif; fill: var(--text-muted); font-variant-numeric: tabular-nums; }
  svg text.direct { fill: var(--text-secondary); font-size: 11px; }
  .tables { display: grid; gap: 12px; grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); }
  table { width: 100%; border-collapse: collapse; font-size: 12px; }
  th { text-align: left; color: var(--text-secondary); font-weight: 500; padding: 5px 8px; border-bottom: 1px solid var(--grid); }
  td { padding: 5px 8px; border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums; }
  th.num, td.num { text-align: right; }
  #tooltip {
    position: fixed; pointer-events: none; display: none; z-index: 10;
    background: var(--surface-1); border: 1px solid var(--border); border-radius: 6px;
    padding: 7px 10px; font-size: 11px; box-shadow: 0 2px 8px rgba(0,0,0,0.18);
    min-width: 120px;
  }
  #tooltip .tt-title { color: var(--text-muted); margin-bottom: 3px; }
  #tooltip .row { display: flex; align-items: center; gap: 6px; margin-top: 2px; }
  #tooltip .row .key { width: 12px; height: 2px; border-radius: 1px; flex: none; }
  #tooltip .row .val { font-weight: 600; font-variant-numeric: tabular-nums; }
  #tooltip .row .name { color: var(--text-secondary); }
  rect.bar:focus, rect.bar:hover { outline: none; filter: brightness(1.12); }
</style>
</head>
<body>
<header>
  <h1>HE serving — live</h1>
  <span id="status">connecting…</span>
</header>

<div class="grid">
  <div class="card hero" id="hero-card">
    <div>
      <div class="label">measured NTT self-time share</div>
      <div class="value" id="ntt-share">—</div>
    </div>
    <div class="paper" id="ntt-note">paper reports 50.04% of GPU bootstrapping in (i)NTT</div>
  </div>
  <div class="card tile"><div class="label">requests</div><div class="value" id="k-req">—</div><div class="sub" id="k-req-sub"></div></div>
  <div class="card tile"><div class="label">throughput</div><div class="value" id="k-qps">—</div><div class="sub">requests / s (live)</div></div>
  <div class="card tile"><div class="label">errors</div><div class="value" id="k-err">—</div><div class="sub" id="k-err-sub"></div></div>
  <div class="card tile"><div class="label">tenants</div><div class="value" id="k-tenants">—</div><div class="sub" id="k-backend"></div></div>
  <div class="card tile"><div class="label">batch occupancy p50</div><div class="value" id="k-batch">—</div><div class="sub" id="k-batch-sub"></div></div>
  <div class="card tile"><div class="label">shared memory</div><div class="value" id="k-shm">—</div><div class="sub">bytes in use (all tenants)</div></div>
  <div class="card tile"><div class="label">fallback rows</div><div class="value" id="k-fallback">—</div><div class="sub">rows off the fast path</div></div>
</div>

<div class="charts">
  <div class="card chart-card">
    <h2>Service latency percentiles</h2>
    <div class="subtitle">milliseconds, total request latency, all tenants</div>
    <div class="legend" id="lat-legend"></div>
    <div id="lat-chart"></div>
  </div>
  <div class="card chart-card">
    <h2>Per-tenant throughput</h2>
    <div class="subtitle">completed requests / s per tenant</div>
    <div class="legend" id="qps-legend"></div>
    <div id="qps-chart"></div>
  </div>
  <div class="card chart-card">
    <h2>Batch occupancy</h2>
    <div class="subtitle">requests per fused cross-request batch</div>
    <div id="batch-chart"></div>
  </div>
</div>

<div class="tables">
  <div class="card table-card">
    <h2>Latency by stage</h2>
    <table id="stage-table">
      <thead><tr><th>stage</th><th class="num">count</th><th class="num">p50 ms</th><th class="num">p90 ms</th><th class="num">p99 ms</th></tr></thead>
      <tbody></tbody>
    </table>
  </div>
  <div class="card table-card">
    <h2>Tenants</h2>
    <table id="tenant-table">
      <thead><tr><th>tenant</th><th class="num">requests</th><th class="num">p50 ms</th><th class="num">fallback rows</th><th class="num">shm bytes</th></tr></thead>
      <tbody></tbody>
    </table>
  </div>
</div>

<div id="tooltip" role="status"></div>

<script>
"use strict";
const SVGNS = "http://www.w3.org/2000/svg";
const POLL_MS = 2000;
const MAX_POINTS = 150;
const ORDINAL = ["--ord-1", "--ord-2", "--ord-3"];       // p50, p90, p99
const CATEGORICAL = ["--series-1", "--series-2", "--series-3"];
const STAGES = [
  ["queue wait", "service.latency.queue_seconds"],
  ["batch window", "service.latency.batch_wait_seconds"],
  ["execute", "service.latency.execute_seconds"],
  ["serialize", "service.latency.serialize_seconds"],
  ["total", "service.latency.total_seconds"],
];

const history = [];            // {t, p50, p90, p99, qpsByTenant: Map}
const tenantSlots = new Map(); // tenant key -> categorical slot (first seen, fixed)
let prev = null;               // previous poll {t, requests, perTenant: Map}

const cssVar = (name) => getComputedStyle(document.documentElement).getPropertyValue(name).trim();
const el = (tag, attrs) => {
  const node = document.createElementNS(SVGNS, tag);
  for (const key in attrs) node.setAttribute(key, attrs[key]);
  return node;
};
const fmt = (value, digits) => {
  if (value === null || value === undefined || !isFinite(value)) return "—";
  return value.toLocaleString(undefined, {maximumFractionDigits: digits === undefined ? 1 : digits});
};
const compact = (value) => {
  if (value === null || value === undefined || !isFinite(value)) return "—";
  if (value >= 1e9) return fmt(value / 1e9) + "G";
  if (value >= 1e6) return fmt(value / 1e6) + "M";
  if (value >= 1e3) return fmt(value / 1e3) + "K";
  return fmt(value, 0);
};
const setText = (id, text) => { document.getElementById(id).textContent = text; };

const tooltip = document.getElementById("tooltip");
function showTooltip(x, y, title, rows) {
  tooltip.textContent = "";
  const head = document.createElement("div");
  head.className = "tt-title";
  head.textContent = title;
  tooltip.appendChild(head);
  for (const r of rows) {
    const row = document.createElement("div");
    row.className = "row";
    const key = document.createElement("span");
    key.className = "key";
    key.style.background = r.color;
    const val = document.createElement("span");
    val.className = "val";
    val.textContent = r.value;
    const name = document.createElement("span");
    name.className = "name";
    name.textContent = r.name;
    row.appendChild(key); row.appendChild(val); row.appendChild(name);
    tooltip.appendChild(row);
  }
  tooltip.style.display = "block";
  const w = tooltip.offsetWidth, h = tooltip.offsetHeight;
  tooltip.style.left = Math.min(x + 14, window.innerWidth - w - 8) + "px";
  tooltip.style.top = Math.max(8, Math.min(y - h - 10, window.innerHeight - h - 8)) + "px";
}
const hideTooltip = () => { tooltip.style.display = "none"; };

// -- line chart with crosshair tooltip (shared by latency + QPS charts) --------
function lineChart(containerId, series, unitLabel) {
  // series: [{name, colorVar, points: [{t, v}]}]
  const host = document.getElementById(containerId);
  host.textContent = "";
  const W = 460, H = 180, PAD = {l: 44, r: 12, t: 8, b: 22};
  const svg = el("svg", {viewBox: "0 0 " + W + " " + H, role: "img"});
  const times = series.length && series[0].points.length ? series[0].points.map(p => p.t) : [];
  if (times.length < 2) {
    const empty = el("text", {x: W / 2, y: H / 2, "text-anchor": "middle"});
    empty.textContent = "collecting…";
    svg.appendChild(empty);
    host.appendChild(svg);
    return;
  }
  const t0 = times[0], t1 = times[times.length - 1];
  let vmax = 0;
  for (const s of series) for (const p of s.points) if (isFinite(p.v)) vmax = Math.max(vmax, p.v);
  if (vmax <= 0) vmax = 1;
  vmax *= 1.12;
  const x = (t) => PAD.l + (t - t0) / (t1 - t0) * (W - PAD.l - PAD.r);
  const y = (v) => H - PAD.b - (v / vmax) * (H - PAD.t - PAD.b);
  // recessive hairline grid: 3 horizontal rules + baseline
  for (let g = 1; g <= 3; g++) {
    const gy = PAD.t + (H - PAD.t - PAD.b) * g / 4;
    svg.appendChild(el("line", {x1: PAD.l, x2: W - PAD.r, y1: gy, y2: gy, stroke: cssVar("--grid"), "stroke-width": 1}));
    const label = el("text", {x: PAD.l - 5, y: gy + 3, "text-anchor": "end"});
    label.textContent = fmt(vmax * (1 - g / 4), vmax < 10 ? 1 : 0);
    svg.appendChild(label);
  }
  svg.appendChild(el("line", {x1: PAD.l, x2: W - PAD.r, y1: H - PAD.b, y2: H - PAD.b, stroke: cssVar("--baseline"), "stroke-width": 1}));
  const span = el("text", {x: W - PAD.r, y: H - 7, "text-anchor": "end"});
  span.textContent = "last " + fmt(t1 - t0, 0) + " s";
  svg.appendChild(span);
  const axis0 = el("text", {x: PAD.l - 5, y: H - PAD.b + 3, "text-anchor": "end"});
  axis0.textContent = "0";
  svg.appendChild(axis0);
  for (const s of series) {
    const color = cssVar(s.colorVar);
    let d = "";
    s.points.forEach((p, i) => { d += (i ? "L" : "M") + x(p.t).toFixed(1) + " " + y(p.v).toFixed(1); });
    svg.appendChild(el("path", {d, fill: "none", stroke: color, "stroke-width": 2, "stroke-linejoin": "round", "stroke-linecap": "round"}));
    const last = s.points[s.points.length - 1];
    // end marker: >=8px dot with a 2px surface ring
    svg.appendChild(el("circle", {cx: x(last.t), cy: y(last.v), r: 6, fill: cssVar("--surface-1")}));
    svg.appendChild(el("circle", {cx: x(last.t), cy: y(last.v), r: 4, fill: color}));
  }
  // crosshair + tooltip: aim at an X, read every series
  const hair = el("line", {y1: PAD.t, y2: H - PAD.b, stroke: cssVar("--baseline"), "stroke-width": 1, visibility: "hidden"});
  svg.appendChild(hair);
  const hit = el("rect", {x: PAD.l, y: PAD.t, width: W - PAD.l - PAD.r, height: H - PAD.t - PAD.b, fill: "transparent"});
  hit.addEventListener("pointermove", (event) => {
    const box = svg.getBoundingClientRect();
    const px = (event.clientX - box.left) / box.width * W;
    let best = 0, bestDist = Infinity;
    times.forEach((t, i) => {
      const dist = Math.abs(x(t) - px);
      if (dist < bestDist) { bestDist = dist; best = i; }
    });
    const tx = x(times[best]);
    hair.setAttribute("x1", tx); hair.setAttribute("x2", tx);
    hair.setAttribute("visibility", "visible");
    showTooltip(event.clientX, event.clientY,
      fmt(t1 - times[best], 0) + " s ago",
      series.map((s) => ({
        color: cssVar(s.colorVar),
        value: fmt(s.points[best].v, 2) + " " + unitLabel,
        name: s.name,
      })));
  });
  hit.addEventListener("pointerleave", () => { hair.setAttribute("visibility", "hidden"); hideTooltip(); });
  svg.appendChild(hit);
  host.appendChild(svg);
}

function legend(containerId, entries, swatch) {
  const host = document.getElementById(containerId);
  host.textContent = "";
  for (const e of entries) {
    const item = document.createElement("span");
    const key = document.createElement("span");
    key.className = swatch ? "key swatch" : "key";
    key.style.background = cssVar(e.colorVar);
    item.appendChild(key);
    item.appendChild(document.createTextNode(e.name));
    host.appendChild(item);
  }
}

// -- batch occupancy: three thin bars, one series, direct-labeled ---------------
function batchChart(summary) {
  const host = document.getElementById("batch-chart");
  host.textContent = "";
  const W = 460, H = 150, PAD = {l: 44, r: 12, t: 14, b: 24};
  const svg = el("svg", {viewBox: "0 0 " + W + " " + H, role: "img"});
  if (!summary || !summary.count) {
    const empty = el("text", {x: W / 2, y: H / 2, "text-anchor": "middle"});
    empty.textContent = "no batches yet";
    svg.appendChild(empty);
    host.appendChild(svg);
    return;
  }
  const entries = [["p50", summary.p50], ["p90", summary.p90], ["p99", summary.p99]];
  const vmax = Math.max(summary.max || 1, 1) * 1.15;
  const plotW = W - PAD.l - PAD.r, plotH = H - PAD.t - PAD.b;
  const band = plotW / entries.length;
  const barW = Math.min(24, band * 0.5);
  svg.appendChild(el("line", {x1: PAD.l, x2: W - PAD.r, y1: H - PAD.b, y2: H - PAD.b, stroke: cssVar("--baseline"), "stroke-width": 1}));
  const color = cssVar("--series-1");
  entries.forEach(([name, value], i) => {
    const bx = PAD.l + band * i + (band - barW) / 2;
    const bh = Math.max(1, (value / vmax) * plotH);
    const by = H - PAD.b - bh;
    // 4px rounded data-end, square baseline: round the cap via a path
    const r = Math.min(4, barW / 2, bh);
    const d = "M" + bx + " " + (H - PAD.b)
      + "L" + bx + " " + (by + r)
      + "Q" + bx + " " + by + " " + (bx + r) + " " + by
      + "L" + (bx + barW - r) + " " + by
      + "Q" + (bx + barW) + " " + by + " " + (bx + barW) + " " + (by + r)
      + "L" + (bx + barW) + " " + (H - PAD.b) + "Z";
    const bar = el("path", {d, fill: color});
    svg.appendChild(bar);
    const cap = el("text", {x: bx + barW / 2, y: by - 5, "text-anchor": "middle", "class": "direct"});
    cap.textContent = fmt(value, 1);
    svg.appendChild(cap);
    const tick = el("text", {x: bx + barW / 2, y: H - PAD.b + 14, "text-anchor": "middle"});
    tick.textContent = name;
    svg.appendChild(tick);
    // hit target wider than the mark, keyboard-focusable
    const hit = el("rect", {x: PAD.l + band * i, y: PAD.t, width: band, height: plotH + PAD.b, fill: "transparent", "class": "bar", tabindex: 0, role: "img"});
    const describe = (event) => showTooltip(
      event.clientX || (PAD.l + band * i + band / 2), event.clientY || 120,
      "batch occupancy", [{color, value: fmt(value, 2), name: name + " requests/batch"}]);
    hit.addEventListener("pointermove", describe);
    hit.addEventListener("focus", describe);
    hit.addEventListener("pointerleave", hideTooltip);
    hit.addEventListener("blur", hideTooltip);
    svg.appendChild(hit);
  });
  host.appendChild(svg);
}

function fillRow(tbody, cells) {
  const tr = document.createElement("tr");
  cells.forEach((cell, i) => {
    const td = document.createElement("td");
    if (i > 0) td.className = "num";
    td.textContent = cell;
    tr.appendChild(td);
  });
  tbody.appendChild(tr);
}

function aggregateStage(tenants, metric) {
  // Merge per-tenant summaries: counts add; percentiles use the busiest
  // tenant's value (an honest approximation, labeled in the table).
  let count = 0, best = null;
  for (const key in tenants) {
    const s = tenants[key][metric];
    if (!s || !s.count) continue;
    count += s.count;
    if (best === null || s.count > best.count) best = s;
  }
  return best === null ? null : {count, p50: best.p50, p90: best.p90, p99: best.p99};
}

function render(payload) {
  const now = performance.now() / 1000;
  const server = payload.server || {};
  const tenants = payload.tenants || {};

  // hero: measured NTT share vs the paper's number
  const ntt = payload.ntt || {};
  if (ntt.measured_share === null || ntt.measured_share === undefined) {
    setText("ntt-share", "—");
    setText("ntt-note", "enable tracing (serve --trace / REPRO_TRACE) to measure · paper reports 50.04%");
  } else {
    setText("ntt-share", fmt(ntt.measured_share * 100, 1) + "%");
    setText("ntt-note", "paper reports 50.04% of GPU bootstrapping in (i)NTT");
  }

  // KPI tiles
  const requests = server["service.requests"] || 0;
  setText("k-req", compact(requests));
  setText("k-req-sub", "batches: " + compact(server["service.batches"] || 0));
  const err4 = server["service.errors.4xx"] || 0, err5 = server["service.errors.5xx"] || 0;
  setText("k-err", compact(server["service.errors"] || 0));
  setText("k-err-sub", compact(err4) + " × 4xx · " + compact(err5) + " × 5xx");
  setText("k-tenants", fmt(server["service.tenants"] || 0, 0));
  setText("k-backend", "uptime " + fmt(payload.uptime_seconds, 0) + " s");
  const batch = server["service.batch_size"];
  setText("k-batch", batch && batch.count ? fmt(batch.p50, 1) : "—");
  setText("k-batch-sub", batch && batch.count ? "p99: " + fmt(batch.p99, 1) + " · max: " + fmt(batch.max, 0) : "no batches yet");
  let shm = 0, fallback = 0;
  for (const key in tenants) {
    shm += tenants[key]["shm.bytes_in_use"] || 0;
    fallback += tenants[key]["fallback.rows"] || 0;
  }
  setText("k-shm", compact(shm));
  setText("k-fallback", compact(fallback));

  // history sample: completed-request percentiles + per-tenant rates
  const total = aggregateStage(tenants, "service.latency.total_seconds");
  const perTenant = new Map();
  for (const key in tenants) {
    const s = tenants[key]["service.latency.total_seconds"];
    perTenant.set(key, s ? s.count : 0);
  }
  const sample = {t: now, p50: total ? total.p50 * 1e3 : 0, p90: total ? total.p90 * 1e3 : 0,
                  p99: total ? total.p99 * 1e3 : 0, qpsByTenant: new Map()};
  if (prev !== null) {
    const dt = Math.max(now - prev.t, 1e-6);
    sample.qps = Math.max(0, (requests - prev.requests) / dt);
    for (const [key, count] of perTenant) {
      sample.qpsByTenant.set(key, Math.max(0, (count - (prev.perTenant.get(key) || 0)) / dt));
    }
    history.push(sample);
    if (history.length > MAX_POINTS) history.shift();
    setText("k-qps", fmt(sample.qps, 1));
  }
  prev = {t: now, requests, perTenant};

  // latency percentile lines (ordered -> ordinal one-hue ramp)
  const latSeries = [
    {name: "p50", colorVar: ORDINAL[0], points: history.map(h => ({t: h.t, v: h.p50}))},
    {name: "p90", colorVar: ORDINAL[1], points: history.map(h => ({t: h.t, v: h.p90}))},
    {name: "p99", colorVar: ORDINAL[2], points: history.map(h => ({t: h.t, v: h.p99}))},
  ];
  legend("lat-legend", latSeries, false);
  lineChart("lat-chart", latSeries, "ms");

  // per-tenant QPS: fixed first-seen hue assignment; tail folds to "Other"
  for (const key of perTenant.keys()) {
    if (!tenantSlots.has(key) && tenantSlots.size < CATEGORICAL.length) {
      tenantSlots.set(key, tenantSlots.size);
    }
  }
  const qpsSeries = [];
  for (const [key, slot] of tenantSlots) {
    qpsSeries.push({name: key.slice(0, 8), colorVar: CATEGORICAL[slot],
      points: history.map(h => ({t: h.t, v: h.qpsByTenant.get(key) || 0}))});
  }
  const folded = [...perTenant.keys()].filter(k => !tenantSlots.has(k));
  if (folded.length) {
    qpsSeries.push({name: "other (" + folded.length + ")", colorVar: "--text-muted",
      points: history.map(h => ({t: h.t,
        v: folded.reduce((acc, k) => acc + (h.qpsByTenant.get(k) || 0), 0)}))});
  }
  legend("qps-legend", qpsSeries, false);
  lineChart("qps-chart", qpsSeries, "req/s");

  batchChart(batch);

  // tables: the no-hover view of everything charted
  const stageBody = document.querySelector("#stage-table tbody");
  stageBody.textContent = "";
  for (const [label, metric] of STAGES) {
    const s = aggregateStage(tenants, metric);
    fillRow(stageBody, s
      ? [label, fmt(s.count, 0), fmt(s.p50 * 1e3, 2), fmt(s.p90 * 1e3, 2), fmt(s.p99 * 1e3, 2)]
      : [label, "0", "—", "—", "—"]);
  }
  const tenantBody = document.querySelector("#tenant-table tbody");
  tenantBody.textContent = "";
  for (const key in tenants) {
    const s = tenants[key]["service.latency.total_seconds"];
    fillRow(tenantBody, [
      key,
      s ? fmt(s.count, 0) : "0",
      s && s.count ? fmt(s.p50 * 1e3, 2) : "—",
      compact(tenants[key]["fallback.rows"] || 0),
      compact(tenants[key]["shm.bytes_in_use"] || 0),
    ]);
  }
}

async function poll() {
  const status = document.getElementById("status");
  try {
    const response = await fetch("/v1/metrics", {headers: {Accept: "application/json"}});
    if (!response.ok) throw new Error("HTTP " + response.status);
    render(await response.json());
    status.textContent = "live · refreshed " + new Date().toLocaleTimeString();
    status.classList.remove("stale");
    for (const card of document.querySelectorAll(".card")) card.classList.remove("stale-hold");
  } catch (error) {
    // hold the previous render at reduced opacity — no flash, no layout jump
    status.textContent = "stale · " + error.message;
    status.classList.add("stale");
    for (const card of document.querySelectorAll(".card")) card.classList.add("stale-hold");
  }
}

poll();
setInterval(poll, POLL_MS);
</script>
</body>
</html>
"""
