"""Cross-request batching: many in-flight requests, one wide fused plan.

The paper's throughput claim is that an HE workload is ``np x polys``
*independent* NTTs and the hardware wants them as one wide batch.  Inside a
single operation the evaluator already exploits that (every pending
polynomial rides one ``Concat -> ForwardNtt -> SliceRows`` node group); this
module applies the same claim **across requests**: ``k`` concurrent requests
for the same tenant and op chain are lowered into *one* plan whose transform
nodes are ``k`` times wider — stacked along the existing batch axis with the
same IR nodes, executed once on the backend, and sliced back per request.
The group plan is compiled once per ``(ops, k, shape)`` into the tenant
evaluator's plan cache, so steady-state traffic executes straight from the
cache.

Because every node is exact modular arithmetic on independent rows, the
batched plan is **bit-for-bit identical** to per-request execution — width
changes how the work is scheduled, never what is computed (the property the
service tests pin on all three backends).

:class:`CrossRequestBatcher` is the asyncio half: requests submitted within
one batching window (or until ``max_batch``) coalesce per group signature,
the group executes on the server's single HE executor thread, and each
caller's future resolves with its own slice of the result.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor

from ..he.ciphertext import Ciphertext
from ..he.evaluator import _Emitter, _P
from ..rns.poly import Domain
from ..telemetry import TRACER, profile_tag
from ..telemetry.metrics import MetricsRegistry
from .protocol import trace_sizes
from .tenants import Tenant

__all__ = ["execute_group", "group_signature", "CrossRequestBatcher"]


# -- group lowering (synchronous) -----------------------------------------------------


def group_signature(tenant_key: str, ops: tuple[str, ...], cts: list[Ciphertext]) -> tuple:
    """The coalescing key: requests with equal signatures share one plan.

    Captures everything that shapes the group plan — tenant, op chain, and
    per-input structure (component count, domains, prime chain).  Levels
    are deliberately absent: they are metadata carried per request.
    """
    return (
        tenant_key,
        tuple(ops),
        tuple(
            (
                len(ct.polys),
                tuple(poly.domain.value for poly in ct.polys),
                tuple(ct.basis.primes),
            )
            for ct in cts
        ),
    )


def _tensor_ntt(em: _Emitter, a_ntt: list[_P], b_ntt: list[_P]) -> list[_P]:
    """NTT-domain tensor product, left in the NTT domain.

    The evaluator's ``_emit_tensor`` inverse-transforms its products
    immediately; the group lowering defers that so the inverse of *every*
    request rides one wide node instead.
    """
    graph = em.graph
    basis = a_ntt[0].basis
    accumulators: list[int | None] = [None] * (len(a_ntt) + len(b_ntt) - 1)
    for i, poly_a in enumerate(a_ntt):
        for j, poly_b in enumerate(b_ntt):
            term = graph.mul(poly_a.value, poly_b.value)
            k = i + j
            accumulators[k] = (
                term if accumulators[k] is None else graph.add(accumulators[k], term)
            )
    return [_P(value, Domain.NTT, basis) for value in accumulators]


def _emit_group_first(ev, em: _Emitter, op: str, sreq: list[list[list[_P]]]) -> list[list[_P]]:
    """Lower the opening op for every request, sharing the wide transforms."""
    if op in ("add", "sub"):
        return [
            ev._emit_linear(em, inputs[0], inputs[1], subtract=(op == "sub"))
            for inputs in sreq
        ]
    if op == "negate":
        return [ev._emit_negate(em, inputs[0]) for inputs in sreq]
    # multiply / square: one forward batch over every request's operands,
    # per-request NTT-domain tensor products, one inverse batch over every
    # request's products.
    pending = [poly for inputs in sreq for ct in inputs for poly in ct]
    transformed = ev._emit_ntt_batch(em, pending, forward=True)
    products: list[list[_P]] = []
    index = 0
    for inputs in sreq:
        parts = []
        for ct in inputs:
            parts.append(transformed[index : index + len(ct)])
            index += len(ct)
        if op == "square":
            products.append(_tensor_ntt(em, parts[0], parts[0]))
        else:
            if parts[0][0].basis.primes != parts[1][0].basis.primes:
                raise ValueError("ciphertexts are at different levels; mod-switch first")
            products.append(_tensor_ntt(em, parts[0], parts[1]))
    flat = [poly for group in products for poly in group]
    inverted = ev._emit_ntt_batch(em, flat, forward=False)
    out: list[list[_P]] = []
    index = 0
    for group in products:
        out.append(inverted[index : index + len(group)])
        index += len(group)
    return out


def _emit_group_relinearize(
    ev, em: _Emitter, current: list[list[_P]], srk: list[tuple[_P, _P]] | None
) -> list[list[_P]]:
    """Key-switch every request at once: per prime, the ``k`` digit rows and
    the (shared, bound-once) key component go through a single wide forward
    transform; the ``2k`` accumulators come back in a single inverse."""
    graph = em.graph
    size = len(current[0])
    if size == 2:
        return [
            [_P(graph.copy(p.value), p.domain, p.basis) for p in req]
            for req in current
        ]
    if size != 3:
        raise ValueError("relinearisation supports size-3 ciphertexts only")
    basis = current[0][0].basis
    if srk is None or len(srk) != len(basis):
        raise ValueError("relinearisation key was generated for a different basis")
    k = len(current)
    c2s = ev._emit_ntt_batch(em, [req[2] for req in current], forward=False)
    acc0: list[int | None] = [None] * k
    acc1: list[int | None] = [None] * k
    for index, (rk0, rk1) in enumerate(srk):
        digits = [
            _P(graph.digit_broadcast(c2s[r].value, index), Domain.COEFFICIENT, basis)
            for r in range(k)
        ]
        transformed = ev._emit_ntt_batch(em, digits + [rk0, rk1], forward=True)
        rk0_ntt, rk1_ntt = transformed[k], transformed[k + 1]
        for r in range(k):
            term0 = graph.mul(transformed[r].value, rk0_ntt.value)
            term1 = graph.mul(transformed[r].value, rk1_ntt.value)
            acc0[r] = term0 if acc0[r] is None else graph.add(acc0[r], term0)
            acc1[r] = term1 if acc1[r] is None else graph.add(acc1[r], term1)
    sums = ev._emit_ntt_batch(
        em,
        [_P(value, Domain.NTT, basis) for value in acc0 + acc1],
        forward=False,
    )
    return [
        [
            ev._emit_poly_add(em, current[r][0], sums[r]),
            ev._emit_poly_add(em, current[r][1], sums[k + r]),
        ]
        for r in range(k)
    ]


def _emit_group_mod_switch(ev, em: _Emitter, current: list[list[_P]], t: int) -> list[list[_P]]:
    basis = current[0][0].basis
    if len(basis) < 2:
        raise ValueError("cannot modulus-switch below a single prime")
    if basis.primes[-1] % t != 1:
        raise ValueError("modulus switching requires q_last ≡ 1 (mod t)")
    flat = [poly for req in current for poly in req]
    coeffs = ev._emit_ntt_batch(em, flat, forward=False)
    new_basis = basis.drop_last(1)
    switched = [
        _P(em.graph.mod_switch_drop_last(poly.value, t), Domain.COEFFICIENT, new_basis)
        for poly in coeffs
    ]
    size = len(current[0])
    return [switched[r * size : (r + 1) * size] for r in range(len(current))]


def _structure(adopted_request) -> tuple:
    return tuple(
        (tuple(polys[0].basis.primes), tuple(poly.domain for poly in polys))
        for polys in adopted_request
    )


def execute_group(
    tenant: Tenant, ops: tuple[str, ...], requests: list[list[Ciphertext]]
) -> list[Ciphertext]:
    """Run the same op chain for every request as one fused plan.

    Args:
        tenant: The tenant whose evaluator/plan-cache/key material is used.
        ops: The validated op chain (``protocol.validate_request`` output).
        requests: One entry per request — the ciphertext arguments of the
            chain's first op.  All entries must share the same structure
            (the batcher's :func:`group_signature` guarantees it).

    Returns:
        One result ciphertext per request, in submission order, bit-for-bit
        equal to executing the chain per request.
    """
    ev = tenant.evaluator
    k = len(requests)
    if k == 0:
        return []
    ops = tuple(ops)
    adopted = [[ev._adopt_all(ct.polys) for ct in request] for request in requests]
    shape = _structure(adopted[0])
    for request in adopted[1:]:
        if _structure(request) != shape:
            raise ValueError("cannot batch requests with different shapes")
    input_sizes = [len(polys) for polys in adopted[0]]
    sizes = trace_sizes(ops, input_sizes)
    # The key is consumed only when a relinearize actually sees a size-3
    # ciphertext; binding it otherwise would leave dangling plan inputs.
    need_rk = any(
        op == "relinearize" and (sizes[i - 1] if i else None) == 3
        for i, op in enumerate(ops)
    )
    relin = None
    if need_rk:
        components = tenant.context.relinearization_key().components
        relin = [(ev._adopt(rk0), ev._adopt(rk1)) for rk0, rk1 in components]
    t = ev.params.plaintext_modulus
    key = ("service_batch", ops, k, shape)

    def build():
        em = _Emitter()
        sreq = [
            [
                [
                    _P(
                        em.graph.input("r%d_i%d_p%d" % (r, i, j)),
                        poly.domain,
                        poly.basis,
                    )
                    for j, poly in enumerate(polys)
                ]
                for i, polys in enumerate(request)
            ]
            for r, request in enumerate(adopted)
        ]
        srk = None
        if relin is not None:
            srk = [
                (em.bind("rk0_%d" % i, rk0), em.bind("rk1_%d" % i, rk1))
                for i, (rk0, rk1) in enumerate(relin)
            ]
        current = _emit_group_first(ev, em, ops[0], sreq)
        for op in ops[1:]:
            if op == "relinearize":
                current = _emit_group_relinearize(ev, em, current, srk)
            elif op == "mod_switch":
                current = _emit_group_mod_switch(ev, em, current, t)
            else:  # negate
                current = [ev._emit_negate(em, request) for request in current]
        return ev._finish(em, [poly for request in current for poly in request])

    bindings = {}
    for r, request in enumerate(adopted):
        for i, polys in enumerate(request):
            for j, poly in enumerate(polys):
                bindings["r%d_i%d_p%d" % (r, i, j)] = poly.tensor
    constants: list = []
    if relin is not None:
        for i, (rk0, rk1) in enumerate(relin):
            bindings["rk0_%d" % i] = rk0.tensor
            bindings["rk1_%d" % i] = rk1.tensor
            constants += ["rk0_%d" % i, "rk1_%d" % i]

    # The tenant's relinearisation key is stable across flushes, so the
    # optimiser's residency pass keeps its NTT images pooled between batches.
    out = ev._run_plan(key, build, bindings, constants=tuple(constants))
    out_size = sizes[-1]
    level_bump = sum(1 for op in ops if op == "mod_switch")
    return [
        Ciphertext(
            polys=out[r * out_size : (r + 1) * out_size],
            params=ev.params,
            level=requests[r][0].level + level_bump,
        )
        for r in range(k)
    ]


# -- asyncio coalescing ---------------------------------------------------------------


class _Item:
    """One rider of a batch: its inputs, its future, and its identity.

    ``request_id``/``root_sid`` carry the serving layer's observability
    context into the flush: the batch span is parented under the first
    rider's root and attributes itself to every rider's request id, and each
    rider's window wait is measured from its own ``submitted`` stamp.
    """

    __slots__ = ("cts", "future", "request_id", "root_sid", "submitted")

    def __init__(
        self,
        cts: "list[Ciphertext]",
        future: asyncio.Future,
        request_id: str | None,
        root_sid: str | None,
    ) -> None:
        self.cts = cts
        self.future = future
        self.request_id = request_id
        self.root_sid = root_sid
        self.submitted = time.perf_counter()


class _Group:
    __slots__ = ("tenant", "ops", "items", "timer", "flushed")

    def __init__(self, tenant: Tenant, ops: tuple[str, ...]) -> None:
        self.tenant = tenant
        self.ops = ops
        self.items: list[_Item] = []
        self.timer: asyncio.Task | None = None
        self.flushed = False


class CrossRequestBatcher:
    """Coalesce concurrent compute requests into :func:`execute_group` calls.

    The first request of a group signature opens a batching window of
    ``window_s`` seconds; requests with the same signature arriving within
    it join the group.  The group flushes when the window elapses or
    ``max_batch`` requests have joined, whichever is first.  With
    ``max_batch=1`` every request executes alone — the serial baseline the
    service benchmark compares against.

    Args:
        executor: The (single-thread) executor all HE work runs on.
        metrics: Registry receiving ``service.batches`` /
            ``service.batched_requests`` and the ``service.batch_size``
            histogram (the server passes its root).
        window_s: Batching window in seconds.
        max_batch: Flush-now threshold; also the width cap of group plans.
    """

    def __init__(
        self,
        executor: Executor,
        metrics: MetricsRegistry | None = None,
        window_s: float = 0.005,
        max_batch: int = 8,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._executor = executor
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics.declare("service.batches", "service.batched_requests")
        self.window_s = window_s
        self.max_batch = max_batch
        self._pending: dict[tuple, _Group] = {}

    async def submit(
        self,
        tenant: Tenant,
        ops: tuple[str, ...],
        cts: list[Ciphertext],
        request_id: str | None = None,
        root_sid: str | None = None,
    ) -> tuple[Ciphertext, int]:
        """Queue one request; resolves to ``(result, batch size it rode in)``.

        ``request_id``/``root_sid`` (the server's correlation id and open
        ``service.request`` span) attribute the shared batch span to every
        rider and parent it under the first rider's request tree.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        item = _Item(cts, future, request_id, root_sid)
        if self.max_batch == 1:
            group = _Group(tenant, ops)
            group.items.append(item)
            self._launch_flush(None, group, loop)
            return await future
        signature = group_signature(tenant.key, ops, cts)
        group = self._pending.get(signature)
        if group is None:
            group = _Group(tenant, ops)
            self._pending[signature] = group
            group.timer = loop.create_task(self._timed_flush(signature, group))
        group.items.append(item)
        if len(group.items) >= self.max_batch:
            self._launch_flush(signature, group, loop)
        return await future

    async def _timed_flush(self, signature: tuple, group: _Group) -> None:
        try:
            await asyncio.sleep(self.window_s)
        except asyncio.CancelledError:
            return
        if not group.flushed:
            self._launch_flush(signature, group, asyncio.get_running_loop())

    def _launch_flush(
        self, signature: tuple | None, group: _Group, loop: asyncio.AbstractEventLoop
    ) -> None:
        group.flushed = True
        if signature is not None and self._pending.get(signature) is group:
            del self._pending[signature]
        if group.timer is not None and group.timer is not asyncio.current_task():
            group.timer.cancel()
        loop.create_task(self._flush(group, loop))

    async def _flush(self, group: _Group, loop: asyncio.AbstractEventLoop) -> None:
        items = group.items
        requests = [item.cts for item in items]
        size = len(items)
        flush_started = time.perf_counter()
        registry = group.tenant.registry
        for item in items:
            registry.observe(
                "service.latency.batch_wait_seconds",
                flush_started - item.submitted,
            )
        # One batch span shared by every rider: parented under the *first*
        # rider's request root, attributed to all of them via request_ids
        # (spantree.request_tree grafts it into the other riders' trees).
        first_root = next(
            (item.root_sid for item in items if item.root_sid is not None), None
        )
        rider_ids = tuple(
            item.request_id for item in items if item.request_id is not None
        )

        def run():
            with profile_tag("tenant:%s" % group.tenant.key):
                with TRACER.span_under(
                    first_root,
                    "service.batch",
                    tenant=group.tenant.key,
                    size=size,
                    ops="+".join(group.ops),
                    request_ids=rider_ids,
                ):
                    return execute_group(group.tenant, group.ops, requests)

        try:
            results = await loop.run_in_executor(self._executor, run)
        except Exception as exc:
            for item in items:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        registry.observe(
            "service.latency.execute_seconds", time.perf_counter() - flush_started
        )
        self._metrics.inc("service.batches")
        self._metrics.inc("service.batched_requests", size)
        self._metrics.observe("service.batch_size", size)
        for item, result in zip(items, results):
            if not item.future.done():
                item.future.set_result((result, size))
