"""Twiddle-factor tables with Shoup companions and size accounting.

Section IV of the paper identifies the twiddle ("precomputed") table as the
key difference between NTT and DFT on GPUs:

* a DFT batch of any size shares one table of ``N`` complex roots;
* an NTT batch over ``np`` RNS primes needs a *separate* table per prime
  because the primitive root of unity differs per modulus, and
* Shoup's modular multiplication doubles each table by storing the companion
  word ``w_bar = floor(w * beta / p)`` next to every twiddle factor.

A :class:`TwiddleTable` holds, for a single ``(n, p)`` pair, the forward and
inverse twiddle factors in the bit-reversed layout Algorithm 1 consumes,
their Shoup companions, and reports its memory footprint — the quantity that
drives the DRAM-traffic analysis reproduced in Figures 8 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..modarith.modops import inv_mod
from ..modarith.reducers import ShoupModMul
from ..modarith.roots import primitive_root_of_unity
from ..modarith.word import WORD64, WordSpec
from ..transforms.bitrev import is_power_of_two, log2_exact
from ..transforms.cooley_tukey import forward_twiddle_table

__all__ = ["TwiddleTable", "stage_table_entries", "stage_input_entries"]


def stage_table_entries(stage: int) -> int:
    """Distinct twiddle factors consumed by radix-2 stage ``stage`` (1-based).

    Stage ``s`` of Algorithm 1 has ``m = 2^(s-1)`` butterfly groups and uses
    one twiddle per group, so the count doubles every stage — the geometric
    growth plotted in Figure 8.
    """
    if stage < 1:
        raise ValueError("stages are numbered from 1")
    return 1 << (stage - 1)


def stage_input_entries(n: int) -> int:
    """Input elements touched by any radix-2 stage (always ``n``)."""
    if not is_power_of_two(n):
        raise ValueError("n must be a power of two")
    return n


@dataclass
class TwiddleTable:
    """Precomputed twiddle factors for one transform size and one prime.

    Attributes:
        n: Transform length.
        p: Prime modulus (``p ≡ 1 mod 2n``).
        psi: The primitive ``2n``-th root of unity the table is built from.
        word: Machine word used for storage (64-bit by default).
        forward: Bit-reversed powers of ``psi`` (Algorithm 1 layout).
        forward_shoup: Shoup companions of :attr:`forward`.
        inverse: Bit-reversed powers of ``psi^{-1}``.
        inverse_shoup: Shoup companions of :attr:`inverse`.
    """

    n: int
    p: int
    psi: int
    word: WordSpec = WORD64

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise ValueError("n must be a power of two")
        if (self.p - 1) % (2 * self.n) != 0:
            raise ValueError("p must satisfy p ≡ 1 (mod 2n)")
        reducer = ShoupModMul(self.p, self.word)
        self.forward = forward_twiddle_table(self.n, self.psi, self.p)
        self.inverse = forward_twiddle_table(self.n, inv_mod(self.psi, self.p), self.p)
        self.forward_shoup = [reducer.precompute(w)[0] for w in self.forward]
        self.inverse_shoup = [reducer.precompute(w)[0] for w in self.inverse]
        self._reducer = reducer

    # -- constructors ---------------------------------------------------------
    @classmethod
    def build(cls, n: int, p: int, psi: int | None = None, word: WordSpec = WORD64) -> "TwiddleTable":
        """Build a table, deriving a primitive root when ``psi`` is omitted."""
        if psi is None:
            psi = primitive_root_of_unity(2 * n, p)
        return cls(n=n, p=p, psi=psi, word=word)

    # -- access ---------------------------------------------------------------
    @property
    def reducer(self) -> ShoupModMul:
        """The Shoup reducer matching this table's modulus and word size."""
        return self._reducer

    def forward_entry(self, index: int) -> tuple[int, int]:
        """Return ``(twiddle, shoup_companion)`` for forward table ``index``."""
        return self.forward[index], self.forward_shoup[index]

    def inverse_entry(self, index: int) -> tuple[int, int]:
        """Return ``(twiddle, shoup_companion)`` for inverse table ``index``."""
        return self.inverse[index], self.inverse_shoup[index]

    # -- size accounting --------------------------------------------------------
    @property
    def entries(self) -> int:
        """Twiddle factors stored for one direction (``n``)."""
        return self.n

    @property
    def words_per_entry(self) -> int:
        """Machine words stored per twiddle factor (2 with Shoup companions)."""
        return 2

    def bytes_per_direction(self, with_shoup: bool = True) -> int:
        """Bytes of one direction's table (forward *or* inverse)."""
        words = self.words_per_entry if with_shoup else 1
        return self.n * words * (self.word.bits // 8)

    def total_bytes(self, with_shoup: bool = True, directions: int = 2) -> int:
        """Bytes of the resident table (both directions by default)."""
        return directions * self.bytes_per_direction(with_shoup)

    def stage_bytes(self, stage: int, with_shoup: bool = True) -> int:
        """Bytes of twiddle data consumed by radix-2 stage ``stage``."""
        words = self.words_per_entry if with_shoup else 1
        return stage_table_entries(stage) * words * (self.word.bits // 8)

    @property
    def stages(self) -> int:
        """Number of radix-2 stages (``log2 n``)."""
        return log2_exact(self.n)
