"""JSON (de)serialisation of plans, twiddle tables, RNS polynomials and ciphertexts.

An HE service typically generates its NTT parameters once (primes, roots,
twiddle tables, tuned execution plans) and ships them to workers — and then
ships ciphertexts and plaintext polynomials between services for the life of
the deployment; this module provides a stable, dependency-free JSON
representation for all of those artefacts.

Integers are stored as hexadecimal strings because 60-bit values are outside
the exact range of JSON numbers in many consumers; everything is validated on
load (primes must still be NTT primes for the stored size, stored roots must
still generate the stored tables).

Residue data crosses the resident-tensor boundary exactly once per
direction: :func:`rns_polynomial_to_dict` materialises through the explicit
:meth:`~repro.rns.poly.RnsPolynomial.to_coeff_lists` boundary, and
:func:`rns_polynomial_from_dict` re-enters backend-native storage through
:meth:`~repro.rns.poly.RnsPolynomial.from_residue_rows`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..modarith.primes import is_ntt_prime
from ..rns.basis import RnsBasis
from ..rns.poly import Domain, RnsPolynomial
from .on_the_fly import OnTheFlyConfig
from .plan import NTTAlgorithm, NTTPlan
from .twiddle import TwiddleTable

__all__ = [
    "FORMAT_VERSION",
    "plan_to_dict",
    "plan_from_dict",
    "twiddle_table_to_dict",
    "twiddle_table_from_dict",
    "rns_polynomial_to_dict",
    "rns_polynomial_from_dict",
    "ciphertext_to_dict",
    "ciphertext_from_dict",
    "save_json",
    "load_json",
]


#: Version of the on-the-wire dictionary format this module emits.  Every
#: ``*_to_dict`` payload carries it as ``format_version`` and every
#: ``*_from_dict`` refuses versions it does not understand — so a fleet
#: mixing old and new services fails loudly at the boundary instead of deep
#: inside reconstruction.  Payloads written before the field existed are
#: accepted as version 1 (the format is unchanged; the field is new).
FORMAT_VERSION = 1


def _require(payload: dict[str, Any], kind: str, description: str) -> None:
    """Validate the ``kind`` tag and ``format_version`` of a payload."""
    if payload.get("kind") != kind:
        raise ValueError("payload is not a serialised %s" % description)
    version = payload.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(
            "unsupported %s format_version %r (this build reads version %d)"
            % (description, version, FORMAT_VERSION)
        )


# -- plans -----------------------------------------------------------------------------


def plan_to_dict(plan: NTTPlan) -> dict[str, Any]:
    """Convert an :class:`NTTPlan` into a JSON-serialisable dictionary."""
    payload: dict[str, Any] = {
        "kind": "ntt_plan",
        "format_version": FORMAT_VERSION,
        "n": plan.n,
        "algorithm": plan.algorithm.value,
        "radix": plan.radix,
        "kernel1_size": plan.kernel1_size,
        "kernel2_size": plan.kernel2_size,
        "per_thread_points": plan.per_thread_points,
        "coalesced": plan.coalesced,
        "preload_twiddles": plan.preload_twiddles,
        "word_size_bits": plan.word_size_bits,
        "ot": None,
    }
    if plan.ot is not None:
        payload["ot"] = {"base": plan.ot.base, "ot_stages": plan.ot.ot_stages}
    return payload


def plan_from_dict(payload: dict[str, Any]) -> NTTPlan:
    """Reconstruct an :class:`NTTPlan` from :func:`plan_to_dict` output."""
    _require(payload, "ntt_plan", "NTT plan")
    ot_payload = payload.get("ot")
    ot = (
        OnTheFlyConfig(base=ot_payload["base"], ot_stages=ot_payload["ot_stages"])
        if ot_payload
        else None
    )
    return NTTPlan(
        n=payload["n"],
        algorithm=NTTAlgorithm(payload["algorithm"]),
        radix=payload["radix"],
        kernel1_size=payload["kernel1_size"],
        kernel2_size=payload["kernel2_size"],
        per_thread_points=payload["per_thread_points"],
        coalesced=payload["coalesced"],
        preload_twiddles=payload["preload_twiddles"],
        ot=ot,
        word_size_bits=payload["word_size_bits"],
    )


# -- twiddle tables -------------------------------------------------------------------------


def twiddle_table_to_dict(table: TwiddleTable) -> dict[str, Any]:
    """Convert a :class:`TwiddleTable` into a JSON-serialisable dictionary.

    Only the defining quantities (``n``, ``p``, ``psi``) and the forward table
    are stored; the inverse table and Shoup companions are recomputed on load,
    which keeps the payload small and guarantees internal consistency.
    """
    return {
        "kind": "twiddle_table",
        "format_version": FORMAT_VERSION,
        "n": table.n,
        "p": hex(table.p),
        "psi": hex(table.psi),
        "word_bits": table.word.bits,
        "forward": [hex(value) for value in table.forward],
    }


def twiddle_table_from_dict(payload: dict[str, Any]) -> TwiddleTable:
    """Reconstruct (and validate) a :class:`TwiddleTable` from its dictionary form."""
    _require(payload, "twiddle_table", "twiddle table")
    n = payload["n"]
    p = int(payload["p"], 16)
    psi = int(payload["psi"], 16)
    if not is_ntt_prime(p, n):
        raise ValueError("stored modulus is not an NTT prime for the stored size")
    table = TwiddleTable.build(n=n, p=p, psi=psi)
    stored_forward = [int(value, 16) for value in payload["forward"]]
    if stored_forward != table.forward:
        raise ValueError("stored twiddle table does not match its stored root of unity")
    return table


# -- RNS polynomials ------------------------------------------------------------------------


def rns_polynomial_to_dict(poly: RnsPolynomial) -> dict[str, Any]:
    """Convert an :class:`RnsPolynomial` into a JSON-serialisable dictionary.

    The residue matrix leaves backend-native storage through the polynomial's
    explicit ``to_coeff_lists()`` boundary; the domain tag travels with it so
    NTT-form polynomials round-trip without a transform.
    """
    return {
        "kind": "rns_polynomial",
        "format_version": FORMAT_VERSION,
        "n": poly.n,
        "domain": poly.domain.value,
        "primes": [hex(p) for p in poly.basis.primes],
        "rows": [[hex(value) for value in row] for row in poly.to_coeff_lists()],
    }


def rns_polynomial_from_dict(
    payload: dict[str, Any], backend: Any = None
) -> RnsPolynomial:
    """Reconstruct (and validate) an :class:`RnsPolynomial` from its dictionary form.

    Args:
        payload: Output of :func:`rns_polynomial_to_dict`.
        backend: Backend instance or registry name the rebuilt polynomial is
            made resident on (registry default when omitted).
    """
    _require(payload, "rns_polynomial", "RNS polynomial")
    n = payload["n"]
    primes = [int(value, 16) for value in payload["primes"]]
    basis = RnsBasis.from_primes(primes, n)
    rows = [[int(value, 16) for value in row] for row in payload["rows"]]
    return RnsPolynomial.from_residue_rows(
        rows, basis, domain=Domain(payload["domain"]), n=n, backend=backend
    )


# -- ciphertexts -----------------------------------------------------------------------------


def ciphertext_to_dict(ciphertext: Any) -> dict[str, Any]:
    """Convert a :class:`repro.he.ciphertext.Ciphertext` to a dictionary.

    The scheme parameters are embedded so a worker can rebuild the ciphertext
    with nothing but this payload (the polynomials carry their own — possibly
    modulus-switched — prime chain).
    """
    params = ciphertext.params
    return {
        "kind": "ciphertext",
        "format_version": FORMAT_VERSION,
        "level": ciphertext.level,
        "params": {
            "n": params.n,
            "plaintext_modulus": params.plaintext_modulus,
            "prime_bits": params.prime_bits,
            "prime_count": params.prime_count,
            "error_std": params.error_std,
            "name": params.name,
        },
        "polys": [rns_polynomial_to_dict(poly) for poly in ciphertext.polys],
    }


def ciphertext_from_dict(payload: dict[str, Any], backend: Any = None):
    """Reconstruct a :class:`repro.he.ciphertext.Ciphertext` from its dictionary form.

    Args:
        payload: Output of :func:`ciphertext_to_dict`.
        backend: Backend for the rebuilt polynomials (registry default when
            omitted).
    """
    # Imported lazily: repro.he pulls in repro.core for its bootstrap model,
    # so a module-level import here would be circular.
    from ..he.ciphertext import Ciphertext
    from ..he.params import HEParams

    _require(payload, "ciphertext", "ciphertext")
    params = HEParams(**payload["params"])
    polys = [
        rns_polynomial_from_dict(poly_payload, backend=backend)
        for poly_payload in payload["polys"]
    ]
    return Ciphertext(polys=polys, params=params, level=payload["level"])


# -- files -------------------------------------------------------------------------------------


def save_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Write a serialised artefact to ``path`` (pretty-printed JSON)."""
    destination = Path(path)
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return destination


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialised artefact from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
