"""JSON (de)serialisation of plans, OT configurations and twiddle tables.

An HE service typically generates its NTT parameters once (primes, roots,
twiddle tables, tuned execution plans) and ships them to workers; this module
provides a stable, dependency-free JSON representation for those artefacts.

Twiddle tables are stored as hexadecimal strings because 60-bit integers are
outside the exact range of JSON numbers in many consumers; everything is
validated on load (the prime must still be an NTT prime for the stored size,
and the stored root must still generate the stored table).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..modarith.primes import is_ntt_prime
from .on_the_fly import OnTheFlyConfig
from .plan import NTTAlgorithm, NTTPlan
from .twiddle import TwiddleTable

__all__ = [
    "plan_to_dict",
    "plan_from_dict",
    "twiddle_table_to_dict",
    "twiddle_table_from_dict",
    "save_json",
    "load_json",
]


# -- plans -----------------------------------------------------------------------------


def plan_to_dict(plan: NTTPlan) -> dict[str, Any]:
    """Convert an :class:`NTTPlan` into a JSON-serialisable dictionary."""
    payload: dict[str, Any] = {
        "kind": "ntt_plan",
        "n": plan.n,
        "algorithm": plan.algorithm.value,
        "radix": plan.radix,
        "kernel1_size": plan.kernel1_size,
        "kernel2_size": plan.kernel2_size,
        "per_thread_points": plan.per_thread_points,
        "coalesced": plan.coalesced,
        "preload_twiddles": plan.preload_twiddles,
        "word_size_bits": plan.word_size_bits,
        "ot": None,
    }
    if plan.ot is not None:
        payload["ot"] = {"base": plan.ot.base, "ot_stages": plan.ot.ot_stages}
    return payload


def plan_from_dict(payload: dict[str, Any]) -> NTTPlan:
    """Reconstruct an :class:`NTTPlan` from :func:`plan_to_dict` output."""
    if payload.get("kind") != "ntt_plan":
        raise ValueError("payload is not a serialised NTT plan")
    ot_payload = payload.get("ot")
    ot = (
        OnTheFlyConfig(base=ot_payload["base"], ot_stages=ot_payload["ot_stages"])
        if ot_payload
        else None
    )
    return NTTPlan(
        n=payload["n"],
        algorithm=NTTAlgorithm(payload["algorithm"]),
        radix=payload["radix"],
        kernel1_size=payload["kernel1_size"],
        kernel2_size=payload["kernel2_size"],
        per_thread_points=payload["per_thread_points"],
        coalesced=payload["coalesced"],
        preload_twiddles=payload["preload_twiddles"],
        ot=ot,
        word_size_bits=payload["word_size_bits"],
    )


# -- twiddle tables -------------------------------------------------------------------------


def twiddle_table_to_dict(table: TwiddleTable) -> dict[str, Any]:
    """Convert a :class:`TwiddleTable` into a JSON-serialisable dictionary.

    Only the defining quantities (``n``, ``p``, ``psi``) and the forward table
    are stored; the inverse table and Shoup companions are recomputed on load,
    which keeps the payload small and guarantees internal consistency.
    """
    return {
        "kind": "twiddle_table",
        "n": table.n,
        "p": hex(table.p),
        "psi": hex(table.psi),
        "word_bits": table.word.bits,
        "forward": [hex(value) for value in table.forward],
    }


def twiddle_table_from_dict(payload: dict[str, Any]) -> TwiddleTable:
    """Reconstruct (and validate) a :class:`TwiddleTable` from its dictionary form."""
    if payload.get("kind") != "twiddle_table":
        raise ValueError("payload is not a serialised twiddle table")
    n = payload["n"]
    p = int(payload["p"], 16)
    psi = int(payload["psi"], 16)
    if not is_ntt_prime(p, n):
        raise ValueError("stored modulus is not an NTT prime for the stored size")
    table = TwiddleTable.build(n=n, p=p, psi=psi)
    stored_forward = [int(value, 16) for value in payload["forward"]]
    if stored_forward != table.forward:
        raise ValueError("stored twiddle table does not match its stored root of unity")
    return table


# -- files -------------------------------------------------------------------------------------


def save_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Write a serialised artefact to ``path`` (pretty-printed JSON)."""
    destination = Path(path)
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return destination


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialised artefact from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
