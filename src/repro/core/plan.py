"""Execution plans for the NTT engine.

A plan captures *how* an N-point NTT is executed on the modelled GPU — the
design-space axes explored in Sections V-VII of the paper:

* ``RADIX2`` — the baseline: one kernel launch per radix-2 stage
  (``log2 N`` passes over main memory).
* ``HIGH_RADIX`` — register-based radix-``R`` execution: each thread holds
  ``R`` points in registers, so the data makes ``ceil(log2 N / log2 R)``
  round trips to main memory, at the price of ``O(R)`` registers per thread.
* ``SMEM`` — the two-kernel shared-memory decomposition: Kernel-1 performs a
  radix-``N1`` NTT and Kernel-2 a radix-``N2`` NTT with ``N = N1 * N2``,
  each kernel staging data through shared memory with small per-thread NTTs
  between block-level synchronisations.  Optional knobs: coalesced loads in
  Kernel-1 (thread-block merging, Figure 6/7), preloading each block's
  twiddles into shared memory (Figure 9), and the per-thread NTT size
  (Figure 10/11).

Any plan can additionally enable on-the-fly twiddling for the last one or two
stages (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..transforms.bitrev import is_power_of_two, log2_exact
from .on_the_fly import OnTheFlyConfig

__all__ = ["NTTAlgorithm", "NTTPlan", "default_smem_split", "best_smem_plan"]


class NTTAlgorithm(str, Enum):
    """Top-level execution strategy."""

    RADIX2 = "radix2"
    HIGH_RADIX = "high_radix"
    SMEM = "smem"


@dataclass(frozen=True)
class NTTPlan:
    """A fully specified execution strategy for one transform size.

    Attributes:
        n: Transform length (power of two).
        algorithm: Which execution strategy to use.
        radix: Per-thread register radix for ``HIGH_RADIX`` plans.
        kernel1_size: Radix of Kernel-1 for ``SMEM`` plans (``N1``).
        kernel2_size: Radix of Kernel-2 for ``SMEM`` plans (``N2``).
        per_thread_points: Size of the per-thread NTT between block-level
            synchronisations inside an SMEM kernel (2, 4 or 8 in the paper).
        coalesced: Whether Kernel-1 merges thread blocks to coalesce its
            strided global-memory accesses (Figure 6).
        preload_twiddles: Whether Kernel-1 stages its twiddles through shared
            memory before computing (Figure 9).
        ot: On-the-fly twiddling configuration, or ``None`` to precompute the
            full table.
        word_size_bits: Machine word (32 or 64); the paper uses 64.
    """

    n: int
    algorithm: NTTAlgorithm = NTTAlgorithm.SMEM
    radix: int = 16
    kernel1_size: int | None = None
    kernel2_size: int | None = None
    per_thread_points: int = 8
    coalesced: bool = True
    preload_twiddles: bool = True
    ot: OnTheFlyConfig | None = None
    word_size_bits: int = 64

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise ValueError("n must be a power of two")
        if self.word_size_bits not in (32, 64):
            raise ValueError("word_size_bits must be 32 or 64")
        if self.algorithm is NTTAlgorithm.HIGH_RADIX:
            if not is_power_of_two(self.radix) or not 2 <= self.radix <= self.n:
                raise ValueError("radix must be a power of two in [2, n]")
        if self.algorithm is NTTAlgorithm.SMEM:
            k1, k2 = self.smem_split
            if k1 * k2 != self.n:
                raise ValueError(
                    "kernel sizes %d x %d do not multiply to n=%d" % (k1, k2, self.n)
                )
            if not (is_power_of_two(k1) and is_power_of_two(k2)):
                raise ValueError("kernel sizes must be powers of two")
            if self.per_thread_points not in (2, 4, 8, 16):
                raise ValueError("per_thread_points must be one of 2, 4, 8, 16")

    # -- derived structure -------------------------------------------------------
    @property
    def smem_split(self) -> tuple[int, int]:
        """The ``(N1, N2)`` kernel split for SMEM plans (derived when unspecified)."""
        if self.kernel1_size is not None and self.kernel2_size is not None:
            return self.kernel1_size, self.kernel2_size
        return default_smem_split(self.n)

    @property
    def stage_groups(self) -> list[int]:
        """Radix-2 stages executed per main-memory pass, in order.

        This is the quantity every cost estimate keys off: the data set is
        read and written once per group.
        """
        total = log2_exact(self.n)
        if self.algorithm is NTTAlgorithm.RADIX2:
            return [1] * total
        if self.algorithm is NTTAlgorithm.HIGH_RADIX:
            per_pass = log2_exact(self.radix)
            groups = [per_pass] * (total // per_pass)
            if total % per_pass:
                groups.append(total % per_pass)
            return groups
        k1, k2 = self.smem_split
        return [log2_exact(k1), log2_exact(k2)]

    @property
    def passes(self) -> int:
        """Number of round trips the coefficient data makes to main memory."""
        return len(self.stage_groups)

    @property
    def label(self) -> str:
        """Human-readable configuration label used by the experiment reports."""
        if self.algorithm is NTTAlgorithm.RADIX2:
            name = "radix-2"
        elif self.algorithm is NTTAlgorithm.HIGH_RADIX:
            name = "radix-%d" % self.radix
        else:
            k1, k2 = self.smem_split
            name = "smem %dx%d (%d-pt/thread)" % (k1, k2, self.per_thread_points)
        if self.ot is not None and self.ot.ot_stages > 0:
            name += " +OT(last %d)" % self.ot.ot_stages
        return name


def default_smem_split(n: int) -> tuple[int, int]:
    """The paper's default Kernel-1/Kernel-2 split.

    Both kernel radices must be at least 64 and at most 2^11 (the largest
    radix that fits shared memory without occupancy collapse, Section VI-C).
    We split the stages as evenly as possible, giving the larger half to
    Kernel-2 — e.g. ``2^17 -> 256 x 512``.
    """
    total = log2_exact(n)
    if n < 64 * 64:
        # Small transforms: a single SMEM kernel suffices; model it as one pass.
        half = total // 2
        return 1 << half, 1 << (total - half)
    k1_bits = total // 2
    k2_bits = total - k1_bits
    return 1 << k1_bits, 1 << k2_bits


def best_smem_plan(n: int, ot_stages: int = 1, base: int = 1024) -> NTTPlan:
    """Convenience constructor for the paper's best configuration.

    8-point per-thread NTT, coalesced Kernel-1, twiddle preload, and
    on-the-fly twiddling on the last ``ot_stages`` stages (1 by default, the
    configuration Table II reports as "SMEM w/ OT").
    """
    ot = OnTheFlyConfig(base=base, ot_stages=ot_stages) if ot_stages > 0 else None
    return NTTPlan(n=n, algorithm=NTTAlgorithm.SMEM, per_thread_points=8, ot=ot)
