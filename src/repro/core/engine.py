"""The planned NTT engine — the library's primary public API.

:class:`NTTEngine` executes forward/inverse negacyclic NTTs for a single
``(n, p)`` pair under an :class:`repro.core.plan.NTTPlan`, combining

* the precomputed twiddle table (:class:`repro.core.twiddle.TwiddleTable`),
* optional on-the-fly twiddling for the last stages
  (:class:`repro.core.on_the_fly.OnTheFlyTwiddleGenerator`), and
* the pass structure implied by the plan (radix-2 / high-radix / SMEM split),

and reports what it did in an :class:`ExecutionReport`: butterflies executed,
twiddle factors fetched from the resident table versus regenerated, how many
main-memory passes the data made, and how many bytes of twiddle table are
resident.  The functional results are bit-exact regardless of the plan — the
plan only changes the execution structure — which the test suite verifies by
comparing every plan against the reference radix-2 transform.

Timing estimates are *not* produced here; they are the job of the GPU cost
model (:mod:`repro.gpu`) driven by the kernel descriptions in
:mod:`repro.kernels`, which consume the same plan objects.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..modarith.modops import add_mod, inv_mod, mul_mod, sub_mod
from ..modarith.roots import primitive_root_of_unity
from ..modarith.word import WORD32, WORD64, WordSpec
from ..transforms.bitrev import log2_exact
from .on_the_fly import OnTheFlyTwiddleGenerator
from .plan import NTTAlgorithm, NTTPlan
from .twiddle import TwiddleTable

__all__ = ["ExecutionReport", "NTTEngine"]


@dataclass
class ExecutionReport:
    """What one transform execution did, in hardware-relevant units.

    Attributes:
        n: Transform length.
        passes: Main-memory round trips made by the coefficient data.
        butterflies: Radix-2 butterflies executed.
        table_fetches: Twiddle factors read from the resident precomputed table.
        regenerated: Twiddle factors produced on the fly (OT).
        regeneration_muls: Extra modular multiplications spent regenerating them.
        resident_table_entries: Twiddle factors held in memory for this direction.
        resident_table_bytes: Bytes those entries occupy (with Shoup companions).
    """

    n: int
    passes: int
    butterflies: int = 0
    table_fetches: int = 0
    regenerated: int = 0
    regeneration_muls: int = 0
    resident_table_entries: int = 0
    resident_table_bytes: int = 0

    @property
    def total_twiddle_uses(self) -> int:
        """Twiddle factors consumed, from any source."""
        return self.table_fetches + self.regenerated


class NTTEngine:
    """Forward/inverse negacyclic NTT for one modulus under a configurable plan.

    Args:
        n: Transform length (power of two).
        p: Prime modulus, ``p ≡ 1 (mod 2n)``.
        plan: Execution plan; defaults to the paper's best SMEM configuration
            without OT.
        psi: Primitive ``2n``-th root of unity; derived when omitted.
    """

    def __init__(
        self,
        n: int,
        p: int,
        plan: NTTPlan | None = None,
        psi: int | None = None,
    ) -> None:
        self.plan = plan if plan is not None else NTTPlan(n=n)
        if self.plan.n != n:
            raise ValueError("plan is for n=%d but engine was given n=%d" % (self.plan.n, n))
        self.n = n
        self.p = p
        self.word: WordSpec = WORD64 if self.plan.word_size_bits == 64 else WORD32
        self.psi = psi if psi is not None else primitive_root_of_unity(2 * n, p)
        self.table = TwiddleTable(n=n, p=p, psi=self.psi, word=self.word)
        self._log_n = log2_exact(n)
        if self.plan.ot is not None and self.plan.ot.ot_stages > 0:
            self._ot_forward = OnTheFlyTwiddleGenerator(
                n, p, self.psi, self.plan.ot, inverse=False, word=self.word
            )
            self._ot_inverse = OnTheFlyTwiddleGenerator(
                n, p, self.psi, self.plan.ot, inverse=True, word=self.word
            )
            self._ot_threshold = n >> min(self.plan.ot.ot_stages, self._log_n)
        else:
            self._ot_forward = None
            self._ot_inverse = None
            self._ot_threshold = n  # nothing covered

    # -- resident-table accounting -------------------------------------------------
    def resident_table_entries(self) -> int:
        """Twiddle factors stored in memory for one direction under this plan."""
        if self._ot_forward is None:
            return self.n
        # Uncovered stages keep their slice of the full table; covered stages
        # are served by the factored OT tables.
        uncovered = self._ot_threshold
        return uncovered + self._ot_forward.stored_entries

    def resident_table_bytes(self) -> int:
        """Bytes of resident twiddle data for one direction (with Shoup companions)."""
        return self.resident_table_entries() * 2 * (self.word.bits // 8)

    # -- execution --------------------------------------------------------------------
    def forward(self, values: Sequence[int]) -> list[int]:
        """Forward negacyclic NTT (bit-reversed output)."""
        result, _ = self.forward_with_report(values)
        return result

    def inverse(self, values: Sequence[int]) -> list[int]:
        """Inverse negacyclic NTT (bit-reversed input, natural output)."""
        result, _ = self.inverse_with_report(values)
        return result

    def forward_with_report(self, values: Sequence[int]) -> tuple[list[int], ExecutionReport]:
        """Forward NTT returning both the result and an :class:`ExecutionReport`."""
        a = self._validated_copy(values)
        report = self._new_report()
        self._run_forward(a, report)
        return a, report

    def inverse_with_report(self, values: Sequence[int]) -> tuple[list[int], ExecutionReport]:
        """Inverse NTT returning both the result and an :class:`ExecutionReport`."""
        a = self._validated_copy(values)
        report = self._new_report()
        self._run_inverse(a, report)
        return a, report

    def multiply(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Negacyclic polynomial product ``a * b mod (X^n + 1, p)`` via this engine."""
        fa = self.forward(a)
        fb = self.forward(b)
        pointwise = [mul_mod(x, y, self.p) for x, y in zip(fa, fb)]
        return self.inverse(pointwise)

    # -- internals ----------------------------------------------------------------------
    def _validated_copy(self, values: Sequence[int]) -> list[int]:
        if len(values) != self.n:
            raise ValueError("expected %d coefficients, got %d" % (self.n, len(values)))
        return [v % self.p for v in values]

    def _new_report(self) -> ExecutionReport:
        return ExecutionReport(
            n=self.n,
            passes=self.plan.passes,
            resident_table_entries=self.resident_table_entries(),
            resident_table_bytes=self.resident_table_bytes(),
        )

    def _forward_twiddle(self, index: int, report: ExecutionReport) -> int:
        if self._ot_forward is not None and index >= self._ot_threshold:
            before = self._ot_forward.regeneration_muls
            value, _ = self._ot_forward.twiddle(index)
            report.regeneration_muls += self._ot_forward.regeneration_muls - before
            report.regenerated += 1
            return value
        report.table_fetches += 1
        return self.table.forward[index]

    def _inverse_twiddle(self, index: int, report: ExecutionReport) -> int:
        if self._ot_inverse is not None and index >= self._ot_threshold:
            before = self._ot_inverse.regeneration_muls
            value, _ = self._ot_inverse.twiddle(index)
            report.regeneration_muls += self._ot_inverse.regeneration_muls - before
            report.regenerated += 1
            return value
        report.table_fetches += 1
        return self.table.inverse[index]

    def _run_forward(self, a: list[int], report: ExecutionReport) -> None:
        n, p = self.n, self.p
        t = n // 2
        m = 1
        while m < n:
            for j in range(m):
                psi = self._forward_twiddle(m + j, report)
                start = 2 * j * t
                for k in range(start, start + t):
                    b_hat = mul_mod(a[k + t], psi, p)
                    a[k + t] = sub_mod(a[k], b_hat, p)
                    a[k] = add_mod(a[k], b_hat, p)
                report.butterflies += t
            m *= 2
            t //= 2

    def _run_inverse(self, a: list[int], report: ExecutionReport) -> None:
        n, p = self.n, self.p
        t = 1
        m = n // 2
        while m >= 1:
            for j in range(m):
                psi = self._inverse_twiddle(m + j, report)
                start = 2 * j * t
                for k in range(start, start + t):
                    u = a[k]
                    v = a[k + t]
                    a[k] = add_mod(u, v, p)
                    a[k + t] = mul_mod(sub_mod(u, v, p), psi, p)
                report.butterflies += t
            m //= 2
            t *= 2
        n_inv = inv_mod(n, p)
        for i in range(n):
            a[i] = mul_mod(a[i], n_inv, p)
