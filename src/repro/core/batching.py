"""Batched NTT across the RNS primes of a ciphertext.

An HE multiplication needs ``np`` independent ``N``-point NTTs — one per RNS
prime — and Section V shows that executing them as one batch is essential for
GPU utilisation.  :class:`BatchedNTT` bundles one :class:`NTTEngine` per
prime, runs whole residue matrices through them, and aggregates the
twiddle-table accounting that distinguishes NTT batching from DFT batching
(per-prime tables versus one shared table — the ``np``-fold table growth of
Section IV).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..backends.base import ComputeBackend
from ..backends.registry import get_backend
from ..rns.basis import RnsBasis
from .engine import ExecutionReport, NTTEngine
from .plan import NTTPlan

__all__ = ["BatchReport", "BatchedNTT"]


@dataclass
class BatchReport:
    """Aggregate of the per-prime :class:`ExecutionReport` objects of one batch.

    Attributes:
        batch_size: Number of independent NTTs executed (``np``).
        reports: The per-prime reports, in basis order.
    """

    batch_size: int
    reports: list[ExecutionReport]

    @property
    def butterflies(self) -> int:
        """Total butterflies across the batch."""
        return sum(r.butterflies for r in self.reports)

    @property
    def table_fetches(self) -> int:
        """Total twiddle factors fetched from resident tables across the batch."""
        return sum(r.table_fetches for r in self.reports)

    @property
    def regenerated(self) -> int:
        """Total twiddle factors regenerated on the fly across the batch."""
        return sum(r.regenerated for r in self.reports)

    @property
    def resident_table_bytes(self) -> int:
        """Total resident twiddle bytes across the batch (grows with ``np``)."""
        return sum(r.resident_table_bytes for r in self.reports)


class BatchedNTT:
    """A batch of per-prime NTT engines sharing a plan.

    Args:
        basis: RNS basis; one engine is built per prime.
        n: Transform length.
        plan: Execution plan shared by every engine (the paper batches
            identically configured kernels).
        backend: Compute backend executing the *data* path of
            :meth:`forward` / :meth:`inverse` / :meth:`multiply` (registry
            default when omitted).  The ``*_with_report`` variants always run
            the instrumented scalar engines — they exist to count butterflies
            and twiddle traffic, which batching must not change.
    """

    def __init__(
        self,
        basis: RnsBasis,
        n: int,
        plan: NTTPlan | None = None,
        backend: ComputeBackend | str | None = None,
    ) -> None:
        self.basis = basis
        self.n = n
        self.plan = plan if plan is not None else NTTPlan(n=n)
        self.engines = [NTTEngine(n, p, self.plan) for p in basis.primes]
        self.backend = (
            get_backend(backend) if (backend is None or isinstance(backend, str)) else backend
        )

    @property
    def batch_size(self) -> int:
        """Number of independent NTTs per invocation (``np``)."""
        return self.basis.count

    def resident_table_bytes(self) -> int:
        """Twiddle bytes resident across the whole batch (one table per prime)."""
        return sum(engine.resident_table_bytes() for engine in self.engines)

    def forward(self, rows: Sequence[Sequence[int]]) -> list[list[int]]:
        """Forward-transform one residue row per prime (one backend batch)."""
        self._check_rows(rows)
        return self.backend.forward_ntt_batch(rows, self.basis.primes)

    def inverse(self, rows: Sequence[Sequence[int]]) -> list[list[int]]:
        """Inverse-transform one residue row per prime (one backend batch)."""
        self._check_rows(rows)
        return self.backend.inverse_ntt_batch(rows, self.basis.primes)

    def forward_with_report(
        self, rows: Sequence[Sequence[int]]
    ) -> tuple[list[list[int]], BatchReport]:
        """Forward transform returning the aggregated :class:`BatchReport`."""
        self._check_rows(rows)
        results: list[list[int]] = []
        reports: list[ExecutionReport] = []
        for engine, row in zip(self.engines, rows):
            result, report = engine.forward_with_report(row)
            results.append(result)
            reports.append(report)
        return results, BatchReport(batch_size=self.batch_size, reports=reports)

    def multiply(
        self, rows_a: Sequence[Sequence[int]], rows_b: Sequence[Sequence[int]]
    ) -> list[list[int]]:
        """Negacyclic product of two residue matrices.

        Runs the full ``iNTT(NTT(a) ⊙ NTT(b))`` pipeline on the backend; the
        two forward transforms are fused into a single batch of ``2 np``
        rows, which is exactly the batching opportunity Fig. 3 quantifies.
        """
        self._check_rows(rows_a)
        self._check_rows(rows_b)
        primes = list(self.basis.primes)
        stacked = self.backend.forward_ntt_batch(
            list(rows_a) + list(rows_b), primes + primes
        )
        pointwise = self.backend.mul_batch(
            stacked[: self.batch_size], stacked[self.batch_size :], primes
        )
        return self.backend.inverse_ntt_batch(pointwise, primes)

    def _check_rows(self, rows: Sequence[Sequence[int]]) -> None:
        if len(rows) != self.batch_size:
            raise ValueError(
                "expected %d residue rows (one per prime), got %d"
                % (self.batch_size, len(rows))
            )
        for index, row in enumerate(rows):
            if len(row) != self.n:
                raise ValueError(
                    "row %d has %d entries, expected n=%d" % (index, len(row), self.n)
                )
