"""Batched NTT across the RNS primes of a ciphertext.

An HE multiplication needs ``np`` independent ``N``-point NTTs — one per RNS
prime — and Section V shows that executing them as one batch is essential for
GPU utilisation.  :class:`BatchedNTT` bundles one :class:`NTTEngine` per
prime, runs whole residue matrices through them, and aggregates the
twiddle-table accounting that distinguishes NTT batching from DFT batching
(per-prime tables versus one shared table — the ``np``-fold table growth of
Section IV).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..backends.base import ComputeBackend, ResidueTensor
from ..backends.registry import resolve_backend
from ..rns.basis import RnsBasis
from .engine import ExecutionReport, NTTEngine
from .plan import NTTPlan

__all__ = ["BatchReport", "BatchedNTT"]


@dataclass
class BatchReport:
    """Aggregate of the per-prime :class:`ExecutionReport` objects of one batch.

    Attributes:
        batch_size: Number of independent NTTs executed (``np``).
        reports: The per-prime reports, in basis order.
    """

    batch_size: int
    reports: list[ExecutionReport]

    @property
    def butterflies(self) -> int:
        """Total butterflies across the batch."""
        return sum(r.butterflies for r in self.reports)

    @property
    def table_fetches(self) -> int:
        """Total twiddle factors fetched from resident tables across the batch."""
        return sum(r.table_fetches for r in self.reports)

    @property
    def regenerated(self) -> int:
        """Total twiddle factors regenerated on the fly across the batch."""
        return sum(r.regenerated for r in self.reports)

    @property
    def resident_table_bytes(self) -> int:
        """Total resident twiddle bytes across the batch (grows with ``np``)."""
        return sum(r.resident_table_bytes for r in self.reports)


class BatchedNTT:
    """A batch of per-prime NTT engines sharing a plan.

    Args:
        basis: RNS basis; one engine is built per prime.
        n: Transform length.
        plan: Execution plan shared by every engine (the paper batches
            identically configured kernels).
        backend: Compute backend executing the *data* path of
            :meth:`forward` / :meth:`inverse` / :meth:`multiply` (registry
            default when omitted, resolved once at construction).  The
            rows-based methods are boundary conveniences — they enter and
            leave residency per call; the ``*_resident`` variants operate on
            :class:`~repro.backends.base.ResidueTensor` handles and keep data
            backend-native across calls.  The ``*_with_report`` variants
            always run the instrumented scalar engines — they exist to count
            butterflies and twiddle traffic, which batching must not change.
    """

    def __init__(
        self,
        basis: RnsBasis,
        n: int,
        plan: NTTPlan | None = None,
        backend: ComputeBackend | str | None = None,
    ) -> None:
        self.basis = basis
        self.n = n
        self.plan = plan if plan is not None else NTTPlan(n=n)
        self.engines = [NTTEngine(n, p, self.plan) for p in basis.primes]
        self.backend = resolve_backend(backend)

    @property
    def batch_size(self) -> int:
        """Number of independent NTTs per invocation (``np``)."""
        return self.basis.count

    def resident_table_bytes(self) -> int:
        """Twiddle bytes resident across the whole batch (one table per prime)."""
        return sum(engine.resident_table_bytes() for engine in self.engines)

    # -- residency entry/exit ----------------------------------------------------
    def tensor_from_rows(self, rows: Sequence[Sequence[int]]) -> ResidueTensor:
        """Enter residency: one residue row per prime into a backend tensor."""
        self._check_rows(rows)
        return self.backend.from_rows(rows, self.basis.primes)

    # -- resident data path ------------------------------------------------------
    def forward_resident(self, tensor: ResidueTensor) -> ResidueTensor:
        """Forward-transform a resident residue tensor (no boundary crossing)."""
        return self.backend.forward_ntt_batch(tensor)

    def inverse_resident(self, tensor: ResidueTensor) -> ResidueTensor:
        """Inverse-transform a resident residue tensor (no boundary crossing)."""
        return self.backend.inverse_ntt_batch(tensor)

    def multiply_resident(
        self, a: ResidueTensor, b: ResidueTensor
    ) -> ResidueTensor:
        """Resident ``iNTT(NTT(a) ⊙ NTT(b))`` with the forward pair fused."""
        stacked = self.backend.forward_ntt_batch(self.backend.concat([a, b]))
        a_ntt, b_ntt = self.backend.split(
            stacked, [self.batch_size, self.batch_size]
        )
        return self.backend.inverse_ntt_batch(self.backend.mul(a_ntt, b_ntt))

    # -- boundary conveniences (rows in, rows out) -------------------------------
    def forward(self, rows: Sequence[Sequence[int]]) -> list[list[int]]:
        """Forward-transform one residue row per prime (one backend batch)."""
        return self.forward_resident(self.tensor_from_rows(rows)).to_rows()

    def inverse(self, rows: Sequence[Sequence[int]]) -> list[list[int]]:
        """Inverse-transform one residue row per prime (one backend batch)."""
        return self.inverse_resident(self.tensor_from_rows(rows)).to_rows()

    def forward_with_report(
        self, rows: Sequence[Sequence[int]]
    ) -> tuple[list[list[int]], BatchReport]:
        """Forward transform returning the aggregated :class:`BatchReport`."""
        self._check_rows(rows)
        results: list[list[int]] = []
        reports: list[ExecutionReport] = []
        for engine, row in zip(self.engines, rows):
            result, report = engine.forward_with_report(row)
            results.append(result)
            reports.append(report)
        return results, BatchReport(batch_size=self.batch_size, reports=reports)

    def multiply(
        self, rows_a: Sequence[Sequence[int]], rows_b: Sequence[Sequence[int]]
    ) -> list[list[int]]:
        """Negacyclic product of two residue matrices.

        Runs the full ``iNTT(NTT(a) ⊙ NTT(b))`` pipeline on the backend; the
        two forward transforms are fused into a single batch of ``2 np``
        rows, which is exactly the batching opportunity Fig. 3 quantifies.
        """
        return self.multiply_resident(
            self.tensor_from_rows(rows_a), self.tensor_from_rows(rows_b)
        ).to_rows()

    def _check_rows(self, rows: Sequence[Sequence[int]]) -> None:
        if len(rows) != self.batch_size:
            raise ValueError(
                "expected %d residue rows (one per prime), got %d"
                % (self.batch_size, len(rows))
            )
        for index, row in enumerate(rows):
            if len(row) != self.n:
                raise ValueError(
                    "row %d has %d entries, expected n=%d" % (index, len(row), self.n)
                )
