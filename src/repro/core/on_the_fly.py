"""On-the-fly twiddling (OT) — the paper's novel contribution (Section VII).

Large bootstrappable parameter sets make the precomputed twiddle tables so
big (``2 * N * np`` words with Shoup companions) that the NTT becomes bound
by main-memory bandwidth.  OT shrinks the table by *factorising* twiddle
exponents: instead of storing ``psi^e`` for every exponent ``e < N``, store
only

* a **low table** of the first ``base`` powers, ``psi^r`` for ``r < base``, and
* a **high table** of the ``N / base`` stride powers, ``psi^(base * q)``,

and regenerate any twiddle as ``psi^e = high[e // base] * low[e % base]``
with one extra modular multiplication.  Crucially the regeneration is an
ordinary Shoup multiplication between two *stored* values — no modulo-based
exponentiation and no recomputation of the Shoup companion ``w_bar`` is
needed, which is what made earlier on-the-fly schemes unattractive for NTT.

The factorisation is recursive in principle (base-2 would need ``log2 N``
multiplications per twiddle); the paper finds base-1024 the sweet spot, and
that applying OT only to the *last one or two stages* (where the per-stage
table is half / a quarter of the whole table) captures most of the traffic
reduction without adding multiplications to every stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..modarith.modops import inv_mod, mul_mod
from ..modarith.reducers import ShoupModMul
from ..modarith.word import WORD64, WordSpec
from ..transforms.bitrev import bit_reverse, is_power_of_two, log2_exact

__all__ = ["OnTheFlyConfig", "OnTheFlyTwiddleGenerator"]


@dataclass(frozen=True)
class OnTheFlyConfig:
    """Configuration of the on-the-fly twiddling scheme.

    Attributes:
        base: Factorisation base (power of two); the paper's best value is 1024.
        ot_stages: How many of the *last* radix-2 stages regenerate their
            twiddles on the fly (0 disables OT, matching the baseline).
    """

    base: int = 1024
    ot_stages: int = 1

    def __post_init__(self) -> None:
        if not is_power_of_two(self.base) or self.base < 2:
            raise ValueError("base must be a power of two >= 2")
        if self.ot_stages < 0:
            raise ValueError("ot_stages must be non-negative")

    def table_entries(self, n: int) -> int:
        """Number of stored twiddle factors for an ``n``-point NTT under OT.

        With base ``B`` the stored tables are the ``B`` low powers plus the
        ``n / B`` high powers (the paper's ``1024 + 2^17/1024`` example),
        clamped to ``n`` when the base exceeds the transform size.
        """
        if not is_power_of_two(n):
            raise ValueError("n must be a power of two")
        if self.base >= n:
            return n
        return self.base + n // self.base

    def covered_table_indices(self, n: int) -> range:
        """Bit-reversed table indices whose twiddles are regenerated on the fly.

        Stage ``s`` (1-based) of Algorithm 1 consumes table indices
        ``[2^(s-1), 2^s)``; the last ``ot_stages`` stages therefore cover
        ``[n / 2^ot_stages, n)``.
        """
        stages = log2_exact(n)
        covered = min(self.ot_stages, stages)
        if covered == 0:
            return range(n, n)
        return range(n >> covered, n)


class OnTheFlyTwiddleGenerator:
    """Regenerates twiddle factors from factored tables, counting the extra work.

    The generator answers the same queries as a full
    :class:`repro.core.twiddle.TwiddleTable` — "give me the twiddle for
    bit-reversed table index ``i``" — but stores only the factored tables and
    counts every regeneration multiplication it performs, so both functional
    tests (the regenerated twiddles must match the full table exactly) and the
    GPU cost model (extra multiplications vs. saved DRAM reads) can use it.

    Attributes:
        n: Transform length.
        p: Prime modulus.
        psi: Primitive ``2n``-th root of unity.
        config: The :class:`OnTheFlyConfig` in effect.
    """

    def __init__(
        self,
        n: int,
        p: int,
        psi: int,
        config: OnTheFlyConfig,
        inverse: bool = False,
        word: WordSpec = WORD64,
    ) -> None:
        if not is_power_of_two(n):
            raise ValueError("n must be a power of two")
        self.n = n
        self.p = p
        self.psi = psi if not inverse else inv_mod(psi, p)
        self.config = config
        self.word = word
        self._log_n = log2_exact(n)
        self._reducer = ShoupModMul(p, word)
        base = min(config.base, n)
        self._base = base
        self._base_bits = log2_exact(base)

        # Low table: psi^r for r < base; high table: psi^(base*q) for q < n/base.
        low = [1] * base
        for r in range(1, base):
            low[r] = mul_mod(low[r - 1], self.psi, p)
        stride_root = mul_mod(low[base - 1], self.psi, p)  # psi^base
        high_count = max(n // base, 1)
        high = [1] * high_count
        for q in range(1, high_count):
            high[q] = mul_mod(high[q - 1], stride_root, p)
        self._low = low
        self._high = high
        self._low_shoup = [self._reducer.precompute(w)[0] for w in low]
        self._high_shoup = [self._reducer.precompute(w)[0] for w in high]
        self.regeneration_muls = 0

    # -- size accounting --------------------------------------------------------
    @property
    def stored_entries(self) -> int:
        """Twiddle factors held in memory (low + high tables)."""
        return len(self._low) + len(self._high)

    def stored_bytes(self, with_shoup: bool = True) -> int:
        """Bytes of the stored factored tables (doubled by Shoup companions)."""
        words = 2 if with_shoup else 1
        return self.stored_entries * words * (self.word.bits // 8)

    # -- twiddle access -----------------------------------------------------------
    def exponent_for_index(self, index: int) -> int:
        """Exponent ``e`` such that table entry ``index`` equals ``psi^e``.

        Algorithm 1's table stores ``psi^bit_reverse(index)``.
        """
        if not 0 <= index < self.n:
            raise ValueError("table index out of range")
        return bit_reverse(index, self._log_n)

    def twiddle(self, index: int) -> tuple[int, int]:
        """Return ``(twiddle, shoup_companion)`` for bit-reversed table ``index``.

        When the exponent splits across the low and high tables one Shoup
        multiplication is performed (and counted); the companion returned for
        the *product* is the low factor's companion, matching the paper's
        observation that no new ``w_bar`` needs to be computed because the
        regenerated factor is immediately applied to the data by multiplying
        with the stored factors consecutively.
        """
        exponent = self.exponent_for_index(index)
        quotient, remainder = divmod(exponent, self._base)
        if quotient == 0:
            return self._low[remainder], self._low_shoup[remainder]
        if remainder == 0:
            return self._high[quotient], self._high_shoup[quotient]
        self.regeneration_muls += 1
        value = self._reducer.mul_by_constant(
            self._high[quotient], self._low[remainder], (self._low_shoup[remainder],)
        )
        return value, self._reducer.precompute(value)[0]

    def apply_to(self, operand: int, index: int) -> int:
        """Multiply ``operand`` by table entry ``index`` using consecutive multiplication.

        This is the form the kernel actually uses (Section VII): rather than
        materialising ``w = w2 * w1`` and its companion, the operand is
        multiplied by ``w1`` and then by ``w2``, each with its stored
        companion — one extra data multiplication, zero extra companion
        computations.
        """
        exponent = self.exponent_for_index(index)
        quotient, remainder = divmod(exponent, self._base)
        result = self._reducer.mul_by_constant(
            operand, self._low[remainder], (self._low_shoup[remainder],)
        )
        if quotient:
            self.regeneration_muls += 1
            result = self._reducer.mul_by_constant(
                result, self._high[quotient], (self._high_shoup[quotient],)
            )
        return result

    def reset_counters(self) -> None:
        """Zero the regeneration-multiplication counter."""
        self.regeneration_muls = 0
