"""Core NTT engine — the paper's primary contribution as a reusable library.

Public entry points:

* :class:`NTTPlan` / :class:`NTTAlgorithm` — describe *how* to execute a
  transform (radix-2 baseline, register-based high radix, or the two-kernel
  shared-memory decomposition, with coalescing / twiddle-preload / per-thread
  size knobs).
* :class:`OnTheFlyConfig` — the paper's on-the-fly twiddling scheme.
* :class:`NTTEngine` — forward/inverse negacyclic NTT for one modulus under a
  plan, with execution reporting.
* :class:`BatchedNTT` — the ``np``-prime batch an HE multiplication needs.
* :class:`TwiddleTable` — precomputed twiddles with Shoup companions and
  memory-footprint accounting.
"""

from .batching import BatchedNTT, BatchReport
from .engine import ExecutionReport, NTTEngine
from .on_the_fly import OnTheFlyConfig, OnTheFlyTwiddleGenerator
from .plan import NTTAlgorithm, NTTPlan, best_smem_plan, default_smem_split
from .serialization import (
    ciphertext_from_dict,
    ciphertext_to_dict,
    load_json,
    plan_from_dict,
    plan_to_dict,
    rns_polynomial_from_dict,
    rns_polynomial_to_dict,
    save_json,
    twiddle_table_from_dict,
    twiddle_table_to_dict,
)
from .tuner import PlanTuner, TunedPlan
from .twiddle import TwiddleTable, stage_input_entries, stage_table_entries

__all__ = [
    "PlanTuner",
    "TunedPlan",
    "ciphertext_from_dict",
    "ciphertext_to_dict",
    "load_json",
    "plan_from_dict",
    "plan_to_dict",
    "rns_polynomial_from_dict",
    "rns_polynomial_to_dict",
    "save_json",
    "twiddle_table_from_dict",
    "twiddle_table_to_dict",
    "BatchedNTT",
    "BatchReport",
    "ExecutionReport",
    "NTTEngine",
    "OnTheFlyConfig",
    "OnTheFlyTwiddleGenerator",
    "NTTAlgorithm",
    "NTTPlan",
    "best_smem_plan",
    "default_smem_split",
    "TwiddleTable",
    "stage_input_entries",
    "stage_table_entries",
]
