"""Plan auto-tuning: search the paper's design space with the cost model.

The paper arrives at its best configuration (two-kernel SMEM execution,
8-point per-thread NTTs, coalesced Kernel-1, preloaded twiddles, on-the-fly
twiddling on the last stages) by manual design-space exploration.  The
:class:`PlanTuner` automates that search: it enumerates the candidate
:class:`repro.core.plan.NTTPlan` configurations for a transform size, prices
each with the GPU cost model, and returns the ranking — so a downstream user
can ask "what is the best plan for my ``(N, np)``?" instead of hard-coding
the paper's choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.costmodel import GpuCostModel
from ..transforms.bitrev import is_power_of_two, log2_exact
from .on_the_fly import OnTheFlyConfig
from .plan import NTTAlgorithm, NTTPlan

__all__ = ["TunedPlan", "PlanTuner"]


@dataclass(frozen=True)
class TunedPlan:
    """One evaluated candidate plan.

    Attributes:
        plan: The candidate configuration.
        time_us: Modelled execution time for the requested batch.
        dram_mb: Modelled DRAM traffic in megabytes.
        bandwidth_utilization: Modelled DRAM bandwidth utilisation.
    """

    plan: NTTPlan
    time_us: float
    dram_mb: float
    bandwidth_utilization: float


class PlanTuner:
    """Enumerates and ranks NTT execution plans for a transform size.

    Args:
        model: GPU cost model to evaluate candidates against.
        radices: Register-radix candidates for the high-radix family.
        per_thread_sizes: Per-thread NTT sizes for the SMEM family.
        ot_stage_options: How many trailing stages to cover with on-the-fly
            twiddling (0 = disabled).
        ot_base: Factorisation base used when OT is enabled.
    """

    def __init__(
        self,
        model: GpuCostModel | None = None,
        radices: tuple[int, ...] = (4, 8, 16, 32),
        per_thread_sizes: tuple[int, ...] = (4, 8),
        ot_stage_options: tuple[int, ...] = (0, 1, 2),
        ot_base: int = 1024,
    ) -> None:
        self.model = model if model is not None else GpuCostModel()
        self.radices = radices
        self.per_thread_sizes = per_thread_sizes
        self.ot_stage_options = ot_stage_options
        self.ot_base = ot_base

    # -- candidate enumeration ---------------------------------------------------------
    def candidate_plans(self, n: int) -> list[NTTPlan]:
        """Enumerate the candidate plans for an ``n``-point transform."""
        if not is_power_of_two(n):
            raise ValueError("n must be a power of two")
        candidates: list[NTTPlan] = [NTTPlan(n=n, algorithm=NTTAlgorithm.RADIX2)]
        for radix in self.radices:
            if radix <= n:
                candidates.append(NTTPlan(n=n, algorithm=NTTAlgorithm.HIGH_RADIX, radix=radix))
        candidates.extend(self._smem_candidates(n))
        return candidates

    def _smem_candidates(self, n: int) -> list[NTTPlan]:
        total_bits = log2_exact(n)
        plans: list[NTTPlan] = []
        for kernel1_bits in range(6, total_bits - 5):
            kernel2_bits = total_bits - kernel1_bits
            if kernel2_bits < 6 or kernel1_bits > 11 or kernel2_bits > 11:
                continue
            for per_thread in self.per_thread_sizes:
                for ot_stages in self.ot_stage_options:
                    ot = (
                        OnTheFlyConfig(base=self.ot_base, ot_stages=ot_stages)
                        if ot_stages
                        else None
                    )
                    plans.append(
                        NTTPlan(
                            n=n,
                            algorithm=NTTAlgorithm.SMEM,
                            kernel1_size=1 << kernel1_bits,
                            kernel2_size=1 << kernel2_bits,
                            per_thread_points=per_thread,
                            ot=ot,
                        )
                    )
        if not plans:
            # Transform too small for a 64x64 split: fall back to the default split.
            for ot_stages in self.ot_stage_options:
                ot = OnTheFlyConfig(base=self.ot_base, ot_stages=ot_stages) if ot_stages else None
                plans.append(NTTPlan(n=n, algorithm=NTTAlgorithm.SMEM, ot=ot))
        return plans

    # -- evaluation --------------------------------------------------------------------------
    def evaluate(self, plan: NTTPlan, batch: int) -> TunedPlan:
        """Price one plan for a batch of ``batch`` transforms."""
        from ..kernels.smem import smem_model_from_plan

        result = smem_model_from_plan(plan, batch, self.model)
        return TunedPlan(
            plan=plan,
            time_us=result.time_us,
            dram_mb=result.dram_mb,
            bandwidth_utilization=result.bandwidth_utilization,
        )

    def rank(self, n: int, batch: int) -> list[TunedPlan]:
        """Evaluate every candidate and return them sorted fastest-first."""
        evaluated = [self.evaluate(plan, batch) for plan in self.candidate_plans(n)]
        return sorted(evaluated, key=lambda tuned: tuned.time_us)

    def best(self, n: int, batch: int) -> TunedPlan:
        """Return the fastest candidate plan for ``(n, batch)``."""
        return self.rank(n, batch)[0]
