"""Homomorphic-encryption parameter sets.

The paper's NTT workloads come from RNS-based HE schemes with bootstrappable
parameter sets: polynomial degree ``N = 2^14 .. 2^17`` and ciphertext moduli
built from dozens of machine-word primes.  This module defines the parameter
container used by the scheme in :mod:`repro.he` and a few presets:

* ``toy`` / ``small`` — functional parameter sets the test-suite and the
  examples can run in milliseconds (pure-Python big-int arithmetic).
* ``bootstrappable_*`` — the paper's evaluation points.  They are far too
  large to execute functionally in Python in reasonable time, but they are
  the inputs to the GPU performance model and to the bootstrapping workload
  estimator (:mod:`repro.he.bootstrap`).

The scheme implemented here is a BGV-flavoured RNS scheme (exact integer
plaintexts, which keeps the test oracle simple); the NTT workload it
generates per operation — ``np`` forward/inverse N-point NTTs — is identical
in shape to the CKKS/HEAAN workload the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import lcm

from ..modarith.primes import is_probable_prime
from ..rns.basis import RnsBasis

__all__ = ["HEParams", "generate_bgv_primes", "toy_params", "small_params", "bootstrappable_params"]


def generate_bgv_primes(bit_size: int, count: int, n: int, plaintext_modulus: int) -> list[int]:
    """Generate primes congruent to 1 modulo both ``2n`` and the plaintext modulus.

    The double congruence keeps BGV modulus switching exact: dropping a prime
    ``q`` with ``q ≡ 1 (mod t)`` leaves the plaintext untouched.
    """
    if plaintext_modulus < 2:
        raise ValueError("plaintext modulus must be at least 2")
    step = lcm(2 * n, plaintext_modulus)
    if (1 << bit_size) <= step:
        raise ValueError("bit_size too small for the requested congruences")
    upper = (1 << bit_size) - 1
    candidate = upper - ((upper - 1) % step)
    lower = 1 << (bit_size - 1)
    primes: list[int] = []
    while candidate > lower and len(primes) < count:
        if is_probable_prime(candidate):
            primes.append(candidate)
        candidate -= step
    if len(primes) < count:
        raise ValueError(
            "could not find %d primes of %d bits with p ≡ 1 mod lcm(2n=%d, t=%d)"
            % (count, bit_size, 2 * n, plaintext_modulus)
        )
    return primes


@dataclass(frozen=True)
class HEParams:
    """Parameters of the RNS-BGV scheme.

    Attributes:
        n: Polynomial degree (power of two).
        plaintext_modulus: The plaintext space ``Z_t[X]/(X^N + 1)``.
        prime_bits: Bit size of each RNS prime.
        prime_count: Number of RNS primes (``np``).
        error_std: Standard deviation of the discrete-Gaussian error.
        name: Human-readable preset name.
    """

    n: int
    plaintext_modulus: int
    prime_bits: int
    prime_count: int
    error_std: float = 3.2
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.n < 2 or self.n & (self.n - 1):
            raise ValueError("n must be a power of two >= 2")
        if self.prime_count < 1:
            raise ValueError("at least one RNS prime is required")
        if self.plaintext_modulus < 2:
            raise ValueError("plaintext modulus must be >= 2")

    def make_basis(self) -> RnsBasis:
        """Generate the RNS basis implied by these parameters."""
        primes = generate_bgv_primes(
            self.prime_bits, self.prime_count, self.n, self.plaintext_modulus
        )
        return RnsBasis.from_primes(primes, self.n)

    @property
    def log_q(self) -> int:
        """Approximate ciphertext-modulus size in bits."""
        return self.prime_bits * self.prime_count


def toy_params() -> HEParams:
    """Tiny parameters for unit tests (milliseconds per operation, insecure)."""
    return HEParams(
        n=64, plaintext_modulus=257, prime_bits=40, prime_count=3, name="toy"
    )


def small_params() -> HEParams:
    """Small demonstration parameters for the examples (insecure)."""
    return HEParams(
        n=256, plaintext_modulus=65537, prime_bits=45, prime_count=4, name="small"
    )


def bootstrappable_params(log_n: int = 17, prime_count: int = 21) -> HEParams:
    """The paper's bootstrappable-scale parameter points (for the GPU model only).

    These are not meant to be executed functionally in Python — a single
    ciphertext multiplication at ``N = 2^17`` with 21 primes is billions of
    modular operations — but they describe the workload whose NTT cost the
    performance model and :mod:`repro.he.bootstrap` estimate.
    """
    if log_n not in (14, 15, 16, 17):
        raise ValueError("the paper evaluates logN in 14..17")
    return HEParams(
        n=1 << log_n,
        plaintext_modulus=65537,
        prime_bits=60,
        prime_count=prime_count,
        name="bootstrappable-2^%d" % log_n,
    )
