"""The :class:`HeContext` facade: one object that owns params, basis, backend
and warm twiddle caches.

Every double-CRT HE library pins a single context object that owns the
parameter set, the RNS basis and the precomputed tables (SEAL's
``SEALContext``, HEAAN's ``Context``, PALISADE's ``CryptoContext``); this is
the same API shape for this repository.  Building the pieces by hand —
KeyGenerator here, BatchEncoder there, an Evaluator resolving the backend
registry per call — invites two failure modes the facade removes:

* **Backend drift** — the registry default is re-resolved from the
  environment, so flipping ``REPRO_BACKEND`` mid-session could silently mix
  backends between components.  ``HeContext`` resolves the backend **once**
  at :meth:`HeContext.create` and hands the same pinned instance to every
  factory product; later environment flips affect new contexts only.
* **Cold twiddle tables** — the first homomorphic operation would otherwise
  pay O(n) table construction per prime.  The context warms the backend's
  per-``(n, p)`` caches up front (the resident-table policy Section IV of
  the paper analyses).

Typical usage (the whole quickstart)::

    from repro.he import HeContext, toy_params

    ctx = HeContext.create(toy_params())
    ct = ctx.encryptor().encrypt(ctx.encoder().encode([1, 2, 3]))
    print(ctx.encoder().decode(ctx.decryptor().decrypt(ct))[:3])
"""

from __future__ import annotations

from ..backends.base import ComputeBackend
from ..backends.registry import build_backend, resolve_backend
from ..compiler import ConstantPool
from ..rns.basis import RnsBasis
from ..telemetry import enable_tracing, maybe_enable_from_env
from ..telemetry.metrics import MetricsRegistry
from .encoder import BatchEncoder, IntegerEncoder
from .encryptor import Decryptor, Encryptor
from .evaluator import Evaluator
from .keys import KeyGenerator, PublicKey, RelinearizationKey, SecretKey
from .params import HEParams

__all__ = ["HeContext"]


class HeContext:
    """A fully pinned HE session: params + basis + backend + key material.

    Build one with :meth:`create`; every factory method returns a component
    bound to the context's pinned backend and shared key material, so data
    produced by one component stays resident for all the others.

    Attributes:
        params: The scheme parameters the context was created for.
        basis: The level-0 RNS basis (one modulus chain for the session).
        backend: The compute backend pinned at creation — resolved from the
            registry exactly once, never re-read from the environment.
    """

    def __init__(
        self, params: HEParams, basis: RnsBasis, backend: ComputeBackend,
        keygen: KeyGenerator, metrics_parent: MetricsRegistry | None = None,
    ) -> None:
        self.params = params
        self.basis = basis
        self.backend = backend
        self._keygen = keygen
        self._relin_key: RelinearizationKey | None = None
        self._batch_encoder: BatchEncoder | None = None
        # Aggregates the counters of every evaluator this context hands out
        # (each evaluator registry is created with this one as its parent).
        # ``metrics_parent`` chains this aggregate into a larger one — the
        # serving layer parents every tenant context into the server's root
        # registry so fleet-wide totals fall out of the same inc() walk.
        self._metrics = MetricsRegistry(parent=metrics_parent)
        self._metrics.declare("plan.compiled", "plan.cache_hits", "ntt.invocations")
        # One pool of constant NTT images for the whole session: a
        # relinearisation key transformed for any evaluator this context
        # hands out stays resident for every other one.
        self._constant_pool = ConstantPool()

    @classmethod
    def create(
        cls,
        params: HEParams,
        backend: ComputeBackend | str | None = None,
        seed: int = 2020,
        warm: bool = True,
        engine: str | None = None,
        shards: int | None = None,
        trace: str | None = None,
        metrics_parent: MetricsRegistry | None = None,
    ) -> "HeContext":
        """Build a context: resolve the backend once, generate the basis, warm caches.

        Args:
            params: Scheme parameters.
            backend: Backend instance or registry name; ``None`` resolves the
                registry default **now** (subsequent ``REPRO_BACKEND`` flips
                do not reach this context).
            seed: Key-generation RNG seed (reproducible key material).
            warm: Precompute the per-prime twiddle tables up front so the
                first operation runs at steady-state speed.
            engine: Optional NTT-engine spec (``"stockham"``,
                ``"high_radix:8"``, ...) pinning every transform of this
                context to one algorithm.  All engines are bit-exact, so this
                only changes *how* transforms execute.  When the backend was
                resolved from the registry (shared instance), a dedicated
                backend of the same class is constructed so the pin cannot
                leak into other contexts; an explicitly passed instance is
                pinned in place via
                :meth:`~repro.backends.base.ComputeBackend.set_engine`.
                ``None`` keeps the documented engine-selection precedence
                (``REPRO_NTT_ENGINE``, then the per-shape auto-tuner).
            shards: Shard/worker count for a sharding backend
                (``backend="parallel"``).  Only valid when the resolved
                backend exposes ``set_shards``; as with ``engine``, a
                registry-resolved backend is replaced by a dedicated
                instance so the pin cannot leak into the shared singleton.
                ``None`` keeps the backend's own resolution
                (``set_default_shards`` > ``REPRO_SHARDS`` >
                ``cpu_count - 1``).
            trace: Path for a Chrome-trace JSON capture of this process
                (written at interpreter exit; load it in Perfetto or
                ``chrome://tracing``).  Tracing is process-wide — it starts
                here, before key generation, so the warm-up work is in the
                trace too.  ``None`` falls back to the ``REPRO_TRACE``
                environment variable; see :mod:`repro.telemetry`.
            metrics_parent: Optional registry the context's own metrics
                aggregate reports into (counter increments walk the parent
                chain).  The serving layer passes its root registry here so
                per-tenant contexts roll up into fleet-wide totals.
        """
        if trace is not None:
            enable_tracing(trace)
        else:
            maybe_enable_from_env()
        caller_owned = isinstance(backend, ComputeBackend)
        if (engine is not None or shards is not None) and not caller_owned:
            # Fresh factory-built instance so the pin cannot leak into the
            # shared registry singleton while factory-applied configuration
            # is kept (a named backend skips the singleton entirely; the
            # default precedence is resolved just for its name); set_engine
            # (not a constructor kwarg) so seam-less backends fail with
            # their documented NotImplementedError rather than a TypeError.
            name = backend if isinstance(backend, str) else resolve_backend(None).name
            pinned = build_backend(name)
        else:
            pinned = resolve_backend(backend)
        if shards is not None:
            if not hasattr(pinned, "set_shards"):
                raise ValueError(
                    "backend %r does not shard; shards= requires the "
                    "'parallel' backend" % pinned.name
                )
            pinned.set_shards(shards)
        if engine is not None:
            pinned.set_engine(engine)
        keygen = KeyGenerator(params, seed=seed, backend=pinned)
        context = cls(
            params, keygen.basis, pinned, keygen, metrics_parent=metrics_parent
        )
        if warm:
            pinned.warm_twiddles(params.n, keygen.basis.primes)
        return context

    @property
    def engine(self) -> str | None:
        """NTT-engine spec pinned on the context's backend (``None`` = dynamic)."""
        return self.backend.engine

    # -- key material ----------------------------------------------------------
    @property
    def keygen(self) -> KeyGenerator:
        """The context's key generator (pinned backend, shared secret)."""
        return self._keygen

    def secret_key(self) -> SecretKey:
        """The session secret key (generated once, cached)."""
        return self._keygen.secret_key()

    def public_key(self) -> PublicKey:
        """A public key for the session secret."""
        return self._keygen.public_key()

    def relinearization_key(self) -> RelinearizationKey:
        """The session relinearisation key (generated once, cached)."""
        if self._relin_key is None:
            self._relin_key = self._keygen.relinearization_key()
        return self._relin_key

    # -- component factories ---------------------------------------------------
    def encryptor(self, seed: int = 95) -> Encryptor:
        """A fresh encryptor under the session public key (pinned backend)."""
        return Encryptor(
            self.params, self.public_key(), seed=seed, backend=self.backend
        )

    def decryptor(self) -> Decryptor:
        """A decryptor holding the session secret key."""
        return Decryptor(self.params, self.secret_key())

    def evaluator(self, mode: str | None = None, passes=None) -> Evaluator:
        """A homomorphic evaluator batching through the pinned backend.

        Args:
            mode: ``"fused"`` (each operation compiles into one plan,
                executed in a single backend call — the default) or
                ``"eager"`` (one backend method per step); ``None`` applies
                the documented precedence (``REPRO_EXECUTION``, the CLI's
                ``--fused``/``--eager``).  Both modes are bit-for-bit
                identical.
            passes: Plan-optimiser spec applied to compiled plans (see
                :func:`repro.compiler.resolve_passes`): a comma-separated
                string or iterable of pass names, ``"none"`` to disable
                rewriting, ``None`` for the documented precedence
                (``set_default_passes`` > ``REPRO_PASSES`` > default).
                Optimised plans are bit-for-bit identical to unoptimised
                ones on every backend.
        """
        return Evaluator(
            self.params,
            backend=self.backend,
            mode=mode,
            metrics=self._metrics,
            passes=passes,
            constant_pool=self._constant_pool,
        )

    # -- telemetry -------------------------------------------------------------
    def metrics(self) -> dict:
        """One flat snapshot of every counter/gauge the session touches.

        Merges the pinned backend's registry (``conversions.rows``,
        ``pool.dispatches``, ``shm.bytes_in_use``, the autotuner's
        ``ntt.engine_choices`` / ``ntt.engine_timings`` and
        ``ntt.autotune_seconds``) with the context's own aggregate of every
        evaluator it handed out (``plan.compiled``, ``plan.cache_hits``,
        ``ntt.invocations``).  The two registries use disjoint key
        namespaces, so the merge loses nothing.
        """
        snapshot = self.backend.metrics.snapshot()
        snapshot.update(self._metrics.snapshot())
        return snapshot

    def reset_metrics(self) -> None:
        """Zero every counter in one call: the backend's (conversions,
        dispatches) and — cascading through the registry parent links —
        those of every evaluator/pipeline this context created.  Replaces
        the piecemeal ``reset_conversion_count()`` /
        ``reset_dispatch_count()`` dance; gauges report live state and are
        unaffected."""
        self.backend.metrics.reset()
        self._metrics.reset()

    @staticmethod
    def metrics_diff(before: dict, after: dict) -> dict:
        """Counter deltas between two :meth:`metrics` snapshots.

        The headline counters (``pool.dispatches``, ``conversions.rows``,
        ``ntt.invocations``, ``fallback.rows``) are always present (zero when
        untouched) so before/after comparisons — the pass benchmark, the
        examples' tables — never need ``.get`` fallbacks; every other integer
        counter that moved is included.  Histogram summaries and gauges
        (dict/bool values) report state, not work, and are skipped.
        """
        diff = {
            "pool.dispatches": 0,
            "conversions.rows": 0,
            "ntt.invocations": 0,
            "fallback.rows": 0,
        }
        for key, value in after.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            baseline = before.get(key, 0)
            if not isinstance(baseline, int) or isinstance(baseline, bool):
                baseline = 0
            delta = value - baseline
            if delta or key in diff:
                diff[key] = delta
        return diff

    def program(self) -> "HeProgram":
        """A whole-program front end: many named statements, one fused plan.

        Statements recorded with :meth:`~repro.compiler.program.HeProgram.let`
        compile together through :meth:`Pipeline.run_many`, so shared
        sub-expressions lower once and the optimiser's CSE pass merges
        duplicate transforms *across* statements.
        """
        from ..compiler.program import HeProgram

        return HeProgram(self)

    def pipeline(self) -> "Pipeline":
        """A lazy ciphertext-expression pipeline over the pinned backend.

        Expressions built from :meth:`Pipeline.load` leaves —
        ``(a * b).relinearize(rk).mod_switch().run()`` — compile **once**
        into a single fused plan and execute in one backend call; on the
        ``parallel`` backend the whole chain runs in at most one pool
        dispatch per cross-row stage (three for the canonical
        multiply → relinearize → mod-switch chain).
        """
        from .pipeline import Pipeline

        return Pipeline(self)

    def encoder(self) -> BatchEncoder:
        """The session's SIMD batch encoder (cached; requires NTT-prime ``t``)."""
        if self._batch_encoder is None:
            self._batch_encoder = BatchEncoder(
                self.params, self.basis, backend=self.backend
            )
        return self._batch_encoder

    def integer_encoder(self) -> IntegerEncoder:
        """A constant-coefficient integer encoder for the session."""
        return IntegerEncoder(self.params, self.basis, backend=self.backend)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "HeContext(params=%r, backend=%r, np=%d)" % (
            self.params.name,
            self.backend.name,
            self.basis.count,
        )
