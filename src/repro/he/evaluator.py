"""Homomorphic operations: addition, multiplication, relinearisation, modulus switching.

Every ciphertext multiplication performed here is, computationally, a batch
of ``np`` negacyclic polynomial multiplications — each of which is the
``iNTT(NTT(a) ⊙ NTT(b))`` pipeline the paper accelerates.  The evaluator
therefore also exposes :meth:`Evaluator.ntt_invocations`, the running count
of forward/inverse NTT calls it has triggered, which the examples use to
connect the HE layer to the GPU performance model.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..backends.base import ComputeBackend
from ..backends.registry import get_backend
from ..rns.basis import RnsBasis
from ..rns.poly import Domain, RnsPolynomial
from .ciphertext import Ciphertext
from .keys import RelinearizationKey
from .params import HEParams

__all__ = ["Evaluator"]


class Evaluator:
    """Homomorphic evaluator for the RNS-BGV scheme.

    Args:
        params: Scheme parameters.
        backend: Compute backend the evaluator batches its residue-matrix
            work through (registry default — ``REPRO_BACKEND`` or NumPy —
            when omitted).  All backends are bit-exact, so ciphertexts are
            interchangeable across evaluators with different backends.
    """

    def __init__(
        self, params: HEParams, backend: ComputeBackend | str | None = None
    ) -> None:
        self.params = params
        self.backend = (
            get_backend(backend) if (backend is None or isinstance(backend, str)) else backend
        )
        self._ntt_invocations = 0

    # -- bookkeeping -----------------------------------------------------------------
    @property
    def ntt_invocations(self) -> int:
        """Forward/inverse NTT invocations triggered so far (per RNS prime)."""
        return self._ntt_invocations

    @staticmethod
    def _check_same_ring(a: Ciphertext, b: Ciphertext) -> None:
        if a.basis.primes != b.basis.primes:
            raise ValueError("ciphertexts are at different levels; mod-switch first")

    @staticmethod
    def _check_plain_ring(a: Ciphertext, plaintext: RnsPolynomial) -> None:
        if a.basis.primes != plaintext.basis.primes or plaintext.n != a.polys[0].n:
            raise ValueError(
                "plaintext lives in a different ring than the ciphertext; "
                "re-encode it for this level first"
            )

    # -- backend-routed polynomial arithmetic ------------------------------------------
    def _poly_add(self, x: RnsPolynomial, y: RnsPolynomial) -> RnsPolynomial:
        x._check_compatible(y)
        rows = self.backend.add_batch(x.residues, y.residues, x.basis.primes)
        return RnsPolynomial(x.basis, x.n, rows, x.domain, x.cache)

    def _poly_sub(self, x: RnsPolynomial, y: RnsPolynomial) -> RnsPolynomial:
        x._check_compatible(y)
        rows = self.backend.sub_batch(x.residues, y.residues, x.basis.primes)
        return RnsPolynomial(x.basis, x.n, rows, x.domain, x.cache)

    def _poly_neg(self, x: RnsPolynomial) -> RnsPolynomial:
        rows = self.backend.neg_batch(x.residues, x.basis.primes)
        return RnsPolynomial(x.basis, x.n, rows, x.domain, x.cache)

    # -- batched NTT plumbing ---------------------------------------------------------
    def _forward_ntt_batch(
        self, polys: Sequence[RnsPolynomial]
    ) -> list[RnsPolynomial]:
        """Transform every coefficient-domain polynomial in one backend batch.

        This is the paper's core batching observation applied at the HE
        layer: the ``(number of polynomials) x np`` independent forward NTTs
        of a ciphertext operation are issued as a single wide call instead of
        one row at a time.  Only actually-performed transforms are counted.
        """
        results = list(polys)
        pending = [i for i, poly in enumerate(polys) if poly.domain is Domain.COEFFICIENT]
        if not pending:
            return results
        rows: list[Sequence[int]] = []
        primes: list[int] = []
        for i in pending:
            rows.extend(results[i].residues)
            primes.extend(results[i].basis.primes)
        transformed = self.backend.forward_ntt_batch(rows, primes)
        offset = 0
        for i in pending:
            poly = results[i]
            count = poly.basis.count
            results[i] = RnsPolynomial(
                poly.basis, poly.n, transformed[offset : offset + count],
                Domain.NTT, poly.cache,
            )
            offset += count
            self._ntt_invocations += count
        return results

    def _inverse_ntt_batch(
        self, polys: Sequence[RnsPolynomial]
    ) -> list[RnsPolynomial]:
        """Transform every NTT-domain polynomial back in one backend batch."""
        results = list(polys)
        pending = [i for i, poly in enumerate(polys) if poly.domain is Domain.NTT]
        if not pending:
            return results
        rows: list[Sequence[int]] = []
        primes: list[int] = []
        for i in pending:
            rows.extend(results[i].residues)
            primes.extend(results[i].basis.primes)
        transformed = self.backend.inverse_ntt_batch(rows, primes)
        offset = 0
        for i in pending:
            poly = results[i]
            count = poly.basis.count
            results[i] = RnsPolynomial(
                poly.basis, poly.n, transformed[offset : offset + count],
                Domain.COEFFICIENT, poly.cache,
            )
            offset += count
            self._ntt_invocations += count
        return results

    def _tensor(
        self,
        a_ntt: Sequence[RnsPolynomial],
        b_ntt: Sequence[RnsPolynomial],
        basis: RnsBasis,
    ) -> list[RnsPolynomial]:
        """NTT-domain tensor product, returned in the coefficient domain."""
        result_size = len(a_ntt) + len(b_ntt) - 1
        primes = basis.primes
        accumulators: list[list[list[int]] | None] = [None] * result_size
        for i, poly_a in enumerate(a_ntt):
            for j, poly_b in enumerate(b_ntt):
                term = self.backend.mul_batch(poly_a.residues, poly_b.residues, primes)
                k = i + j
                accumulators[k] = (
                    term
                    if accumulators[k] is None
                    else self.backend.add_batch(accumulators[k], term, primes)
                )
        cache = a_ntt[0].cache
        products = [
            RnsPolynomial(basis, self.params.n, rows, Domain.NTT, cache)
            for rows in accumulators
        ]
        return self._inverse_ntt_batch(products)

    # -- linear operations ---------------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic addition (component-wise)."""
        self._check_same_ring(a, b)
        size = max(a.size, b.size)
        polys = []
        for index in range(size):
            if index < a.size and index < b.size:
                polys.append(self._poly_add(a.polys[index], b.polys[index]))
            elif index < a.size:
                polys.append(a.polys[index].copy())
            else:
                polys.append(b.polys[index].copy())
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction."""
        self._check_same_ring(a, b)
        size = max(a.size, b.size)
        polys = []
        for index in range(size):
            if index < a.size and index < b.size:
                polys.append(self._poly_sub(a.polys[index], b.polys[index]))
            elif index < a.size:
                polys.append(a.polys[index].copy())
            else:
                polys.append(self._poly_neg(b.polys[index]))
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def negate(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic negation."""
        return Ciphertext(
            polys=[self._poly_neg(poly) for poly in a.polys],
            params=self.params,
            level=a.level,
        )

    def add_plain(self, a: Ciphertext, plaintext: RnsPolynomial) -> Ciphertext:
        """Add an (unencrypted) plaintext polynomial."""
        self._check_plain_ring(a, plaintext)
        polys = [self._poly_add(a.polys[0], plaintext)] + [
            poly.copy() for poly in a.polys[1:]
        ]
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def multiply_plain(self, a: Ciphertext, plaintext: RnsPolynomial) -> Ciphertext:
        """Multiply by an (unencrypted) plaintext polynomial.

        The plaintext is transformed once (not once per ciphertext
        component), in the same batched forward call as the components.
        """
        self._check_plain_ring(a, plaintext)
        transformed = self._forward_ntt_batch(list(a.polys) + [plaintext])
        plaintext_ntt = transformed[-1]
        primes = a.basis.primes
        products = [
            RnsPolynomial(
                a.basis,
                self.params.n,
                self.backend.mul_batch(poly.residues, plaintext_ntt.residues, primes),
                Domain.NTT,
                poly.cache,
            )
            for poly in transformed[:-1]
        ]
        polys = self._inverse_ntt_batch(products)
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    # -- multiplication -------------------------------------------------------------------
    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic multiplication (tensor product, result has size a.size + b.size - 1).

        Both operands' components are converted to the NTT domain in one
        batched backend call of ``(a.size + b.size) * np`` rows, multiplied
        element-wise, accumulated, and inverse-transformed in one batch of
        ``(a.size + b.size - 1) * np`` rows — the double-CRT strategy every
        RNS HE library uses, executed at the batch width the paper shows the
        hardware wants.
        """
        self._check_same_ring(a, b)
        transformed = self._forward_ntt_batch(list(a.polys) + list(b.polys))
        a_ntt = transformed[: a.size]
        b_ntt = transformed[a.size :]
        polys = self._tensor(a_ntt, b_ntt, a.basis)
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def square(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic squaring.

        The operand is forward-transformed *once* and tensored with itself —
        half the forward NTTs of ``multiply(a, a)``, which
        :attr:`ntt_invocations` reflects.
        """
        a_ntt = self._forward_ntt_batch(list(a.polys))
        polys = self._tensor(a_ntt, a_ntt, a.basis)
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    # -- relinearisation ---------------------------------------------------------------------
    def relinearize(self, a: Ciphertext, relin_key: RelinearizationKey) -> Ciphertext:
        """Reduce a size-3 ciphertext back to size 2 using the key-switching key.

        The per-prime digit products are accumulated in the NTT domain and
        inverse-transformed once at the end (NTT linearity makes this
        bit-identical to per-product inverse transforms, at ``np`` times
        fewer inverse NTTs).
        """
        if a.size == 2:
            return a.copy()
        if a.size != 3:
            raise ValueError("relinearisation supports size-3 ciphertexts only")
        if len(relin_key.components) != len(a.basis):
            raise ValueError("relinearisation key was generated for a different basis")
        c0, c1, c2 = a.polys
        primes = a.basis.primes
        # RNS digit decomposition of c2: one digit per prime, each with small
        # coefficients, paired with the matching key component.
        c2_coeffs = c2.to_big_coefficients()
        acc0: list[list[int]] | None = None
        acc1: list[list[int]] | None = None
        for (rk0, rk1), prime in zip(relin_key.components, primes):
            digit_coeffs = [value % prime for value in c2_coeffs]
            digit = RnsPolynomial.from_coefficients(digit_coeffs, a.basis)
            digit_ntt, rk0_ntt, rk1_ntt = self._forward_ntt_batch([digit, rk0, rk1])
            term0 = self.backend.mul_batch(digit_ntt.residues, rk0_ntt.residues, primes)
            term1 = self.backend.mul_batch(digit_ntt.residues, rk1_ntt.residues, primes)
            acc0 = term0 if acc0 is None else self.backend.add_batch(acc0, term0, primes)
            acc1 = term1 if acc1 is None else self.backend.add_batch(acc1, term1, primes)
        sum0, sum1 = self._inverse_ntt_batch(
            [
                RnsPolynomial(a.basis, self.params.n, acc0, Domain.NTT, c0.cache),
                RnsPolynomial(a.basis, self.params.n, acc1, Domain.NTT, c1.cache),
            ]
        )
        new_c0 = self._poly_add(c0, sum0)
        new_c1 = self._poly_add(c1, sum1)
        return Ciphertext(polys=[new_c0, new_c1], params=self.params, level=a.level)

    # -- modulus switching --------------------------------------------------------------------
    def mod_switch_to_next(self, a: Ciphertext) -> Ciphertext:
        """Drop the last RNS prime, scaling the ciphertext (and its noise) down.

        Requires the dropped prime ``q ≡ 1 (mod t)`` (guaranteed by
        :func:`repro.he.params.generate_bgv_primes`), which keeps the
        plaintext unchanged.  Each coefficient ``c`` is replaced by
        ``(c + δ) / q`` with ``δ ≡ -c (mod q)`` and ``δ ≡ 0 (mod t)``.
        """
        basis = a.basis
        if len(basis) < 2:
            raise ValueError("cannot modulus-switch below a single prime")
        t = self.params.plaintext_modulus
        q_last = basis.primes[-1]
        if q_last % t != 1:
            raise ValueError("modulus switching requires q_last ≡ 1 (mod t)")
        t_inv = pow(t, -1, q_last)
        new_basis = basis.drop_last(1)

        new_polys = []
        for poly in a.polys:
            coefficients = poly.to_big_coefficients(centered=True)
            switched = []
            for value in coefficients:
                correction = (-value * t_inv) % q_last
                # Center the correction so the added term stays small.
                if correction > q_last // 2:
                    correction -= q_last
                delta = t * correction
                switched.append((value + delta) // q_last)
            new_polys.append(RnsPolynomial.from_coefficients(switched, new_basis))
        return Ciphertext(polys=new_polys, params=self.params, level=a.level + 1)
