"""Homomorphic operations: addition, multiplication, relinearisation, modulus switching.

Every ciphertext multiplication performed here is, computationally, a batch
of ``np`` negacyclic polynomial multiplications — each of which is the
``iNTT(NTT(a) ⊙ NTT(b))`` pipeline the paper accelerates.  The evaluator
therefore also exposes :meth:`Evaluator.ntt_invocations`, the running count
of forward/inverse NTT calls it has triggered, which the examples use to
connect the HE layer to the GPU performance model.
"""

from __future__ import annotations

from ..rns.poly import Domain, RnsPolynomial
from .ciphertext import Ciphertext
from .keys import RelinearizationKey
from .params import HEParams

__all__ = ["Evaluator"]


class Evaluator:
    """Homomorphic evaluator for the RNS-BGV scheme."""

    def __init__(self, params: HEParams) -> None:
        self.params = params
        self._ntt_invocations = 0

    # -- bookkeeping -----------------------------------------------------------------
    @property
    def ntt_invocations(self) -> int:
        """Forward/inverse NTT invocations triggered so far (per RNS prime)."""
        return self._ntt_invocations

    def _count_poly_multiplications(self, count: int, basis_size: int) -> None:
        # One polynomial product = 2 forward + 1 inverse NTT per RNS prime.
        self._ntt_invocations += 3 * count * basis_size

    @staticmethod
    def _check_same_ring(a: Ciphertext, b: Ciphertext) -> None:
        if a.basis.primes != b.basis.primes:
            raise ValueError("ciphertexts are at different levels; mod-switch first")

    # -- linear operations ---------------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic addition (component-wise)."""
        self._check_same_ring(a, b)
        size = max(a.size, b.size)
        polys = []
        for index in range(size):
            if index < a.size and index < b.size:
                polys.append(a.polys[index] + b.polys[index])
            elif index < a.size:
                polys.append(a.polys[index].copy())
            else:
                polys.append(b.polys[index].copy())
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction."""
        self._check_same_ring(a, b)
        negated = Ciphertext(
            polys=[-poly for poly in b.polys], params=self.params, level=b.level
        )
        return self.add(a, negated)

    def negate(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic negation."""
        return Ciphertext(
            polys=[-poly for poly in a.polys], params=self.params, level=a.level
        )

    def add_plain(self, a: Ciphertext, plaintext: RnsPolynomial) -> Ciphertext:
        """Add an (unencrypted) plaintext polynomial."""
        polys = [a.polys[0] + plaintext] + [poly.copy() for poly in a.polys[1:]]
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def multiply_plain(self, a: Ciphertext, plaintext: RnsPolynomial) -> Ciphertext:
        """Multiply by an (unencrypted) plaintext polynomial."""
        self._count_poly_multiplications(a.size, len(a.basis))
        polys = [poly * plaintext for poly in a.polys]
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    # -- multiplication -------------------------------------------------------------------
    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic multiplication (tensor product, result has size a.size + b.size - 1)."""
        self._check_same_ring(a, b)
        result_size = a.size + b.size - 1
        zero = RnsPolynomial.zero(a.basis, self.params.n)
        accumulators = [zero for _ in range(result_size)]
        # Convert operands to the NTT domain once, multiply element-wise, and
        # accumulate — the double-CRT strategy every RNS HE library uses.
        a_ntt = [poly.to_ntt() for poly in a.polys]
        b_ntt = [poly.to_ntt() for poly in b.polys]
        self._ntt_invocations += (a.size + b.size) * len(a.basis)
        accumulators = [zero.to_ntt() for _ in range(result_size)]
        for i, poly_a in enumerate(a_ntt):
            for j, poly_b in enumerate(b_ntt):
                accumulators[i + j] = accumulators[i + j] + (poly_a * poly_b)
        self._ntt_invocations += result_size * len(a.basis)  # the inverse transforms
        polys = [accumulator.to_coefficient() for accumulator in accumulators]
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def square(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic squaring (multiply by itself)."""
        return self.multiply(a, a)

    # -- relinearisation ---------------------------------------------------------------------
    def relinearize(self, a: Ciphertext, relin_key: RelinearizationKey) -> Ciphertext:
        """Reduce a size-3 ciphertext back to size 2 using the key-switching key."""
        if a.size == 2:
            return a.copy()
        if a.size != 3:
            raise ValueError("relinearisation supports size-3 ciphertexts only")
        if len(relin_key.components) != len(a.basis):
            raise ValueError("relinearisation key was generated for a different basis")
        c0, c1, c2 = a.polys
        # RNS digit decomposition of c2: one digit per prime, each with small
        # coefficients, paired with the matching key component.
        c2_coeffs = c2.to_big_coefficients()
        new_c0 = c0.copy()
        new_c1 = c1.copy()
        for (rk0, rk1), prime in zip(relin_key.components, a.basis.primes):
            digit_coeffs = [value % prime for value in c2_coeffs]
            digit = RnsPolynomial.from_coefficients(digit_coeffs, a.basis)
            self._count_poly_multiplications(2, len(a.basis))
            new_c0 = new_c0 + digit * rk0
            new_c1 = new_c1 + digit * rk1
        return Ciphertext(polys=[new_c0, new_c1], params=self.params, level=a.level)

    # -- modulus switching --------------------------------------------------------------------
    def mod_switch_to_next(self, a: Ciphertext) -> Ciphertext:
        """Drop the last RNS prime, scaling the ciphertext (and its noise) down.

        Requires the dropped prime ``q ≡ 1 (mod t)`` (guaranteed by
        :func:`repro.he.params.generate_bgv_primes`), which keeps the
        plaintext unchanged.  Each coefficient ``c`` is replaced by
        ``(c + δ) / q`` with ``δ ≡ -c (mod q)`` and ``δ ≡ 0 (mod t)``.
        """
        basis = a.basis
        if len(basis) < 2:
            raise ValueError("cannot modulus-switch below a single prime")
        t = self.params.plaintext_modulus
        q_last = basis.primes[-1]
        if q_last % t != 1:
            raise ValueError("modulus switching requires q_last ≡ 1 (mod t)")
        t_inv = pow(t, -1, q_last)
        new_basis = basis.drop_last(1)

        new_polys = []
        for poly in a.polys:
            coefficients = poly.to_big_coefficients(centered=True)
            switched = []
            for value in coefficients:
                correction = (-value * t_inv) % q_last
                # Center the correction so the added term stays small.
                if correction > q_last // 2:
                    correction -= q_last
                delta = t * correction
                switched.append((value + delta) // q_last)
            new_polys.append(RnsPolynomial.from_coefficients(switched, new_basis))
        return Ciphertext(polys=new_polys, params=self.params, level=a.level + 1)
