"""Homomorphic operations: addition, multiplication, relinearisation, modulus switching.

Every ciphertext multiplication performed here is, computationally, a batch
of ``np`` negacyclic polynomial multiplications — each of which is the
``iNTT(NTT(a) ⊙ NTT(b))`` pipeline the paper accelerates.  Since the
op-graph redesign the evaluator is a *plan emitter*: each homomorphic
operation compiles (once — compiled plans are cached per operation shape)
into a declarative :class:`repro.backends.ops.Plan` and hands it to
:meth:`~repro.backends.base.ComputeBackend.execute` in a single call, so a
sharding backend can fuse the whole operation into one task per worker per
stage instead of one pool round trip per backend method — the CPU analogue
of the wide-batch kernel launches the paper's GPU amortises.  The previous
per-method path survives as **eager mode** (``mode="eager"``, the CLI's
``--eager``, or ``REPRO_EXECUTION=eager``); both modes are bit-for-bit
identical and both keep the whole chain resident:

* relinearisation decomposes the quadratic component into per-prime digits
  with ``digit_broadcast`` nodes (row ``i`` of the coefficient-domain
  residue matrix *is* the digit for prime ``i``);
* modulus switching uses the exact RNS formula
  ``(c_j + t*u_c) * q_last^{-1} mod p_j`` via ``mod_switch_drop_last``
  nodes, where the correction ``u_c`` is read off the dropped residue row
  alone.

A ``multiply → relinearize → mod_switch_to_next`` chain therefore performs
**zero** list ↔ ndarray conversions in either mode (asserted by the
backend's conversion counter in the test-suite) and, fused on the
``parallel`` backend, at most one pool dispatch per operation (asserted by
``dispatch_count``).

The evaluator also exposes :meth:`Evaluator.ntt_invocations`, the running
count of forward/inverse NTT calls it has triggered, which the examples use
to connect the HE layer to the GPU performance model.  The emission helpers
(``_emit_*``) are shared with :mod:`repro.he.pipeline`, which strings the
ops of a whole ciphertext expression into one plan.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..backends import ops
from ..backends.base import ComputeBackend, ResidueTensor
from ..backends.registry import resolve_backend
from ..compiler import ConstantPool, PassManager, count_ntt_rows
from ..compiler.manager import materialize_derived
from ..telemetry import TRACER
from ..telemetry.metrics import MetricsRegistry
from ..rns.basis import RnsBasis
from ..rns.poly import Domain, RnsPolynomial
from .ciphertext import Ciphertext
from .keys import RelinearizationKey
from .params import HEParams

__all__ = ["Evaluator"]


class _P:
    """A symbolic polynomial during plan emission: value index + ring metadata."""

    __slots__ = ("value", "domain", "basis")

    def __init__(self, value: int, domain: Domain, basis: RnsBasis) -> None:
        self.value = value
        self.domain = domain
        self.basis = basis


class _Emitter:
    """An :class:`~repro.backends.ops.OpGraph` plus emission bookkeeping."""

    __slots__ = ("graph", "ntt_rows")

    def __init__(self) -> None:
        self.graph = ops.OpGraph()
        #: Residue rows moved through forward/inverse NTT nodes — added to
        #: :attr:`Evaluator.ntt_invocations` each time the plan executes.
        self.ntt_rows = 0

    def bind(self, name: str, poly: RnsPolynomial) -> _P:
        """Declare a plan input carrying the polynomial's ring metadata."""
        return _P(self.graph.input(name), poly.domain, poly.basis)


class Evaluator:
    """Homomorphic evaluator for the RNS-BGV scheme.

    Args:
        params: Scheme parameters.
        backend: Compute backend the evaluator batches its residue-matrix
            work through (registry default when omitted, resolved **once** at
            construction).  All backends are bit-exact, so ciphertexts are
            interchangeable across evaluators with different backends —
            ciphertexts resident on a foreign backend are materialised once
            at the boundary (visible in the conversion counters).
        mode: ``"fused"`` (compile each operation into one plan and execute
            it in a single backend call — the default) or ``"eager"`` (the
            legacy one-backend-method-per-step path).  ``None`` resolves the
            documented precedence
            (:func:`repro.backends.ops.resolve_execution_mode`).  Both modes
            are bit-for-bit identical.
    """

    def __init__(
        self,
        params: HEParams,
        backend: ComputeBackend | str | None = None,
        mode: str | None = None,
        metrics: MetricsRegistry | None = None,
        passes=None,
        constant_pool: ConstantPool | None = None,
    ) -> None:
        self.params = params
        self.backend = resolve_backend(backend)
        self.mode = ops.resolve_execution_mode(mode)
        #: The evaluator's metrics namespace.  When an ``HeContext`` builds
        #: the evaluator it passes its own registry as the parent, so the
        #: context's snapshot aggregates every evaluator it handed out.
        self.metrics = MetricsRegistry(parent=metrics)
        self.metrics.declare(
            "plan.compiled",
            "plan.cache_hits",
            "ntt.invocations",
            "plan.pool.hits",
            "plan.pool.misses",
        )
        self._plan_cache: dict[tuple, tuple] = {}
        #: Optimiser pipeline resolved once at construction (like the
        #: backend and mode): ``passes`` accepts a spec per
        #: :func:`repro.compiler.resolve_passes`; ``None`` applies the
        #: documented precedence and ``"none"``/``()`` disables rewriting.
        self._pass_manager = PassManager(passes)
        #: NTT images of constant plan inputs (relinearisation keys,
        #: repeated plaintexts).  An ``HeContext`` shares one pool across
        #: every evaluator it hands out, so a key transformed for one
        #: evaluator stays resident for all of them.
        self._constant_pool = (
            constant_pool if constant_pool is not None else ConstantPool()
        )

    @property
    def passes(self) -> tuple[str, ...]:
        """The optimiser passes applied to compiled plans, in order."""
        return self._pass_manager.passes

    # -- bookkeeping -----------------------------------------------------------------
    @property
    def ntt_invocations(self) -> int:
        """Forward/inverse NTT invocations triggered so far (per RNS prime).

        Shim over ``metrics.value("ntt.invocations")``.
        """
        return self.metrics.value("ntt.invocations")

    @property
    def plans_compiled(self) -> int:
        """Distinct operation plans compiled so far (fused mode)."""
        return self.metrics.value("plan.compiled")

    @property
    def plan_cache_hits(self) -> int:
        """Fused executions that reused an already-compiled plan."""
        return self.metrics.value("plan.cache_hits")

    @staticmethod
    def _check_same_ring(a: Ciphertext, b: Ciphertext) -> None:
        if a.basis.primes != b.basis.primes:
            raise ValueError("ciphertexts are at different levels; mod-switch first")

    @staticmethod
    def _check_plain_ring(a: Ciphertext, plaintext: RnsPolynomial) -> None:
        if a.basis.primes != plaintext.basis.primes or plaintext.n != a.polys[0].n:
            raise ValueError(
                "plaintext lives in a different ring than the ciphertext; "
                "re-encode it for this level first"
            )

    # -- residency plumbing ------------------------------------------------------------
    def _adopt(self, poly: RnsPolynomial) -> RnsPolynomial:
        """The polynomial, resident on this evaluator's backend.

        A no-op (same handle) in the common case; a counted one-time boundary
        crossing when the ciphertext was produced on a different backend.
        """
        return poly.with_backend(self.backend)

    def _adopt_all(self, polys: Sequence[RnsPolynomial]) -> list[RnsPolynomial]:
        return [self._adopt(poly) for poly in polys]

    def _poly(self, tensor: ResidueTensor, basis: RnsBasis, domain: Domain) -> RnsPolynomial:
        return RnsPolynomial(basis, self.params.n, tensor, domain)

    def _poly_add(self, x: RnsPolynomial, y: RnsPolynomial) -> RnsPolynomial:
        x._check_compatible(y)
        return self._poly(
            self.backend.add(self._adopt(x).tensor, self._adopt(y).tensor),
            x.basis,
            x.domain,
        )

    def _poly_sub(self, x: RnsPolynomial, y: RnsPolynomial) -> RnsPolynomial:
        x._check_compatible(y)
        return self._poly(
            self.backend.sub(self._adopt(x).tensor, self._adopt(y).tensor),
            x.basis,
            x.domain,
        )

    def _poly_neg(self, x: RnsPolynomial) -> RnsPolynomial:
        return self._poly(self.backend.neg(self._adopt(x).tensor), x.basis, x.domain)

    # -- plan plumbing (fused mode) ----------------------------------------------------
    def _run_plan(
        self, key: tuple, build, bindings: dict, constants: tuple = ()
    ) -> list[RnsPolynomial]:
        """Fetch-or-compile the plan for ``key`` and execute it with ``bindings``.

        ``build`` returns ``(plan, output specs, ntt rows)``; it only runs on
        a cache miss, so repeated operations of the same shape — every
        iteration of a loop over ciphertexts, for instance — compile once and
        execute straight from the cache.  Freshly built plans run through the
        optimiser pipeline (see :mod:`repro.compiler`) before caching;
        ``constants`` names the bindings that are stable across executions
        (key components, repeated plaintexts).  When the residency pass
        hoists their transforms, two variants are cached: a *cold* plan that
        computes the constants' NTT images in-plan (same dispatch shape as
        the unoptimised plan) and exports them to seed the constant pool,
        and the *warm* plan that binds the pooled images and skips the
        transforms — the steady state every later execution runs in.
        """
        cached = self._plan_cache.get(key)
        if cached is None:
            if TRACER.enabled:
                with TRACER.span("plan.compile", op=str(key[0])):
                    plan, specs, ntt_rows = build()
            else:
                plan, specs, ntt_rows = build()
            derived: tuple = ()
            cold = None
            if self._pass_manager.passes:
                input_primes = {
                    name: bindings[name].primes
                    for name in plan.input_names
                    if name in bindings
                }
                optimized = self._pass_manager.run(
                    plan,
                    input_primes=input_primes,
                    constant_inputs=constants,
                    metrics=self.metrics,
                )
                if optimized.plan is not plan:
                    plan = optimized.plan
                    derived = optimized.derived_inputs
                    for derived_name, source in derived:
                        input_primes[derived_name] = input_primes[source]
                    # Recount: ntt.invocations reports transforms actually
                    # executed, so the static row count must track the
                    # optimised plan, not the emitted one.
                    ntt_rows = count_ntt_rows(plan, input_primes)
                    if derived:
                        cold_plan, const_outputs = materialize_derived(
                            plan, derived, input_primes
                        )
                        cold = (
                            cold_plan,
                            count_ntt_rows(cold_plan, input_primes),
                            const_outputs,
                        )
            cached = (plan, specs, ntt_rows, derived, cold)
            self._plan_cache[key] = cached
            self.metrics.inc("plan.compiled")
        else:
            self.metrics.inc("plan.cache_hits")
        plan, specs, ntt_rows, derived, cold = cached
        if derived:
            pooled: dict[str, ResidueTensor] = {}
            for derived_name, source in derived:
                image = self._constant_pool.lookup(bindings[source])
                if image is None:
                    pooled.clear()
                    break
                pooled[derived_name] = image
            if pooled:
                self.metrics.inc("plan.pool.hits", len(derived))
                bindings = dict(bindings)
                bindings.update(pooled)
            else:
                # Cold start: one execution of the seeding variant fills the
                # pool; dispatch count and bit-level results match the
                # unoptimised plan exactly.
                self.metrics.inc("plan.pool.misses", len(derived))
                cold_plan, cold_rows, const_outputs = cold
                outputs = self.backend.execute(cold_plan, bindings)
                for output_name, source in const_outputs:
                    self._constant_pool.store(
                        bindings[source], outputs[output_name]
                    )
                self.metrics.inc("ntt.invocations", cold_rows)
                return [
                    self._poly(outputs[name], basis, domain)
                    for name, basis, domain in specs
                ]
        outputs = self.backend.execute(plan, bindings)
        self.metrics.inc("ntt.invocations", ntt_rows)
        return [
            self._poly(outputs[name], basis, domain) for name, basis, domain in specs
        ]

    @staticmethod
    def _finish(em: _Emitter, polys: Sequence[_P]) -> tuple:
        specs = []
        for index, poly in enumerate(polys):
            name = "out%d" % index
            em.graph.output(name, poly.value)
            specs.append((name, poly.basis, poly.domain))
        return em.graph.compile(), tuple(specs), em.ntt_rows

    @staticmethod
    def _domains(polys: Sequence[RnsPolynomial]) -> tuple:
        return tuple(poly.domain for poly in polys)

    # -- emission helpers (shared with repro.he.pipeline) ------------------------------
    def _emit_ntt_batch(
        self, em: _Emitter, polys: Sequence[_P], forward: bool
    ) -> list[_P]:
        """Emit one batched transform covering every pending polynomial.

        The plan-level mirror of the eager batching path: values still in the
        source domain are concatenated into one wide transform node and split
        back; values already converted pass through untouched.
        """
        source = Domain.COEFFICIENT if forward else Domain.NTT
        target = Domain.NTT if forward else Domain.COEFFICIENT
        graph = em.graph
        results = list(polys)
        pending = [i for i, poly in enumerate(results) if poly.domain is source]
        if not pending:
            return results
        transform = graph.forward_ntt if forward else graph.inverse_ntt
        if len(pending) == 1:
            pieces = [transform(results[pending[0]].value)]
        else:
            stacked = graph.concat([results[i].value for i in pending])
            pieces = graph.split(
                transform(stacked), [results[i].basis.count for i in pending]
            )
        for i, piece in zip(pending, pieces):
            results[i] = _P(piece, target, results[i].basis)
            em.ntt_rows += results[i].basis.count
        return results

    def _emit_poly_add(self, em: _Emitter, x: _P, y: _P) -> _P:
        self._check_emit_compatible(x, y)
        return _P(em.graph.add(x.value, y.value), x.domain, x.basis)

    def _emit_poly_sub(self, em: _Emitter, x: _P, y: _P) -> _P:
        self._check_emit_compatible(x, y)
        return _P(em.graph.sub(x.value, y.value), x.domain, x.basis)

    @staticmethod
    def _check_emit_compatible(x: _P, y: _P) -> None:
        # Mirrors RnsPolynomial._check_compatible for symbolic polynomials.
        if x.basis.primes != y.basis.primes:
            raise ValueError("polynomials live in different rings")
        if x.domain is not y.domain:
            raise ValueError(
                "domain mismatch: %s vs %s — convert explicitly first"
                % (x.domain.value, y.domain.value)
            )

    def _emit_tensor(
        self, em: _Emitter, a_ntt: Sequence[_P], b_ntt: Sequence[_P]
    ) -> list[_P]:
        """NTT-domain tensor product, returned in the coefficient domain."""
        graph = em.graph
        basis = a_ntt[0].basis
        result_size = len(a_ntt) + len(b_ntt) - 1
        accumulators: list[int | None] = [None] * result_size
        for i, poly_a in enumerate(a_ntt):
            for j, poly_b in enumerate(b_ntt):
                term = graph.mul(poly_a.value, poly_b.value)
                k = i + j
                accumulators[k] = (
                    term
                    if accumulators[k] is None
                    else graph.add(accumulators[k], term)
                )
        products = [_P(value, Domain.NTT, basis) for value in accumulators]
        return self._emit_ntt_batch(em, products, forward=False)

    def _emit_multiply(self, em: _Emitter, sa: Sequence[_P], sb: Sequence[_P]) -> list[_P]:
        if sa[0].basis.primes != sb[0].basis.primes:
            raise ValueError("ciphertexts are at different levels; mod-switch first")
        transformed = self._emit_ntt_batch(em, list(sa) + list(sb), forward=True)
        return self._emit_tensor(em, transformed[: len(sa)], transformed[len(sa) :])

    def _emit_square(self, em: _Emitter, sa: Sequence[_P]) -> list[_P]:
        a_ntt = self._emit_ntt_batch(em, list(sa), forward=True)
        return self._emit_tensor(em, a_ntt, a_ntt)

    def _emit_linear(
        self, em: _Emitter, sa: Sequence[_P], sb: Sequence[_P], subtract: bool
    ) -> list[_P]:
        graph = em.graph
        combine = self._emit_poly_sub if subtract else self._emit_poly_add
        size = max(len(sa), len(sb))
        polys = []
        for index in range(size):
            if index < len(sa) and index < len(sb):
                polys.append(combine(em, sa[index], sb[index]))
            elif index < len(sa):
                poly = sa[index]
                polys.append(_P(graph.copy(poly.value), poly.domain, poly.basis))
            elif subtract:
                poly = sb[index]
                polys.append(_P(graph.neg(poly.value), poly.domain, poly.basis))
            else:
                poly = sb[index]
                polys.append(_P(graph.copy(poly.value), poly.domain, poly.basis))
        return polys

    def _emit_negate(self, em: _Emitter, sa: Sequence[_P]) -> list[_P]:
        return [_P(em.graph.neg(p.value), p.domain, p.basis) for p in sa]

    def _emit_relinearize(
        self, em: _Emitter, sa: Sequence[_P], srk: Sequence[tuple[_P, _P]]
    ) -> list[_P]:
        graph = em.graph
        if len(sa) == 2:
            return [_P(graph.copy(p.value), p.domain, p.basis) for p in sa]
        if len(sa) != 3:
            raise ValueError("relinearisation supports size-3 ciphertexts only")
        basis = sa[0].basis
        if len(srk) != len(basis):
            raise ValueError("relinearisation key was generated for a different basis")
        c0, c1, c2 = sa
        c2_coeff = self._emit_ntt_batch(em, [c2], forward=False)[0]
        acc0: int | None = None
        acc1: int | None = None
        for index, (rk0, rk1) in enumerate(srk):
            digit = _P(
                graph.digit_broadcast(c2_coeff.value, index),
                Domain.COEFFICIENT,
                basis,
            )
            digit_ntt, rk0_ntt, rk1_ntt = self._emit_ntt_batch(
                em, [digit, rk0, rk1], forward=True
            )
            term0 = graph.mul(digit_ntt.value, rk0_ntt.value)
            term1 = graph.mul(digit_ntt.value, rk1_ntt.value)
            acc0 = term0 if acc0 is None else graph.add(acc0, term0)
            acc1 = term1 if acc1 is None else graph.add(acc1, term1)
        sum0, sum1 = self._emit_ntt_batch(
            em,
            [_P(acc0, Domain.NTT, basis), _P(acc1, Domain.NTT, basis)],
            forward=False,
        )
        return [
            self._emit_poly_add(em, c0, sum0),
            self._emit_poly_add(em, c1, sum1),
        ]

    def _emit_mod_switch(self, em: _Emitter, sa: Sequence[_P], t: int) -> list[_P]:
        basis = sa[0].basis
        if len(basis) < 2:
            raise ValueError("cannot modulus-switch below a single prime")
        if basis.primes[-1] % t != 1:
            raise ValueError("modulus switching requires q_last ≡ 1 (mod t)")
        coeffs = self._emit_ntt_batch(em, list(sa), forward=False)
        new_basis = basis.drop_last(1)
        return [
            _P(
                em.graph.mod_switch_drop_last(poly.value, t),
                Domain.COEFFICIENT,
                new_basis,
            )
            for poly in coeffs
        ]

    def _emit_add_plain(self, em: _Emitter, sa: Sequence[_P], pt: _P) -> list[_P]:
        graph = em.graph
        return [self._emit_poly_add(em, sa[0], pt)] + [
            _P(graph.copy(p.value), p.domain, p.basis) for p in sa[1:]
        ]

    def _emit_multiply_plain(self, em: _Emitter, sa: Sequence[_P], pt: _P) -> list[_P]:
        graph = em.graph
        basis = sa[0].basis
        transformed = self._emit_ntt_batch(em, list(sa) + [pt], forward=True)
        plaintext_ntt = transformed[-1]
        products = [
            _P(graph.mul(poly.value, plaintext_ntt.value), Domain.NTT, basis)
            for poly in transformed[:-1]
        ]
        return self._emit_ntt_batch(em, products, forward=False)

    # -- fused dispatch ----------------------------------------------------------------
    def _fused_unary(self, emit, a: Ciphertext, op: str, level: int | None = None):
        polys = self._adopt_all(a.polys)
        key = (op, a.basis.primes, self._domains(polys))

        def build():
            em = _Emitter()
            sa = [
                _P(em.graph.input("a%d" % i), poly.domain, poly.basis)
                for i, poly in enumerate(polys)
            ]
            return self._finish(em, emit(em, sa))

        bindings = {"a%d" % i: poly.tensor for i, poly in enumerate(polys)}
        out = self._run_plan(key, build, bindings)
        return Ciphertext(
            polys=out, params=self.params, level=a.level if level is None else level
        )

    def _fused_binary(self, emit, op: str, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        polys_a = self._adopt_all(a.polys)
        polys_b = self._adopt_all(b.polys)
        key = (op, a.basis.primes, self._domains(polys_a), self._domains(polys_b))

        def build():
            em = _Emitter()
            sa = [
                _P(em.graph.input("a%d" % i), poly.domain, poly.basis)
                for i, poly in enumerate(polys_a)
            ]
            sb = [
                _P(em.graph.input("b%d" % i), poly.domain, poly.basis)
                for i, poly in enumerate(polys_b)
            ]
            return self._finish(em, emit(em, sa, sb))

        bindings = {"a%d" % i: poly.tensor for i, poly in enumerate(polys_a)}
        bindings.update({"b%d" % i: poly.tensor for i, poly in enumerate(polys_b)})
        out = self._run_plan(key, build, bindings)
        return Ciphertext(polys=out, params=self.params, level=a.level)

    def _fused_with_plain(
        self, emit, op: str, a: Ciphertext, plaintext: RnsPolynomial
    ) -> Ciphertext:
        polys = self._adopt_all(a.polys)
        plain = self._adopt(plaintext)
        key = (op, a.basis.primes, self._domains(polys), plain.domain)

        def build():
            em = _Emitter()
            sa = [
                _P(em.graph.input("a%d" % i), poly.domain, poly.basis)
                for i, poly in enumerate(polys)
            ]
            pt = em.bind("pt", plain)
            return self._finish(em, emit(em, sa, pt))

        bindings = {"a%d" % i: poly.tensor for i, poly in enumerate(polys)}
        bindings["pt"] = plain.tensor
        # The plaintext is the stable operand of the two plain-operand ops:
        # callers re-use encoded plaintexts across many ciphertexts, so the
        # residency pass may keep its NTT image pooled across executions.
        out = self._run_plan(key, build, bindings, constants=("pt",))
        return Ciphertext(polys=out, params=self.params, level=a.level)

    # -- batched NTT plumbing (eager mode) ---------------------------------------------
    def _forward_ntt_batch(
        self, polys: Sequence[RnsPolynomial]
    ) -> list[RnsPolynomial]:
        """Transform every coefficient-domain polynomial in one backend batch.

        This is the paper's core batching observation applied at the HE
        layer: the ``(number of polynomials) x np`` independent forward NTTs
        of a ciphertext operation are issued as a single wide call instead of
        one polynomial at a time — the pending tensors are concatenated into
        one resident batch, transformed, and split back.  Only
        actually-performed transforms are counted.
        """
        return self._ntt_batch(polys, forward=True)

    def _inverse_ntt_batch(
        self, polys: Sequence[RnsPolynomial]
    ) -> list[RnsPolynomial]:
        """Transform every NTT-domain polynomial back in one backend batch."""
        return self._ntt_batch(polys, forward=False)

    def _ntt_batch(
        self, polys: Sequence[RnsPolynomial], forward: bool
    ) -> list[RnsPolynomial]:
        source = Domain.COEFFICIENT if forward else Domain.NTT
        target = Domain.NTT if forward else Domain.COEFFICIENT
        results = self._adopt_all(polys)
        pending = [i for i, poly in enumerate(results) if poly.domain is source]
        if not pending:
            return results
        stacked = self.backend.concat([results[i].tensor for i in pending])
        transformed = (
            self.backend.forward_ntt_batch(stacked)
            if forward
            else self.backend.inverse_ntt_batch(stacked)
        )
        pieces = self.backend.split(
            transformed, [results[i].basis.count for i in pending]
        )
        for i, piece in zip(pending, pieces):
            results[i] = self._poly(piece, results[i].basis, target)
            self.metrics.inc("ntt.invocations", piece.count)
        return results

    def _tensor(
        self,
        a_ntt: Sequence[RnsPolynomial],
        b_ntt: Sequence[RnsPolynomial],
        basis: RnsBasis,
    ) -> list[RnsPolynomial]:
        """NTT-domain tensor product, returned in the coefficient domain."""
        result_size = len(a_ntt) + len(b_ntt) - 1
        accumulators: list[ResidueTensor | None] = [None] * result_size
        for i, poly_a in enumerate(a_ntt):
            for j, poly_b in enumerate(b_ntt):
                term = self.backend.mul(poly_a.tensor, poly_b.tensor)
                k = i + j
                accumulators[k] = (
                    term
                    if accumulators[k] is None
                    else self.backend.add(accumulators[k], term)
                )
        products = [
            self._poly(tensor, basis, Domain.NTT) for tensor in accumulators
        ]
        return self._inverse_ntt_batch(products)

    # -- linear operations ---------------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic addition (component-wise)."""
        self._check_same_ring(a, b)
        if self.mode == "eager":
            return self._eager_linear(a, b, subtract=False)
        return self._fused_binary(
            lambda em, sa, sb: self._emit_linear(em, sa, sb, subtract=False),
            "add",
            a,
            b,
        )

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction."""
        self._check_same_ring(a, b)
        if self.mode == "eager":
            return self._eager_linear(a, b, subtract=True)
        return self._fused_binary(
            lambda em, sa, sb: self._emit_linear(em, sa, sb, subtract=True),
            "sub",
            a,
            b,
        )

    def _eager_linear(self, a: Ciphertext, b: Ciphertext, subtract: bool) -> Ciphertext:
        combine = self._poly_sub if subtract else self._poly_add
        size = max(a.size, b.size)
        polys = []
        for index in range(size):
            if index < a.size and index < b.size:
                polys.append(combine(a.polys[index], b.polys[index]))
            elif index < a.size:
                polys.append(self._adopt(a.polys[index]).copy())
            elif subtract:
                polys.append(self._poly_neg(b.polys[index]))
            else:
                polys.append(self._adopt(b.polys[index]).copy())
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def negate(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic negation."""
        if self.mode == "eager":
            return Ciphertext(
                polys=[self._poly_neg(poly) for poly in a.polys],
                params=self.params,
                level=a.level,
            )
        return self._fused_unary(self._emit_negate, a, "negate")

    def add_plain(self, a: Ciphertext, plaintext: RnsPolynomial) -> Ciphertext:
        """Add an (unencrypted) plaintext polynomial."""
        self._check_plain_ring(a, plaintext)
        if self.mode == "eager":
            polys = [self._poly_add(a.polys[0], plaintext)] + [
                self._adopt(poly).copy() for poly in a.polys[1:]
            ]
            return Ciphertext(polys=polys, params=self.params, level=a.level)
        return self._fused_with_plain(self._emit_add_plain, "add_plain", a, plaintext)

    def multiply_plain(self, a: Ciphertext, plaintext: RnsPolynomial) -> Ciphertext:
        """Multiply by an (unencrypted) plaintext polynomial.

        The plaintext is transformed once (not once per ciphertext
        component), in the same batched forward call as the components.
        """
        self._check_plain_ring(a, plaintext)
        if self.mode == "eager":
            transformed = self._forward_ntt_batch(list(a.polys) + [plaintext])
            plaintext_ntt = transformed[-1]
            products = [
                self._poly(
                    self.backend.mul(poly.tensor, plaintext_ntt.tensor),
                    a.basis,
                    Domain.NTT,
                )
                for poly in transformed[:-1]
            ]
            polys = self._inverse_ntt_batch(products)
            return Ciphertext(polys=polys, params=self.params, level=a.level)
        return self._fused_with_plain(
            self._emit_multiply_plain, "multiply_plain", a, plaintext
        )

    # -- multiplication -------------------------------------------------------------------
    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic multiplication (tensor product, result has size a.size + b.size - 1).

        Both operands' components are converted to the NTT domain in one
        batched backend call of ``(a.size + b.size) * np`` rows, multiplied
        element-wise, accumulated, and inverse-transformed in one batch of
        ``(a.size + b.size - 1) * np`` rows — the double-CRT strategy every
        RNS HE library uses, executed at the batch width the paper shows the
        hardware wants.  In fused mode the whole operation is one compiled
        plan: a single ``execute`` call, one pool dispatch on the sharded
        backend.
        """
        self._check_same_ring(a, b)
        if self.mode == "eager":
            transformed = self._forward_ntt_batch(list(a.polys) + list(b.polys))
            a_ntt = transformed[: a.size]
            b_ntt = transformed[a.size :]
            polys = self._tensor(a_ntt, b_ntt, a.basis)
            return Ciphertext(polys=polys, params=self.params, level=a.level)
        return self._fused_binary(self._emit_multiply, "multiply", a, b)

    def square(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic squaring.

        The operand is forward-transformed *once* and tensored with itself —
        half the forward NTTs of ``multiply(a, a)``, which
        :attr:`ntt_invocations` reflects.
        """
        if self.mode == "eager":
            a_ntt = self._forward_ntt_batch(list(a.polys))
            polys = self._tensor(a_ntt, a_ntt, a.basis)
            return Ciphertext(polys=polys, params=self.params, level=a.level)
        return self._fused_unary(self._emit_square, a, "square")

    # -- relinearisation ---------------------------------------------------------------------
    def relinearize(self, a: Ciphertext, relin_key: RelinearizationKey) -> Ciphertext:
        """Reduce a size-3 ciphertext back to size 2 using the key-switching key.

        The RNS digit decomposition never reconstructs big integers: row ``i``
        of the coefficient-domain residue matrix of ``c2`` *is* ``c2 mod q_i``
        already reduced, so the ``digit_broadcast`` node re-reduces that
        single resident row across the basis to form the digit paired with
        key component ``i``.  The per-prime digit products are accumulated in
        the NTT domain and inverse-transformed once at the end (NTT linearity
        makes this bit-identical to per-product inverse transforms, at ``np``
        times fewer inverse NTTs).  In fused mode the whole key switch is one
        plan — on the sharded backend one dispatch, with the digit rows read
        straight out of shared memory by every worker.
        """
        if a.size == 2:
            return a.copy()
        if a.size != 3:
            raise ValueError("relinearisation supports size-3 ciphertexts only")
        if len(relin_key.components) != len(a.basis):
            raise ValueError("relinearisation key was generated for a different basis")
        if self.mode == "eager":
            return self._eager_relinearize(a, relin_key)
        polys = self._adopt_all(a.polys)
        rk = [
            (self._adopt(rk0), self._adopt(rk1))
            for rk0, rk1 in relin_key.components
        ]
        key = (
            "relinearize",
            a.basis.primes,
            self._domains(polys),
            tuple((rk0.domain, rk1.domain) for rk0, rk1 in rk),
        )

        def build():
            em = _Emitter()
            sa = [
                _P(em.graph.input("c%d" % i), poly.domain, poly.basis)
                for i, poly in enumerate(polys)
            ]
            srk = [
                (em.bind("rk0_%d" % i, rk0), em.bind("rk1_%d" % i, rk1))
                for i, (rk0, rk1) in enumerate(rk)
            ]
            return self._finish(em, self._emit_relinearize(em, sa, srk))

        bindings = {"c%d" % i: poly.tensor for i, poly in enumerate(polys)}
        constants = []
        for i, (rk0, rk1) in enumerate(rk):
            bindings["rk0_%d" % i] = rk0.tensor
            bindings["rk1_%d" % i] = rk1.tensor
            constants += ["rk0_%d" % i, "rk1_%d" % i]
        # Key components are cached on the context, so their tensors keep a
        # stable identity across calls — the residency pass hoists their
        # forward transforms into the constant pool (2 of the 3 forward
        # rows per digit of every subsequent relinearisation).
        out = self._run_plan(key, build, bindings, constants=tuple(constants))
        return Ciphertext(polys=out, params=self.params, level=a.level)

    def _eager_relinearize(
        self, a: Ciphertext, relin_key: RelinearizationKey
    ) -> Ciphertext:
        c0, c1, c2 = self._adopt_all(a.polys)
        basis = a.basis
        c2_coeff = c2.to_coefficient()
        acc0: ResidueTensor | None = None
        acc1: ResidueTensor | None = None
        for index, (rk0, rk1) in enumerate(relin_key.components):
            digit = self._poly(
                self.backend.digit_broadcast(c2_coeff.tensor, index),
                basis,
                Domain.COEFFICIENT,
            )
            digit_ntt, rk0_ntt, rk1_ntt = self._forward_ntt_batch([digit, rk0, rk1])
            term0 = self.backend.mul(digit_ntt.tensor, rk0_ntt.tensor)
            term1 = self.backend.mul(digit_ntt.tensor, rk1_ntt.tensor)
            acc0 = term0 if acc0 is None else self.backend.add(acc0, term0)
            acc1 = term1 if acc1 is None else self.backend.add(acc1, term1)
        sum0, sum1 = self._inverse_ntt_batch(
            [
                self._poly(acc0, basis, Domain.NTT),
                self._poly(acc1, basis, Domain.NTT),
            ]
        )
        new_c0 = self._poly_add(c0, sum0)
        new_c1 = self._poly_add(c1, sum1)
        return Ciphertext(polys=[new_c0, new_c1], params=self.params, level=a.level)

    # -- modulus switching --------------------------------------------------------------------
    def mod_switch_to_next(self, a: Ciphertext) -> Ciphertext:
        """Drop the last RNS prime, scaling the ciphertext (and its noise) down.

        Requires the dropped prime ``q ≡ 1 (mod t)`` (guaranteed by
        :func:`repro.he.params.generate_bgv_primes`), which keeps the
        plaintext unchanged.  Each coefficient ``c`` is replaced by
        ``(c + δ) / q`` with ``δ ≡ -c (mod q)`` and ``δ ≡ 0 (mod t)`` —
        computed entirely in RNS by ``mod_switch_drop_last`` nodes, since
        ``δ`` depends only on the dropped residue row and the division
        becomes a per-prime multiplication by ``q^{-1} mod p_j``.  In fused
        mode all components switch in one plan (one dispatch on the sharded
        backend, each worker reading the dropped row from shared memory).
        """
        basis = a.basis
        if len(basis) < 2:
            raise ValueError("cannot modulus-switch below a single prime")
        t = self.params.plaintext_modulus
        q_last = basis.primes[-1]
        if q_last % t != 1:
            raise ValueError("modulus switching requires q_last ≡ 1 (mod t)")
        if self.mode == "eager":
            new_basis = basis.drop_last(1)
            new_polys = []
            for poly in self._adopt_all(a.polys):
                coeff = poly.to_coefficient()
                new_polys.append(
                    RnsPolynomial(
                        new_basis,
                        self.params.n,
                        self.backend.mod_switch_drop_last(coeff.tensor, t),
                        Domain.COEFFICIENT,
                    )
                )
            return Ciphertext(polys=new_polys, params=self.params, level=a.level + 1)
        return self._fused_unary(
            lambda em, sa: self._emit_mod_switch(em, sa, t),
            a,
            "mod_switch",
            level=a.level + 1,
        )
