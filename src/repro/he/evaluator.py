"""Homomorphic operations: addition, multiplication, relinearisation, modulus switching.

Every ciphertext multiplication performed here is, computationally, a batch
of ``np`` negacyclic polynomial multiplications — each of which is the
``iNTT(NTT(a) ⊙ NTT(b))`` pipeline the paper accelerates.  Since the
resident-tensor redesign the whole evaluator is a *handle pipeline*: a
``multiply → relinearize → mod_switch_to_next`` chain moves
:class:`~repro.backends.base.ResidueTensor` handles between backend calls
and performs **zero** list ↔ ndarray conversions (asserted by the backend's
conversion counter in the test-suite).  Even the two classically
CRT-reconstructing steps stay in RNS:

* relinearisation decomposes the quadratic component into per-prime digits
  with :meth:`~repro.backends.base.ComputeBackend.digit_broadcast` (row ``i``
  of the coefficient-domain residue matrix *is* the digit for prime ``i``);
* modulus switching uses the exact RNS formula
  ``(c_j + t*u_c) * q_last^{-1} mod p_j`` via
  :meth:`~repro.backends.base.ComputeBackend.mod_switch_drop_last`, where the
  correction ``u_c`` is read off the dropped residue row alone.

The evaluator also exposes :meth:`Evaluator.ntt_invocations`, the running
count of forward/inverse NTT calls it has triggered, which the examples use
to connect the HE layer to the GPU performance model.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..backends.base import ComputeBackend, ResidueTensor
from ..backends.registry import resolve_backend
from ..rns.basis import RnsBasis
from ..rns.poly import Domain, RnsPolynomial
from .ciphertext import Ciphertext
from .keys import RelinearizationKey
from .params import HEParams

__all__ = ["Evaluator"]


class Evaluator:
    """Homomorphic evaluator for the RNS-BGV scheme.

    Args:
        params: Scheme parameters.
        backend: Compute backend the evaluator batches its residue-matrix
            work through (registry default when omitted, resolved **once** at
            construction).  All backends are bit-exact, so ciphertexts are
            interchangeable across evaluators with different backends —
            ciphertexts resident on a foreign backend are materialised once
            at the boundary (visible in the conversion counters).
    """

    def __init__(
        self, params: HEParams, backend: ComputeBackend | str | None = None
    ) -> None:
        self.params = params
        self.backend = resolve_backend(backend)
        self._ntt_invocations = 0

    # -- bookkeeping -----------------------------------------------------------------
    @property
    def ntt_invocations(self) -> int:
        """Forward/inverse NTT invocations triggered so far (per RNS prime)."""
        return self._ntt_invocations

    @staticmethod
    def _check_same_ring(a: Ciphertext, b: Ciphertext) -> None:
        if a.basis.primes != b.basis.primes:
            raise ValueError("ciphertexts are at different levels; mod-switch first")

    @staticmethod
    def _check_plain_ring(a: Ciphertext, plaintext: RnsPolynomial) -> None:
        if a.basis.primes != plaintext.basis.primes or plaintext.n != a.polys[0].n:
            raise ValueError(
                "plaintext lives in a different ring than the ciphertext; "
                "re-encode it for this level first"
            )

    # -- residency plumbing ------------------------------------------------------------
    def _adopt(self, poly: RnsPolynomial) -> RnsPolynomial:
        """The polynomial, resident on this evaluator's backend.

        A no-op (same handle) in the common case; a counted one-time boundary
        crossing when the ciphertext was produced on a different backend.
        """
        return poly.with_backend(self.backend)

    def _adopt_all(self, polys: Sequence[RnsPolynomial]) -> list[RnsPolynomial]:
        return [self._adopt(poly) for poly in polys]

    def _poly(self, tensor: ResidueTensor, basis: RnsBasis, domain: Domain) -> RnsPolynomial:
        return RnsPolynomial(basis, self.params.n, tensor, domain)

    def _poly_add(self, x: RnsPolynomial, y: RnsPolynomial) -> RnsPolynomial:
        x._check_compatible(y)
        return self._poly(
            self.backend.add(self._adopt(x).tensor, self._adopt(y).tensor),
            x.basis,
            x.domain,
        )

    def _poly_sub(self, x: RnsPolynomial, y: RnsPolynomial) -> RnsPolynomial:
        x._check_compatible(y)
        return self._poly(
            self.backend.sub(self._adopt(x).tensor, self._adopt(y).tensor),
            x.basis,
            x.domain,
        )

    def _poly_neg(self, x: RnsPolynomial) -> RnsPolynomial:
        return self._poly(self.backend.neg(self._adopt(x).tensor), x.basis, x.domain)

    # -- batched NTT plumbing ---------------------------------------------------------
    def _forward_ntt_batch(
        self, polys: Sequence[RnsPolynomial]
    ) -> list[RnsPolynomial]:
        """Transform every coefficient-domain polynomial in one backend batch.

        This is the paper's core batching observation applied at the HE
        layer: the ``(number of polynomials) x np`` independent forward NTTs
        of a ciphertext operation are issued as a single wide call instead of
        one polynomial at a time — the pending tensors are concatenated into
        one resident batch, transformed, and split back.  Only
        actually-performed transforms are counted.
        """
        return self._ntt_batch(polys, forward=True)

    def _inverse_ntt_batch(
        self, polys: Sequence[RnsPolynomial]
    ) -> list[RnsPolynomial]:
        """Transform every NTT-domain polynomial back in one backend batch."""
        return self._ntt_batch(polys, forward=False)

    def _ntt_batch(
        self, polys: Sequence[RnsPolynomial], forward: bool
    ) -> list[RnsPolynomial]:
        source = Domain.COEFFICIENT if forward else Domain.NTT
        target = Domain.NTT if forward else Domain.COEFFICIENT
        results = self._adopt_all(polys)
        pending = [i for i, poly in enumerate(results) if poly.domain is source]
        if not pending:
            return results
        stacked = self.backend.concat([results[i].tensor for i in pending])
        transformed = (
            self.backend.forward_ntt_batch(stacked)
            if forward
            else self.backend.inverse_ntt_batch(stacked)
        )
        pieces = self.backend.split(
            transformed, [results[i].basis.count for i in pending]
        )
        for i, piece in zip(pending, pieces):
            results[i] = self._poly(piece, results[i].basis, target)
            self._ntt_invocations += piece.count
        return results

    def _tensor(
        self,
        a_ntt: Sequence[RnsPolynomial],
        b_ntt: Sequence[RnsPolynomial],
        basis: RnsBasis,
    ) -> list[RnsPolynomial]:
        """NTT-domain tensor product, returned in the coefficient domain."""
        result_size = len(a_ntt) + len(b_ntt) - 1
        accumulators: list[ResidueTensor | None] = [None] * result_size
        for i, poly_a in enumerate(a_ntt):
            for j, poly_b in enumerate(b_ntt):
                term = self.backend.mul(poly_a.tensor, poly_b.tensor)
                k = i + j
                accumulators[k] = (
                    term
                    if accumulators[k] is None
                    else self.backend.add(accumulators[k], term)
                )
        products = [
            self._poly(tensor, basis, Domain.NTT) for tensor in accumulators
        ]
        return self._inverse_ntt_batch(products)

    # -- linear operations ---------------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic addition (component-wise)."""
        self._check_same_ring(a, b)
        size = max(a.size, b.size)
        polys = []
        for index in range(size):
            if index < a.size and index < b.size:
                polys.append(self._poly_add(a.polys[index], b.polys[index]))
            elif index < a.size:
                polys.append(self._adopt(a.polys[index]).copy())
            else:
                polys.append(self._adopt(b.polys[index]).copy())
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction."""
        self._check_same_ring(a, b)
        size = max(a.size, b.size)
        polys = []
        for index in range(size):
            if index < a.size and index < b.size:
                polys.append(self._poly_sub(a.polys[index], b.polys[index]))
            elif index < a.size:
                polys.append(self._adopt(a.polys[index]).copy())
            else:
                polys.append(self._poly_neg(b.polys[index]))
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def negate(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic negation."""
        return Ciphertext(
            polys=[self._poly_neg(poly) for poly in a.polys],
            params=self.params,
            level=a.level,
        )

    def add_plain(self, a: Ciphertext, plaintext: RnsPolynomial) -> Ciphertext:
        """Add an (unencrypted) plaintext polynomial."""
        self._check_plain_ring(a, plaintext)
        polys = [self._poly_add(a.polys[0], plaintext)] + [
            self._adopt(poly).copy() for poly in a.polys[1:]
        ]
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def multiply_plain(self, a: Ciphertext, plaintext: RnsPolynomial) -> Ciphertext:
        """Multiply by an (unencrypted) plaintext polynomial.

        The plaintext is transformed once (not once per ciphertext
        component), in the same batched forward call as the components.
        """
        self._check_plain_ring(a, plaintext)
        transformed = self._forward_ntt_batch(list(a.polys) + [plaintext])
        plaintext_ntt = transformed[-1]
        products = [
            self._poly(
                self.backend.mul(poly.tensor, plaintext_ntt.tensor),
                a.basis,
                Domain.NTT,
            )
            for poly in transformed[:-1]
        ]
        polys = self._inverse_ntt_batch(products)
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    # -- multiplication -------------------------------------------------------------------
    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic multiplication (tensor product, result has size a.size + b.size - 1).

        Both operands' components are converted to the NTT domain in one
        batched backend call of ``(a.size + b.size) * np`` rows, multiplied
        element-wise, accumulated, and inverse-transformed in one batch of
        ``(a.size + b.size - 1) * np`` rows — the double-CRT strategy every
        RNS HE library uses, executed at the batch width the paper shows the
        hardware wants.
        """
        self._check_same_ring(a, b)
        transformed = self._forward_ntt_batch(list(a.polys) + list(b.polys))
        a_ntt = transformed[: a.size]
        b_ntt = transformed[a.size :]
        polys = self._tensor(a_ntt, b_ntt, a.basis)
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    def square(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic squaring.

        The operand is forward-transformed *once* and tensored with itself —
        half the forward NTTs of ``multiply(a, a)``, which
        :attr:`ntt_invocations` reflects.
        """
        a_ntt = self._forward_ntt_batch(list(a.polys))
        polys = self._tensor(a_ntt, a_ntt, a.basis)
        return Ciphertext(polys=polys, params=self.params, level=a.level)

    # -- relinearisation ---------------------------------------------------------------------
    def relinearize(self, a: Ciphertext, relin_key: RelinearizationKey) -> Ciphertext:
        """Reduce a size-3 ciphertext back to size 2 using the key-switching key.

        The RNS digit decomposition never reconstructs big integers: row ``i``
        of the coefficient-domain residue matrix of ``c2`` *is* ``c2 mod q_i``
        already reduced, so :meth:`ComputeBackend.digit_broadcast` re-reduces
        that single resident row across the basis to form the digit paired
        with key component ``i``.  The per-prime digit products are
        accumulated in the NTT domain and inverse-transformed once at the end
        (NTT linearity makes this bit-identical to per-product inverse
        transforms, at ``np`` times fewer inverse NTTs).
        """
        if a.size == 2:
            return a.copy()
        if a.size != 3:
            raise ValueError("relinearisation supports size-3 ciphertexts only")
        if len(relin_key.components) != len(a.basis):
            raise ValueError("relinearisation key was generated for a different basis")
        c0, c1, c2 = self._adopt_all(a.polys)
        basis = a.basis
        c2_coeff = c2.to_coefficient()
        acc0: ResidueTensor | None = None
        acc1: ResidueTensor | None = None
        for index, (rk0, rk1) in enumerate(relin_key.components):
            digit = self._poly(
                self.backend.digit_broadcast(c2_coeff.tensor, index),
                basis,
                Domain.COEFFICIENT,
            )
            digit_ntt, rk0_ntt, rk1_ntt = self._forward_ntt_batch([digit, rk0, rk1])
            term0 = self.backend.mul(digit_ntt.tensor, rk0_ntt.tensor)
            term1 = self.backend.mul(digit_ntt.tensor, rk1_ntt.tensor)
            acc0 = term0 if acc0 is None else self.backend.add(acc0, term0)
            acc1 = term1 if acc1 is None else self.backend.add(acc1, term1)
        sum0, sum1 = self._inverse_ntt_batch(
            [
                self._poly(acc0, basis, Domain.NTT),
                self._poly(acc1, basis, Domain.NTT),
            ]
        )
        new_c0 = self._poly_add(c0, sum0)
        new_c1 = self._poly_add(c1, sum1)
        return Ciphertext(polys=[new_c0, new_c1], params=self.params, level=a.level)

    # -- modulus switching --------------------------------------------------------------------
    def mod_switch_to_next(self, a: Ciphertext) -> Ciphertext:
        """Drop the last RNS prime, scaling the ciphertext (and its noise) down.

        Requires the dropped prime ``q ≡ 1 (mod t)`` (guaranteed by
        :func:`repro.he.params.generate_bgv_primes`), which keeps the
        plaintext unchanged.  Each coefficient ``c`` is replaced by
        ``(c + δ) / q`` with ``δ ≡ -c (mod q)`` and ``δ ≡ 0 (mod t)`` —
        computed entirely in RNS by the backend
        (:meth:`~repro.backends.base.ComputeBackend.mod_switch_drop_last`),
        since ``δ`` depends only on the dropped residue row and the division
        becomes a per-prime multiplication by ``q^{-1} mod p_j``.
        """
        basis = a.basis
        if len(basis) < 2:
            raise ValueError("cannot modulus-switch below a single prime")
        t = self.params.plaintext_modulus
        q_last = basis.primes[-1]
        if q_last % t != 1:
            raise ValueError("modulus switching requires q_last ≡ 1 (mod t)")
        new_basis = basis.drop_last(1)

        new_polys = []
        for poly in self._adopt_all(a.polys):
            coeff = poly.to_coefficient()
            new_polys.append(
                RnsPolynomial(
                    new_basis,
                    self.params.n,
                    self.backend.mod_switch_drop_last(coeff.tensor, t),
                    Domain.COEFFICIENT,
                )
            )
        return Ciphertext(polys=new_polys, params=self.params, level=a.level + 1)
