"""RNS-BGV homomorphic-encryption layer built on the repository's NTT engine.

This is the application substrate that generates the NTT workload the paper
studies: every homomorphic multiplication is a batch of ``np`` negacyclic
polynomial products computed through forward/inverse NTTs.

Typical usage — an :class:`HeContext` pins params, basis, backend and key
material behind one facade::

    from repro.he import HeContext, toy_params

    ctx = HeContext.create(toy_params())
    ct = ctx.encryptor().encrypt(ctx.encoder().encode([1, 2, 3]))
    product = ctx.evaluator().relinearize(
        ctx.evaluator().multiply(ct, ct), ctx.relinearization_key())
    print(ctx.encoder().decode(ctx.decryptor().decrypt(product))[:3])  # [1, 4, 9]

The individual components (KeyGenerator, Encryptor, Evaluator, ...) remain
directly constructible for callers that need custom wiring.
"""

from .bootstrap import (
    BootstrapEstimate,
    BootstrapWorkloadModel,
    NoiseRefresher,
    bootstrap_circuit,
)
from .ciphertext import Ciphertext
from .context import HeContext
from .encoder import BatchEncoder, IntegerEncoder
from .encryptor import Decryptor, Encryptor
from .evaluator import Evaluator
from .keys import KeyGenerator, PublicKey, RelinearizationKey, SecretKey
from .pipeline import CiphertextExpr, Pipeline
from .params import (
    HEParams,
    bootstrappable_params,
    generate_bgv_primes,
    small_params,
    toy_params,
)

__all__ = [
    "BootstrapEstimate",
    "BootstrapWorkloadModel",
    "NoiseRefresher",
    "Ciphertext",
    "CiphertextExpr",
    "HeContext",
    "Pipeline",
    "BatchEncoder",
    "IntegerEncoder",
    "Decryptor",
    "Encryptor",
    "Evaluator",
    "KeyGenerator",
    "PublicKey",
    "RelinearizationKey",
    "SecretKey",
    "HEParams",
    "bootstrap_circuit",
    "bootstrappable_params",
    "generate_bgv_primes",
    "small_params",
    "toy_params",
]
