"""RNS-BGV homomorphic-encryption layer built on the repository's NTT engine.

This is the application substrate that generates the NTT workload the paper
studies: every homomorphic multiplication is a batch of ``np`` negacyclic
polynomial products computed through forward/inverse NTTs.

Typical usage::

    from repro.he import (BatchEncoder, Decryptor, Encryptor, Evaluator,
                          KeyGenerator, toy_params)

    params = toy_params()
    keygen = KeyGenerator(params)
    secret, public = keygen.secret_key(), keygen.public_key()
    relin = keygen.relinearization_key()
    encoder = BatchEncoder(params, keygen.basis)
    encryptor, decryptor = Encryptor(params, public), Decryptor(params, secret)
    evaluator = Evaluator(params)

    ct = encryptor.encrypt(encoder.encode([1, 2, 3]))
    product = evaluator.relinearize(evaluator.multiply(ct, ct), relin)
    print(encoder.decode(decryptor.decrypt(product))[:3])   # [1, 4, 9]
"""

from .bootstrap import BootstrapEstimate, BootstrapWorkloadModel, NoiseRefresher
from .ciphertext import Ciphertext
from .encoder import BatchEncoder, IntegerEncoder
from .encryptor import Decryptor, Encryptor
from .evaluator import Evaluator
from .keys import KeyGenerator, PublicKey, RelinearizationKey, SecretKey
from .params import (
    HEParams,
    bootstrappable_params,
    generate_bgv_primes,
    small_params,
    toy_params,
)

__all__ = [
    "BootstrapEstimate",
    "BootstrapWorkloadModel",
    "NoiseRefresher",
    "Ciphertext",
    "BatchEncoder",
    "IntegerEncoder",
    "Decryptor",
    "Encryptor",
    "Evaluator",
    "KeyGenerator",
    "PublicKey",
    "RelinearizationKey",
    "SecretKey",
    "HEParams",
    "bootstrappable_params",
    "generate_bgv_primes",
    "small_params",
    "toy_params",
]
