"""Plaintext encoders.

Two encoders are provided:

* :class:`IntegerEncoder` — places a single integer (mod ``t``) in the
  constant coefficient.  Simple, mainly used by tests.
* :class:`BatchEncoder` — SIMD "batching": when the plaintext modulus ``t``
  is a prime with ``t ≡ 1 (mod 2N)``, the plaintext ring ``Z_t[X]/(X^N + 1)``
  is isomorphic to ``N`` copies of ``Z_t``, with the isomorphism computed by
  exactly the negacyclic NTT this library accelerates.  Homomorphic addition
  and multiplication then act slot-wise, which is how HE applications pack
  vectors of data into one ciphertext.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..backends.base import ComputeBackend
from ..backends.registry import resolve_backend
from ..modarith.primes import is_ntt_prime
from ..rns.basis import RnsBasis
from ..rns.poly import RnsPolynomial
from ..transforms.cooley_tukey import NegacyclicTransformer
from .params import HEParams

__all__ = ["IntegerEncoder", "BatchEncoder"]


class IntegerEncoder:
    """Encode a single integer modulo ``t`` into the constant coefficient."""

    def __init__(
        self,
        params: HEParams,
        basis: RnsBasis,
        backend: ComputeBackend | str | None = None,
    ) -> None:
        self.params = params
        self.basis = basis
        self.backend = resolve_backend(backend)

    def encode(self, value: int) -> RnsPolynomial:
        """Encode ``value mod t`` as a constant polynomial."""
        t = self.params.plaintext_modulus
        coefficients = [value % t] + [0] * (self.params.n - 1)
        return RnsPolynomial.from_coefficients(
            coefficients, self.basis, backend=self.backend
        )

    def decode(self, coefficients: Sequence[int]) -> int:
        """Decode the constant coefficient of a decrypted plaintext polynomial."""
        return coefficients[0] % self.params.plaintext_modulus


class BatchEncoder:
    """SIMD slot encoder over ``Z_t`` using the negacyclic NTT.

    Args:
        params: Scheme parameters; ``plaintext_modulus`` must be an NTT prime
            for the scheme's ``n`` (``t ≡ 1 mod 2n``).
        basis: RNS basis of the ciphertext modulus (used to embed plaintext
            polynomials as :class:`RnsPolynomial`).
        backend: Compute backend encoded plaintexts are made resident on
            (registry default when omitted, resolved once at construction).
    """

    def __init__(
        self,
        params: HEParams,
        basis: RnsBasis,
        backend: ComputeBackend | str | None = None,
    ) -> None:
        t = params.plaintext_modulus
        if not is_ntt_prime(t, params.n):
            raise ValueError(
                "batching requires a prime plaintext modulus with t ≡ 1 (mod 2n); got t=%d" % t
            )
        self.params = params
        self.basis = basis
        self.backend = resolve_backend(backend)
        self._transformer = NegacyclicTransformer(params.n, t)

    @property
    def slot_count(self) -> int:
        """Number of plaintext slots (equal to the polynomial degree)."""
        return self.params.n

    def encode(self, values: Sequence[int]) -> RnsPolynomial:
        """Encode up to ``slot_count`` integers (mod ``t``) into a plaintext polynomial.

        Shorter inputs are zero-padded.  The encoding is the *inverse* NTT, so
        the coefficient-domain product of two encodings corresponds to the
        slot-wise product of the inputs.
        """
        if len(values) > self.slot_count:
            raise ValueError("too many values: %d > %d slots" % (len(values), self.slot_count))
        t = self.params.plaintext_modulus
        slots = [v % t for v in values] + [0] * (self.slot_count - len(values))
        coefficients = self._transformer.inverse(slots)
        return RnsPolynomial.from_coefficients(
            coefficients, self.basis, backend=self.backend
        )

    def decode(self, coefficients: Sequence[int]) -> list[int]:
        """Decode a decrypted plaintext polynomial back into its slot values."""
        t = self.params.plaintext_modulus
        return self._transformer.forward([c % t for c in coefficients])
