"""Ciphertext container for the RNS-BGV scheme."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rns.poly import RnsPolynomial
from .params import HEParams

__all__ = ["Ciphertext"]


@dataclass
class Ciphertext:
    """A BGV ciphertext: a list of polynomials ``(c_0, c_1, ..., c_k)``.

    Decryption evaluates ``sum_i c_i * s^i`` modulo the current ciphertext
    modulus and reduces the centered result modulo the plaintext modulus.
    Freshly encrypted ciphertexts have two components; each multiplication
    adds one until :meth:`repro.he.evaluator.Evaluator.relinearize` brings the
    count back to two.

    Attributes:
        polys: The ciphertext polynomials, all over the same RNS basis.
        params: The scheme parameters the ciphertext was created under.
        level: How many moduli have been dropped by modulus switching (0 = fresh).
    """

    polys: list[RnsPolynomial]
    params: HEParams
    level: int = 0

    def __post_init__(self) -> None:
        if len(self.polys) < 2:
            raise ValueError("a ciphertext needs at least two polynomials")
        basis = self.polys[0].basis
        for poly in self.polys:
            if poly.basis.primes != basis.primes:
                raise ValueError("all ciphertext polynomials must share one RNS basis")

    @property
    def size(self) -> int:
        """Number of polynomial components (2 for fresh/relinearised ciphertexts)."""
        return len(self.polys)

    @property
    def basis(self):
        """The RNS basis of the current level."""
        return self.polys[0].basis

    @property
    def backend(self):
        """The compute backend whose resident storage holds ``c_0``.

        All components normally share one backend (encryptors and evaluators
        pin theirs); a mixed ciphertext can only arise from manual assembly
        and is adopted wholesale by the next evaluator operation.
        """
        return self.polys[0].backend

    @property
    def modulus(self) -> int:
        """The current ciphertext modulus ``Q_level``."""
        return self.basis.modulus

    def copy(self) -> "Ciphertext":
        """Deep copy (fresh polynomial buffers)."""
        return Ciphertext(
            polys=[poly.copy() for poly in self.polys], params=self.params, level=self.level
        )
