"""Lazy ciphertext expressions: whole evaluator chains compiled into one plan.

Where :class:`repro.he.evaluator.Evaluator` compiles each homomorphic
operation into its own plan, this module goes one level further — the way a
GPU runtime captures a stream of kernels into a replayable graph.  A
:class:`Pipeline` (built by :meth:`repro.he.context.HeContext.pipeline`)
wraps ciphertexts into lazy :class:`CiphertextExpr` nodes; arithmetic on
them records structure instead of computing, and :meth:`CiphertextExpr.run`
lowers the whole expression into **one**
:class:`~repro.backends.ops.Plan` executed in a single
:meth:`~repro.backends.base.ComputeBackend.execute` call::

    pipe = ctx.pipeline()
    a, b = pipe.load(ct_a), pipe.load(ct_b)
    result = (a * b).relinearize(ctx.relinearization_key()).mod_switch().run()

On the ``parallel`` backend the plan executes as fused per-worker stages:
the chain above costs **three** pool dispatches (the two cross-row steps —
digit decomposition and modulus switching — each start a new stage) instead
of the ten-plus round trips of the eager path, with every intermediate
tensor staying in worker memory.  Compilation happens once per expression
*shape*: re-running the same chain over fresh ciphertexts reuses the cached
plan (see :attr:`Evaluator.plan_cache_hits`).

Expressions are ordinary immutable DAG nodes — sharing a sub-expression
(``x = a * b; (x + x).run()``) emits it once.
"""

from __future__ import annotations

from ..rns.poly import RnsPolynomial
from .ciphertext import Ciphertext
from .evaluator import _Emitter, Evaluator
from .keys import RelinearizationKey

__all__ = ["CiphertextExpr", "Pipeline"]


class CiphertextExpr:
    """One node of a lazy ciphertext expression.

    Build leaves with :meth:`Pipeline.load`; combine with ``*``, ``+``,
    ``-``, unary ``-``, :meth:`square`, :meth:`relinearize` and
    :meth:`mod_switch`; execute with :meth:`run`.  Nodes are immutable and
    freely shareable between expressions of the same pipeline.
    """

    __slots__ = ("pipeline", "kind", "children", "ciphertext", "key", "plaintext")

    def __init__(
        self,
        pipeline: "Pipeline",
        kind: str,
        children: tuple["CiphertextExpr", ...] = (),
        ciphertext: Ciphertext | None = None,
        key: RelinearizationKey | None = None,
        plaintext: RnsPolynomial | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.kind = kind
        self.children = children
        self.ciphertext = ciphertext
        self.key = key
        self.plaintext = plaintext

    def _combine(self, other: "CiphertextExpr", kind: str) -> "CiphertextExpr":
        if not isinstance(other, CiphertextExpr):
            return NotImplemented
        if other.pipeline is not self.pipeline:
            raise ValueError(
                "cannot combine expressions from different pipelines — load "
                "both ciphertexts through the same HeContext.pipeline()"
            )
        return CiphertextExpr(self.pipeline, kind, (self, other))

    def __mul__(self, other: "CiphertextExpr") -> "CiphertextExpr":
        return self._combine(other, "multiply")

    def __add__(self, other: "CiphertextExpr") -> "CiphertextExpr":
        return self._combine(other, "add")

    def __sub__(self, other: "CiphertextExpr") -> "CiphertextExpr":
        return self._combine(other, "sub")

    def __neg__(self) -> "CiphertextExpr":
        return CiphertextExpr(self.pipeline, "negate", (self,))

    def square(self) -> "CiphertextExpr":
        """Lazy homomorphic squaring (half the forward NTTs of ``x * x``)."""
        return CiphertextExpr(self.pipeline, "square", (self,))

    def relinearize(self, key: RelinearizationKey) -> "CiphertextExpr":
        """Lazy relinearisation under ``key`` (size 3 back to size 2)."""
        return CiphertextExpr(self.pipeline, "relinearize", (self,), key=key)

    def mod_switch(self) -> "CiphertextExpr":
        """Lazy modulus switch to the next level (drops the last RNS prime)."""
        return CiphertextExpr(self.pipeline, "mod_switch", (self,))

    # Evaluator-style spelling, for symmetry with eager call sites.
    mod_switch_to_next = mod_switch

    def _with_plain(self, plaintext: RnsPolynomial, kind: str) -> "CiphertextExpr":
        if not isinstance(plaintext, RnsPolynomial):
            raise TypeError(
                "%s expects an RnsPolynomial plaintext, got %r"
                % (kind, type(plaintext).__name__)
            )
        return CiphertextExpr(self.pipeline, kind, (self,), plaintext=plaintext)

    def mul_plain(self, plaintext: RnsPolynomial) -> "CiphertextExpr":
        """Lazy multiplication by an (unencrypted) plaintext polynomial.

        Re-using one encoded plaintext across many expressions (a rotation
        diagonal, a mask) gives it a stable identity, so the optimiser's
        residency pass keeps its NTT image pooled across runs.
        """
        return self._with_plain(plaintext, "multiply_plain")

    def add_plain(self, plaintext: RnsPolynomial) -> "CiphertextExpr":
        """Lazy addition of an (unencrypted) plaintext polynomial."""
        return self._with_plain(plaintext, "add_plain")

    def run(self) -> Ciphertext:
        """Compile (or fetch the cached plan for) this expression and execute it."""
        return self.pipeline.run(self)


class _SymCt:
    """A symbolic ciphertext during lowering: symbolic polys + level."""

    __slots__ = ("polys", "level")

    def __init__(self, polys: list, level: int) -> None:
        self.polys = polys
        self.level = level


class Pipeline:
    """Compiles fluent ciphertext expressions into single fused plans.

    One pipeline owns one :class:`~repro.he.evaluator.Evaluator` (and with
    it one plan cache): every distinct expression shape compiles exactly
    once per pipeline, and each :meth:`run` is exactly one backend
    ``execute`` call.

    Args:
        context: The :class:`~repro.he.context.HeContext` whose pinned
            backend and parameters the pipeline executes against.
    """

    def __init__(self, context) -> None:
        self.context = context
        self.evaluator: Evaluator = context.evaluator()

    # -- building --------------------------------------------------------------
    def load(self, ciphertext: Ciphertext) -> CiphertextExpr:
        """Wrap a ciphertext as a lazy expression leaf."""
        if not isinstance(ciphertext, Ciphertext):
            raise TypeError(
                "Pipeline.load expects a Ciphertext, got %r"
                % type(ciphertext).__name__
            )
        return CiphertextExpr(self, "load", ciphertext=ciphertext)

    # -- lowering --------------------------------------------------------------
    def _collect(
        self,
        expr: CiphertextExpr,
        leaf_ordinals: dict,
        leaves: list,
        key_ordinals: dict,
        keys: list,
        plain_ordinals: dict,
        plains: list,
    ) -> tuple:
        """Assign identity ordinals to leaves/keys/plaintexts and build the cache key.

        The signature captures everything that changes the compiled plan:
        the expression structure, each leaf's size/domains/basis, each
        relinearisation key's component count and each plaintext's ring and
        domain.  Two runs with the same signature bind different tensors to
        the same plan.
        """
        if expr.kind == "load":
            ordinal = leaf_ordinals.get(id(expr))
            if ordinal is None:
                ordinal = len(leaves)
                leaf_ordinals[id(expr)] = ordinal
                leaves.append(expr.ciphertext)
            ct = expr.ciphertext
            return (
                "load",
                ordinal,
                ct.basis.primes,
                tuple(poly.domain for poly in ct.polys),
            )
        if expr.kind == "relinearize":
            ordinal = key_ordinals.get(id(expr.key))
            if ordinal is None:
                ordinal = len(keys)
                key_ordinals[id(expr.key)] = ordinal
                keys.append(expr.key)
            child = self._collect(
                expr.children[0], leaf_ordinals, leaves, key_ordinals, keys,
                plain_ordinals, plains,
            )
            # Component domains are part of the compiled plan (coefficient
            # components get forward-NTT nodes, resident-NTT ones do not), so
            # they must be part of the signature — exactly as in the per-op
            # Evaluator.relinearize cache key.
            return (
                "relinearize",
                ordinal,
                len(expr.key.components),
                tuple((rk0.domain, rk1.domain) for rk0, rk1 in expr.key.components),
                child,
            )
        if expr.kind in ("multiply_plain", "add_plain"):
            ordinal = plain_ordinals.get(id(expr.plaintext))
            if ordinal is None:
                ordinal = len(plains)
                plain_ordinals[id(expr.plaintext)] = ordinal
                plains.append(expr.plaintext)
            pt = expr.plaintext
            child = self._collect(
                expr.children[0], leaf_ordinals, leaves, key_ordinals, keys,
                plain_ordinals, plains,
            )
            return (expr.kind, ordinal, pt.basis.primes, pt.domain, child)
        return (expr.kind,) + tuple(
            self._collect(
                child, leaf_ordinals, leaves, key_ordinals, keys,
                plain_ordinals, plains,
            )
            for child in expr.children
        )

    @staticmethod
    def _result_level(expr: CiphertextExpr) -> int:
        if expr.kind == "load":
            return expr.ciphertext.level
        level = Pipeline._result_level(expr.children[0])
        return level + 1 if expr.kind == "mod_switch" else level

    @staticmethod
    def _result_size(expr: CiphertextExpr) -> int:
        """Component count of the expression's result, statically.

        Needed to slice each statement's polynomials out of the flat output
        list a multi-statement plan returns.
        """
        if expr.kind == "load":
            return len(expr.ciphertext.polys)
        sizes = [Pipeline._result_size(child) for child in expr.children]
        if expr.kind == "multiply":
            return sizes[0] + sizes[1] - 1
        if expr.kind in ("add", "sub"):
            return max(sizes)
        if expr.kind == "square":
            return 2 * sizes[0] - 1
        if expr.kind == "relinearize":
            return 2 if sizes[0] == 3 else sizes[0]
        return sizes[0]

    def run(self, expr: CiphertextExpr) -> Ciphertext:
        """Lower, compile (cached) and execute an expression in one backend call."""
        return self.run_many([expr])[0]

    def run_many(self, exprs) -> list[Ciphertext]:
        """Lower, compile (cached) and execute many expressions as ONE plan.

        All expressions lower through one shared memo (shared sub-expressions
        emit once) into a single plan executed in one backend call — the
        engine behind :class:`repro.compiler.program.HeProgram`.  Returns the
        result ciphertexts in input order.
        """
        exprs = list(exprs)
        if not exprs:
            raise ValueError("run_many needs at least one expression")
        for expr in exprs:
            if not isinstance(expr, CiphertextExpr):
                raise TypeError(
                    "run_many expects CiphertextExpr values, got %r"
                    % type(expr).__name__
                )
            if expr.pipeline is not self:
                raise ValueError("expression belongs to a different pipeline")
        evaluator = self.evaluator
        leaf_ordinals: dict = {}
        leaves: list = []
        key_ordinals: dict = {}
        keys: list = []
        plain_ordinals: dict = {}
        plains: list = []
        signature = (
            "pipeline",
            tuple(
                self._collect(
                    expr, leaf_ordinals, leaves, key_ordinals, keys,
                    plain_ordinals, plains,
                )
                for expr in exprs
            ),
        )

        # Adoption happens per run (bindings always carry tensors resident
        # on the pinned backend), independent of whether the plan is cached.
        adopted = {
            ordinal: evaluator._adopt_all(ct.polys)
            for ordinal, ct in enumerate(leaves)
        }
        adopted_keys = {
            ordinal: [
                (evaluator._adopt(rk0), evaluator._adopt(rk1))
                for rk0, rk1 in key.components
            ]
            for ordinal, key in enumerate(keys)
        }
        adopted_plains = {
            ordinal: evaluator._adopt(plain)
            for ordinal, plain in enumerate(plains)
        }

        bindings: dict = {}
        constants: list = []
        for ordinal, polys in adopted.items():
            for index, poly in enumerate(polys):
                bindings["ct%d_%d" % (ordinal, index)] = poly.tensor
        # Key components and plaintexts are the cross-run-stable operands:
        # naming them as constants lets the residency pass pool their NTT
        # images across executions of the cached plan.
        for ordinal, components in adopted_keys.items():
            for index, (rk0, rk1) in enumerate(components):
                for half, tensor in (("rk0", rk0.tensor), ("rk1", rk1.tensor)):
                    name = "key%d_%s_%d" % (ordinal, half, index)
                    bindings[name] = tensor
                    constants.append(name)
        for ordinal, plain in adopted_plains.items():
            name = "pt%d" % ordinal
            bindings[name] = plain.tensor
            constants.append(name)

        def build():
            em = _Emitter()
            bound_keys = {
                ordinal: [
                    (
                        em.bind("key%d_rk0_%d" % (ordinal, index), rk0),
                        em.bind("key%d_rk1_%d" % (ordinal, index), rk1),
                    )
                    for index, (rk0, rk1) in enumerate(components)
                ]
                for ordinal, components in adopted_keys.items()
            }
            bound_plains = {
                ordinal: em.bind("pt%d" % ordinal, plain)
                for ordinal, plain in adopted_plains.items()
            }
            memo: dict[int, _SymCt] = {}

            def lower(node: CiphertextExpr) -> _SymCt:
                cached = memo.get(id(node))
                if cached is not None:
                    return cached
                if node.kind == "load":
                    ordinal = leaf_ordinals[id(node)]
                    polys = [
                        em.bind("ct%d_%d" % (ordinal, index), poly)
                        for index, poly in enumerate(adopted[ordinal])
                    ]
                    result = _SymCt(polys, node.ciphertext.level)
                elif node.kind == "multiply":
                    left, right = (lower(child) for child in node.children)
                    result = _SymCt(
                        evaluator._emit_multiply(em, left.polys, right.polys),
                        left.level,
                    )
                elif node.kind in ("add", "sub"):
                    left, right = (lower(child) for child in node.children)
                    if left.polys[0].basis.primes != right.polys[0].basis.primes:
                        raise ValueError(
                            "ciphertexts are at different levels; mod-switch first"
                        )
                    result = _SymCt(
                        evaluator._emit_linear(
                            em, left.polys, right.polys, subtract=node.kind == "sub"
                        ),
                        left.level,
                    )
                elif node.kind == "negate":
                    child = lower(node.children[0])
                    result = _SymCt(
                        evaluator._emit_negate(em, child.polys), child.level
                    )
                elif node.kind == "square":
                    child = lower(node.children[0])
                    result = _SymCt(
                        evaluator._emit_square(em, child.polys), child.level
                    )
                elif node.kind == "relinearize":
                    child = lower(node.children[0])
                    srk = bound_keys[key_ordinals[id(node.key)]]
                    result = _SymCt(
                        evaluator._emit_relinearize(em, child.polys, srk),
                        child.level,
                    )
                elif node.kind == "mod_switch":
                    child = lower(node.children[0])
                    result = _SymCt(
                        evaluator._emit_mod_switch(
                            em, child.polys, evaluator.params.plaintext_modulus
                        ),
                        child.level + 1,
                    )
                elif node.kind in ("multiply_plain", "add_plain"):
                    child = lower(node.children[0])
                    pt = bound_plains[plain_ordinals[id(node.plaintext)]]
                    if (
                        child.polys[0].basis.primes != pt.basis.primes
                        or node.plaintext.n != evaluator.params.n
                    ):
                        raise ValueError(
                            "plaintext lives in a different ring than the "
                            "ciphertext; re-encode it for this level first"
                        )
                    emit = (
                        evaluator._emit_multiply_plain
                        if node.kind == "multiply_plain"
                        else evaluator._emit_add_plain
                    )
                    result = _SymCt(emit(em, child.polys, pt), child.level)
                else:  # pragma: no cover - defensive
                    raise ValueError("unknown expression kind %r" % node.kind)
                memo[id(node)] = result
                return result

            flat: list = []
            for expr in exprs:
                flat.extend(lower(expr).polys)
            return evaluator._finish(em, flat)

        polys = evaluator._run_plan(
            signature, build, bindings, constants=tuple(constants)
        )
        results: list[Ciphertext] = []
        offset = 0
        for expr in exprs:
            size = self._result_size(expr)
            results.append(
                Ciphertext(
                    polys=polys[offset : offset + size],
                    params=evaluator.params,
                    level=self._result_level(expr),
                )
            )
            offset += size
        return results
