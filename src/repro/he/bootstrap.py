"""Bootstrapping: noise refresh and the workload it implies for the NTT engine.

True CKKS/BGV bootstrapping (the reason the paper's parameter sets reach
``N = 2^17`` with dozens of primes) is a deep homomorphic circuit —
CoeffToSlot and SlotToCoeff linear transforms plus a polynomial evaluation of
the modular-reduction function — whose cost is dominated by NTTs.  A faithful
cryptographic implementation is outside the scope of this reproduction, so
this module substitutes two pieces that preserve what the paper needs:

* :class:`NoiseRefresher` — a *functional* stand-in that restores a
  ciphertext's noise budget by re-encrypting its decryption.  It requires the
  secret key and is clearly documented as such; it lets the examples run long
  computation chains the way an application using real bootstrapping would.
* :class:`BootstrapWorkloadModel` — a *performance* model that counts the
  NTT invocations of a CKKS-style bootstrapping pipeline at bootstrappable
  parameters and prices them with the GPU kernel models, connecting the HE
  layer back to the paper's headline numbers (NTT/iNTT consuming a third to a
  half of HE computation time).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.on_the_fly import OnTheFlyConfig
from ..gpu.costmodel import GpuCostModel
from ..kernels.smem import smem_ntt_model
from ..kernels.radix2 import radix2_ntt_model
from ..rns.poly import RnsPolynomial
from .ciphertext import Ciphertext
from .encryptor import Decryptor, Encryptor
from .params import HEParams

__all__ = [
    "NoiseRefresher",
    "BootstrapWorkloadModel",
    "BootstrapEstimate",
    "bootstrap_circuit",
]


def _diagonal(rng: random.Random, basis, n: int, t: int, backend) -> RnsPolynomial:
    """One deterministic pseudo-diagonal plaintext for the linear transforms."""
    return RnsPolynomial.from_coefficients(
        [rng.randrange(1, t) for _ in range(n)], basis, backend=backend
    )


def bootstrap_circuit(
    context,
    pipeline,
    ciphertext: Ciphertext,
    *,
    c2s_terms: int = 2,
    eval_depth: int = 1,
    s2c_terms: int = 2,
    seed: int = 1234,
):
    """A bootstrap-*shaped* homomorphic circuit as one lazy expression.

    The structural skeleton of HEAAN-style bootstrapping — a CoeffToSlot
    linear transform (a sum of ``c2s_terms`` plaintext-diagonal products),
    ``eval_depth`` rounds of EvalMod-style nonlinear evaluation
    (square → relinearise while the full-basis key still fits → modulus
    switch → plaintext offset), and a SlotToCoeff transform (``s2c_terms``
    diagonal products at the final level) — expressed through
    :meth:`Pipeline <repro.he.pipeline.Pipeline>` combinators so the whole
    circuit compiles into **one** plan.  The diagonals are deterministic
    pseudo-random plaintexts (``seed``), not the DFT matrix: this is the
    optimiser's and scheduler's workload, faithful in structure and NTT
    profile, with no cryptographic claim.

    The repeated diagonals are exactly what the compiler's residency pass
    pools: every ``mul_plain`` re-uses encoded plaintexts with stable
    identity, so warm executions skip their forward transforms entirely.

    Returns the final :class:`~repro.he.pipeline.CiphertextExpr`; call
    ``.run()`` (or hand it to :meth:`Pipeline.run_many`) to execute.
    """
    if c2s_terms < 1 or s2c_terms < 1 or eval_depth < 0:
        raise ValueError("bootstrap circuit needs >= 1 transform term per side")
    basis = ciphertext.basis
    if eval_depth >= len(basis):
        raise ValueError(
            "eval_depth %d needs %d modulus switches but the ciphertext has "
            "only %d primes" % (eval_depth, eval_depth, len(basis))
        )
    params = context.params
    t = params.plaintext_modulus
    rng = random.Random(seed)
    relin_key = context.relinearization_key()

    x = pipeline.load(ciphertext)

    # CoeffToSlot: a sum of plaintext-diagonal products at the input level.
    acc = x.mul_plain(_diagonal(rng, basis, params.n, t, context.backend))
    for _ in range(c2s_terms - 1):
        acc = acc + x.mul_plain(_diagonal(rng, basis, params.n, t, context.backend))

    # EvalMod: square/relinearise/rescale rounds.  The session key is
    # generated for the full basis, so relinearisation only applies while the
    # ciphertext still lives there; deeper rounds carry the size-3 result.
    for _ in range(eval_depth):
        acc = acc.square()
        if len(relin_key.components) == len(basis):
            acc = acc.relinearize(relin_key)
        acc = acc.mod_switch()
        basis = basis.drop_last(1)
        acc = acc.add_plain(_diagonal(rng, basis, params.n, t, context.backend))

    # SlotToCoeff: diagonal products at the final level.
    out = acc.mul_plain(_diagonal(rng, basis, params.n, t, context.backend))
    for _ in range(s2c_terms - 1):
        out = out + acc.mul_plain(_diagonal(rng, basis, params.n, t, context.backend))
    return out


class NoiseRefresher:
    """Functional noise refresh by re-encryption (requires the secret key).

    This is the standard engineering substitute used when studying HE
    *performance* rather than security: it produces exactly the ciphertext a
    real bootstrapping would (a fresh encryption of the same plaintext) while
    skipping the homomorphic evaluation of the decryption circuit.
    """

    def __init__(self, encryptor: Encryptor, decryptor: Decryptor) -> None:
        self.encryptor = encryptor
        self.decryptor = decryptor

    def refresh(self, ciphertext: Ciphertext) -> Ciphertext:
        """Return a fresh encryption of ``ciphertext``'s plaintext."""
        plaintext_coefficients = self.decryptor.decrypt(ciphertext)
        plaintext = RnsPolynomial.from_coefficients(
            plaintext_coefficients,
            self.encryptor.basis,
            backend=self.encryptor.backend,
        )
        return self.encryptor.encrypt(plaintext)


@dataclass(frozen=True)
class BootstrapEstimate:
    """Modelled cost of one bootstrapping invocation.

    Attributes:
        ntt_count: Number of ``N``-point NTT/iNTT executions (across all primes).
        ntt_time_us: Modelled GPU time spent in those NTTs.
        ntt_time_radix2_us: The same NTT work under the radix-2 baseline.
        total_time_estimate_us: Modelled bootstrapping time assuming the
            paper-reported NTT share of HE computation.
        ntt_share: NTT share of total time assumed for the estimate.
    """

    ntt_count: int
    ntt_time_us: float
    ntt_time_radix2_us: float
    total_time_estimate_us: float
    ntt_share: float


class BootstrapWorkloadModel:
    """Counts and prices the NTT workload of a CKKS-style bootstrapping.

    The structure follows HEAAN-style bootstrapping: ``CoeffToSlot`` and
    ``SlotToCoeff`` are (baby-step/giant-step) linear transforms costing
    roughly ``2 * sqrt(N_slots)`` plaintext multiplications' worth of NTTs
    each, and ``EvalMod`` evaluates a degree-``d`` polynomial approximation of
    modular reduction costing about ``2 * sqrt(d)`` ciphertext
    multiplications.  Every ciphertext multiplication at level ``L`` performs
    ``3 * np`` forward/inverse NTTs (two forward, one inverse, per prime per
    ciphertext polynomial pair) plus the key-switching NTTs.

    The constants are deliberately round — the goal is the order of magnitude
    and the NTT share, not a cycle-accurate bootstrapping model.
    """

    def __init__(
        self,
        params: HEParams,
        eval_mod_degree: int = 63,
        ntt_share: float = 0.40,
        model: GpuCostModel | None = None,
    ) -> None:
        if not 0 < ntt_share <= 1:
            raise ValueError("ntt_share must be in (0, 1]")
        self.params = params
        self.eval_mod_degree = eval_mod_degree
        self.ntt_share = ntt_share
        self.model = model if model is not None else GpuCostModel()

    def ciphertext_multiplications(self) -> int:
        """Approximate ciphertext multiplications in one bootstrapping."""
        import math

        slots = self.params.n // 2
        linear_transforms = 2 * int(math.isqrt(slots))
        eval_mod = 2 * int(math.isqrt(self.eval_mod_degree)) + self.eval_mod_degree.bit_length()
        return linear_transforms + eval_mod

    def ntt_invocations(self) -> int:
        """Total N-point NTT/iNTT executions (counting each prime separately)."""
        ntts_per_multiplication = (4 + 3) + 2
        return self.ciphertext_multiplications() * ntts_per_multiplication * self.params.prime_count

    def estimate(self, ot_stages: int = 2) -> BootstrapEstimate:
        """Estimate the NTT cost of one bootstrapping on the modelled GPU."""
        multiplications = self.ciphertext_multiplications()
        np_count = self.params.prime_count
        # Per ciphertext multiplication: 4 forward NTTs (two polynomials per
        # operand), 3 inverse NTTs (result components), and one key-switching
        # pass costing another 2 * np NTTs worth of work.
        ntts_per_multiplication = (4 + 3) + 2
        ntt_count = multiplications * ntts_per_multiplication * np_count

        ot = OnTheFlyConfig(base=1024, ot_stages=ot_stages) if ot_stages else None
        batched = smem_ntt_model(self.params.n, np_count, self.model, ot=ot)
        radix2 = radix2_ntt_model(self.params.n, np_count, self.model)
        batches = ntt_count / np_count
        ntt_time = batched.time_us * batches
        ntt_time_radix2 = radix2.time_us * batches
        return BootstrapEstimate(
            ntt_count=ntt_count,
            ntt_time_us=ntt_time,
            ntt_time_radix2_us=ntt_time_radix2,
            total_time_estimate_us=ntt_time / self.ntt_share,
            ntt_share=self.ntt_share,
        )
