"""Encryption and decryption for the RNS-BGV scheme."""

from __future__ import annotations

import random

from ..backends.base import ComputeBackend
from ..backends.registry import resolve_backend
from ..rns.poly import RnsPolynomial
from .ciphertext import Ciphertext
from .keys import PublicKey, SecretKey
from .params import HEParams

__all__ = ["Encryptor", "Decryptor"]


class Encryptor:
    """Encrypts plaintext polynomials under a public key.

    A BGV encryption of the plaintext ``m`` is::

        c0 = b*u + t*e0 + m
        c1 = a*u + t*e1

    with ``(b, a)`` the public key, ``u`` a fresh ternary polynomial and
    ``e0, e1`` fresh Gaussian errors, so that ``c0 + c1*s = m + t*(noise)``.
    """

    def __init__(
        self,
        params: HEParams,
        public_key: PublicKey,
        seed: int = 95,
        backend: ComputeBackend | str | None = None,
    ) -> None:
        self.params = params
        self.public_key = public_key
        self.basis = public_key.a.basis
        self.rng = random.Random(seed)
        # Fresh randomness is created resident on the public key's backend by
        # default, so an encrypt → evaluate chain never crosses backends.
        self.backend = (
            public_key.a.backend if backend is None else resolve_backend(backend)
        )

    def encrypt(self, plaintext: RnsPolynomial) -> Ciphertext:
        """Encrypt a plaintext polynomial (coefficients understood mod ``t``)."""
        t = self.params.plaintext_modulus
        u = RnsPolynomial.random_ternary(
            self.basis, self.params.n, self.rng, backend=self.backend
        )
        e0 = RnsPolynomial.random_gaussian(
            self.basis,
            self.params.n,
            self.rng,
            stddev=self.params.error_std,
            backend=self.backend,
        )
        e1 = RnsPolynomial.random_gaussian(
            self.basis,
            self.params.n,
            self.rng,
            stddev=self.params.error_std,
            backend=self.backend,
        )
        c0 = self.public_key.b * u + e0.scalar_mul(t) + plaintext
        c1 = self.public_key.a * u + e1.scalar_mul(t)
        return Ciphertext(polys=[c0, c1], params=self.params)


class Decryptor:
    """Decrypts ciphertexts (of any size) with the secret key."""

    def __init__(self, params: HEParams, secret_key: SecretKey) -> None:
        self.params = params
        self.secret_key = secret_key

    def _inner_product(self, ciphertext: Ciphertext) -> RnsPolynomial:
        """Evaluate ``sum_i c_i * s^i`` over the ciphertext's own basis."""
        s = self.secret_key.s
        if s.basis.primes != ciphertext.basis.primes:
            # The ciphertext has been modulus-switched; drop the key to match.
            drop = len(s.basis.primes) - len(ciphertext.basis.primes)
            if drop < 0:
                raise ValueError("ciphertext modulus is larger than the key's modulus")
            reduced = s
            for _ in range(drop):
                reduced = reduced.drop_last_prime()
            s = reduced
        accumulator = ciphertext.polys[0]
        s_power = None
        for component in ciphertext.polys[1:]:
            s_power = s if s_power is None else s_power * s
            accumulator = accumulator + component * s_power
        return accumulator

    def raw_decrypt(self, ciphertext: Ciphertext) -> list[int]:
        """Return the centered value of ``sum_i c_i s^i`` (``m + t*e`` before mod-t)."""
        return self._inner_product(ciphertext).to_big_coefficients(centered=True)

    def decrypt(self, ciphertext: Ciphertext) -> list[int]:
        """Decrypt to the plaintext polynomial's coefficients (mod ``t``)."""
        t = self.params.plaintext_modulus
        return [value % t for value in self.raw_decrypt(ciphertext)]

    def noise_magnitude(self, ciphertext: Ciphertext) -> int:
        """Infinity norm of the noise term ``t*e`` inside the ciphertext."""
        t = self.params.plaintext_modulus
        noise = 0
        for value in self.raw_decrypt(ciphertext):
            remainder = value % t
            noise = max(noise, abs(value - remainder))
        return noise

    def noise_budget_bits(self, ciphertext: Ciphertext) -> float:
        """Remaining noise budget in bits: ``log2(Q / (2 * |noise|))``.

        Decryption stays correct while this is positive; each multiplication
        spends budget and bootstrapping (or a fresh encryption) restores it.
        """
        import math

        noise = max(self.noise_magnitude(ciphertext), 1)
        return math.log2(ciphertext.modulus / (2 * noise))
