"""Key material and key generation for the RNS-BGV scheme."""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..backends.base import ComputeBackend
from ..backends.registry import resolve_backend
from ..rns.basis import RnsBasis
from ..rns.poly import RnsPolynomial
from .params import HEParams

__all__ = ["SecretKey", "PublicKey", "RelinearizationKey", "KeyGenerator"]


@dataclass
class SecretKey:
    """The secret key: a ternary polynomial ``s``."""

    s: RnsPolynomial


@dataclass
class PublicKey:
    """The public key ``(b, a)`` with ``b = -(a*s + t*e)`` (an RLWE sample of zero)."""

    b: RnsPolynomial
    a: RnsPolynomial


@dataclass
class RelinearizationKey:
    """RNS-decomposition key-switching key for ``s^2``.

    For every RNS prime index ``i`` the key holds an RLWE encryption of
    ``f_i * s^2`` where ``f_i`` is the CRT basis element that is 1 modulo
    ``q_i`` and 0 modulo every other prime.  Relinearisation decomposes the
    quadratic ciphertext component into its per-prime digits and pairs each
    digit with the matching key component, which keeps the switching noise at
    the scale of a single prime instead of the whole modulus.
    """

    components: list[tuple[RnsPolynomial, RnsPolynomial]]


class KeyGenerator:
    """Generates secret, public and relinearisation keys for a parameter set.

    Args:
        params: Scheme parameters.
        seed: Seed for the deterministic RNG (tests rely on reproducibility).
        backend: Compute backend every generated key polynomial is resident
            on (registry default when omitted, resolved once at
            construction).  Key material generated here and ciphertexts built
            from it therefore share one pinned backend.

    Each key kind draws from its own seed-derived stream, so the material is
    a pure function of ``(params, seed)`` regardless of *which* keys a
    process generates or in what order.  That call-order independence is
    what lets a serving tenant (which only ever derives the relinearisation
    key) and a remote client (which derives the public key first to encrypt)
    agree bit-for-bit on shared key material from the same seed.
    """

    def __init__(
        self,
        params: HEParams,
        seed: int = 2020,
        backend: ComputeBackend | str | None = None,
    ) -> None:
        self.params = params
        self.basis: RnsBasis = params.make_basis()
        self.seed = seed
        self.backend = resolve_backend(backend)
        self._secret: SecretKey | None = None

    # -- helpers -------------------------------------------------------------------
    def _stream(self, label: str) -> random.Random:
        """An independent deterministic RNG for one key kind."""
        return random.Random("repro-key:%s:%d" % (label, self.seed))

    def _gaussian(self, rng: random.Random) -> RnsPolynomial:
        return RnsPolynomial.random_gaussian(
            self.basis,
            self.params.n,
            rng,
            stddev=self.params.error_std,
            backend=self.backend,
        )

    def _uniform(self, rng: random.Random) -> RnsPolynomial:
        return RnsPolynomial.random_uniform(
            self.basis, self.params.n, rng, backend=self.backend
        )

    def _ternary(self, rng: random.Random) -> RnsPolynomial:
        return RnsPolynomial.random_ternary(
            self.basis, self.params.n, rng, backend=self.backend
        )

    # -- key generation ---------------------------------------------------------------
    def secret_key(self) -> SecretKey:
        """Generate (once) and return the secret key."""
        if self._secret is None:
            self._secret = SecretKey(s=self._ternary(self._stream("secret")))
        return self._secret

    def public_key(self) -> PublicKey:
        """Generate the public key for the (possibly newly created) secret key."""
        s = self.secret_key().s
        t = self.params.plaintext_modulus
        rng = self._stream("public")
        a = self._uniform(rng)
        e = self._gaussian(rng)
        b = -(a * s + e.scalar_mul(t))
        return PublicKey(b=b, a=a)

    def relinearization_key(self) -> RelinearizationKey:
        """Generate the RNS-decomposition relinearisation key for ``s^2``."""
        s = self.secret_key().s
        t = self.params.plaintext_modulus
        s_squared = s * s
        modulus = self.basis.modulus
        rng = self._stream("relin")
        components: list[tuple[RnsPolynomial, RnsPolynomial]] = []
        for prime in self.basis.primes:
            punctured = modulus // prime
            basis_element = punctured * pow(punctured, -1, prime) % modulus
            a_i = self._uniform(rng)
            e_i = self._gaussian(rng)
            rk0 = -(a_i * s + e_i.scalar_mul(t)) + s_squared.scalar_mul(basis_element)
            components.append((rk0, a_i))
        return RelinearizationKey(components=components)
