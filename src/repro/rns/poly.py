"""Polynomials in RNS (double-CRT) representation.

A ciphertext polynomial in ``Z_Q[X]/(X^N + 1)`` is stored as an
``np x N`` matrix of residues: row ``i`` holds the polynomial's coefficients
reduced modulo ``p_i``.  Converting every row to the NTT domain yields the
"double-CRT" layout in which both polynomial multiplication and addition are
coefficient-wise — the representation all RNS-based HE libraries (SEAL,
HEAAN, PALISADE) compute in, and the workload whose NTT conversions the paper
accelerates.

:class:`RnsPolynomial` is deliberately explicit about which domain it is in
(``coefficient`` or ``ntt``); mixing domains raises instead of silently
producing garbage.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

from ..backends.base import ComputeBackend
from ..backends.registry import get_backend
from .basis import RnsBasis

__all__ = ["Domain", "RnsPolynomial", "TransformerCache"]


class Domain(str, Enum):
    """Representation domain of an :class:`RnsPolynomial`."""

    COEFFICIENT = "coefficient"
    NTT = "ntt"


class TransformerCache:
    """Binds polynomials to the compute backend their operations dispatch to.

    Twiddle-table construction is O(N) modular multiplications per prime;
    each backend keeps its tables resident keyed by ``(n, p)`` (see
    ``resident_contexts``), mirroring the precomputed tables an HE library
    keeps warm — the very tables whose size Section IV analyses.  This class
    is the per-polynomial handle to that machinery: polynomials sharing a
    cache share a backend and therefore its resident tables.

    When no backend is given, the registry default (``REPRO_BACKEND`` env
    var, else NumPy when available) is re-resolved on every access, so
    flipping the environment or calling
    :func:`repro.backends.set_default_backend` takes effect immediately even
    for polynomials bound to the module-wide default cache.
    """

    def __init__(self, backend: ComputeBackend | str | None = None) -> None:
        self._backend: ComputeBackend | None = (
            get_backend(backend) if isinstance(backend, str) else backend
        )

    @property
    def backend(self) -> ComputeBackend:
        """The compute backend polynomials bound to this cache dispatch to."""
        if self._backend is not None:
            return self._backend
        return get_backend()


_DEFAULT_CACHE = TransformerCache()


@dataclass
class RnsPolynomial:
    """A polynomial of degree < ``n`` in RNS representation.

    Attributes:
        basis: The RNS basis giving one modulus per residue row.
        n: Polynomial degree bound (power of two).
        residues: ``basis.count`` rows of ``n`` integers each.
        domain: Whether the rows are coefficients or NTT values.
    """

    basis: RnsBasis
    n: int
    residues: list[list[int]]
    domain: Domain = Domain.COEFFICIENT
    cache: TransformerCache | None = None

    def __post_init__(self) -> None:
        if len(self.residues) != self.basis.count:
            raise ValueError(
                "expected %d residue rows, got %d" % (self.basis.count, len(self.residues))
            )
        for row in self.residues:
            if len(row) != self.n:
                raise ValueError("every residue row must have exactly n entries")
        if self.cache is None:
            self.cache = _DEFAULT_CACHE

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_coefficients(
        cls,
        coefficients: Sequence[int],
        basis: RnsBasis,
        cache: TransformerCache | None = None,
    ) -> "RnsPolynomial":
        """Build a polynomial from big-integer (or signed) coefficients mod ``Q``."""
        n = len(coefficients)
        rows = [[c % p for c in coefficients] for p in basis.primes]
        return cls(basis=basis, n=n, residues=rows, domain=Domain.COEFFICIENT, cache=cache)

    @classmethod
    def zero(
        cls, basis: RnsBasis, n: int, domain: Domain = Domain.COEFFICIENT
    ) -> "RnsPolynomial":
        """The all-zero polynomial (identical in both domains)."""
        rows = [[0] * n for _ in basis.primes]
        return cls(basis=basis, n=n, residues=rows, domain=domain)

    @classmethod
    def random_uniform(
        cls, basis: RnsBasis, n: int, rng: random.Random, domain: Domain = Domain.COEFFICIENT
    ) -> "RnsPolynomial":
        """Uniformly random residues — used for the `a` part of RLWE samples."""
        rows = [[rng.randrange(p) for _ in range(n)] for p in basis.primes]
        return cls(basis=basis, n=n, residues=rows, domain=domain)

    @classmethod
    def random_ternary(
        cls, basis: RnsBasis, n: int, rng: random.Random
    ) -> "RnsPolynomial":
        """Random ternary ({-1, 0, 1}) polynomial — HE secret-key distribution."""
        coefficients = [rng.choice((-1, 0, 1)) for _ in range(n)]
        return cls.from_coefficients(coefficients, basis)

    @classmethod
    def random_gaussian(
        cls, basis: RnsBasis, n: int, rng: random.Random, stddev: float = 3.2
    ) -> "RnsPolynomial":
        """Discrete-Gaussian-ish error polynomial (rounded normal, HE error distribution)."""
        coefficients = [round(rng.gauss(0.0, stddev)) for _ in range(n)]
        return cls.from_coefficients(coefficients, basis)

    # -- backend ---------------------------------------------------------------
    @property
    def backend(self) -> ComputeBackend:
        """The compute backend this polynomial's operations dispatch through."""
        return self.cache.backend

    def with_backend(self, backend: ComputeBackend | str) -> "RnsPolynomial":
        """Rebind this polynomial (sharing residues) to a specific backend."""
        return RnsPolynomial(
            self.basis, self.n, self.residues, self.domain, TransformerCache(backend)
        )

    # -- domain conversion ------------------------------------------------------
    def to_ntt(self) -> "RnsPolynomial":
        """Return the NTT-domain version of this polynomial (``np`` forward NTTs).

        The whole residue matrix is handed to the backend as one batch — on
        the NumPy backend every row whose prime fits the 30-bit window moves
        through the butterfly stages as a single 2-D array operation.
        """
        if self.domain is Domain.NTT:
            return self
        rows = self.cache.backend.forward_ntt_batch(self.residues, self.basis.primes)
        return RnsPolynomial(self.basis, self.n, rows, Domain.NTT, self.cache)

    def to_coefficient(self) -> "RnsPolynomial":
        """Return the coefficient-domain version (``np`` inverse NTTs)."""
        if self.domain is Domain.COEFFICIENT:
            return self
        rows = self.cache.backend.inverse_ntt_batch(self.residues, self.basis.primes)
        return RnsPolynomial(self.basis, self.n, rows, Domain.COEFFICIENT, self.cache)

    # -- arithmetic -------------------------------------------------------------
    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.basis.primes != other.basis.primes or self.n != other.n:
            raise ValueError("polynomials live in different rings")
        if self.domain is not other.domain:
            raise ValueError(
                "domain mismatch: %s vs %s — convert explicitly first"
                % (self.domain.value, other.domain.value)
            )

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        rows = self.cache.backend.add_batch(
            self.residues, other.residues, self.basis.primes
        )
        return RnsPolynomial(self.basis, self.n, rows, self.domain, self.cache)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        rows = self.cache.backend.sub_batch(
            self.residues, other.residues, self.basis.primes
        )
        return RnsPolynomial(self.basis, self.n, rows, self.domain, self.cache)

    def __neg__(self) -> "RnsPolynomial":
        rows = self.cache.backend.neg_batch(self.residues, self.basis.primes)
        return RnsPolynomial(self.basis, self.n, rows, self.domain, self.cache)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Negacyclic polynomial product.

        In the NTT domain this is element-wise; in the coefficient domain the
        operands are transformed, multiplied element-wise and transformed
        back (the ``iNTT(NTT(a) ⊙ NTT(b))`` pipeline of Section III-A).
        """
        self._check_compatible(other)
        if self.domain is Domain.NTT:
            rows = self.cache.backend.mul_batch(
                self.residues, other.residues, self.basis.primes
            )
            return RnsPolynomial(self.basis, self.n, rows, Domain.NTT, self.cache)
        return (self.to_ntt() * other.to_ntt()).to_coefficient()

    def scalar_mul(self, scalar: int) -> "RnsPolynomial":
        """Multiply every coefficient by an integer scalar (domain-independent)."""
        rows = self.cache.backend.scalar_mul_batch(
            self.residues, scalar, self.basis.primes
        )
        return RnsPolynomial(self.basis, self.n, rows, self.domain, self.cache)

    # -- reconstruction ----------------------------------------------------------
    def to_big_coefficients(self, centered: bool = False) -> list[int]:
        """CRT-reconstruct the coefficient vector mod ``Q`` (optionally centered)."""
        poly = self.to_coefficient()
        reconstruct = (
            poly.basis.from_residues_centered if centered else poly.basis.from_residues
        )
        return [
            reconstruct([poly.residues[i][j] for i in range(poly.basis.count)])
            for j in range(poly.n)
        ]

    def drop_last_prime(self) -> "RnsPolynomial":
        """Drop the last RNS component (used by rescaling in the HE layer)."""
        new_basis = self.basis.drop_last(1)
        return RnsPolynomial(
            new_basis, self.n, [list(r) for r in self.residues[:-1]], self.domain, self.cache
        )

    def copy(self) -> "RnsPolynomial":
        """Deep copy of the residue matrix."""
        return RnsPolynomial(
            self.basis, self.n, [list(r) for r in self.residues], self.domain, self.cache
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPolynomial):
            return NotImplemented
        return (
            self.basis.primes == other.basis.primes
            and self.n == other.n
            and self.domain == other.domain
            and self.residues == other.residues
        )
