"""Polynomials in RNS (double-CRT) representation, resident on a backend.

A ciphertext polynomial in ``Z_Q[X]/(X^N + 1)`` is logically an ``np x N``
matrix of residues: row ``i`` holds the polynomial's coefficients reduced
modulo ``p_i``.  Converting every row to the NTT domain yields the
"double-CRT" layout in which both polynomial multiplication and addition are
coefficient-wise — the representation all RNS-based HE libraries (SEAL,
HEAAN, PALISADE) compute in, and the workload whose NTT conversions the paper
accelerates.

Since the resident-tensor redesign, the matrix itself lives inside an opaque
:class:`repro.backends.base.ResidueTensor` owned by the polynomial's compute
backend — a ``uint64`` ndarray on the NumPy backend — and every operation
(``+``, ``*``, domain conversion, prime dropping) moves handles between
backend calls without materialising Python integers.  Big-int values exist
only at the explicit boundaries: :meth:`RnsPolynomial.from_coefficients` /
:meth:`~RnsPolynomial.from_residue_rows` on the way in,
:meth:`~RnsPolynomial.to_coeff_lists` / :meth:`~RnsPolynomial.to_big_coefficients`
on the way out.  The backend is pinned when the polynomial is created — an
environment flip mid-session affects new polynomials only, never an existing
object graph.

:class:`RnsPolynomial` is deliberately explicit about which domain it is in
(``coefficient`` or ``ntt``); mixing domains raises instead of silently
producing garbage.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from enum import Enum

from ..backends import ops
from ..backends.base import ComputeBackend, ResidueTensor
from ..backends.registry import resolve_backend
from .basis import RnsBasis

__all__ = ["Domain", "RnsPolynomial"]

#: Compiled ``iNTT(NTT(a) ⊙ NTT(b))`` product plans, keyed by row count.
#: The plan is shape-generic (counts bind at execution), so one compilation
#: serves every polynomial pair with the same number of RNS primes.
_PRODUCT_PLANS: dict[int, ops.Plan] = {}


def _product_plan(count: int) -> ops.Plan:
    plan = _PRODUCT_PLANS.get(count)
    if plan is None:
        graph = ops.OpGraph()
        a = graph.input("a")
        b = graph.input("b")
        stacked = graph.forward_ntt(graph.concat([a, b]))
        fa, fb = graph.split(stacked, [count, count])
        graph.output("product", graph.inverse_ntt(graph.mul(fa, fb)))
        plan = graph.compile()
        _PRODUCT_PLANS[count] = plan
    return plan


class Domain(str, Enum):
    """Representation domain of an :class:`RnsPolynomial`."""

    COEFFICIENT = "coefficient"
    NTT = "ntt"


class RnsPolynomial:
    """A polynomial of degree < ``n`` in RNS representation.

    Attributes:
        basis: The RNS basis giving one modulus per residue row.
        n: Polynomial degree bound (power of two).
        tensor: Backend-resident residue matrix (``basis.count`` rows of
            ``n`` residues each).
        domain: Whether the rows are coefficients or NTT values.
    """

    __slots__ = ("basis", "n", "tensor", "domain")

    def __init__(
        self,
        basis: RnsBasis,
        n: int,
        tensor: ResidueTensor,
        domain: Domain = Domain.COEFFICIENT,
    ) -> None:
        if tensor.primes != basis.primes:
            raise ValueError(
                "tensor holds %d residue rows over different moduli than the "
                "basis (%d primes)" % (tensor.count, basis.count)
            )
        if tensor.n != n:
            raise ValueError(
                "tensor rows have %d entries, expected n=%d" % (tensor.n, n)
            )
        self.basis = basis
        self.n = n
        self.tensor = tensor
        self.domain = domain

    # -- constructors (explicit entry boundaries) ------------------------------
    @classmethod
    def from_coefficients(
        cls,
        coefficients: Sequence[int],
        basis: RnsBasis,
        backend: ComputeBackend | str | None = None,
    ) -> "RnsPolynomial":
        """Build a polynomial from big-integer (or signed) coefficients mod ``Q``."""
        n = len(coefficients)
        rows = [[c % p for c in coefficients] for p in basis.primes]
        return cls.from_residue_rows(rows, basis, n=n, backend=backend)

    @classmethod
    def from_residue_rows(
        cls,
        rows: Sequence[Sequence[int]],
        basis: RnsBasis,
        domain: Domain = Domain.COEFFICIENT,
        n: int | None = None,
        backend: ComputeBackend | str | None = None,
    ) -> "RnsPolynomial":
        """Enter residency: wrap explicit residue rows into a resident tensor.

        This (together with :meth:`from_coefficients`) is the only entry
        boundary from Python lists into backend-native storage.
        """
        if len(rows) != basis.count:
            raise ValueError(
                "expected %d residue rows, got %d" % (basis.count, len(rows))
            )
        if n is None:
            n = len(rows[0]) if rows else 0
        for row in rows:
            if len(row) != n:
                raise ValueError("every residue row must have exactly n entries")
        resolved = resolve_backend(backend)
        return cls(basis, n, resolved.from_rows(rows, basis.primes), domain)

    @classmethod
    def zero(
        cls,
        basis: RnsBasis,
        n: int,
        domain: Domain = Domain.COEFFICIENT,
        backend: ComputeBackend | str | None = None,
    ) -> "RnsPolynomial":
        """The all-zero polynomial (identical in both domains)."""
        rows = [[0] * n for _ in basis.primes]
        return cls.from_residue_rows(rows, basis, domain=domain, n=n, backend=backend)

    @classmethod
    def random_uniform(
        cls,
        basis: RnsBasis,
        n: int,
        rng: random.Random,
        domain: Domain = Domain.COEFFICIENT,
        backend: ComputeBackend | str | None = None,
    ) -> "RnsPolynomial":
        """Uniformly random residues — used for the `a` part of RLWE samples."""
        rows = [[rng.randrange(p) for _ in range(n)] for p in basis.primes]
        return cls.from_residue_rows(rows, basis, domain=domain, n=n, backend=backend)

    @classmethod
    def random_ternary(
        cls,
        basis: RnsBasis,
        n: int,
        rng: random.Random,
        backend: ComputeBackend | str | None = None,
    ) -> "RnsPolynomial":
        """Random ternary ({-1, 0, 1}) polynomial — HE secret-key distribution."""
        coefficients = [rng.choice((-1, 0, 1)) for _ in range(n)]
        return cls.from_coefficients(coefficients, basis, backend=backend)

    @classmethod
    def random_gaussian(
        cls,
        basis: RnsBasis,
        n: int,
        rng: random.Random,
        stddev: float = 3.2,
        backend: ComputeBackend | str | None = None,
    ) -> "RnsPolynomial":
        """Discrete-Gaussian-ish error polynomial (rounded normal, HE error distribution)."""
        coefficients = [round(rng.gauss(0.0, stddev)) for _ in range(n)]
        return cls.from_coefficients(coefficients, basis, backend=backend)

    # -- backend ---------------------------------------------------------------
    @property
    def backend(self) -> ComputeBackend:
        """The compute backend whose storage holds this polynomial's residues."""
        return self.tensor.backend

    def with_backend(self, backend: ComputeBackend | str) -> "RnsPolynomial":
        """Re-materialise this polynomial on a specific backend.

        A no-op returning ``self`` when already resident there; otherwise the
        residues cross the list boundary once (counted on both backends).
        """
        resolved = resolve_backend(backend)
        if resolved is self.backend:
            return self
        return RnsPolynomial(
            self.basis,
            self.n,
            resolved.from_rows(self.tensor.to_rows(), self.basis.primes),
            self.domain,
        )

    def _wrap(self, tensor: ResidueTensor, domain: Domain) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.n, tensor, domain)

    # -- domain conversion ------------------------------------------------------
    def to_ntt(self) -> "RnsPolynomial":
        """Return the NTT-domain version of this polynomial (``np`` forward NTTs).

        The whole resident tensor is handed to the backend as one batch — on
        the NumPy backend every row whose prime fits the 30-bit window moves
        through the butterfly stages as a single 2-D array operation.
        """
        if self.domain is Domain.NTT:
            return self
        return self._wrap(self.backend.forward_ntt_batch(self.tensor), Domain.NTT)

    def to_coefficient(self) -> "RnsPolynomial":
        """Return the coefficient-domain version (``np`` inverse NTTs)."""
        if self.domain is Domain.COEFFICIENT:
            return self
        return self._wrap(
            self.backend.inverse_ntt_batch(self.tensor), Domain.COEFFICIENT
        )

    # -- arithmetic -------------------------------------------------------------
    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.basis.primes != other.basis.primes or self.n != other.n:
            raise ValueError("polynomials live in different rings")
        if self.domain is not other.domain:
            raise ValueError(
                "domain mismatch: %s vs %s — convert explicitly first"
                % (self.domain.value, other.domain.value)
            )

    def _operand(self, other: "RnsPolynomial") -> ResidueTensor:
        """The other operand's tensor on *this* polynomial's backend.

        Same backend: the handle passes through untouched.  Foreign backend:
        the operand is materialised once at the boundary (counted) — mixing
        backends is explicit in the conversion counters, never silent.
        """
        self._check_compatible(other)
        return other.with_backend(self.backend).tensor

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        return self._wrap(
            self.backend.add(self.tensor, self._operand(other)), self.domain
        )

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        return self._wrap(
            self.backend.sub(self.tensor, self._operand(other)), self.domain
        )

    def __neg__(self) -> "RnsPolynomial":
        return self._wrap(self.backend.neg(self.tensor), self.domain)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Negacyclic polynomial product.

        In the NTT domain this is element-wise; in the coefficient domain the
        operands are transformed, multiplied element-wise and transformed
        back (the ``iNTT(NTT(a) ⊙ NTT(b))`` pipeline of Section III-A) — by
        default as **one** compiled plan handed to
        :meth:`~repro.backends.base.ComputeBackend.execute`, so both forward
        transforms run as a single wide batch and a sharding backend fuses
        the whole product into one dispatch.  ``REPRO_EXECUTION=eager``
        restores the per-call path; both are bit-for-bit identical.
        """
        if self.domain is Domain.NTT:
            return self._wrap(
                self.backend.mul(self.tensor, self._operand(other)), Domain.NTT
            )
        self._check_compatible(other)
        if ops.resolve_execution_mode() == "eager":
            return (self.to_ntt() * other.to_ntt()).to_coefficient()
        product = self.backend.execute(
            _product_plan(self.basis.count),
            {"a": self.tensor, "b": self._operand(other)},
        )["product"]
        return self._wrap(product, Domain.COEFFICIENT)

    def scalar_mul(self, scalar: int) -> "RnsPolynomial":
        """Multiply every coefficient by an integer scalar (domain-independent)."""
        return self._wrap(self.backend.scalar_mul(self.tensor, scalar), self.domain)

    # -- exit boundaries ---------------------------------------------------------
    def to_coeff_lists(self) -> list[list[int]]:
        """Materialise the residue matrix to Python lists — an explicit boundary.

        This is the *only* way residue data leaves backend-native storage
        (serialisation, decoding and CRT reconstruction all route through
        here); the backend's conversion counter records the crossing.
        """
        return self.tensor.to_rows()

    @property
    def residues(self) -> list[list[int]]:
        """Materialised copy of the residue rows (alias of :meth:`to_coeff_lists`).

        Convenience for inspection and tests; mutating the returned lists does
        not write back into the resident tensor.
        """
        return self.to_coeff_lists()

    def to_big_coefficients(self, centered: bool = False) -> list[int]:
        """CRT-reconstruct the coefficient vector mod ``Q`` (optionally centered)."""
        poly = self.to_coefficient()
        rows = poly.to_coeff_lists()
        reconstruct = (
            poly.basis.from_residues_centered if centered else poly.basis.from_residues
        )
        return [
            reconstruct([rows[i][j] for i in range(poly.basis.count)])
            for j in range(poly.n)
        ]

    # -- structure ----------------------------------------------------------------
    def drop_last_prime(self) -> "RnsPolynomial":
        """Drop the last RNS component (used by rescaling in the HE layer)."""
        new_basis = self.basis.drop_last(1)
        return RnsPolynomial(
            new_basis,
            self.n,
            self.backend.slice_rows(self.tensor, 0, self.basis.count - 1),
            self.domain,
        )

    def copy(self) -> "RnsPolynomial":
        """Deep copy of the resident residue matrix."""
        return self._wrap(self.backend.copy(self.tensor), self.domain)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPolynomial):
            return NotImplemented
        if (
            self.basis.primes != other.basis.primes
            or self.n != other.n
            or self.domain != other.domain
        ):
            return False
        if self.backend is other.backend:
            return self.backend.tensor_equal(self.tensor, other.tensor)
        return self.to_coeff_lists() == other.to_coeff_lists()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RnsPolynomial(np=%d, n=%d, domain=%s, backend=%s)" % (
            self.basis.count,
            self.n,
            self.domain.value,
            self.backend.name,
        )
