"""Residue-number-system (RNS) basis.

HE schemes avoid multi-precision arithmetic by representing every big-integer
coefficient (mod ``Q``) as its residues modulo a set of machine-word primes
``p_1 .. p_np`` with ``prod(p_i) >= Q`` — the Chinese-remainder-theorem
decomposition described in Section III-B of the paper.  An :class:`RnsBasis`
bundles those primes with the precomputed constants CRT reconstruction needs
(the "punctured products" ``Q/p_i`` and their inverses mod ``p_i``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..modarith.modops import inv_mod
from ..modarith.primes import generate_ntt_primes, is_ntt_prime

__all__ = ["RnsBasis"]


@dataclass(frozen=True)
class RnsBasis:
    """An ordered set of pairwise-coprime NTT-friendly primes.

    Attributes:
        primes: The RNS primes, all congruent to ``1 mod 2n``.
        n: Polynomial degree the basis is meant for (used for validation
            only; a basis can be reused for any smaller power-of-two degree).
    """

    primes: tuple[int, ...]
    n: int
    _punctured: tuple[int, ...] = field(init=False, repr=False, compare=False)
    _punctured_inv: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.primes:
            raise ValueError("an RNS basis needs at least one prime")
        if len(set(self.primes)) != len(self.primes):
            raise ValueError("RNS primes must be distinct")
        for p in self.primes:
            if not is_ntt_prime(p, self.n):
                raise ValueError("prime %d is not an NTT prime for n=%d" % (p, self.n))
        modulus = 1
        for p in self.primes:
            modulus *= p
        punctured = tuple(modulus // p for p in self.primes)
        punctured_inv = tuple(
            inv_mod(q_i % p, p) for q_i, p in zip(punctured, self.primes)
        )
        object.__setattr__(self, "_punctured", punctured)
        object.__setattr__(self, "_punctured_inv", punctured_inv)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def generate(cls, n: int, count: int, bit_size: int = 60) -> "RnsBasis":
        """Generate a basis of ``count`` fresh ``bit_size``-bit primes for degree ``n``."""
        return cls(primes=tuple(generate_ntt_primes(bit_size, count, n)), n=n)

    @classmethod
    def from_primes(cls, primes: Iterable[int], n: int) -> "RnsBasis":
        """Wrap an explicit list of primes (validated) into a basis."""
        return cls(primes=tuple(primes), n=n)

    # -- properties -----------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of primes (``np`` in the paper)."""
        return len(self.primes)

    @property
    def modulus(self) -> int:
        """The composite modulus ``Q = prod(p_i)``."""
        product = 1
        for p in self.primes:
            product *= p
        return product

    @property
    def log_q(self) -> int:
        """``ceil(log2 Q)`` as quoted in the paper's Figure 13."""
        return self.modulus.bit_length()

    # -- CRT ------------------------------------------------------------------
    def to_residues(self, value: int) -> list[int]:
        """Decompose ``value`` (interpreted mod ``Q``) into its residue vector."""
        value %= self.modulus
        return [value % p for p in self.primes]

    def from_residues(self, residues: Sequence[int]) -> int:
        """Reconstruct the unique value in ``[0, Q)`` from a residue vector (CRT)."""
        if len(residues) != self.count:
            raise ValueError(
                "expected %d residues, got %d" % (self.count, len(residues))
            )
        modulus = self.modulus
        total = 0
        for r, p, q_i, q_inv in zip(
            residues, self.primes, self._punctured, self._punctured_inv
        ):
            total += (r % p) * q_inv % p * q_i
        return total % modulus

    def from_residues_centered(self, residues: Sequence[int]) -> int:
        """CRT reconstruction mapped to the centered interval ``(-Q/2, Q/2]``.

        HE decryption needs the *signed* representative of a coefficient
        because plaintexts are small signed integers embedded near zero.
        """
        value = self.from_residues(residues)
        if value > self.modulus // 2:
            value -= self.modulus
        return value

    def drop_last(self, count: int = 1) -> "RnsBasis":
        """Return a new basis with the last ``count`` primes removed.

        This models the modulus-switching / rescaling step of RNS-CKKS, where
        each multiplication consumes one prime of the chain.
        """
        if count < 1 or count >= self.count:
            raise ValueError("can drop between 1 and count-1 primes")
        return RnsBasis(primes=self.primes[: self.count - count], n=self.n)

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        return iter(self.primes)

    def __getitem__(self, index: int) -> int:
        return self.primes[index]
