"""Residue-number-system (CRT) substrate: bases and RNS polynomials."""

from .basis import RnsBasis
from .poly import Domain, RnsPolynomial

__all__ = ["RnsBasis", "Domain", "RnsPolynomial"]
