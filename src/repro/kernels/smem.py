"""Model of the shared-memory (SMEM) two-kernel NTT/DFT implementation.

Section VI-C's best-performing design executes an ``N``-point NTT as two
kernels, Kernel-1 of radix ``N1`` and Kernel-2 of radix ``N2`` with
``N = N1 * N2``.  Inside each kernel a thread block stages its points through
shared memory: every thread performs a small per-thread NTT (2/4/8 points) in
registers, writes to shared memory, block-synchronises, reloads transposed,
and repeats until the kernel's radix is covered (Figures 2 and 10).

The model captures the design knobs the paper sweeps:

* **Coalescing** (Figure 6/7): without thread-block merging, Kernel-1's
  strided loads waste most of each 32-byte transaction; the model charges the
  extra read traffic (partially recovered by the L2, calibrated to the
  paper's 21.6% Kernel-1 speedup).
* **Twiddle preloading** (Figure 9): staging Kernel-1's twiddles through
  shared memory replaces scattered cached reads with one clean block-level
  fetch, reducing effective DRAM traffic.
* **Per-thread NTT size** (Figures 10/11): smaller per-thread NTTs need fewer
  registers but more block-level synchronisations.
* **On-the-fly twiddling** (Section VII, Figures 11(c)/12): the last one or
  two stages' twiddles — half to three quarters of the whole table — are
  regenerated from factored tables instead of being streamed from DRAM, at
  the cost of one extra modular multiplication per covered butterfly.

Every knob is also available for the DFT counterpart
(:func:`smem_dft_model`) so Figure 11(b) can be reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.on_the_fly import OnTheFlyConfig
from ..core.plan import NTTAlgorithm, NTTPlan
from ..gpu.costmodel import GpuCostModel, KernelLaunch
from ..gpu.memory import TrafficCounter
from ..transforms.bitrev import log2_exact
from .base import (
    DEFAULT_THREADS_PER_BLOCK,
    DFT_ELEMENT_BYTES,
    KernelModelResult,
    NTT_ELEMENT_BYTES,
    TWIDDLE_ENTRY_BYTES_DFT,
    TWIDDLE_ENTRY_BYTES_NTT,
    run_launches,
    smem_thread_registers,
)

__all__ = [
    "UNCOALESCED_READ_EFFICIENCY",
    "NO_PRELOAD_TWIDDLE_FACTOR",
    "per_thread_rounds",
    "smem_kernel_launch",
    "smem_ntt_model",
    "smem_dft_model",
    "smem_model_from_plan",
]

#: Effective efficiency of Kernel-1's strided reads when thread blocks are not
#: merged: each 32-byte transaction carries one useful 8-byte element (25%
#: efficiency at the L1), of which the L2 recovers roughly half before DRAM.
UNCOALESCED_READ_EFFICIENCY = 0.5

#: Multiplier on Kernel-1 twiddle traffic when the per-block twiddle slice is
#: *not* preloaded into shared memory: the scattered per-butterfly reads miss
#: in L1 and are refetched (calibrated to the paper’s 8.4% Kernel-1 gain from
#: preloading, Figure 9).
NO_PRELOAD_TWIDDLE_FACTOR = 3.2

#: Factor by which each block re-reads the (small) factored OT tables.
OT_TABLE_REFETCH_FACTOR = 4.0


def per_thread_rounds(kernel_radix: int, per_thread_points: int) -> int:
    """Number of per-thread NTT rounds needed to cover ``kernel_radix`` points.

    Each round performs a ``per_thread_points``-point NTT per thread; covering
    a radix-``R`` kernel therefore needs ``ceil(log2 R / log2 r)`` rounds with
    a block-level synchronisation between consecutive rounds (Figure 10).
    """
    return math.ceil(log2_exact(kernel_radix) / log2_exact(per_thread_points))


@dataclass(frozen=True)
class _Workload:
    """Internal: arithmetic/layout constants distinguishing NTT from DFT."""

    element_bytes: int
    twiddle_entry_bytes: int
    twiddle_scales_with_batch: bool
    butterfly_slots_attr: str
    is_ntt: bool


_NTT_WORKLOAD = _Workload(
    element_bytes=NTT_ELEMENT_BYTES,
    twiddle_entry_bytes=TWIDDLE_ENTRY_BYTES_NTT,
    twiddle_scales_with_batch=True,
    butterfly_slots_attr="shoup_butterfly_slots",
    is_ntt=True,
)
_DFT_WORKLOAD = _Workload(
    element_bytes=DFT_ELEMENT_BYTES,
    twiddle_entry_bytes=TWIDDLE_ENTRY_BYTES_DFT,
    twiddle_scales_with_batch=False,
    butterfly_slots_attr="dft_butterfly_slots",
    is_ntt=False,
)


def smem_kernel_launch(
    name: str,
    n: int,
    batch: int,
    kernel_radix: int,
    stage_span: tuple[int, int],
    per_thread_points: int,
    model: GpuCostModel,
    workload: _Workload,
    coalesced_reads: bool = True,
    preload_twiddles: bool = False,
    ot: OnTheFlyConfig | None = None,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> KernelLaunch:
    """Build the :class:`KernelLaunch` for one SMEM kernel (Kernel-1 or Kernel-2).

    Args:
        name: Kernel label.
        n: Full transform length.
        batch: Number of independent transforms (``np`` for NTT, 1-shared-table DFT).
        kernel_radix: This kernel's radix (``N1`` or ``N2``).
        stage_span: Half-open range ``(first_stage, last_stage)`` of global
            radix-2 stage indices (1-based) this kernel executes.
        per_thread_points: Per-thread NTT size between synchronisations.
        model: Cost model (source of calibration constants).
        workload: NTT or DFT constants.
        coalesced_reads: Whether the kernel's global reads are coalesced.
        preload_twiddles: Whether the kernel stages its twiddles through SMEM.
        ot: On-the-fly twiddling configuration (affects only the stages this
            kernel covers).
        threads_per_block: Launch block size.
    """
    first_stage, last_stage = stage_span
    stage_count = last_stage - first_stage + 1
    if stage_count != log2_exact(kernel_radix):
        raise ValueError("stage span does not match kernel radix")

    calibration = model.calibration
    slots_per_butterfly = getattr(calibration, workload.butterfly_slots_attr)
    threads_total = (n // per_thread_points) * batch
    blocks = max(1, threads_total // threads_per_block)
    total_stages = log2_exact(n)

    # --- traffic ---------------------------------------------------------------
    traffic = TrafficCounter()
    read_efficiency = 1.0 if coalesced_reads else UNCOALESCED_READ_EFFICIENCY
    traffic.add_data_read(n * batch * workload.element_bytes, efficiency=read_efficiency)
    traffic.add_data_write(n * batch * workload.element_bytes)

    twiddle_batch = batch if workload.twiddle_scales_with_batch else 1

    # Twiddle entries consumed per transform by the stages of this kernel,
    # split into OT-covered (regenerated) and table-resident entries.
    ot_first_covered_stage = total_stages + 1
    if ot is not None and ot.ot_stages > 0:
        ot_first_covered_stage = total_stages - min(ot.ot_stages, total_stages) + 1
    table_entries = 0
    regenerated_entries = 0
    covered_butterflies = 0
    for stage in range(first_stage, last_stage + 1):
        stage_entries = 1 << (stage - 1)
        if stage >= ot_first_covered_stage:
            regenerated_entries += stage_entries
            covered_butterflies += (n // 2) * batch
        else:
            table_entries += stage_entries

    if first_stage == 1:
        # Kernel-1: its stages have few distinct twiddles, but every block of
        # every transform must fetch the kernel's whole slice (it cannot be
        # shared across blocks), so the traffic is counted per block.  Without
        # the shared-memory preload the scattered reads are refetched several
        # times over (Figure 9).
        twiddle_factor = 1.0 if preload_twiddles else NO_PRELOAD_TWIDDLE_FACTOR
        traffic.add_twiddle_read(
            blocks * kernel_radix * workload.twiddle_entry_bytes * twiddle_factor
        )
    else:
        # Kernel-2: the late stages' twiddles are each used by only a handful
        # of butterflies inside one block, so per-transform counting and
        # per-block counting coincide.
        traffic.add_twiddle_read(
            table_entries * twiddle_batch * workload.twiddle_entry_bytes
        )
    if regenerated_entries:
        stored_entries = ot.table_entries(n) if ot is not None else 0
        traffic.add_twiddle_read(
            stored_entries
            * twiddle_batch
            * workload.twiddle_entry_bytes
            * OT_TABLE_REFETCH_FACTOR
        )

    # --- compute ----------------------------------------------------------------
    butterflies = (n // 2) * stage_count * batch
    compute_slots = butterflies * slots_per_butterfly
    compute_slots += covered_butterflies * calibration.ot_regeneration_slots

    # --- launch geometry ----------------------------------------------------------
    registers = smem_thread_registers(per_thread_points, ntt=workload.is_ntt)
    smem_bytes = per_thread_points * threads_per_block * workload.element_bytes
    if preload_twiddles:
        smem_bytes += kernel_radix * workload.element_bytes
    syncs = per_thread_rounds(kernel_radix, per_thread_points) - 1

    return KernelLaunch(
        name=name,
        traffic=traffic,
        compute_slots=compute_slots,
        threads_total=threads_total,
        threads_per_block=threads_per_block,
        registers_per_thread=registers,
        smem_bytes_per_block=smem_bytes,
        block_syncs=syncs,
        loads_in_flight_per_thread=per_thread_points,
    )


def _two_kernel_model(
    n: int,
    batch: int,
    kernel1_size: int,
    kernel2_size: int,
    per_thread_points: int,
    model: GpuCostModel,
    workload: _Workload,
    coalesced: bool,
    preload_twiddles: bool,
    ot: OnTheFlyConfig | None,
    threads_per_block: int,
    label: str,
) -> KernelModelResult:
    if kernel1_size * kernel2_size != n:
        raise ValueError("kernel1_size * kernel2_size must equal n")
    k1_stages = log2_exact(kernel1_size)
    k2_stages = log2_exact(kernel2_size)
    launches = [
        smem_kernel_launch(
            name="Kernel-1 (radix-%d)" % kernel1_size,
            n=n,
            batch=batch,
            kernel_radix=kernel1_size,
            stage_span=(1, k1_stages),
            per_thread_points=per_thread_points,
            model=model,
            workload=workload,
            coalesced_reads=coalesced,
            preload_twiddles=preload_twiddles,
            ot=ot,
            threads_per_block=threads_per_block,
        ),
        smem_kernel_launch(
            name="Kernel-2 (radix-%d)" % kernel2_size,
            n=n,
            batch=batch,
            kernel_radix=kernel2_size,
            stage_span=(k1_stages + 1, k1_stages + k2_stages),
            per_thread_points=per_thread_points,
            model=model,
            workload=workload,
            coalesced_reads=True,  # Kernel-2's accesses are contiguous by construction
            preload_twiddles=False,  # the paper preloads only in Kernel-1
            ot=ot,
            threads_per_block=threads_per_block,
        ),
    ]
    return run_launches(label, launches, model)


def smem_ntt_model(
    n: int,
    batch: int,
    model: GpuCostModel,
    kernel1_size: int | None = None,
    kernel2_size: int | None = None,
    per_thread_points: int = 8,
    coalesced: bool = True,
    preload_twiddles: bool = True,
    ot: OnTheFlyConfig | None = None,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> KernelModelResult:
    """Model the SMEM two-kernel NTT for a batch of ``batch`` primes."""
    from ..core.plan import default_smem_split

    if kernel1_size is None or kernel2_size is None:
        kernel1_size, kernel2_size = default_smem_split(n)
    label = "smem %dx%d (%d-pt/thread)" % (kernel1_size, kernel2_size, per_thread_points)
    if ot is not None and ot.ot_stages > 0:
        label += " +OT(last %d)" % ot.ot_stages
    return _two_kernel_model(
        n,
        batch,
        kernel1_size,
        kernel2_size,
        per_thread_points,
        model,
        _NTT_WORKLOAD,
        coalesced,
        preload_twiddles,
        ot,
        threads_per_block,
        label,
    )


def smem_dft_model(
    n: int,
    batch: int,
    model: GpuCostModel,
    kernel1_size: int | None = None,
    kernel2_size: int | None = None,
    per_thread_points: int = 8,
    coalesced: bool = True,
    preload_twiddles: bool = True,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> KernelModelResult:
    """Model the SMEM two-kernel DFT counterpart (Figure 11(b))."""
    from ..core.plan import default_smem_split

    if kernel1_size is None or kernel2_size is None:
        kernel1_size, kernel2_size = default_smem_split(n)
    label = "dft smem %dx%d (%d-pt/thread)" % (kernel1_size, kernel2_size, per_thread_points)
    return _two_kernel_model(
        n,
        batch,
        kernel1_size,
        kernel2_size,
        per_thread_points,
        model,
        _DFT_WORKLOAD,
        coalesced,
        preload_twiddles,
        None,
        threads_per_block,
        label,
    )


def smem_model_from_plan(
    plan: NTTPlan, batch: int, model: GpuCostModel
) -> KernelModelResult:
    """Model any :class:`NTTPlan` (radix-2 / high-radix / SMEM) for a batch."""
    from .high_radix import high_radix_ntt_model
    from .radix2 import radix2_ntt_model

    if plan.algorithm is NTTAlgorithm.RADIX2:
        return radix2_ntt_model(plan.n, batch, model)
    if plan.algorithm is NTTAlgorithm.HIGH_RADIX:
        return high_radix_ntt_model(plan.n, batch, plan.radix, model)
    kernel1, kernel2 = plan.smem_split
    return smem_ntt_model(
        plan.n,
        batch,
        model,
        kernel1_size=kernel1,
        kernel2_size=kernel2,
        per_thread_points=plan.per_thread_points,
        coalesced=plan.coalesced,
        preload_twiddles=plan.preload_twiddles,
        ot=plan.ot,
    )
