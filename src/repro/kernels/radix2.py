"""Model of the baseline radix-2 NTT kernels (one launch per stage).

This is the paper's baseline (Algorithm 1 mapped naively onto the GPU): each
of the ``log2 N`` stages is a separate kernel in which every thread performs
one butterfly, reading its two operands from global memory and writing them
back.  The twiddle factor (and its Shoup companion) for the thread's butterfly
group is read from the per-prime precomputed table.

The same generator also produces the *native-modulo* variant used by
Figure 1: the butterfly cost switches to the ~68-instruction modulo expansion
and the expanded sequence's extra register demand lowers occupancy.
"""

from __future__ import annotations

from ..gpu.costmodel import GpuCostModel, KernelLaunch
from ..gpu.memory import TrafficCounter
from .base import (
    DEFAULT_THREADS_PER_BLOCK,
    KernelModelResult,
    NTT_ELEMENT_BYTES,
    TWIDDLE_ENTRY_BYTES_NTT,
    ntt_registers_for_radix,
    run_launches,
    stages_of,
)

__all__ = ["radix2_ntt_model", "butterfly_slots_for_modmul"]


def butterfly_slots_for_modmul(modmul: str, model: GpuCostModel) -> float:
    """Issue-slot cost of one butterfly under the given modular-multiplication scheme."""
    calibration = model.calibration
    try:
        return {
            "shoup": calibration.shoup_butterfly_slots,
            "native": calibration.native_butterfly_slots,
            "barrett": calibration.barrett_butterfly_slots,
        }[modmul]
    except KeyError:
        raise ValueError("unknown modmul scheme %r (expected shoup/native/barrett)" % modmul)


def radix2_ntt_model(
    n: int,
    batch: int,
    model: GpuCostModel,
    modmul: str = "shoup",
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> KernelModelResult:
    """Model the per-stage radix-2 NTT kernels for a batch of ``batch`` primes.

    Args:
        n: Transform length.
        batch: Number of independent NTTs executed together (``np``).
        model: The GPU cost model to evaluate against.
        modmul: Modular-multiplication scheme (``"shoup"``, ``"native"``, ``"barrett"``).
        threads_per_block: Launch block size.

    Returns:
        A :class:`KernelModelResult` with one estimate per stage.
    """
    if batch < 1:
        raise ValueError("batch must be at least 1")
    slots_per_butterfly = butterfly_slots_for_modmul(modmul, model)
    registers = ntt_registers_for_radix(2)
    if modmul == "native":
        registers += model.calibration.native_extra_registers

    launches: list[KernelLaunch] = []
    butterflies_per_stage = (n // 2) * batch
    for stage in range(1, stages_of(n) + 1):
        distinct_twiddles = 1 << (stage - 1)
        traffic = TrafficCounter()
        traffic.add_data_read(n * batch * NTT_ELEMENT_BYTES)
        traffic.add_data_write(n * batch * NTT_ELEMENT_BYTES)
        twiddle_bytes = 0 if modmul == "native" else distinct_twiddles * batch * TWIDDLE_ENTRY_BYTES_NTT
        if modmul == "native":
            # the native variant still reads the bare twiddle factor (8 bytes)
            twiddle_bytes = distinct_twiddles * batch * NTT_ELEMENT_BYTES
        traffic.add_twiddle_read(twiddle_bytes)
        launches.append(
            KernelLaunch(
                name="radix2-stage%d" % stage,
                traffic=traffic,
                compute_slots=butterflies_per_stage * slots_per_butterfly,
                threads_total=butterflies_per_stage,
                threads_per_block=threads_per_block,
                registers_per_thread=registers,
            )
        )
    label = "radix-2" if modmul == "shoup" else "radix-2 (%s)" % modmul
    return run_launches(label, launches, model)
