"""End-to-end model of a full negacyclic polynomial multiplication on the GPU.

The NTT kernels modelled elsewhere are one leg of the pipeline an HE library
actually runs per ciphertext-polynomial product:

    forward NTT (operand A)  ->  forward NTT (operand B)
        ->  element-wise (dyadic) multiplication  ->  inverse NTT (result)

This module prices that whole pipeline for a batch of ``np`` RNS primes, so
the examples and the HE layer can answer "what does one double-CRT polynomial
product cost on the modelled Titan V?" — and quantify how much of it the
NTT stages represent, the motivation stated in the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.on_the_fly import OnTheFlyConfig
from ..gpu.costmodel import GpuCostModel, KernelLaunch
from ..gpu.memory import TrafficCounter
from .base import DEFAULT_THREADS_PER_BLOCK, KernelModelResult, NTT_ELEMENT_BYTES
from .smem import smem_ntt_model

__all__ = ["PolynomialMultiplyEstimate", "dyadic_multiply_launch", "polynomial_multiply_model"]

#: Issue slots per element-wise modular multiplication (one Shoup-style product).
DYADIC_SLOTS_PER_ELEMENT = 12.0


@dataclass(frozen=True)
class PolynomialMultiplyEstimate:
    """Cost breakdown of one batched negacyclic polynomial multiplication.

    Attributes:
        forward_a: Kernel estimates of operand A's forward NTT batch.
        forward_b: Kernel estimates of operand B's forward NTT batch.
        dyadic_time_us: Time of the element-wise multiplication kernel.
        inverse: Kernel estimates of the result's inverse NTT batch.
        total_time_us: End-to-end pipeline time.
        ntt_time_us: Time spent in forward/inverse NTT kernels.
        ntt_share: Fraction of the pipeline spent in NTTs.
    """

    forward_a: KernelModelResult
    forward_b: KernelModelResult
    dyadic_time_us: float
    inverse: KernelModelResult
    total_time_us: float
    ntt_time_us: float
    ntt_share: float


def dyadic_multiply_launch(n: int, batch: int) -> KernelLaunch:
    """The element-wise (Hadamard) modular multiplication kernel of the pipeline."""
    traffic = TrafficCounter()
    traffic.add_data_read(2 * n * batch * NTT_ELEMENT_BYTES)
    traffic.add_data_write(n * batch * NTT_ELEMENT_BYTES)
    return KernelLaunch(
        name="dyadic-multiply",
        traffic=traffic,
        compute_slots=n * batch * DYADIC_SLOTS_PER_ELEMENT,
        threads_total=n * batch,
        threads_per_block=DEFAULT_THREADS_PER_BLOCK,
        registers_per_thread=32,
        loads_in_flight_per_thread=4,
    )


def polynomial_multiply_model(
    n: int,
    batch: int,
    model: GpuCostModel,
    kernel1_size: int | None = None,
    kernel2_size: int | None = None,
    per_thread_points: int = 8,
    ot: OnTheFlyConfig | None = None,
) -> PolynomialMultiplyEstimate:
    """Price one batched negacyclic polynomial product (NTT, NTT, dyadic, iNTT).

    The inverse NTT is modelled with the same kernel structure as the forward
    transform (the Gentleman-Sande sweep moves exactly the same data and
    twiddle volume).
    """
    def ntt_batch() -> KernelModelResult:
        return smem_ntt_model(
            n,
            batch,
            model,
            kernel1_size=kernel1_size,
            kernel2_size=kernel2_size,
            per_thread_points=per_thread_points,
            ot=ot,
        )

    forward_a = ntt_batch()
    forward_b = ntt_batch()
    inverse = ntt_batch()
    dyadic_time = model.estimate(dyadic_multiply_launch(n, batch)).time_us

    ntt_time = forward_a.time_us + forward_b.time_us + inverse.time_us
    total = ntt_time + dyadic_time
    return PolynomialMultiplyEstimate(
        forward_a=forward_a,
        forward_b=forward_b,
        dyadic_time_us=dyadic_time,
        inverse=inverse,
        total_time_us=total,
        ntt_time_us=ntt_time,
        ntt_share=ntt_time / total,
    )
