"""GPU kernel models: each paper configuration as a cost-model workload.

* :mod:`repro.kernels.radix2` — per-stage radix-2 baseline (plus the
  native-modulo variant of Figure 1).
* :mod:`repro.kernels.high_radix` — register-based high-radix NTT/DFT.
* :mod:`repro.kernels.smem` — the two-kernel shared-memory implementation
  with coalescing, twiddle preloading, per-thread NTT size, and on-the-fly
  twiddling knobs.
"""

from .base import (
    DEFAULT_THREADS_PER_BLOCK,
    DFT_ELEMENT_BYTES,
    KernelModelResult,
    NTT_ELEMENT_BYTES,
    TWIDDLE_ENTRY_BYTES_DFT,
    TWIDDLE_ENTRY_BYTES_NTT,
    dft_registers_for_radix,
    ntt_registers_for_radix,
    smem_thread_registers,
)
from .high_radix import high_radix_dft_model, high_radix_ntt_model
from .polymul import (
    PolynomialMultiplyEstimate,
    dyadic_multiply_launch,
    polynomial_multiply_model,
)
from .radix2 import butterfly_slots_for_modmul, radix2_ntt_model
from .smem import (
    NO_PRELOAD_TWIDDLE_FACTOR,
    UNCOALESCED_READ_EFFICIENCY,
    per_thread_rounds,
    smem_dft_model,
    smem_model_from_plan,
    smem_ntt_model,
)

__all__ = [
    "DEFAULT_THREADS_PER_BLOCK",
    "DFT_ELEMENT_BYTES",
    "KernelModelResult",
    "NTT_ELEMENT_BYTES",
    "TWIDDLE_ENTRY_BYTES_DFT",
    "TWIDDLE_ENTRY_BYTES_NTT",
    "dft_registers_for_radix",
    "ntt_registers_for_radix",
    "smem_thread_registers",
    "high_radix_dft_model",
    "high_radix_ntt_model",
    "PolynomialMultiplyEstimate",
    "dyadic_multiply_launch",
    "polynomial_multiply_model",
    "butterfly_slots_for_modmul",
    "radix2_ntt_model",
    "NO_PRELOAD_TWIDDLE_FACTOR",
    "UNCOALESCED_READ_EFFICIENCY",
    "per_thread_rounds",
    "smem_dft_model",
    "smem_model_from_plan",
    "smem_ntt_model",
]
