"""Model of the register-based high-radix NTT and DFT kernels (Section VI-B).

A radix-``R`` register implementation lets one thread pull ``R`` points into
registers, execute ``log2 R`` radix-2 stages locally, and write the points
back — dividing the number of main-memory passes by ``log2 R`` at the cost of
``O(R)`` live registers.  Past radix-16 (NTT) / radix-32 (DFT) the register
demand crushes occupancy, the achievable DRAM bandwidth falls, and at
radix-64/128 the NTT thread exceeds the 255-register cap and spills to local
memory — the behaviour Figures 4 and 5 chart.
"""

from __future__ import annotations

from ..gpu.costmodel import GpuCostModel, KernelLaunch
from ..gpu.memory import TrafficCounter
from ..transforms.high_radix import plan_stage_groups
from .base import (
    DEFAULT_THREADS_PER_BLOCK,
    DFT_ELEMENT_BYTES,
    KernelModelResult,
    NTT_ELEMENT_BYTES,
    TWIDDLE_ENTRY_BYTES_DFT,
    TWIDDLE_ENTRY_BYTES_NTT,
    dft_registers_for_radix,
    ntt_registers_for_radix,
    run_launches,
)

__all__ = ["high_radix_ntt_model", "high_radix_dft_model"]


def _pass_twiddle_entries(first_stage_m: int, stage_count: int) -> int:
    """Distinct twiddle factors consumed by ``stage_count`` stages starting at ``m``."""
    total = 0
    m = first_stage_m
    for _ in range(stage_count):
        total += m
        m *= 2
    return total


def high_radix_ntt_model(
    n: int,
    batch: int,
    radix: int,
    model: GpuCostModel,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> KernelModelResult:
    """Model the register-based radix-``radix`` NTT for a batch of ``batch`` primes."""
    if batch < 1:
        raise ValueError("batch must be at least 1")
    groups = plan_stage_groups(n, radix)
    slots_per_butterfly = model.calibration.shoup_butterfly_slots

    launches: list[KernelLaunch] = []
    first_stage_m = 1
    for index, stage_count in enumerate(groups):
        pass_radix = 1 << stage_count
        threads_total = (n // pass_radix) * batch
        butterflies = (n // 2) * stage_count * batch
        traffic = TrafficCounter()
        traffic.add_data_read(n * batch * NTT_ELEMENT_BYTES)
        traffic.add_data_write(n * batch * NTT_ELEMENT_BYTES)
        traffic.add_twiddle_read(
            _pass_twiddle_entries(first_stage_m, stage_count) * batch * TWIDDLE_ENTRY_BYTES_NTT
        )
        launches.append(
            KernelLaunch(
                name="radix%d-pass%d" % (radix, index + 1),
                traffic=traffic,
                compute_slots=butterflies * slots_per_butterfly,
                threads_total=threads_total,
                threads_per_block=threads_per_block,
                # The register demand of each pass follows the radix that pass
                # actually executes (the trailing remainder pass is smaller).
                registers_per_thread=ntt_registers_for_radix(pass_radix),
            )
        )
        first_stage_m <<= stage_count
    return run_launches("radix-%d" % radix, launches, model)


def high_radix_dft_model(
    n: int,
    batch: int,
    radix: int,
    model: GpuCostModel,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> KernelModelResult:
    """Model the register-based radix-``radix`` DFT (complex single-precision) counterpart.

    The two NTT-vs-DFT differences of Section IV appear here: the twiddle
    table is *shared* across the whole batch (one table regardless of
    ``batch``) and the arithmetic is floating point, so threads need fewer
    registers and fewer issue slots per butterfly.
    """
    if batch < 1:
        raise ValueError("batch must be at least 1")
    groups = plan_stage_groups(n, radix)
    slots_per_butterfly = model.calibration.dft_butterfly_slots

    launches: list[KernelLaunch] = []
    first_stage_m = 1
    for index, stage_count in enumerate(groups):
        pass_radix = 1 << stage_count
        threads_total = (n // pass_radix) * batch
        butterflies = (n // 2) * stage_count * batch
        traffic = TrafficCounter()
        traffic.add_data_read(n * batch * DFT_ELEMENT_BYTES)
        traffic.add_data_write(n * batch * DFT_ELEMENT_BYTES)
        traffic.add_twiddle_read(
            _pass_twiddle_entries(first_stage_m, stage_count) * TWIDDLE_ENTRY_BYTES_DFT
        )
        launches.append(
            KernelLaunch(
                name="dft-radix%d-pass%d" % (radix, index + 1),
                traffic=traffic,
                compute_slots=butterflies * slots_per_butterfly,
                threads_total=threads_total,
                threads_per_block=threads_per_block,
                registers_per_thread=dft_registers_for_radix(pass_radix),
            )
        )
        first_stage_m <<= stage_count
    return run_launches("dft-radix-%d" % radix, launches, model)
