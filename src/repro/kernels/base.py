"""Shared building blocks for the GPU kernel models.

Each module in :mod:`repro.kernels` describes one of the paper's kernel
families (radix-2 baseline, register-based high radix, shared-memory
two-kernel, their DFT counterparts, and the on-the-fly-twiddling variants) as
a sequence of :class:`repro.gpu.costmodel.KernelLaunch` objects and asks the
cost model for a time estimate.  This module holds what they share:

* the per-radix register-usage tables for NTT and DFT threads (calibrated so
  that the occupancy trends of Figures 4(c)/5(c) are reproduced — see
  DESIGN.md section 5),
* the result container :class:`KernelModelResult`, and
* small helpers for traffic construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.costmodel import GpuCostModel, KernelEstimate, KernelLaunch
from ..transforms.bitrev import log2_exact

__all__ = [
    "NTT_ELEMENT_BYTES",
    "DFT_ELEMENT_BYTES",
    "TWIDDLE_ENTRY_BYTES_NTT",
    "TWIDDLE_ENTRY_BYTES_DFT",
    "DEFAULT_THREADS_PER_BLOCK",
    "ntt_registers_for_radix",
    "dft_registers_for_radix",
    "smem_thread_registers",
    "KernelModelResult",
    "run_launches",
    "stages_of",
]

#: Bytes per NTT residue element (64-bit word; the paper's chosen word size).
NTT_ELEMENT_BYTES = 8
#: Bytes per DFT element (complex single precision, the 32-bit word choice the
#: paper's Section IV describes for the DFT comparison workload).
DFT_ELEMENT_BYTES = 8
#: Bytes per NTT twiddle-table entry: the factor plus its Shoup companion.
TWIDDLE_ENTRY_BYTES_NTT = 16
#: Bytes per DFT twiddle-table entry (one complex float, no companion needed).
TWIDDLE_ENTRY_BYTES_DFT = 8
#: Default thread-block size used by all modelled kernels.
DEFAULT_THREADS_PER_BLOCK = 256

# ---------------------------------------------------------------------------
# Register-usage calibration tables.
#
# A thread of a register-based radix-R NTT keeps R 64-bit residues (2
# registers each) plus the prime, the Shoup companion, loop indices and
# address arithmetic live; the DFT thread keeps R complex values but needs no
# modulus constants and the compiler contracts its arithmetic into FMAs.  The
# exact values below are calibrated so the occupancy and bandwidth-utilisation
# trends of Figures 4(c) and 5(c) are reproduced: NTT occupancy collapses past
# radix-16 while DFT holds on until radix-32, and radix-64/128 NTT threads
# exceed the 255-register cap and spill to local memory.
# ---------------------------------------------------------------------------

_NTT_REGISTERS = {2: 30, 4: 34, 8: 40, 16: 50, 32: 70, 64: 120, 128: 290}
_DFT_REGISTERS = {2: 28, 4: 30, 8: 34, 16: 40, 32: 48, 64: 96, 128: 200}


def ntt_registers_for_radix(radix: int) -> int:
    """Registers per thread of a register-based radix-``radix`` NTT kernel."""
    if radix in _NTT_REGISTERS:
        return _NTT_REGISTERS[radix]
    # Generic extrapolation: two registers per 64-bit point plus fixed overhead.
    return 2 * radix + 26


def dft_registers_for_radix(radix: int) -> int:
    """Registers per thread of a register-based radix-``radix`` DFT kernel."""
    if radix in _DFT_REGISTERS:
        return _DFT_REGISTERS[radix]
    return radix + 26


def smem_thread_registers(per_thread_points: int, ntt: bool = True) -> int:
    """Registers per thread of an SMEM-implementation kernel.

    Shared-memory staging keeps only the per-thread NTT's points in registers
    (Section V: register pressure drops from O(R) to O(sqrt(R))), so the
    demand follows the per-thread size, not the kernel radix.
    """
    if ntt:
        return ntt_registers_for_radix(per_thread_points)
    return dft_registers_for_radix(per_thread_points)


@dataclass
class KernelModelResult:
    """Aggregate of the kernel estimates making up one modelled NTT/DFT execution.

    Attributes:
        label: Configuration label (mirrors :attr:`repro.core.plan.NTTPlan.label`).
        estimates: Per-kernel estimates, in launch order.
    """

    label: str
    estimates: list[KernelEstimate]

    @property
    def time_us(self) -> float:
        """Total modelled execution time in microseconds."""
        return sum(estimate.time_us for estimate in self.estimates)

    @property
    def dram_bytes(self) -> float:
        """Total DRAM traffic in bytes."""
        return sum(estimate.dram_bytes for estimate in self.estimates)

    @property
    def dram_mb(self) -> float:
        """Total DRAM traffic in megabytes (10^6 bytes, as the paper plots)."""
        return self.dram_bytes / 1e6

    @property
    def bandwidth_utilization(self) -> float:
        """Time-weighted average DRAM bandwidth utilisation."""
        total_time = self.time_us
        if total_time == 0:
            return 0.0
        return sum(e.bandwidth_utilization * e.time_us for e in self.estimates) / total_time

    @property
    def occupancy(self) -> float:
        """Time-weighted average occupancy across the kernels."""
        total_time = self.time_us
        if total_time == 0:
            return 0.0
        return sum(e.occupancy.occupancy * e.time_us for e in self.estimates) / total_time

    @property
    def kernel_count(self) -> int:
        """Number of kernel launches."""
        return len(self.estimates)


def run_launches(
    label: str, launches: list[KernelLaunch], model: GpuCostModel
) -> KernelModelResult:
    """Estimate a launch sequence and wrap it into a :class:`KernelModelResult`."""
    return KernelModelResult(label=label, estimates=model.estimate_sequence(launches))


def stages_of(n: int) -> int:
    """Number of radix-2 stages of an ``n``-point transform."""
    return log2_exact(n)
