"""Analytic GPU performance model (the substitute for the paper's Titan V).

* :mod:`repro.gpu.device` — device descriptions (:data:`TITAN_V`).
* :mod:`repro.gpu.occupancy` — NVIDIA-style occupancy calculation.
* :mod:`repro.gpu.memory` — coalescing model and DRAM traffic accounting.
* :mod:`repro.gpu.costmodel` — the calibrated roofline timing model.
"""

from .costmodel import (
    CalibrationConstants,
    DEFAULT_CALIBRATION,
    GpuCostModel,
    KernelEstimate,
    KernelLaunch,
)
from .device import A100_LIKE, DeviceSpec, TITAN_V
from .memory import (
    AccessPattern,
    MemorySpace,
    TrafficCounter,
    coalescing_efficiency,
    transactions_per_warp,
)
from .occupancy import OccupancyResult, occupancy, registers_with_spill
from .trace import profile_report, summarize

__all__ = [
    "profile_report",
    "summarize",
    "CalibrationConstants",
    "DEFAULT_CALIBRATION",
    "GpuCostModel",
    "KernelEstimate",
    "KernelLaunch",
    "DeviceSpec",
    "TITAN_V",
    "A100_LIKE",
    "AccessPattern",
    "MemorySpace",
    "TrafficCounter",
    "coalescing_efficiency",
    "transactions_per_warp",
    "OccupancyResult",
    "occupancy",
    "registers_with_spill",
]
