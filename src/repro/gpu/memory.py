"""Memory-access modelling: coalescing, memory spaces and traffic accounting.

A warp's 32 loads are merged into 32-byte transactions when the addresses are
contiguous ("memory coalescing", Section II).  Strided access patterns touch
one transaction per thread and waste most of each transaction — the effect
Figure 6 illustrates for Kernel-1 of the SMEM NTT, where only 8 useful bytes
of every 32-byte transaction are consumed before thread-block merging fixes
the layout.

:func:`coalescing_efficiency` converts an access stride into the fraction of
transferred bytes that are useful; :class:`TrafficCounter` accumulates the
DRAM traffic of a kernel broken down by purpose (input data, output data,
twiddle factors, LMEM spill), which is what the experiment harness reports
for Figures 4(b), 12(c) and the OT traffic-reduction claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .device import DeviceSpec

__all__ = [
    "MemorySpace",
    "AccessPattern",
    "coalescing_efficiency",
    "transactions_per_warp",
    "TrafficCounter",
]


class MemorySpace(str, Enum):
    """Logical GPU memory spaces (Table I of the paper)."""

    GLOBAL = "gmem"
    SHARED = "smem"
    CONSTANT = "cmem"
    TEXTURE = "tmem"
    LOCAL = "lmem"
    REGISTER = "register"


class AccessPattern(str, Enum):
    """Qualitative warp-level access pattern."""

    COALESCED = "coalesced"
    STRIDED = "strided"
    BROADCAST = "broadcast"


def transactions_per_warp(
    element_bytes: int,
    stride_elements: int,
    device: DeviceSpec,
) -> int:
    """Number of 32-byte transactions one warp needs for one element per thread.

    Args:
        element_bytes: Size of each element (8 for a 64-bit residue,
            16 for a twiddle factor with its Shoup companion).
        stride_elements: Distance between consecutive threads' elements, in
            elements (1 = fully contiguous).
        device: Device description (supplies warp size and transaction size).
    """
    if element_bytes <= 0 or stride_elements <= 0:
        raise ValueError("element_bytes and stride_elements must be positive")
    warp_bytes_span = (device.warp_size - 1) * stride_elements * element_bytes + element_bytes
    contiguous = -(-warp_bytes_span // device.memory_transaction_bytes)  # ceil
    # Each thread touches at most one transaction for elements <= 32 bytes, so
    # the transaction count can never exceed the warp size (nor be less than
    # the fully contiguous case).
    worst_case = device.warp_size * max(1, -(-element_bytes // device.memory_transaction_bytes))
    return min(worst_case, max(contiguous, 1))


def coalescing_efficiency(
    element_bytes: int,
    stride_elements: int,
    device: DeviceSpec,
) -> float:
    """Fraction of transferred bytes that are useful for the given pattern.

    1.0 means perfectly coalesced; 0.25 reproduces the "75% wasted" case of
    Figure 6(a) (8 useful bytes out of each 32-byte transaction).
    """
    useful = device.warp_size * element_bytes
    transferred = transactions_per_warp(element_bytes, stride_elements, device) * (
        device.memory_transaction_bytes
    )
    return min(1.0, useful / transferred)


@dataclass
class TrafficCounter:
    """DRAM traffic of one kernel, broken down by purpose (bytes).

    Attributes:
        data_read: Coefficient bytes read from GMEM (after coalescing waste).
        data_written: Coefficient bytes written to GMEM.
        twiddle_read: Twiddle-factor (and Shoup-companion) bytes read.
        spill: Local-memory spill traffic (read + write).
    """

    data_read: float = 0.0
    data_written: float = 0.0
    twiddle_read: float = 0.0
    spill: float = 0.0

    def add_data_read(self, useful_bytes: float, efficiency: float = 1.0) -> None:
        """Account a data read of ``useful_bytes`` at the given coalescing efficiency."""
        self._check(useful_bytes, efficiency)
        self.data_read += useful_bytes / efficiency

    def add_data_write(self, useful_bytes: float, efficiency: float = 1.0) -> None:
        """Account a data write of ``useful_bytes`` at the given coalescing efficiency."""
        self._check(useful_bytes, efficiency)
        self.data_written += useful_bytes / efficiency

    def add_twiddle_read(self, useful_bytes: float, efficiency: float = 1.0) -> None:
        """Account a twiddle-table read."""
        self._check(useful_bytes, efficiency)
        self.twiddle_read += useful_bytes / efficiency

    def add_spill(self, bytes_count: float) -> None:
        """Account local-memory spill traffic."""
        self._check(bytes_count, 1.0)
        self.spill += bytes_count

    @staticmethod
    def _check(byte_count: float, efficiency: float) -> None:
        if byte_count < 0:
            raise ValueError("byte counts must be non-negative")
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must lie in (0, 1]")

    @property
    def total(self) -> float:
        """Total DRAM bytes moved by the kernel."""
        return self.data_read + self.data_written + self.twiddle_read + self.spill

    @property
    def total_mb(self) -> float:
        """Total DRAM traffic in megabytes (10^6 bytes, as plotted by the paper)."""
        return self.total / 1e6

    def merged_with(self, other: "TrafficCounter") -> "TrafficCounter":
        """Return a new counter holding the sum of both kernels' traffic."""
        return TrafficCounter(
            data_read=self.data_read + other.data_read,
            data_written=self.data_written + other.data_written,
            twiddle_read=self.twiddle_read + other.twiddle_read,
            spill=self.spill + other.spill,
        )
