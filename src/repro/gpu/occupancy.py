"""Occupancy calculation for the analytic GPU model.

Occupancy — the ratio of resident warps per SM to the hardware maximum — is
the lever behind most of the paper's radix findings: pushing the per-thread
radix up reduces DRAM passes but inflates register usage, which caps the
number of resident warps and with it the achievable memory bandwidth
(Figure 4(c) / 5(c)).  The calculation below mirrors NVIDIA's occupancy
calculator: resident blocks per SM are limited by registers, shared memory,
the thread count, and the hardware block limit; occupancy follows from the
surviving block count.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ["OccupancyResult", "occupancy", "registers_with_spill"]


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of an occupancy calculation.

    Attributes:
        blocks_per_sm: Thread blocks resident on one SM.
        warps_per_sm: Warps resident on one SM.
        occupancy: ``warps_per_sm / max_warps_per_sm`` in ``[0, 1]``.
        limiter: Which resource bound the block count
            (``"registers"``, ``"shared_memory"``, ``"threads"`` or ``"blocks"``).
        spilled_bytes_per_thread: Register demand that did not fit under the
            per-thread cap and therefore lives in local memory.
    """

    blocks_per_sm: int
    warps_per_sm: float
    occupancy: float
    limiter: str
    spilled_bytes_per_thread: int = 0


def registers_with_spill(requested_registers: int, device: DeviceSpec) -> tuple[int, int]:
    """Split a register demand into (allocated registers, spilled bytes).

    Demand beyond the hardware per-thread cap spills to local memory at
    4 bytes per register — the LMEM behaviour the paper observes for the
    radix-64/128 NTT kernels.
    """
    if requested_registers <= device.max_registers_per_thread:
        return requested_registers, 0
    spilled_registers = requested_registers - device.max_registers_per_thread
    return device.max_registers_per_thread, spilled_registers * 4


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    registers_per_thread: int,
    smem_bytes_per_block: int = 0,
) -> OccupancyResult:
    """Compute the occupancy of a kernel configuration on ``device``.

    Args:
        device: Target GPU description.
        threads_per_block: Launch block size.
        registers_per_thread: Architectural registers demanded per thread
            (before the per-thread cap; excess is reported as spill).
        smem_bytes_per_block: Shared memory allocated per block.

    Returns:
        An :class:`OccupancyResult`; ``occupancy`` is 0 when even a single
        block does not fit (which the caller should treat as a launch error).
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > device.max_threads_per_block:
        raise ValueError(
            "block of %d threads exceeds the device limit of %d"
            % (threads_per_block, device.max_threads_per_block)
        )
    if registers_per_thread < 0 or smem_bytes_per_block < 0:
        raise ValueError("resource demands must be non-negative")

    allocated_registers, spilled_bytes = registers_with_spill(registers_per_thread, device)

    limits: dict[str, float] = {}
    limits["threads"] = device.max_threads_per_sm // threads_per_block
    limits["blocks"] = device.max_blocks_per_sm
    if allocated_registers > 0:
        limits["registers"] = device.registers_per_sm // (
            allocated_registers * threads_per_block
        )
    if smem_bytes_per_block > 0:
        if smem_bytes_per_block > device.smem_bytes_per_block_max:
            limits["shared_memory"] = 0
        else:
            limits["shared_memory"] = device.smem_bytes_per_sm // smem_bytes_per_block

    limiter = min(limits, key=lambda key: limits[key])
    blocks = int(limits[limiter])
    warps_per_block = threads_per_block / device.warp_size
    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=min(1.0, warps / device.max_warps_per_sm),
        limiter=limiter,
        spilled_bytes_per_thread=spilled_bytes,
    )
