"""GPU device descriptions.

The paper evaluates on an NVIDIA Titan V (Volta GV100: 80 SMs, 64 FP32 cores
per SM, 96 KB configurable shared memory per SM, 256 KB register file per SM,
HBM2 at ~651 GB/s peak).  :data:`TITAN_V` encodes those datasheet numbers;
other devices can be described for sensitivity studies (an A100-like preset
is included as an extension).

The device description is purely declarative — the timing logic lives in
:mod:`repro.gpu.costmodel` and the occupancy logic in
:mod:`repro.gpu.occupancy`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "TITAN_V", "A100_LIKE"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU for the analytic performance model.

    Attributes:
        name: Marketing name, used in reports.
        sm_count: Number of streaming multiprocessors.
        cores_per_sm: FP32/INT32 lanes per SM (issue slots per cycle).
        clock_ghz: Sustained SM clock in GHz.
        registers_per_sm: 32-bit architectural registers per SM.
        max_registers_per_thread: Hard per-thread register cap (255 on Volta);
            demand beyond this spills to local memory (LMEM).
        smem_bytes_per_sm: Shared-memory capacity per SM.
        smem_bytes_per_block_max: Largest shared-memory allocation one block may make.
        cmem_bytes: Constant-memory capacity (64 KB).
        max_threads_per_sm: Concurrent thread limit per SM.
        max_threads_per_block: Thread-block size limit.
        max_blocks_per_sm: Concurrent resident blocks per SM.
        warp_size: Threads per warp.
        peak_bandwidth_gbps: Peak DRAM (HBM2) bandwidth in GB/s.
        l2_bytes: L2 cache capacity.
        memory_transaction_bytes: Granularity of a DRAM transaction (32 B sectors).
        dram_capacity_bytes: Device-memory capacity.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    registers_per_sm: int
    max_registers_per_thread: int
    smem_bytes_per_sm: int
    smem_bytes_per_block_max: int
    cmem_bytes: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int
    peak_bandwidth_gbps: float
    l2_bytes: int
    memory_transaction_bytes: int
    dram_capacity_bytes: int

    @property
    def max_warps_per_sm(self) -> int:
        """Concurrent warp limit per SM."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def lane_throughput_per_second(self) -> float:
        """Aggregate issue-slot throughput (slots/s) across the whole device."""
        return self.sm_count * self.cores_per_sm * self.clock_ghz * 1e9

    @property
    def peak_bandwidth_bytes_per_us(self) -> float:
        """Peak DRAM bandwidth expressed in bytes per microsecond."""
        return self.peak_bandwidth_gbps * 1e9 / 1e6

    @property
    def register_file_bytes_per_sm(self) -> int:
        """Register-file capacity per SM in bytes (4 bytes per register)."""
        return self.registers_per_sm * 4

    def validate(self) -> None:
        """Sanity-check the description; raises ``ValueError`` on nonsense."""
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM and core counts must be positive")
        if self.warp_size <= 0 or self.max_threads_per_sm % self.warp_size:
            raise ValueError("max_threads_per_sm must be a multiple of warp_size")
        if self.peak_bandwidth_gbps <= 0 or self.clock_ghz <= 0:
            raise ValueError("bandwidth and clock must be positive")


#: The paper's evaluation platform (NVIDIA Titan V, Volta GV100).
TITAN_V = DeviceSpec(
    name="NVIDIA Titan V",
    sm_count=80,
    cores_per_sm=64,
    clock_ghz=1.2,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    smem_bytes_per_sm=96 * 1024,
    smem_bytes_per_block_max=96 * 1024,
    cmem_bytes=64 * 1024,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    warp_size=32,
    peak_bandwidth_gbps=651.0,
    l2_bytes=4608 * 1024,
    memory_transaction_bytes=32,
    dram_capacity_bytes=12 * 1024**3,
)

#: An A100-class device for sensitivity/extension studies (not used by the paper).
A100_LIKE = DeviceSpec(
    name="A100-like",
    sm_count=108,
    cores_per_sm=64,
    clock_ghz=1.41,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    smem_bytes_per_sm=164 * 1024,
    smem_bytes_per_block_max=164 * 1024,
    cmem_bytes=64 * 1024,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    warp_size=32,
    peak_bandwidth_gbps=1555.0,
    l2_bytes=40 * 1024 * 1024,
    memory_transaction_bytes=32,
    dram_capacity_bytes=40 * 1024**3,
)
