"""Analytic timing model for GPU kernels.

This is the substitution for the paper's Titan V measurements: a calibrated
roofline-style model that converts a kernel's *memory traffic*, *compute
work*, and *occupancy* into an execution-time estimate.  The model captures
the first-order mechanisms behind every result in the paper:

* **Bandwidth ramp** — achieved DRAM bandwidth rises roughly linearly with
  the number of resident warps per SM until it saturates at ~87% of peak
  (the paper's measured 564.4 GB/s on a 651 GB/s part).  This produces the
  batching behaviour of Figure 3 and the occupancy-induced slowdowns of
  Figures 4/5.
* **Compute/memory overlap** — kernel time is the Euclidean blend
  ``sqrt(T_mem^2 + T_comp^2)`` rather than a hard ``max``: real kernels with
  dependent modular arithmetic overlap the two imperfectly, which is what
  limits the on-the-fly-twiddling gain to ~9% even though it removes ~25% of
  the traffic (Figure 12).
* **Synchronisation penalty** — every block-level ``__syncthreads`` in the
  shared-memory kernels adds a fractional stall, reproducing the per-thread
  NTT size trade-off of Figures 10/11.
* **Launch overhead** — a fixed cost per kernel launch, which penalises the
  17-launch radix-2 baseline.

The free constants are collected in :class:`CalibrationConstants` with the
values used for the paper reproduction; every experiment records them so the
calibration is visible in the output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .device import DeviceSpec, TITAN_V
from .memory import TrafficCounter
from .occupancy import OccupancyResult, occupancy

__all__ = [
    "CalibrationConstants",
    "DEFAULT_CALIBRATION",
    "KernelLaunch",
    "KernelEstimate",
    "GpuCostModel",
]


@dataclass(frozen=True)
class CalibrationConstants:
    """Tunable constants of the analytic model.

    Attributes:
        max_bandwidth_fraction: Fraction of peak DRAM bandwidth a fully
            occupied, perfectly streaming kernel achieves (0.867 — the
            paper's 564.4 GB/s on a 651 GB/s Titan V).
        warps_per_sm_for_peak: Resident warps per SM needed to reach the
            saturated bandwidth; below this the achieved bandwidth ramps
            linearly (calibrated from the paper's 1.92x batching gain).
        shoup_butterfly_slots: Issue slots per butterfly with Shoup modmul
            (three 64-bit wide multiplies expanded to 32-bit IMADs, plus
            add/sub/corrections).
        native_butterfly_slots: Issue slots per butterfly with the native
            64-bit modulo (the ~68-instruction expansion plus its long
            dependency chain, expressed as an effective issue cost).
        barrett_butterfly_slots: Issue slots per butterfly with Barrett reduction.
        dft_butterfly_slots: Issue slots per complex floating-point butterfly.
        ot_regeneration_slots: Extra issue slots per on-the-fly regenerated twiddle.
        sync_penalty: Fractional time added per block-level synchronisation.
        kernel_launch_us: Fixed host-side cost per kernel launch (microseconds).
        native_extra_registers: Additional registers per thread consumed by the
            expanded native-modulo sequence (drops occupancy, Figure 1).
        min_compute_warp_fraction: Resident-warp fraction below which compute
            throughput also degrades (latency exposure).
        baseline_loads_in_flight: Outstanding loads per thread assumed for the
            bandwidth ramp's reference point; kernels whose threads keep more
            loads in flight (high-radix / per-thread NTTs) reach the saturated
            bandwidth with proportionally fewer resident warps.
    """

    max_bandwidth_fraction: float = 0.867
    warps_per_sm_for_peak: float = 36.0
    shoup_butterfly_slots: float = 50.0
    native_butterfly_slots: float = 560.0
    barrett_butterfly_slots: float = 80.0
    dft_butterfly_slots: float = 16.0
    ot_regeneration_slots: float = 26.0
    sync_penalty: float = 0.05
    kernel_launch_us: float = 2.0
    native_extra_registers: int = 56
    min_compute_warp_fraction: float = 0.125
    baseline_loads_in_flight: float = 2.0


DEFAULT_CALIBRATION = CalibrationConstants()


@dataclass
class KernelLaunch:
    """Everything the cost model needs to know about one kernel launch.

    Attributes:
        name: Label used in reports ("Kernel-1", "radix-16", ...).
        traffic: DRAM traffic of the launch.
        compute_slots: Total issue slots of useful arithmetic across all threads.
        threads_total: Total threads in the grid.
        threads_per_block: Block size.
        registers_per_thread: Register demand per thread.
        smem_bytes_per_block: Shared memory per block.
        block_syncs: Block-level synchronisations executed per thread.
        loads_in_flight_per_thread: Independent outstanding memory requests a
            thread sustains (its memory-level parallelism); one butterfly's two
            operands for the radix-2 baseline, the per-thread point count for
            register/SMEM kernels.
    """

    name: str
    traffic: TrafficCounter
    compute_slots: float
    threads_total: int
    threads_per_block: int
    registers_per_thread: int
    smem_bytes_per_block: int = 0
    block_syncs: int = 0
    loads_in_flight_per_thread: float = 2.0


@dataclass(frozen=True)
class KernelEstimate:
    """Timing estimate for one kernel launch.

    Attributes:
        name: Kernel label.
        time_us: Estimated wall-clock time in microseconds.
        memory_time_us: Pure DRAM-streaming time at the achieved bandwidth.
        compute_time_us: Pure arithmetic time at the achieved issue rate.
        dram_bytes: Total DRAM traffic.
        occupancy: Occupancy result of the launch configuration.
        achieved_bandwidth_gbps: DRAM bandwidth implied by ``dram_bytes / time``.
        bandwidth_utilization: ``achieved_bandwidth / peak``.
    """

    name: str
    time_us: float
    memory_time_us: float
    compute_time_us: float
    dram_bytes: float
    occupancy: OccupancyResult
    achieved_bandwidth_gbps: float
    bandwidth_utilization: float


class GpuCostModel:
    """Converts :class:`KernelLaunch` descriptions into time estimates."""

    def __init__(
        self,
        device: DeviceSpec = TITAN_V,
        calibration: CalibrationConstants = DEFAULT_CALIBRATION,
    ) -> None:
        device.validate()
        self.device = device
        self.calibration = calibration

    # -- building blocks -----------------------------------------------------------
    def resident_warps_per_sm(self, launch: KernelLaunch) -> tuple[float, OccupancyResult]:
        """Warps actually resident per SM: min(occupancy limit, available work)."""
        occ = occupancy(
            self.device,
            threads_per_block=launch.threads_per_block,
            registers_per_thread=launch.registers_per_thread,
            smem_bytes_per_block=launch.smem_bytes_per_block,
        )
        warps_in_grid = launch.threads_total / self.device.warp_size
        work_limited = warps_in_grid / self.device.sm_count
        return min(occ.warps_per_sm, work_limited), occ

    def bandwidth_fraction(
        self, resident_warps: float, loads_in_flight_per_thread: float | None = None
    ) -> float:
        """Achieved fraction of peak DRAM bandwidth for the given residency.

        Bandwidth ramps with the amount of memory-level parallelism exposed to
        the memory system: resident warps scaled by how many independent loads
        each thread keeps in flight (Little's law).  A kernel whose threads
        each stream eight points saturates with far fewer warps than the
        one-butterfly-per-thread baseline.
        """
        cal = self.calibration
        mlp = loads_in_flight_per_thread if loads_in_flight_per_thread else cal.baseline_loads_in_flight
        mlp_scale = min(mlp, 8.0) / cal.baseline_loads_in_flight
        ramp = resident_warps * mlp_scale / cal.warps_per_sm_for_peak
        return cal.max_bandwidth_fraction * min(1.0, ramp)

    def compute_fraction(self, resident_warps: float) -> float:
        """Achieved fraction of peak issue throughput for the given residency."""
        needed = self.calibration.min_compute_warp_fraction * self.device.max_warps_per_sm
        if needed <= 0:
            return 1.0
        return min(1.0, resident_warps / needed)

    # -- the estimate ----------------------------------------------------------------
    def estimate(self, launch: KernelLaunch) -> KernelEstimate:
        """Estimate the execution time of one kernel launch."""
        resident_warps, occ = self.resident_warps_per_sm(launch)
        if occ.blocks_per_sm == 0:
            raise ValueError(
                "kernel %r does not fit on %s (shared memory or registers exceeded)"
                % (launch.name, self.device.name)
            )

        # LMEM spill adds traffic proportional to the spilled bytes per thread:
        # each spilled value makes one round trip per pass over the data.
        traffic = launch.traffic
        if occ.spilled_bytes_per_thread:
            spill_bytes = occ.spilled_bytes_per_thread * launch.threads_total * 2
            traffic = traffic.merged_with(TrafficCounter(spill=spill_bytes))

        bw_fraction = self.bandwidth_fraction(
            resident_warps, launch.loads_in_flight_per_thread
        )
        bandwidth_bytes_per_us = self.device.peak_bandwidth_bytes_per_us * bw_fraction
        memory_time = traffic.total / bandwidth_bytes_per_us if traffic.total else 0.0

        issue_rate = self.device.lane_throughput_per_second * self.compute_fraction(
            resident_warps
        )
        compute_time = launch.compute_slots / issue_rate * 1e6 if launch.compute_slots else 0.0

        blended = math.hypot(memory_time, compute_time)
        sync_factor = 1.0 + self.calibration.sync_penalty * launch.block_syncs
        time_us = blended * sync_factor + self.calibration.kernel_launch_us

        achieved_gbps = (traffic.total / 1e9) / (time_us / 1e6) if time_us > 0 else 0.0
        return KernelEstimate(
            name=launch.name,
            time_us=time_us,
            memory_time_us=memory_time,
            compute_time_us=compute_time,
            dram_bytes=traffic.total,
            occupancy=occ,
            achieved_bandwidth_gbps=achieved_gbps,
            bandwidth_utilization=achieved_gbps / self.device.peak_bandwidth_gbps,
        )

    def estimate_sequence(self, launches: list[KernelLaunch]) -> list[KernelEstimate]:
        """Estimate a back-to-back sequence of kernels (no overlap between them)."""
        return [self.estimate(launch) for launch in launches]

    def total_time_us(self, launches: list[KernelLaunch]) -> float:
        """Total time of a kernel sequence in microseconds."""
        return sum(estimate.time_us for estimate in self.estimate_sequence(launches))

    def with_calibration(self, **overrides) -> "GpuCostModel":
        """Return a copy of the model with some calibration constants replaced."""
        return GpuCostModel(self.device, replace(self.calibration, **overrides))
