"""Profiler-style reporting for kernel estimate sequences.

The paper's analysis reads like an ``nvprof``/Nsight session: per-kernel
times, DRAM traffic, occupancy and bandwidth utilisation.  This module
renders a sequence of :class:`repro.gpu.costmodel.KernelEstimate` objects in
that familiar form so examples and downstream users can inspect *why* a
configuration is fast or slow, not just its total time.
"""

from __future__ import annotations

from collections.abc import Sequence

from .costmodel import KernelEstimate

__all__ = ["profile_report", "summarize"]


def summarize(estimates: Sequence[KernelEstimate]) -> dict[str, float]:
    """Aggregate totals for a kernel sequence.

    Returns a mapping with ``time_us``, ``dram_mb``, ``bandwidth_utilization``
    (time-weighted) and ``occupancy`` (time-weighted).
    """
    total_time = sum(e.time_us for e in estimates)
    total_bytes = sum(e.dram_bytes for e in estimates)
    if total_time == 0:
        return {"time_us": 0.0, "dram_mb": 0.0, "bandwidth_utilization": 0.0, "occupancy": 0.0}
    weighted_bw = sum(e.bandwidth_utilization * e.time_us for e in estimates) / total_time
    weighted_occ = sum(e.occupancy.occupancy * e.time_us for e in estimates) / total_time
    return {
        "time_us": total_time,
        "dram_mb": total_bytes / 1e6,
        "bandwidth_utilization": weighted_bw,
        "occupancy": weighted_occ,
    }


def profile_report(estimates: Sequence[KernelEstimate], title: str = "kernel profile") -> str:
    """Render a per-kernel profile table plus a totals line.

    Args:
        estimates: Kernel estimates in launch order.
        title: Heading printed above the table.

    Returns:
        A multi-line string ready to print.
    """
    header = (
        "%-28s %10s %10s %10s %8s %8s %8s"
        % ("kernel", "time(us)", "mem(us)", "comp(us)", "MB", "occ", "bw")
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for estimate in estimates:
        lines.append(
            "%-28s %10.1f %10.1f %10.1f %8.1f %8.2f %8.2f"
            % (
                estimate.name[:28],
                estimate.time_us,
                estimate.memory_time_us,
                estimate.compute_time_us,
                estimate.dram_bytes / 1e6,
                estimate.occupancy.occupancy,
                estimate.bandwidth_utilization,
            )
        )
    totals = summarize(estimates)
    lines.append("-" * len(header))
    lines.append(
        "%-28s %10.1f %10s %10s %8.1f %8.2f %8.2f"
        % (
            "total",
            totals["time_us"],
            "",
            "",
            totals["dram_mb"],
            totals["occupancy"],
            totals["bandwidth_utilization"],
        )
    )
    return "\n".join(lines)
