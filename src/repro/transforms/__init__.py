"""Transform algorithms: NTT (Cooley-Tukey, Stockham, high-radix) and DFT.

This package contains the *algorithm-level* implementations that operate on
real data; the GPU-mapped kernel models that additionally report performance
estimates live in :mod:`repro.kernels`.
"""

from .bitrev import (
    bit_reverse,
    bit_reverse_indices,
    bit_reverse_permute,
    is_power_of_two,
    log2_exact,
)
from .butterfly import butterfly_instruction_count, ct_butterfly, ct_butterfly_lazy, gs_butterfly
from .cooley_tukey import (
    NegacyclicTransformer,
    forward_twiddle_table,
    inverse_twiddle_table,
    negacyclic_multiply,
    ntt_forward,
    ntt_forward_inplace,
    ntt_inverse,
    ntt_inverse_inplace,
)
from .dft import dft_twiddle_table, fft_forward, fft_inverse, naive_dft
from .four_step import (
    default_split,
    four_step_cyclic_ntt,
    four_step_negacyclic_intt,
    four_step_negacyclic_ntt,
)
from .high_radix import (
    PassStats,
    ntt_forward_by_passes,
    plan_stage_groups,
    radix_of_group,
    run_pass,
)
from .reference import (
    naive_cyclic_convolution,
    naive_intt,
    naive_negacyclic_convolution,
    naive_negacyclic_intt,
    naive_negacyclic_ntt,
    naive_ntt,
)
from .stockham import stockham_cyclic_ntt, stockham_ntt_forward, stockham_ntt_inverse
from .vectorized import MAX_VECTORIZED_MODULUS_BITS, VectorizedNTT

__all__ = [
    "default_split",
    "four_step_cyclic_ntt",
    "four_step_negacyclic_intt",
    "four_step_negacyclic_ntt",
    "stockham_cyclic_ntt",
    "MAX_VECTORIZED_MODULUS_BITS",
    "VectorizedNTT",
    "bit_reverse",
    "bit_reverse_indices",
    "bit_reverse_permute",
    "is_power_of_two",
    "log2_exact",
    "ct_butterfly",
    "gs_butterfly",
    "ct_butterfly_lazy",
    "butterfly_instruction_count",
    "NegacyclicTransformer",
    "forward_twiddle_table",
    "inverse_twiddle_table",
    "negacyclic_multiply",
    "ntt_forward",
    "ntt_forward_inplace",
    "ntt_inverse",
    "ntt_inverse_inplace",
    "dft_twiddle_table",
    "fft_forward",
    "fft_inverse",
    "naive_dft",
    "PassStats",
    "ntt_forward_by_passes",
    "plan_stage_groups",
    "radix_of_group",
    "run_pass",
    "naive_cyclic_convolution",
    "naive_intt",
    "naive_negacyclic_convolution",
    "naive_negacyclic_intt",
    "naive_negacyclic_ntt",
    "naive_ntt",
    "stockham_ntt_forward",
    "stockham_ntt_inverse",
]
