"""Four-step (Bailey) decomposition of the negacyclic NTT.

The shared-memory two-kernel implementation of Section VI-C is, viewed
algorithmically, the classic four-step transform: an ``N``-point NTT with
``N = N1 * N2`` is computed as

1. ``N2`` strided ``N1``-point NTTs (the paper's Kernel-1),
2. an element-wise multiplication by the "twist" factors ``omega^(n2 * k1)``,
3. ``N1`` contiguous ``N2``-point NTTs (the paper's Kernel-2),
4. a transpose that brings the result into natural order.

This module provides the functional four-step transform so the decomposition
the GPU kernels model can be validated exactly: for any ``(N1, N2)`` split
the output equals the reference negacyclic transform in natural order.  The
merged negacyclic behaviour is obtained, as in the rest of the library, by
pre-twisting the input with powers of the ``2N``-th root of unity.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..modarith.modops import inv_mod, mul_mod, pow_mod
from .bitrev import is_power_of_two, log2_exact
from .stockham import stockham_cyclic_ntt

__all__ = [
    "four_step_cyclic_ntt",
    "four_step_negacyclic_ntt",
    "four_step_negacyclic_intt",
    "default_split",
]


def default_split(n: int) -> tuple[int, int]:
    """Split ``n`` into two power-of-two factors as evenly as possible."""
    bits = log2_exact(n)
    first = bits // 2
    return 1 << first, 1 << (bits - first)


def four_step_cyclic_ntt(
    values: Sequence[int], omega: int, p: int, n1: int | None = None
) -> list[int]:
    """Cyclic NTT ``X_k = sum_n x_n omega^(n k)`` via the four-step decomposition.

    Args:
        values: Input vector of power-of-two length ``n``.
        omega: Primitive ``n``-th root of unity modulo ``p``.
        p: Prime modulus.
        n1: Size of the inner (Kernel-1) transforms; ``n2 = n / n1``.  Chosen
            automatically when omitted.

    Returns:
        The transform in natural order.
    """
    n = len(values)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    if n1 is None:
        n1, _ = default_split(n)
    if not is_power_of_two(n1) or n % n1:
        raise ValueError("n1 must be a power-of-two divisor of n")
    n2 = n // n1
    if n1 == 1 or n2 == 1:
        return stockham_cyclic_ntt(values, omega, p)

    omega_inner = pow_mod(omega, n2, p)  # primitive n1-th root
    omega_outer = pow_mod(omega, n1, p)  # primitive n2-th root

    # Step 1: n2 strided n1-point NTTs (column transforms).
    columns: list[list[int]] = []
    for n2_index in range(n2):
        column = [values[n2_index + n2 * n1_index] % p for n1_index in range(n1)]
        columns.append(stockham_cyclic_ntt(column, omega_inner, p))

    # Step 2: twist by omega^(n2_index * k1).
    for n2_index in range(n2):
        twist = 1
        step = pow_mod(omega, n2_index, p)
        column = columns[n2_index]
        for k1 in range(n1):
            column[k1] = mul_mod(column[k1], twist, p)
            twist = mul_mod(twist, step, p)

    # Steps 3 + 4: n1 contiguous n2-point NTTs (row transforms) and transpose.
    result = [0] * n
    for k1 in range(n1):
        row = [columns[n2_index][k1] for n2_index in range(n2)]
        transformed = stockham_cyclic_ntt(row, omega_outer, p)
        for k2 in range(n2):
            result[k1 + n1 * k2] = transformed[k2]
    return result


def four_step_negacyclic_ntt(
    values: Sequence[int], psi_2n: int, p: int, n1: int | None = None
) -> list[int]:
    """Merged negacyclic NTT via the four-step decomposition (natural order).

    Equals :func:`repro.transforms.reference.naive_negacyclic_ntt` and the
    bit-reverse-permuted Cooley-Tukey output for every valid ``(N1, N2)``
    split.
    """
    n = len(values)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    omega = mul_mod(psi_2n, psi_2n, p)
    twisted = [0] * n
    phase = 1
    for index, value in enumerate(values):
        twisted[index] = mul_mod(value % p, phase, p)
        phase = mul_mod(phase, psi_2n, p)
    return four_step_cyclic_ntt(twisted, omega, p, n1)


def four_step_negacyclic_intt(
    values: Sequence[int], psi_2n: int, p: int, n1: int | None = None
) -> list[int]:
    """Inverse of :func:`four_step_negacyclic_ntt` (natural order in and out)."""
    n = len(values)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    psi_inv = inv_mod(psi_2n, p)
    omega_inv = mul_mod(psi_inv, psi_inv, p)
    n_inv = inv_mod(n, p)
    swept = four_step_cyclic_ntt([v % p for v in values], omega_inv, p, n1)
    result = [0] * n
    phase = 1
    for index in range(n):
        result[index] = mul_mod(mul_mod(swept[index], phase, p), n_inv, p)
        phase = mul_mod(phase, psi_inv, p)
    return result
