"""Stockham auto-sort NTT (Algorithm 3 of the paper).

The Stockham formulation avoids the explicit bit-reversal permutation of
Cooley-Tukey by writing each stage's outputs to *permuted* positions in a
second buffer, so the final result emerges in natural order.  The price is
out-of-place execution (two buffers alternate as source and destination),
which is why Section IV argues Cooley-Tukey is preferable for NTT in HE:
the bit-reversed order that Cooley-Tukey produces is harmless there, and the
Stockham working set is twice as large.

The implementation here is the classic double-buffered, stride-doubling
Stockham sweep.  The negacyclic ("merged") transform is obtained by folding
the ``psi^n`` pre-twist into the input before the sweep — algebraically
identical to the merged Cooley-Tukey table, and the natural-order output
equals the Cooley-Tukey output with its bit-reversal undone (the test suite
checks this equivalence).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..modarith.modops import add_mod, inv_mod, mul_mod, pow_mod, sub_mod
from .bitrev import is_power_of_two

__all__ = ["stockham_ntt_forward", "stockham_ntt_inverse", "stockham_cyclic_ntt"]


def stockham_cyclic_ntt(values: Sequence[int], omega: int, p: int) -> list[int]:
    """Cyclic NTT ``X_k = sum_j x_j * omega^(j*k)`` via the Stockham sweep.

    Double-buffered, natural order in and out.  ``omega`` must be a primitive
    ``N``-th root of unity modulo ``p``.
    """
    n_total = len(values)
    if not is_power_of_two(n_total):
        raise ValueError("length must be a power of two")
    source = [v % p for v in values]
    destination = [0] * n_total

    span = n_total  # length of the sub-transforms still to be combined
    stride = 1      # number of already-combined interleaved sequences
    while span > 1:
        half = span // 2
        # omega restricted to the current sub-transform length: a span-th root.
        w_step = pow_mod(omega, n_total // span, p)
        w = 1
        for j in range(half):
            for q in range(stride):
                a = source[q + stride * j]
                b = source[q + stride * (j + half)]
                destination[q + stride * (2 * j)] = add_mod(a, b, p)
                destination[q + stride * (2 * j + 1)] = mul_mod(sub_mod(a, b, p), w, p)
            w = mul_mod(w, w_step, p)
        source, destination = destination, source
        span //= 2
        stride *= 2
    return source


def stockham_ntt_forward(values: Sequence[int], psi_2n: int, p: int) -> list[int]:
    """Forward negacyclic NTT via the Stockham algorithm (natural-order output).

    Args:
        values: Coefficient vector of power-of-two length.
        psi_2n: Primitive ``2N``-th root of unity modulo ``p``.
        p: Prime modulus with ``p ≡ 1 (mod 2N)``.

    Returns:
        The merged negacyclic transform ``A_k = sum_n a_n psi^(n(2k+1))`` in
        natural (not bit-reversed) order.
    """
    n = len(values)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    omega = mul_mod(psi_2n, psi_2n, p)
    # Fold the psi^n pre-twist into the input (the "merged" transform).
    twisted = [0] * n
    phase = 1
    for i, v in enumerate(values):
        twisted[i] = mul_mod(v % p, phase, p)
        phase = mul_mod(phase, psi_2n, p)
    return stockham_cyclic_ntt(twisted, omega, p)


def stockham_ntt_inverse(values: Sequence[int], psi_2n: int, p: int) -> list[int]:
    """Inverse of :func:`stockham_ntt_forward` (natural order in and out).

    Uses the identity ``a_j = N^{-1} * psi^{-j} * sum_k X_k * omega^{-jk}``
    where ``omega = psi^2``: the inner sum is a cyclic Stockham NTT with root
    ``omega^{-1}``, followed by the ``psi^{-j}`` post-twist and the ``N^{-1}``
    scaling.
    """
    n = len(values)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    psi_inv = inv_mod(psi_2n, p)
    omega_inv = mul_mod(psi_inv, psi_inv, p)
    n_inv = inv_mod(n, p)

    swept = stockham_cyclic_ntt(values, omega_inv, p)
    result = [0] * n
    phase = 1
    for j in range(n):
        result[j] = mul_mod(mul_mod(swept[j], phase, p), n_inv, p)
        phase = mul_mod(phase, psi_inv, p)
    return result
