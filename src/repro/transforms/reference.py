"""Reference (quadratic) transforms used as ground truth in tests.

These implementations follow the defining sums directly:

* :func:`naive_ntt` computes ``X_k = sum_n x_n * psi_N^(n*k) mod p``.
* :func:`naive_negacyclic_ntt` computes the *merged* transform used for
  negacyclic convolution, ``A_k = sum_n a_n * psi_2N^(n*(2k+1)) mod p``
  (the formula derived in Section III-A of the paper).
* :func:`naive_negacyclic_convolution` computes the coefficient-domain
  negacyclic product ``C = A * B mod (X^N + 1)`` directly from the
  convolution sum with the sign flip on wrapped terms.

Everything here is O(N^2) or worse; they exist purely as oracles for the
fast algorithms.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..modarith.modops import mul_mod, pow_mod

__all__ = [
    "naive_ntt",
    "naive_intt",
    "naive_negacyclic_ntt",
    "naive_negacyclic_intt",
    "naive_negacyclic_convolution",
    "naive_cyclic_convolution",
]


def naive_ntt(values: Sequence[int], psi_n: int, p: int) -> list[int]:
    """Quadratic forward NTT with the ``N``-th root of unity ``psi_n``."""
    n = len(values)
    return [
        sum(values[j] * pow_mod(psi_n, j * k, p) for j in range(n)) % p
        for k in range(n)
    ]


def naive_intt(values: Sequence[int], psi_n: int, p: int) -> list[int]:
    """Quadratic inverse NTT (inverse of :func:`naive_ntt`)."""
    n = len(values)
    n_inv = pow_mod(n, -1, p)
    psi_inv = pow_mod(psi_n, -1, p)
    return [
        mul_mod(
            sum(values[j] * pow_mod(psi_inv, j * k, p) for j in range(n)) % p,
            n_inv,
            p,
        )
        for k in range(n)
    ]


def naive_negacyclic_ntt(values: Sequence[int], psi_2n: int, p: int) -> list[int]:
    """Quadratic merged negacyclic NTT: ``A_k = sum_n a_n * psi_2N^(n*(2k+1))``."""
    n = len(values)
    return [
        sum(values[j] * pow_mod(psi_2n, j * (2 * k + 1), p) for j in range(n)) % p
        for k in range(n)
    ]


def naive_negacyclic_intt(values: Sequence[int], psi_2n: int, p: int) -> list[int]:
    """Quadratic inverse of :func:`naive_negacyclic_ntt`."""
    n = len(values)
    n_inv = pow_mod(n, -1, p)
    psi_inv = pow_mod(psi_2n, -1, p)
    return [
        mul_mod(
            sum(values[k] * pow_mod(psi_inv, j * (2 * k + 1), p) for k in range(n)) % p,
            n_inv,
            p,
        )
        for j in range(n)
    ]


def naive_negacyclic_convolution(
    a: Sequence[int], b: Sequence[int], p: int
) -> list[int]:
    """Schoolbook negacyclic convolution ``c = a * b mod (X^N + 1, p)``.

    Implements the sum from Section III-A::

        c_k = sum_{i=0}^{k} a_i b_{k-i}  -  sum_{i=k+1}^{N-1} a_i b_{N+k-i}
    """
    if len(a) != len(b):
        raise ValueError("operands must have equal length")
    n = len(a)
    result = [0] * n
    for i in range(n):
        for j in range(n):
            term = a[i] * b[j]
            index = i + j
            if index < n:
                result[index] = (result[index] + term) % p
            else:
                result[index - n] = (result[index - n] - term) % p
    return result


def naive_cyclic_convolution(a: Sequence[int], b: Sequence[int], p: int) -> list[int]:
    """Schoolbook cyclic convolution ``c = a * b mod (X^N - 1, p)``."""
    if len(a) != len(b):
        raise ValueError("operands must have equal length")
    n = len(a)
    result = [0] * n
    for i in range(n):
        for j in range(n):
            result[(i + j) % n] = (result[(i + j) % n] + a[i] * b[j]) % p
    return result
