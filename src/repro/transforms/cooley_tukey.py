"""Iterative radix-2 Cooley-Tukey NTT and Gentleman-Sande inverse NTT.

This module implements Algorithm 1 of the paper verbatim (forward,
decimation-in-time, twiddles consumed in bit-reversed order, output produced
in bit-reversed order) and its conventional inverse (Gentleman-Sande,
decimation-in-frequency, which consumes bit-reversed input and produces
naturally ordered output).  Together they realise the merged negacyclic
transform pair: the ``psi_2N`` powers are folded into the twiddle table, so
no separate pre/post scaling pass is needed for negacyclic convolution.

These are the *algorithm-level* implementations — they transform real data
with Python integers.  The GPU-mapped counterparts that additionally report
memory traffic and instruction counts live in :mod:`repro.kernels`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..modarith.modops import add_mod, inv_mod, mul_mod, pow_mod, sub_mod
from ..modarith.roots import primitive_root_of_unity
from .bitrev import bit_reverse_permute, is_power_of_two, log2_exact

__all__ = [
    "forward_twiddle_table",
    "inverse_twiddle_table",
    "ntt_forward_inplace",
    "ntt_inverse_inplace",
    "ntt_forward",
    "ntt_inverse",
    "negacyclic_multiply",
    "NegacyclicTransformer",
]


def forward_twiddle_table(n: int, psi_2n: int, p: int) -> list[int]:
    """Build the forward twiddle table ``Psi[i] = psi_2N^bit_reverse(i)``.

    This is exactly the table Algorithm 1 expects: entry ``m + j`` (for stage
    ``m`` and butterfly group ``j``) holds the twiddle factor for that group.
    """
    if not is_power_of_two(n):
        raise ValueError("n must be a power of two")
    powers = [1] * n
    for i in range(1, n):
        powers[i] = mul_mod(powers[i - 1], psi_2n, p)
    return bit_reverse_permute(powers)


def inverse_twiddle_table(n: int, psi_2n: int, p: int) -> list[int]:
    """Build the inverse twiddle table ``Psi_inv[i] = psi_2N^-bit_reverse(i)``."""
    return forward_twiddle_table(n, inv_mod(psi_2n, p), p)


def ntt_forward_inplace(a: list[int], twiddles: Sequence[int], p: int) -> None:
    """Algorithm 1: in-place forward negacyclic NTT, output in bit-reversed order.

    Args:
        a: Coefficient vector of power-of-two length; modified in place.
        twiddles: Table from :func:`forward_twiddle_table` for the same ``n``.
        p: Prime modulus with ``p ≡ 1 (mod 2n)``.
    """
    n = len(a)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    if len(twiddles) != n:
        raise ValueError("twiddle table must have exactly n entries")
    t = n // 2
    m = 1
    while m < n:
        for j in range(m):
            psi = twiddles[m + j]
            start = 2 * j * t
            for k in range(start, start + t):
                b_hat = mul_mod(a[k + t], psi, p)
                a[k + t] = sub_mod(a[k], b_hat, p)
                a[k] = add_mod(a[k], b_hat, p)
        m *= 2
        t //= 2


def ntt_inverse_inplace(a: list[int], inv_twiddles: Sequence[int], p: int) -> None:
    """Gentleman-Sande inverse NTT consuming bit-reversed input, in place.

    After the butterfly sweep every coefficient is scaled by ``n^{-1} mod p``,
    completing the inverse of :func:`ntt_forward_inplace`.
    """
    n = len(a)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    if len(inv_twiddles) != n:
        raise ValueError("twiddle table must have exactly n entries")
    t = 1
    m = n // 2
    while m >= 1:
        for j in range(m):
            psi = inv_twiddles[m + j]
            start = 2 * j * t
            for k in range(start, start + t):
                u = a[k]
                v = a[k + t]
                a[k] = add_mod(u, v, p)
                a[k + t] = mul_mod(sub_mod(u, v, p), psi, p)
        m //= 2
        t *= 2
    n_inv = inv_mod(n, p)
    for i in range(n):
        a[i] = mul_mod(a[i], n_inv, p)


def ntt_forward(values: Sequence[int], psi_2n: int, p: int) -> list[int]:
    """Convenience wrapper: forward negacyclic NTT returning a new list."""
    a = [v % p for v in values]
    ntt_forward_inplace(a, forward_twiddle_table(len(a), psi_2n, p), p)
    return a


def ntt_inverse(values: Sequence[int], psi_2n: int, p: int) -> list[int]:
    """Convenience wrapper: inverse negacyclic NTT returning a new list."""
    a = [v % p for v in values]
    ntt_inverse_inplace(a, inverse_twiddle_table(len(a), psi_2n, p), p)
    return a


def negacyclic_multiply(a: Sequence[int], b: Sequence[int], psi_2n: int, p: int) -> list[int]:
    """Multiply two polynomials in ``Z_p[X]/(X^N + 1)`` via NTT.

    Computes ``iNTT(NTT(a) ⊙ NTT(b))`` — the relationship from Section III-A
    with the ``psi`` powers merged into the transforms.
    """
    if len(a) != len(b):
        raise ValueError("operands must have equal length")
    fa = ntt_forward(a, psi_2n, p)
    fb = ntt_forward(b, psi_2n, p)
    pointwise = [mul_mod(x, y, p) for x, y in zip(fa, fb)]
    return ntt_inverse(pointwise, psi_2n, p)


class NegacyclicTransformer:
    """Cached transform context for one ``(n, p)`` pair.

    Building twiddle tables costs O(n) modular multiplications; callers that
    transform many polynomials under the same modulus (the RNS polynomial
    layer, the HE evaluator) construct one transformer per prime and reuse it.

    Attributes:
        n: Transform length.
        p: Prime modulus, ``p ≡ 1 (mod 2n)``.
        psi: The primitive ``2n``-th root of unity used by the tables.
    """

    def __init__(self, n: int, p: int, psi_2n: int | None = None) -> None:
        if not is_power_of_two(n):
            raise ValueError("n must be a power of two")
        if (p - 1) % (2 * n) != 0:
            raise ValueError("p must satisfy p ≡ 1 (mod 2n)")
        self.n = n
        self.p = p
        self.psi = psi_2n if psi_2n is not None else primitive_root_of_unity(2 * n, p)
        self.log_n = log2_exact(n)
        self._forward_table = forward_twiddle_table(n, self.psi, p)
        self._inverse_table = inverse_twiddle_table(n, self.psi, p)

    @property
    def forward_table(self) -> list[int]:
        """The bit-reversed forward twiddle table (copy-safe reference)."""
        return self._forward_table

    @property
    def inverse_table(self) -> list[int]:
        """The bit-reversed inverse twiddle table."""
        return self._inverse_table

    def forward(self, values: Sequence[int]) -> list[int]:
        """Forward negacyclic NTT of ``values`` (output bit-reversed)."""
        if len(values) != self.n:
            raise ValueError("expected %d coefficients, got %d" % (self.n, len(values)))
        a = [v % self.p for v in values]
        ntt_forward_inplace(a, self._forward_table, self.p)
        return a

    def inverse(self, values: Sequence[int]) -> list[int]:
        """Inverse negacyclic NTT of bit-reversed ``values``."""
        if len(values) != self.n:
            raise ValueError("expected %d coefficients, got %d" % (self.n, len(values)))
        a = [v % self.p for v in values]
        ntt_inverse_inplace(a, self._inverse_table, self.p)
        return a

    def multiply(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Negacyclic product of two coefficient vectors under this context."""
        fa = self.forward(a)
        fb = self.forward(b)
        pointwise = [mul_mod(x, y, self.p) for x, y in zip(fa, fb)]
        return self.inverse(pointwise)
