"""Floating-point DFT/FFT counterpart used as the comparison workload.

The paper contrasts NTT against an equivalently structured complex-valued
DFT at several points (Figures 3(b), 5, 11(b)).  This module provides a
radix-2 Cooley-Tukey FFT with the same stage structure as the NTT in
:mod:`repro.transforms.cooley_tukey`, so the two workloads differ only in
their arithmetic (complex floating-point multiply-add versus modular
multiply-add) and in their twiddle-table behaviour (a single shared table for
any batch versus one table per RNS prime) — exactly the distinction the
paper draws in Section IV.
"""

from __future__ import annotations

from collections.abc import Sequence
import cmath

import numpy as np

from .bitrev import bit_reverse_permute, is_power_of_two

__all__ = [
    "dft_twiddle_table",
    "fft_forward_inplace",
    "fft_forward",
    "fft_inverse",
    "naive_dft",
]


def dft_twiddle_table(n: int) -> list[complex]:
    """Bit-reversed table of ``exp(-pi*i*k/n)`` (2N-th roots, mirroring the NTT table).

    Using the 2N-th roots keeps the table layout byte-for-byte comparable to
    the negacyclic NTT table so that the memory-traffic accounting of the two
    workloads is directly comparable; the transform computed is the
    corresponding "odd-frequency" DFT, which is irrelevant for the
    performance study (the paper's custom FFT likewise skips bit-reversal
    because only throughput is being measured).
    """
    if not is_power_of_two(n):
        raise ValueError("n must be a power of two")
    powers = [cmath.exp(-1j * cmath.pi * k / n) for k in range(n)]
    return bit_reverse_permute(powers)


def fft_forward_inplace(a: list[complex], twiddles: Sequence[complex]) -> None:
    """Radix-2 decimation-in-time FFT sweep with the same loop nest as Algorithm 1."""
    n = len(a)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    t = n // 2
    m = 1
    while m < n:
        for j in range(m):
            w = twiddles[m + j]
            start = 2 * j * t
            for k in range(start, start + t):
                b_hat = a[k + t] * w
                a[k + t] = a[k] - b_hat
                a[k] = a[k] + b_hat
        m *= 2
        t //= 2


def fft_forward(values: Sequence[complex]) -> list[complex]:
    """Forward FFT (bit-reversed output) of ``values`` using the 2N-th-root table."""
    a = [complex(v) for v in values]
    fft_forward_inplace(a, dft_twiddle_table(len(a)))
    return a


def fft_inverse(values: Sequence[complex]) -> list[complex]:
    """Inverse of :func:`fft_forward` (bit-reversed input, natural output)."""
    n = len(values)
    if not is_power_of_two(n):
        raise ValueError("length must be a power of two")
    table = [w.conjugate() for w in dft_twiddle_table(n)]
    a = [complex(v) for v in values]
    t = 1
    m = n // 2
    while m >= 1:
        for j in range(m):
            w = table[m + j]
            start = 2 * j * t
            for k in range(start, start + t):
                u = a[k]
                v = a[k + t]
                a[k] = u + v
                a[k + t] = (u - v) * w
        m //= 2
        t *= 2
    return [x / n for x in a]


def naive_dft(values: Sequence[complex]) -> np.ndarray:
    """Quadratic "odd-frequency" DFT matching :func:`fft_forward` in natural order.

    Computes ``X_k = sum_n x_n * exp(-pi*i*n*(2k+1)/N)``, the complex analogue
    of the merged negacyclic NTT, used as the oracle for the FFT tests.
    """
    x = np.asarray(values, dtype=complex)
    n = len(x)
    indices = np.arange(n)
    exponent = np.outer(indices, 2 * indices + 1)
    matrix = np.exp(-1j * np.pi * exponent / n)
    return x @ matrix
