"""Pass-structured (high-radix) execution of the Cooley-Tukey NTT.

The register-based high-radix implementation of Section V executes a
radix-``2^k`` NTT by letting each GPU thread pull ``2^k`` elements into
registers, run ``k`` consecutive radix-2 stages on them locally, and write
the results back — so one *pass* over main memory covers ``k`` stages instead
of one.  The shared-memory implementation generalises this to two kernels,
each covering a block of stages.

Functionally, grouping stages changes nothing: the butterflies performed are
exactly those of the radix-2 algorithm.  What changes is the memory-access
structure, which is what this module captures.  Each pass is executed through
:func:`run_pass`, which both updates the data and reports a
:class:`PassStats` describing element loads/stores, distinct twiddle factors
touched, and butterfly count — the raw quantities the GPU cost model converts
into time.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..modarith.modops import add_mod, mul_mod, sub_mod
from .bitrev import is_power_of_two, log2_exact

__all__ = [
    "PassStats",
    "plan_stage_groups",
    "run_pass",
    "ntt_forward_by_passes",
    "radix_of_group",
]


@dataclass(frozen=True)
class PassStats:
    """Memory and compute footprint of one pass over the coefficient vector.

    Attributes:
        stages: Number of radix-2 stages folded into the pass.
        radix: ``2**stages`` — the per-pass radix.
        element_loads: Coefficients read from main memory during the pass.
        element_stores: Coefficients written back to main memory.
        twiddle_loads: Distinct twiddle factors the pass needs (one table read
            each; doubled by the Shoup companion at the kernel layer).
        butterflies: Radix-2 butterflies executed.
    """

    stages: int
    radix: int
    element_loads: int
    element_stores: int
    twiddle_loads: int
    butterflies: int


def radix_of_group(stage_count: int) -> int:
    """Radix corresponding to ``stage_count`` fused radix-2 stages."""
    return 1 << stage_count


def plan_stage_groups(n: int, radix: int) -> list[int]:
    """Split the ``log2(n)`` stages into passes of ``log2(radix)`` stages each.

    The final pass absorbs the remainder when ``log2(n)`` is not a multiple of
    ``log2(radix)`` — matching the paper's Kernel-1/Kernel-2 handling where
    the last per-thread NTT may be smaller.

    Args:
        n: Transform length (power of two).
        radix: Per-pass radix (power of two, ``2 <= radix <= n``).

    Returns:
        A list of per-pass stage counts summing to ``log2(n)``.
    """
    if not is_power_of_two(n):
        raise ValueError("n must be a power of two")
    if not is_power_of_two(radix) or radix < 2:
        raise ValueError("radix must be a power of two >= 2")
    total_stages = log2_exact(n)
    per_pass = log2_exact(radix)
    if per_pass > total_stages:
        raise ValueError("radix %d exceeds transform size %d" % (radix, n))
    groups = [per_pass] * (total_stages // per_pass)
    remainder = total_stages % per_pass
    if remainder:
        groups.append(remainder)
    return groups


def run_pass(
    a: list[int],
    twiddles: Sequence[int],
    p: int,
    first_stage_m: int,
    stage_count: int,
) -> PassStats:
    """Execute ``stage_count`` consecutive radix-2 stages in place.

    Args:
        a: Coefficient vector (length ``n``), modified in place.
        twiddles: Bit-reversed twiddle table of length ``n``.
        p: Prime modulus.
        first_stage_m: The ``m`` value (number of butterfly groups) of the
            first stage in this pass; ``m = 1`` for the first stage overall.
        stage_count: Number of stages to execute.

    Returns:
        The :class:`PassStats` for the pass.
    """
    n = len(a)
    m = first_stage_m
    t = n // (2 * m)
    twiddle_loads = 0
    butterflies = 0
    for _ in range(stage_count):
        for j in range(m):
            psi = twiddles[m + j]
            start = 2 * j * t
            for k in range(start, start + t):
                b_hat = mul_mod(a[k + t], psi, p)
                a[k + t] = sub_mod(a[k], b_hat, p)
                a[k] = add_mod(a[k], b_hat, p)
        twiddle_loads += m
        butterflies += (n // 2)
        m *= 2
        t //= 2
    return PassStats(
        stages=stage_count,
        radix=radix_of_group(stage_count),
        element_loads=n,
        element_stores=n,
        twiddle_loads=twiddle_loads,
        butterflies=butterflies,
    )


def ntt_forward_by_passes(
    a: list[int],
    twiddles: Sequence[int],
    p: int,
    stage_groups: Sequence[int],
) -> list[PassStats]:
    """Run the full forward NTT as a sequence of passes, in place.

    Args:
        a: Coefficient vector, modified in place; its length must be ``2**sum(stage_groups)``.
        twiddles: Bit-reversed forward twiddle table.
        p: Prime modulus.
        stage_groups: Per-pass stage counts (e.g. from :func:`plan_stage_groups`).

    Returns:
        One :class:`PassStats` per pass, in execution order.
    """
    n = len(a)
    if sum(stage_groups) != log2_exact(n):
        raise ValueError("stage_groups must sum to log2(len(a))")
    stats: list[PassStats] = []
    m = 1
    for count in stage_groups:
        stats.append(run_pass(a, twiddles, p, m, count))
        m <<= count
    return stats
