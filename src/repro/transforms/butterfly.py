"""Butterfly operations for the forward and inverse NTT.

The forward (Cooley-Tukey / decimation-in-time) butterfly is Algorithm 2 of
the paper::

    B_hat = (B * psi) mod p
    B     = A - B_hat
    A     = A + B_hat

The inverse transform uses the Gentleman-Sande (decimation-in-frequency)
butterfly, which defers the twiddle multiplication until after the add/sub::

    T = A - B
    A = A + B
    B = (T * psi) mod p

Both are provided in a strict variant (every result reduced into ``[0, p)``)
and a lazy variant that matches the paper's ``[0, 4p)`` operand bound, used
by the GPU kernel models to account for the saved correction instructions.
"""

from __future__ import annotations

from ..modarith.modops import add_mod, mul_mod, sub_mod
from ..modarith.reducers import ModMulStrategy

__all__ = [
    "ct_butterfly",
    "gs_butterfly",
    "ct_butterfly_lazy",
    "butterfly_instruction_count",
]


def ct_butterfly(a: int, b: int, psi: int, p: int) -> tuple[int, int]:
    """Cooley-Tukey butterfly with strict reduction.

    Args:
        a: Upper operand, in ``[0, p)``.
        b: Lower operand, in ``[0, p)``.
        psi: Twiddle factor, in ``[0, p)``.
        p: Prime modulus.

    Returns:
        The pair ``(a + b*psi, a - b*psi) mod p``.
    """
    b_hat = mul_mod(b, psi, p)
    return add_mod(a, b_hat, p), sub_mod(a, b_hat, p)


def gs_butterfly(a: int, b: int, psi: int, p: int) -> tuple[int, int]:
    """Gentleman-Sande butterfly with strict reduction (used by the inverse NTT).

    Returns:
        The pair ``((a + b) mod p, (a - b) * psi mod p)``.
    """
    t = sub_mod(a, b, p)
    return add_mod(a, b, p), mul_mod(t, psi, p)


def ct_butterfly_lazy(
    a: int, b: int, psi: int, companions: tuple[int, ...], reducer: ModMulStrategy
) -> tuple[int, int]:
    """Cooley-Tukey butterfly with lazy (``[0, 4p)``) operand bounds.

    This mirrors Algorithm 2 exactly: the inputs may be as large as ``4p``,
    the twiddle product is computed with the supplied reducer (typically
    Shoup's, using its precomputed companion), and the outputs are only
    guaranteed to lie in ``[0, 4p)``.

    Args:
        a: Upper operand in ``[0, 4p)``.
        b: Lower operand in ``[0, 4p)``.
        psi: Twiddle factor in ``[0, p)``.
        companions: Precomputed companion words for ``psi`` under ``reducer``.
        reducer: Modular-multiplication strategy.

    Returns:
        ``(a + b*psi, a - b*psi)`` with both results in ``[0, 4p)``.
    """
    p = reducer.p
    two_p = 2 * p
    if a >= 4 * p or b >= 4 * p:
        raise ValueError("lazy butterfly operands must lie in [0, 4p)")
    # Conditional reduction of `a` keeps the running bound at 4p, as in SEAL.
    if a >= two_p:
        a -= two_p
    b_hat = reducer.mul_by_constant(b, psi, companions)
    return a + b_hat, a - b_hat + two_p


def butterfly_instruction_count(reducer: ModMulStrategy, lazy: bool = True) -> int:
    """Machine-instruction estimate for one butterfly under ``reducer``.

    Used by :mod:`repro.gpu.costmodel` to convert butterfly counts into
    compute time.  A butterfly is one modular multiplication plus an add, a
    subtract, and (for the strict variant) two conditional corrections.
    """
    base = reducer.cost.instructions + 2
    if not lazy:
        base += 4  # two compare-and-correct pairs
    return base
