"""NumPy-vectorised NTT backend for single-word (≤ 30-bit) primes.

The scalar implementations in :mod:`repro.transforms.cooley_tukey` favour
clarity; for larger experiments and for users who want throughput on a CPU,
this module provides a vectorised radix-2 implementation that processes whole
butterfly groups as NumPy array operations.

The backend is restricted to moduli below ``2^31``: with both operands below
``2^31`` the 64-bit products computed by NumPy's ``uint64`` arithmetic cannot
overflow, so the results are exact.  This mirrors the paper's "32-bit word"
configuration (Section IV); the 60-bit configuration needs the scalar big-int
path (or a 128-bit emulation, which pure NumPy cannot express exactly).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..modarith.modops import inv_mod
from ..modarith.roots import primitive_root_of_unity
from .bitrev import is_power_of_two, log2_exact
from .cooley_tukey import forward_twiddle_table

__all__ = ["MAX_VECTORIZED_MODULUS_BITS", "VectorizedNTT"]

#: Largest modulus bit-width the uint64 product trick supports exactly.
MAX_VECTORIZED_MODULUS_BITS = 30


class VectorizedNTT:
    """Vectorised negacyclic NTT for one ``(n, p)`` pair with ``p < 2^31``.

    The transform semantics (merged negacyclic, bit-reversed forward output,
    Gentleman-Sande inverse) are identical to
    :class:`repro.transforms.cooley_tukey.NegacyclicTransformer`; the test
    suite checks the two agree element-for-element.

    Args:
        n: Transform length (power of two).
        p: Prime modulus with ``p ≡ 1 (mod 2n)`` and ``p < 2^31``.
        psi_2n: Primitive ``2n``-th root of unity (derived when omitted).
    """

    def __init__(self, n: int, p: int, psi_2n: int | None = None) -> None:
        if not is_power_of_two(n):
            raise ValueError("n must be a power of two")
        if p.bit_length() > MAX_VECTORIZED_MODULUS_BITS + 1 or p >= (1 << 31):
            raise ValueError(
                "the vectorised backend supports moduli below 2^31; got a %d-bit prime"
                % p.bit_length()
            )
        if (p - 1) % (2 * n) != 0:
            raise ValueError("p must satisfy p ≡ 1 (mod 2n)")
        self.n = n
        self.p = p
        self.psi = psi_2n if psi_2n is not None else primitive_root_of_unity(2 * n, p)
        self.log_n = log2_exact(n)
        forward = forward_twiddle_table(n, self.psi, p)
        inverse = forward_twiddle_table(n, inv_mod(self.psi, p), p)
        self._forward = np.asarray(forward, dtype=np.uint64)
        self._inverse = np.asarray(inverse, dtype=np.uint64)
        self._p = np.uint64(p)
        self._n_inv = np.uint64(inv_mod(n, p))

    # -- helpers -----------------------------------------------------------------
    def _as_array(self, values: Sequence[int]) -> np.ndarray:
        if len(values) != self.n:
            raise ValueError("expected %d coefficients, got %d" % (self.n, len(values)))
        array = np.asarray([int(v) % self.p for v in values], dtype=np.uint64)
        return array

    # -- transforms -----------------------------------------------------------------
    def forward(self, values: Sequence[int]) -> list[int]:
        """Forward negacyclic NTT (bit-reversed output)."""
        a = self._as_array(values)
        p = self._p
        n = self.n
        t = n // 2
        m = 1
        while m < n:
            # View the vector as (m groups) x (2t elements); split each group
            # into its upper and lower halves and apply the butterfly to whole
            # halves at once.
            groups = a.reshape(m, 2 * t)
            upper = groups[:, :t]
            lower = groups[:, t:]
            twiddles = self._forward[m : 2 * m].reshape(m, 1)
            product = (lower * twiddles) % p
            new_lower = (upper + p - product) % p
            new_upper = (upper + product) % p
            groups[:, :t] = new_upper
            groups[:, t:] = new_lower
            m *= 2
            t //= 2
        return [int(x) for x in a]

    def inverse(self, values: Sequence[int]) -> list[int]:
        """Inverse negacyclic NTT (bit-reversed input, natural output)."""
        a = self._as_array(values)
        p = self._p
        n = self.n
        t = 1
        m = n // 2
        while m >= 1:
            groups = a.reshape(m, 2 * t)
            upper = groups[:, :t].copy()
            lower = groups[:, t:].copy()
            twiddles = self._inverse[m : 2 * m].reshape(m, 1)
            groups[:, :t] = (upper + lower) % p
            groups[:, t:] = ((upper + p - lower) % p * twiddles) % p
            m //= 2
            t *= 2
        a = (a * self._n_inv) % p
        return [int(x) for x in a]

    def multiply(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Negacyclic polynomial product computed entirely in the vectorised backend."""
        fa = np.asarray(self.forward(a), dtype=np.uint64)
        fb = np.asarray(self.forward(b), dtype=np.uint64)
        pointwise = (fa * fb) % self._p
        return self.inverse([int(x) for x in pointwise])
