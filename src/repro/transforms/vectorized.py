"""NumPy-vectorised NTT view for single-word (≤ 30-bit) primes.

The scalar implementations in :mod:`repro.transforms.cooley_tukey` favour
clarity; this module is the vectorised single-transform view of the same
radix-2 algorithm.  Since the engine layer exists the butterfly loops live
in exactly one place — :class:`repro.backends.engines.Radix2Engine` — and
:class:`VectorizedNTT` is a thin rows-in/rows-out wrapper around that shared
array path (one ``(1, n)`` batch per call), kept for its teaching-friendly
interface and its historical role in the test suite.

The backend is restricted to moduli below ``2^31``: with both operands below
``2^31`` the 64-bit products computed by NumPy's ``uint64`` arithmetic cannot
overflow, so the results are exact.  This mirrors the paper's "32-bit word"
configuration (Section IV); the 60-bit configuration needs the scalar big-int
path (or a 128-bit emulation, which pure NumPy cannot express exactly).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .bitrev import is_power_of_two, log2_exact

__all__ = ["MAX_VECTORIZED_MODULUS_BITS", "VectorizedNTT"]

#: Largest modulus bit-width the uint64 product trick supports exactly.
MAX_VECTORIZED_MODULUS_BITS = 30


class VectorizedNTT:
    """Vectorised negacyclic NTT for one ``(n, p)`` pair with ``p < 2^31``.

    The transform semantics (merged negacyclic, bit-reversed forward output,
    Gentleman-Sande inverse) are identical to
    :class:`repro.transforms.cooley_tukey.NegacyclicTransformer`; the test
    suite checks the two agree element-for-element.

    Args:
        n: Transform length (power of two).
        p: Prime modulus with ``p ≡ 1 (mod 2n)`` and ``p < 2^31``.
        psi_2n: Primitive ``2n``-th root of unity (derived when omitted).
    """

    def __init__(self, n: int, p: int, psi_2n: int | None = None) -> None:
        if not is_power_of_two(n):
            raise ValueError("n must be a power of two")
        if p.bit_length() > MAX_VECTORIZED_MODULUS_BITS + 1 or p >= (1 << 31):
            raise ValueError(
                "the vectorised backend supports moduli below 2^31; got a %d-bit prime"
                % p.bit_length()
            )
        if (p - 1) % (2 * n) != 0:
            raise ValueError("p must satisfy p ≡ 1 (mod 2n)")
        # Imported here, not at module top: transforms is the layer the
        # engine module builds on, so the teaching wrapper reaches *up* to
        # the shared tables/kernels only when actually instantiated.
        from ..backends.engines import EngineTables, get_engine

        self.n = n
        self.p = p
        self.log_n = log2_exact(n)
        self._tables = EngineTables(n, p, psi_2n)
        self.psi = self._tables.psi
        self._engine = get_engine("radix2")
        self._p = self._tables.p64

    # -- helpers -----------------------------------------------------------------
    def _as_array(self, values: Sequence[int]) -> np.ndarray:
        if len(values) != self.n:
            raise ValueError("expected %d coefficients, got %d" % (self.n, len(values)))
        array = np.asarray([int(v) % self.p for v in values], dtype=np.uint64)
        return array

    # -- transforms -----------------------------------------------------------------
    def forward(self, values: Sequence[int]) -> list[int]:
        """Forward negacyclic NTT (bit-reversed output)."""
        block = self._as_array(values).reshape(1, self.n)
        return [int(x) for x in self._engine.forward_array(block, self._tables)[0]]

    def inverse(self, values: Sequence[int]) -> list[int]:
        """Inverse negacyclic NTT (bit-reversed input, natural output)."""
        block = self._as_array(values).reshape(1, self.n)
        return [int(x) for x in self._engine.inverse_array(block, self._tables)[0]]

    def multiply(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Negacyclic polynomial product computed entirely in the vectorised backend."""
        fa = np.asarray(self.forward(a), dtype=np.uint64)
        fb = np.asarray(self.forward(b), dtype=np.uint64)
        pointwise = (fa * fb) % self._p
        return self.inverse([int(x) for x in pointwise])
