"""Bit-reversal permutation utilities.

The decimation-in-time Cooley-Tukey NTT (Algorithm 1 of the paper) consumes
its twiddle table in bit-reversed order and produces output in bit-reversed
order.  For HE this is harmless — Section IV points out that element-wise
multiplication between two bit-reversed NTT outputs followed by an inverse
transform that *consumes* bit-reversed input yields correctly ordered
results — but the library still needs the permutation for constructing
twiddle tables and for tests that compare against the reference transform.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "bit_reverse",
    "bit_reverse_indices",
    "bit_reverse_index_array",
    "bit_reverse_permute",
    "is_power_of_two",
    "log2_exact",
]

#: Cached permutations, keyed by ``n``.  Every layer that bit-reverses —
#: twiddle-table construction, the engine layer's Stockham/four-step output
#: reordering, the test oracles — shares these tables instead of re-deriving
#: the permutation locally.
_INDEX_CACHE: dict[int, tuple[int, ...]] = {}
_ARRAY_CACHE: dict[int, "object"] = {}


def is_power_of_two(n: int) -> bool:
    """Return ``True`` when ``n`` is a positive power of two."""
    return n > 0 and n & (n - 1) == 0


def log2_exact(n: int) -> int:
    """Return ``log2(n)`` for a power-of-two ``n``; raise otherwise."""
    if not is_power_of_two(n):
        raise ValueError("%d is not a positive power of two" % n)
    return n.bit_length() - 1


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``.

    Example:
        >>> bit_reverse(0b0011, 4)
        12
    """
    if value < 0 or value >= (1 << bits):
        raise ValueError("value %d does not fit in %d bits" % (value, bits))
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bit_reverse_indices(n: int) -> list[int]:
    """Return the bit-reversal permutation of ``range(n)`` for power-of-two ``n``.

    Built once per ``n`` by the doubling recurrence
    ``rev(2n) = [2r for r in rev(n)] + [2r + 1 for r in rev(n)]`` and cached —
    O(n) instead of the O(n log n) per-element reversal.
    """
    log2_exact(n)
    cached = _INDEX_CACHE.get(n)
    if cached is None:
        indices = [0]
        while len(indices) < n:
            doubled = [2 * index for index in indices]
            indices = doubled + [index + 1 for index in doubled]
        cached = tuple(indices)
        _INDEX_CACHE[n] = cached
    return list(cached)


def bit_reverse_index_array(n: int):
    """The permutation of :func:`bit_reverse_indices` as a cached ndarray.

    This is the fast path the vectorised engine layer uses to reorder whole
    residue batches with one gather (``block[:, indices]``).  Requires NumPy;
    pure-scalar callers should use :func:`bit_reverse_indices`.
    """
    cached = _ARRAY_CACHE.get(n)
    if cached is None:
        import numpy as np

        cached = np.asarray(bit_reverse_indices(n), dtype=np.intp)
        _ARRAY_CACHE[n] = cached
    return cached


def bit_reverse_permute(values: Sequence[int]) -> list:
    """Return ``values`` permuted into bit-reversed order.

    The permutation is an involution: applying it twice restores the input.
    """
    indices = bit_reverse_indices(len(values))
    return [values[i] for i in indices]
