"""Exact big-int scalar backend.

This wraps the clarity-first Python-integer path
(:class:`repro.transforms.cooley_tukey.NegacyclicTransformer` plus the
``modops`` primitives) behind the handle-based
:class:`~repro.backends.base.ComputeBackend` interface.  It is the
correctness oracle for every other backend and the only path with no
word-size restriction (the paper's 60-bit configuration runs here unless a
backend provides exact wide-word arithmetic).

Native storage *is* the list-of-lists, so for this backend residency is free
— but the boundary accounting is identical to every other backend:
:meth:`~ScalarBackend.from_rows` / :meth:`~ScalarBackend.to_rows` copy and
count, everything else hands storage from tensor to tensor without touching
the counter.  The private ``*_rows`` helpers operate directly on rows; they
are shared with the vectorised backends' per-prime fallback path.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..modarith.modops import add_mod, mul_mod, neg_mod, sub_mod
from ..telemetry import TRACER
from ..transforms.cooley_tukey import NegacyclicTransformer
from .base import ComputeBackend, ResidueRows, ResidueTensor
from .engines import EngineSelectionMixin, NttEngine

__all__ = ["ScalarBackend", "ScalarTensor"]


class ScalarTensor(ResidueTensor):
    """Residue tensor stored as Python ``list[list[int]]`` rows."""

    __slots__ = ("rows",)

    def __init__(self, backend, primes, n, rows: list[list[int]]) -> None:
        super().__init__(backend, primes, n)
        self.rows = rows


class ScalarBackend(EngineSelectionMixin, ComputeBackend):
    """Row-by-row exact backend over Python integers.

    Transformer contexts (twiddle tables) are cached per ``(n, p)`` pair —
    table construction is O(n) modular multiplications and must be paid once
    per prime, not once per transform; this is the resident-table policy
    Section IV of the paper analyses.

    Transforms go through the :class:`~repro.backends.engines.NttEngine`
    seam: every registered engine has an exact big-int row path delegating to
    the reference implementations in :mod:`repro.transforms`, so this backend
    is the correctness oracle for each engine, not just for the default one.
    Pin an engine with the ``engine`` constructor argument or
    :meth:`set_engine`; otherwise the documented selection precedence
    applies.
    """

    name = "scalar"

    def __init__(self, engine: str | None = None) -> None:
        super().__init__()
        self._transformers: dict[tuple[int, int], NegacyclicTransformer] = {}
        self._tune_rows: dict[tuple[int, int], list[int]] = {}
        self._init_engine_selection(engine)
        self.metrics.set_gauge("ntt.engine_choices", lambda: self.engine_choices)
        self.metrics.set_gauge("ntt.engine_timings", lambda: self.engine_timings)

    @property
    def resident_contexts(self) -> int:
        """Number of cached per-``(n, p)`` twiddle contexts."""
        return len(self._transformers)

    def transformer(self, n: int, p: int) -> NegacyclicTransformer:
        """Return (building if needed) the cached transformer for ``(n, p)``."""
        key = (n, p)
        transformer = self._transformers.get(key)
        if transformer is None:
            transformer = NegacyclicTransformer(n, p)
            self._transformers[key] = transformer
        return transformer

    def warm_twiddles(self, n: int, primes: Sequence[int]) -> None:
        for p in set(primes):
            self.transformer(n, p)

    # -- boundary conversions --------------------------------------------------
    def from_rows(self, rows: ResidueRows, primes: Sequence[int]) -> ScalarTensor:
        self._check_rows_shape(rows, primes)
        self._count_conversion(len(rows))
        n = len(rows[0]) if rows else 0
        reduced = [[value % p for value in row] for row, p in zip(rows, primes)]
        return ScalarTensor(self, primes, n, reduced)

    def to_rows(self, tensor: ResidueTensor) -> list[list[int]]:
        self._check_owned(tensor)
        self._count_conversion(tensor.count)
        return [list(row) for row in tensor.rows]

    def _wrap(self, primes, n, rows: list[list[int]]) -> ScalarTensor:
        return ScalarTensor(self, primes, n, rows)

    # -- engine selection plumbing ---------------------------------------------
    def _autotune_run(self, engine: NttEngine, n: int, p: int, batch: int) -> None:
        # Per-row cost is batch-independent on this backend, so one cached
        # random row is a faithful micro-benchmark of the whole group.
        engine.forward_row(self._tune_row(n, p), self.transformer(n, p))

    def _tune_row(self, n: int, p: int) -> list[int]:
        key = (n, p)
        row = self._tune_rows.get(key)
        if row is None:
            rng = random.Random((n << 16) ^ (p & 0xFFFF))
            row = [rng.randrange(p) for _ in range(n)]
            self._tune_rows[key] = row
        return row

    # -- row-level kernels (shared with vectorised backends' fallback) ---------
    def _transform_rows(
        self, rows: ResidueRows, primes: Sequence[int], forward: bool
    ) -> list[list[int]]:
        out: list[list[int] | None] = [None] * len(rows)
        if not rows:
            return []
        n = len(rows[0])
        groups: dict[int, list[int]] = {}
        for index, p in enumerate(primes):
            groups.setdefault(p, []).append(index)
        for p, indices in groups.items():
            engine = self._select_engine(n, p, len(indices))
            transformer = self.transformer(n, p)
            method = engine.forward_row if forward else engine.inverse_row
            with TRACER.span(
                "ntt.engine", engine=engine.spec, n=n, rows=len(indices)
            ):
                for index in indices:
                    out[index] = method(rows[index], transformer)
        return out

    def _forward_rows(
        self, rows: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        return self._transform_rows(rows, primes, forward=True)

    def _inverse_rows(
        self, rows: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        return self._transform_rows(rows, primes, forward=False)

    @staticmethod
    def _add_rows(rows_a, rows_b, primes) -> list[list[int]]:
        return [
            [add_mod(a, b, p) for a, b in zip(row_a, row_b)]
            for row_a, row_b, p in zip(rows_a, rows_b, primes)
        ]

    @staticmethod
    def _sub_rows(rows_a, rows_b, primes) -> list[list[int]]:
        return [
            [sub_mod(a, b, p) for a, b in zip(row_a, row_b)]
            for row_a, row_b, p in zip(rows_a, rows_b, primes)
        ]

    @staticmethod
    def _neg_rows(rows, primes) -> list[list[int]]:
        return [[neg_mod(a, p) for a in row] for row, p in zip(rows, primes)]

    @staticmethod
    def _mul_rows(rows_a, rows_b, primes) -> list[list[int]]:
        return [
            [mul_mod(a, b, p) for a, b in zip(row_a, row_b)]
            for row_a, row_b, p in zip(rows_a, rows_b, primes)
        ]

    @staticmethod
    def _scalar_mul_rows(rows, scalar: int, primes) -> list[list[int]]:
        return [
            [mul_mod(a, scalar % p, p) for a in row] for row, p in zip(rows, primes)
        ]

    @staticmethod
    def _digit_rows(source_row: Sequence[int], primes) -> list[list[int]]:
        return [[value % p for value in source_row] for p in primes]

    @staticmethod
    def _mod_switch_rows(
        rows: ResidueRows, primes: Sequence[int], plaintext_modulus: int
    ) -> list[list[int]]:
        q_last = primes[-1]
        t = plaintext_modulus
        t_inv = pow(t, -1, q_last)
        half = q_last // 2
        # Correction digits from the dropped row alone: u ≡ -w * t^{-1} (mod
        # q_last), centered so the added term t*u_c stays small.
        corrections = []
        for w in rows[-1]:
            u = (-w * t_inv) % q_last
            corrections.append(u - q_last if u > half else u)
        switched = []
        for row, p in zip(rows[:-1], primes[:-1]):
            q_inv = pow(q_last % p, -1, p)
            switched.append(
                [(c + t * u_c) % p * q_inv % p for c, u_c in zip(row, corrections)]
            )
        return switched

    # -- transforms ------------------------------------------------------------
    def forward_ntt_batch(self, tensor: ResidueTensor) -> ScalarTensor:
        self._check_owned(tensor)
        return self._wrap(
            tensor.primes, tensor.n, self._forward_rows(tensor.rows, tensor.primes)
        )

    def inverse_ntt_batch(self, tensor: ResidueTensor) -> ScalarTensor:
        self._check_owned(tensor)
        return self._wrap(
            tensor.primes, tensor.n, self._inverse_rows(tensor.rows, tensor.primes)
        )

    # -- pointwise arithmetic --------------------------------------------------
    def add(self, a: ResidueTensor, b: ResidueTensor) -> ScalarTensor:
        self._check_pair(a, b)
        return self._wrap(a.primes, a.n, self._add_rows(a.rows, b.rows, a.primes))

    def sub(self, a: ResidueTensor, b: ResidueTensor) -> ScalarTensor:
        self._check_pair(a, b)
        return self._wrap(a.primes, a.n, self._sub_rows(a.rows, b.rows, a.primes))

    def neg(self, a: ResidueTensor) -> ScalarTensor:
        self._check_owned(a)
        return self._wrap(a.primes, a.n, self._neg_rows(a.rows, a.primes))

    def mul(self, a: ResidueTensor, b: ResidueTensor) -> ScalarTensor:
        self._check_pair(a, b)
        return self._wrap(a.primes, a.n, self._mul_rows(a.rows, b.rows, a.primes))

    def scalar_mul(self, a: ResidueTensor, scalar: int) -> ScalarTensor:
        self._check_owned(a)
        return self._wrap(
            a.primes, a.n, self._scalar_mul_rows(a.rows, scalar, a.primes)
        )

    # -- structural operations -------------------------------------------------
    def concat(self, tensors: Sequence[ResidueTensor]) -> ScalarTensor:
        if not tensors:
            raise ValueError("cannot concatenate an empty tensor sequence")
        primes: list[int] = []
        rows: list[list[int]] = []
        n = tensors[0].n
        for tensor in tensors:
            self._check_owned(tensor)
            if tensor.n != n:
                raise ValueError("all tensors in a concat must share n")
            primes.extend(tensor.primes)
            rows.extend(tensor.rows)
        return self._wrap(primes, n, rows)

    def split(
        self, tensor: ResidueTensor, counts: Sequence[int]
    ) -> list[ScalarTensor]:
        self._check_owned(tensor)
        if sum(counts) != tensor.count:
            raise ValueError(
                "split counts sum to %d but tensor has %d rows"
                % (sum(counts), tensor.count)
            )
        pieces = []
        offset = 0
        for count in counts:
            pieces.append(
                self._wrap(
                    tensor.primes[offset : offset + count],
                    tensor.n,
                    tensor.rows[offset : offset + count],
                )
            )
            offset += count
        return pieces

    def slice_rows(self, tensor: ResidueTensor, start: int, stop: int) -> ScalarTensor:
        self._check_owned(tensor)
        return self._wrap(
            tensor.primes[start:stop], tensor.n, [list(r) for r in tensor.rows[start:stop]]
        )

    def copy(self, tensor: ResidueTensor) -> ScalarTensor:
        self._check_owned(tensor)
        return self._wrap(tensor.primes, tensor.n, [list(r) for r in tensor.rows])

    def tensor_equal(self, a: ResidueTensor, b: ResidueTensor) -> bool:
        self._check_owned(a)
        self._check_owned(b)
        return a.primes == b.primes and a.rows == b.rows

    # -- RNS compound operations ----------------------------------------------
    def digit_broadcast(self, tensor: ResidueTensor, index: int) -> ScalarTensor:
        self._check_owned(tensor)
        if not 0 <= index < tensor.count:
            raise ValueError("digit index %d out of range" % index)
        return self._wrap(
            tensor.primes, tensor.n, self._digit_rows(tensor.rows[index], tensor.primes)
        )

    def mod_switch_drop_last(
        self, tensor: ResidueTensor, plaintext_modulus: int
    ) -> ScalarTensor:
        self._check_owned(tensor)
        if tensor.count < 2:
            raise ValueError("cannot modulus-switch below a single prime")
        return self._wrap(
            tensor.primes[:-1],
            tensor.n,
            self._mod_switch_rows(tensor.rows, tensor.primes, plaintext_modulus),
        )
