"""Exact big-int scalar backend.

This wraps the clarity-first Python-integer path
(:class:`repro.transforms.cooley_tukey.NegacyclicTransformer` plus the
``modops`` primitives) behind the :class:`~repro.backends.base.ComputeBackend`
interface.  It is the correctness oracle for every other backend and the only
path with no word-size restriction (the paper's 60-bit configuration runs
here unless a backend provides exact wide-word arithmetic).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..modarith.modops import add_mod, mul_mod, neg_mod, sub_mod
from ..transforms.cooley_tukey import NegacyclicTransformer
from .base import ComputeBackend, ResidueRows

__all__ = ["ScalarBackend"]


class ScalarBackend(ComputeBackend):
    """Row-by-row exact backend over Python integers.

    Transformer contexts (twiddle tables) are cached per ``(n, p)`` pair, the
    same policy as :class:`repro.rns.poly.TransformerCache` — table
    construction is O(n) modular multiplications and must be paid once per
    prime, not once per transform.
    """

    name = "scalar"

    def __init__(self) -> None:
        self._transformers: dict[tuple[int, int], NegacyclicTransformer] = {}

    @property
    def resident_contexts(self) -> int:
        """Number of cached per-``(n, p)`` twiddle contexts."""
        return len(self._transformers)

    def transformer(self, n: int, p: int) -> NegacyclicTransformer:
        """Return (building if needed) the cached transformer for ``(n, p)``."""
        key = (n, p)
        transformer = self._transformers.get(key)
        if transformer is None:
            transformer = NegacyclicTransformer(n, p)
            self._transformers[key] = transformer
        return transformer

    # -- transforms ------------------------------------------------------------
    def forward_ntt_batch(
        self, rows: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_batch(rows, primes)
        return [
            self.transformer(len(row), p).forward(row) for row, p in zip(rows, primes)
        ]

    def inverse_ntt_batch(
        self, rows: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_batch(rows, primes)
        return [
            self.transformer(len(row), p).inverse(row) for row, p in zip(rows, primes)
        ]

    # -- pointwise arithmetic --------------------------------------------------
    def add_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_pair(rows_a, rows_b, primes)
        return [
            [add_mod(a, b, p) for a, b in zip(row_a, row_b)]
            for row_a, row_b, p in zip(rows_a, rows_b, primes)
        ]

    def sub_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_pair(rows_a, rows_b, primes)
        return [
            [sub_mod(a, b, p) for a, b in zip(row_a, row_b)]
            for row_a, row_b, p in zip(rows_a, rows_b, primes)
        ]

    def neg_batch(self, rows: ResidueRows, primes: Sequence[int]) -> list[list[int]]:
        self._check_batch(rows, primes)
        return [[neg_mod(a, p) for a in row] for row, p in zip(rows, primes)]

    def mul_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_pair(rows_a, rows_b, primes)
        return [
            [mul_mod(a, b, p) for a, b in zip(row_a, row_b)]
            for row_a, row_b, p in zip(rows_a, rows_b, primes)
        ]

    def scalar_mul_batch(
        self, rows: ResidueRows, scalar: int, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_batch(rows, primes)
        return [
            [mul_mod(a, scalar % p, p) for a in row] for row, p in zip(rows, primes)
        ]
