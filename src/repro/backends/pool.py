"""Process-pool and shared-memory plumbing for the ``parallel`` backend.

The paper's central claim (Section III / Fig. 3) is that an HE workload is
``np x (number of polynomials)`` *independent* NTTs whose throughput comes
from executing them as one wide batch on massively parallel hardware.  The
:class:`~repro.backends.parallel.ParallelBackend` realises that claim on
every multi-core CPU by sharding the batch axis across worker *processes*
(the GIL rules out threads for this workload); this module owns the three
mechanisms that make the sharding pay:

* :class:`SharedArena` — refcounted ``multiprocessing.shared_memory``
  segments backing the resident ``uint64`` residue matrices, so shard
  payloads cross process boundaries with **zero pickling**: a task pickles a
  few integers (segment name, row range, primes) and the worker maps the
  same physical pages.  Segments are released when the last tensor viewing
  them is garbage-collected, with an ``atexit`` sweep for whatever survives
  the session.  Every release path is PID-guarded: under the default
  ``fork`` start method the workers inherit the parent's arena *and* its
  ``weakref.finalize`` registry, and without the guard a worker exiting
  would unlink segments the parent still uses.
* the worker runtime — each worker process holds one long-lived *inner*
  backend (default ``numpy``) built by the pool initialiser, so twiddle
  tables and the PR-3 per-shape engine auto-tuner verdicts persist across
  tasks: a shard of a repeated shape runs the engine tuned for its
  sub-shape without re-racing the candidates.
* :class:`WorkerPool` — a persistent ``ProcessPoolExecutor`` wrapper that
  survives worker crashes: a :class:`BrokenProcessPool` disposes the
  executor and transparently retries the shard set once on a fresh pool
  (shard writes target disjoint output rows, so a retry is idempotent).

Shard-count resolution (first match wins): explicit argument >
:func:`set_default_shards` > the ``REPRO_SHARDS`` environment variable >
``os.cpu_count() - 1`` (always at least 1).
"""

from __future__ import annotations

import atexit
import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

try:  # Only the worker/arena payload paths need NumPy; resolution does not.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from ..telemetry import TRACER

__all__ = [
    "SHARDS_ENV_VAR",
    "SharedArena",
    "SharedSegment",
    "WorkerPool",
    "get_arena",
    "plan_shards",
    "resolve_shard_count",
    "set_default_shards",
]

#: Environment variable consulted when no shard count is chosen explicitly.
SHARDS_ENV_VAR = "REPRO_SHARDS"

_default_shards: int | None = None


def set_default_shards(count: int | None) -> None:
    """Install (or with ``None`` clear) the process-wide default shard count."""
    if count is not None and count < 1:
        raise ValueError("shard count must be at least 1, got %d" % count)
    global _default_shards
    _default_shards = count


def resolve_shard_count(explicit: int | None = None) -> int:
    """Resolve a shard count by the documented precedence.

    ``explicit`` argument > :func:`set_default_shards` > ``REPRO_SHARDS``
    (read at call time) > ``os.cpu_count() - 1``, clamped to at least 1.
    """
    if explicit is not None:
        if explicit < 1:
            raise ValueError("shard count must be at least 1, got %d" % explicit)
        return explicit
    if _default_shards is not None:
        return _default_shards
    env = os.environ.get(SHARDS_ENV_VAR)
    if env:
        try:
            count = int(env)
        except ValueError:
            raise ValueError(
                "%s must be a positive integer, got %r" % (SHARDS_ENV_VAR, env)
            ) from None
        if count < 1:
            raise ValueError(
                "%s must be a positive integer, got %r" % (SHARDS_ENV_VAR, env)
            )
        return count
    return max(1, (os.cpu_count() or 1) - 1)


def plan_shards(count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``count`` rows into at most ``shards`` contiguous balanced ranges.

    Row groups stay contiguous over the ``(prime, polynomial)`` batch axis —
    the inner backend re-groups rows by modulus within each shard, so a shard
    spanning a prime boundary is handled exactly like any mixed batch.
    """
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    ranges = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


# ------------------------------------------------------------ shared memory


class SharedSegment:
    """One refcounted shared-memory segment owned by a :class:`SharedArena`.

    Tensors viewing the segment hold one reference each (slices of a tensor
    share its segment); the segment is closed and unlinked when the count
    reaches zero.  All mutation is PID-guarded: a forked worker inheriting
    the object must never release the parent's memory.
    """

    __slots__ = ("arena", "shm", "refs", "owner_pid")

    def __init__(self, arena: "SharedArena", shm: shared_memory.SharedMemory) -> None:
        self.arena = arena
        self.shm = shm
        self.refs = 0
        self.owner_pid = os.getpid()

    @property
    def name(self) -> str:
        return self.shm.name

    def incref(self) -> None:
        self.refs += 1

    def decref(self) -> None:
        if os.getpid() != self.owner_pid:  # pragma: no cover - fork inheritance
            return
        self.refs -= 1
        if self.refs <= 0:
            self.arena.release(self)


class SharedArena:
    """Allocator and registry for the process's shared-memory segments.

    One module-level instance backs every
    :class:`~repro.backends.parallel.ParallelBackend`; an ``atexit`` hook
    unlinks whatever segments are still live when the interpreter exits, so
    a crashed session cannot leak ``/dev/shm`` entries.
    """

    def __init__(self) -> None:
        self._segments: dict[str, SharedSegment] = {}
        self._deferred: list[shared_memory.SharedMemory] = []
        self._owner_pid = os.getpid()
        self._bytes_in_use = 0

    @property
    def live_segments(self) -> int:
        """Number of segments currently allocated (test/diagnostic helper)."""
        return len(self._segments)

    @property
    def bytes_in_use(self) -> int:
        """Bytes of live shared memory (the ``shm.bytes_in_use`` gauge)."""
        return self._bytes_in_use

    def allocate(self, nbytes: int) -> SharedSegment:
        """Create a zero-initialised segment of at least ``nbytes`` bytes."""
        if self._deferred:
            self._sweep_deferred()
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        segment = SharedSegment(self, shm)
        self._segments[shm.name] = segment
        # shm.size is the mapped size (page-rounded), so the gauge reports
        # actual occupancy, not the requested byte count.
        self._bytes_in_use += shm.size
        return segment

    def release(self, segment: SharedSegment) -> None:
        """Unlink a segment; closing may be deferred until its views die.

        Tensor finalizers fire while the dying tensor — and therefore its
        ndarray view of the segment — is still alive, so the close here
        routinely raises ``BufferError``; such segments are parked on a
        deferred list and re-closed on the next allocation (by which point
        the view is gone).  The unlink itself always happens immediately:
        the name disappears and the pages are freed as soon as the last
        mapping closes.
        """
        if self._segments.pop(segment.name, None) is not None:
            self._bytes_in_use -= segment.shm.size
        try:
            segment.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            segment.shm.close()
        except BufferError:
            self._deferred.append(segment.shm)

    def _sweep_deferred(self) -> None:
        still_viewed = []
        for shm in self._deferred:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                still_viewed.append(shm)
        self._deferred = still_viewed

    @staticmethod
    def _disarm(shm: shared_memory.SharedMemory) -> None:
        # Drop the buffer/mapping references so neither a late finalizer nor
        # SharedMemory.__del__ can raise during interpreter teardown; the OS
        # reclaims the mapping when the process exits.
        shm._buf = None
        shm._mmap = None

    def shutdown(self) -> None:
        """Unlink every live segment (atexit sweep; no-op in forked children).

        Runs in an arbitrary order relative to the ``weakref.finalize``
        exit hook, so it handles both sides: segments still held by live
        tensors are unlinked and disarmed here (the finalizers then find a
        closed handle), and segments the finalizers already released land
        on the deferred list and are disarmed below.
        """
        if os.getpid() != self._owner_pid:  # pragma: no cover - fork inheritance
            return
        for segment in list(self._segments.values()):
            self._segments.pop(segment.name, None)
            try:
                segment.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            try:
                segment.shm.close()
            except BufferError:
                self._disarm(segment.shm)
        for shm in self._deferred:
            try:
                shm.close()
            except BufferError:
                self._disarm(shm)
        self._deferred = []
        self._bytes_in_use = 0


_ARENA = SharedArena()
atexit.register(_ARENA.shutdown)


def get_arena() -> SharedArena:
    """The module-level arena shared by every parallel backend instance."""
    return _ARENA


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup responsibility.

    On Python 3.13+ the ``track=False`` keyword keeps the attach out of the
    resource tracker entirely.  Before 3.13 the attach registers with the
    tracker as well (bpo-38119) — harmless here because forked workers share
    the parent's tracker process, whose cache is a set: the duplicate
    register collapses and the parent's eventual unlink balances it.  (An
    explicit unregister would *corrupt* the shared cache and break the
    parent's own cleanup.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` keyword
        return shared_memory.SharedMemory(name=name)


#: A picklable view descriptor: ``(segment name, first row, rows, n)``.
ShmRef = tuple[str, int, int, int]


def _attach_view(ref: ShmRef, shms: list) -> "np.ndarray":
    """Map a :data:`ShmRef` into this process as a ``(rows, n)`` uint64 view."""
    name, row_offset, rows, n = ref
    shm = _attach(name)
    shms.append(shm)
    return np.frombuffer(
        shm.buf, dtype=np.uint64, count=rows * n, offset=row_offset * n * 8
    ).reshape(rows, n)


# ------------------------------------------------------------ worker runtime

#: The worker's long-lived inner backend, built once per process by
#: :func:`_init_worker` so twiddle tables and auto-tuner verdicts persist
#: across tasks.
_WORKER_BACKEND = None


def _disarm_inherited_segments() -> None:
    """Neutralise segment handles copied into this worker by ``fork``.

    The parent's open ``SharedMemory`` objects (and the tensors viewing
    them) are duplicated into a forked worker's address space; they must
    never be closed or unlinked from here — the PID guards prevent that —
    but their ``__del__`` at worker exit would still raise ``BufferError``
    over the inherited views.  Dropping the buffer/mapping references makes
    those destructors no-ops; the worker maps segments it actually needs
    freshly, by name, per task.
    """
    arena = _ARENA
    for segment in list(arena._segments.values()):
        segment.shm._buf = None
        segment.shm._mmap = None
    arena._segments.clear()


def _init_worker(inner_name: str, engine_spec: str | None) -> None:
    from .registry import get_backend

    _disarm_inherited_segments()
    # The fork copied the parent's tracer (enabled flag, captured events,
    # span stack); a worker must start clean or it would re-ship parent
    # spans with every shard result.
    TRACER.reset_after_fork()
    global _WORKER_BACKEND
    backend = get_backend(inner_name)
    if engine_spec is not None:
        backend.set_engine(engine_spec)
    _WORKER_BACKEND = backend


def _inner_tensor(backend, primes: Sequence[int], n: int, data, big: dict):
    """Wrap shard rows into a tensor native to the worker's inner backend.

    The NumPy backend gets a zero-copy handle over the shared-memory view
    (its operations never mutate inputs, so aliasing is safe); any other
    inner backend enters through its own ``from_rows`` boundary.
    """
    from .numpy_backend import NumpyBackend, NumpyTensor

    if isinstance(backend, NumpyBackend):
        return NumpyTensor(backend, tuple(primes), n, data, dict(big))
    rows = data.tolist()
    for index, row in big.items():
        rows[index] = list(row)
    return backend.from_rows(rows, primes)


def _result_parts(backend, result):
    """Split an inner-backend result into (uint64 array, big-row dict)."""
    from .numpy_backend import STORAGE_LIMIT, NumpyBackend

    if isinstance(backend, NumpyBackend):
        return result.data, result.big
    rows = backend.to_rows(result)
    data = np.zeros((len(rows), result.n), dtype=np.uint64)
    big: dict[int, list[int]] = {}
    for index, (row, p) in enumerate(zip(rows, result.primes)):
        if p < STORAGE_LIMIT:
            data[index] = np.asarray(row, dtype=np.uint64)
        else:  # pragma: no cover - no parameter set generates ≥62-bit primes
            big[index] = row
    return data, big


def _run_plan_task(backend, task: dict, shms: list) -> None:
    """Execute one worker's share of a fused plan stage.

    The task carries the stage's node records (:mod:`repro.backends.ops`),
    this worker's row ranges for every value the stage touches, shared-memory
    refs for the stage's materialised inputs and outputs, and the inferred
    modulus tuple per value.  Intermediates live on this worker's heap only —
    they never cross a process boundary; the worker writes exactly the output
    rows it owns into the preallocated output segments.
    """
    from . import ops

    n = task["n"]
    rowsets: dict[int, tuple] = task["rowsets"]
    primes: dict[int, tuple] = task["primes"]
    views = {vid: _attach_view(ref, shms) for vid, ref in task["inputs"].items()}
    out_views = {vid: _attach_view(ref, shms) for vid, ref in task["outputs"].items()}
    local: dict[int, "np.ndarray"] = {}
    empty = np.zeros((0, n), dtype=np.uint64)

    def owned_rows(vid: int) -> "np.ndarray":
        if vid in local:
            return local[vid]
        ranges = rowsets[vid]
        if not ranges:
            return empty
        view = views[vid]
        if len(ranges) == 1:
            lo, hi = ranges[0]
            return view[lo:hi]
        return np.concatenate([view[lo:hi] for lo, hi in ranges], axis=0)

    def owned_primes(vid: int) -> tuple[int, ...]:
        value_primes = rowsets[vid], primes[vid]
        return tuple(p for lo, hi in value_primes[0] for p in value_primes[1][lo:hi])

    def owned_index(vid: int) -> list[int]:
        return [row for lo, hi in rowsets[vid] for row in range(lo, hi)]

    def compute(result) -> "np.ndarray":
        data, big = _result_parts(backend, result)
        if big:  # pragma: no cover - the coordinator precludes big rows
            raise RuntimeError("fused plan stage produced unexpected big rows")
        return data

    def inner(vid: int):
        return _inner_tensor(backend, owned_primes(vid), n, owned_rows(vid), {})

    for vid, node in task["nodes"]:
        if not rowsets[vid]:
            local[vid] = empty
            continue
        if isinstance(node, (ops.Add, ops.Sub, ops.Mul)):
            method = getattr(backend, node.kind)
            local[vid] = compute(method(inner(node.a), inner(node.b)))
        elif isinstance(node, ops.ForwardNtt):
            local[vid] = compute(backend.forward_ntt_batch(inner(node.src)))
        elif isinstance(node, ops.InverseNtt):
            local[vid] = compute(backend.inverse_ntt_batch(inner(node.src)))
        elif isinstance(node, ops.Neg):
            local[vid] = compute(backend.neg(inner(node.src)))
        elif isinstance(node, ops.ScalarMul):
            local[vid] = compute(backend.scalar_mul(inner(node.src), node.scalar))
        elif isinstance(node, ops.Copy):
            local[vid] = owned_rows(node.src).copy()
        elif isinstance(node, ops.Concat):
            # Source spans ascend with position, so stacking each source's
            # (ascending) owned rows in order yields the output's owned rows
            # in ascending global order — the layout the row sets describe.
            local[vid] = np.concatenate(
                [owned_rows(src) for src in node.srcs], axis=0
            )
        elif isinstance(node, ops.SliceRows):
            source = owned_rows(node.src)
            positions = [
                pos
                for pos, row in enumerate(owned_index(node.src))
                if node.start <= row < node.stop
            ]
            local[vid] = source[positions]
        elif isinstance(node, ops.DigitBroadcast):
            # Cross-row: the staging rule guarantees the source is a
            # materialised stage input, so the one needed row is readable
            # directly from shared memory regardless of who owns it.
            source_view = views[node.src]
            shard_primes = (primes[node.src][node.index],) + owned_primes(vid)
            data = np.zeros((len(shard_primes), n), dtype=np.uint64)
            data[0] = source_view[node.index]
            shard = _inner_tensor(backend, shard_primes, n, data, {})
            local[vid] = compute(backend.digit_broadcast(shard, 0))[1:]
        elif isinstance(node, ops.ModSwitchDropLast):
            # Cross-row: every owned output row pairs its own source row
            # with the source's (materialised) last row.
            source_view = views[node.src]
            last = len(primes[node.src]) - 1
            rows = np.concatenate(
                [source_view[lo:hi] for lo, hi in rowsets[vid]]
                + [source_view[last : last + 1]],
                axis=0,
            )
            shard_primes = owned_primes(vid) + (primes[node.src][last],)
            shard = _inner_tensor(backend, shard_primes, n, rows, {})
            local[vid] = compute(
                backend.mod_switch_drop_last(shard, node.plaintext_modulus)
            )
        else:  # pragma: no cover - defensive
            raise ValueError("unknown fused plan node %r" % type(node).__name__)

    for vid, view in out_views.items():
        data = local[vid]
        offset = 0
        for lo, hi in rowsets[vid]:
            view[lo:hi] = data[offset : offset + (hi - lo)]
            offset += hi - lo


def _run_task(backend, task: dict, shms: list) -> dict[int, list[int]] | None:
    op = task["op"]
    if op == "plan":
        _run_plan_task(backend, task, shms)
        return None
    n = task["n"]
    lo, hi = task["lo"], task["hi"]
    primes = task["primes"]
    out_view = _attach_view(task["out"], shms)
    a_view = _attach_view(task["a"], shms)

    if op in ("forward", "inverse", "neg", "scalar_mul", "add", "sub", "mul"):
        a = _inner_tensor(backend, primes, n, a_view[lo:hi], task["a_big"])
        if op == "forward":
            result = backend.forward_ntt_batch(a)
        elif op == "inverse":
            result = backend.inverse_ntt_batch(a)
        elif op == "neg":
            result = backend.neg(a)
        elif op == "scalar_mul":
            result = backend.scalar_mul(a, task["scalar"])
        else:
            b_view = _attach_view(task["b"], shms)
            b = _inner_tensor(backend, primes, n, b_view[lo:hi], task["b_big"])
            result = getattr(backend, op)(a, b)
        data, big = _result_parts(backend, result)
        out_view[lo:hi] = data
        return {lo + index: row for index, row in big.items()} or None

    if op == "digit":
        # The shard tensor is [source row] + [this shard's target rows]; the
        # inner digit_broadcast of index 0 then emits the per-prime digits
        # for every row, and row 0 (source mod its own prime) is discarded.
        source_big = task["source_big"]
        data = np.zeros((hi - lo + 1, n), dtype=np.uint64)
        if source_big is None:
            data[0] = a_view[task["index"]]
        big = {0: source_big} if source_big is not None else {}
        shard = _inner_tensor(backend, primes, n, data, big)
        result = backend.digit_broadcast(shard, 0)
        data, big = _result_parts(backend, result)
        out_view[lo:hi] = data[1:]
        return {lo + index - 1: row for index, row in big.items() if index >= 1} or None

    if op == "mod_switch":
        # The shard tensor is [this shard's rows] + [the dropped last row];
        # the RNS modulus switch is per-row given the last row, so the inner
        # implementation produces exactly this shard's switched rows.
        count = task["a"][2]
        data = np.concatenate([a_view[lo:hi], a_view[count - 1 : count]], axis=0)
        big = dict(task["a_big"])
        if task["last_big"] is not None:
            big[hi - lo] = task["last_big"]
        shard = _inner_tensor(backend, primes, n, data, big)
        result = backend.mod_switch_drop_last(shard, task["t"])
        data, big = _result_parts(backend, result)
        out_view[lo:hi] = data
        return {lo + index: row for index, row in big.items()} or None

    raise ValueError("unknown shard op %r" % op)  # pragma: no cover - defensive


def _exec_shard(task: dict) -> dict:
    """Worker entry point: run one shard task against the inner backend.

    Returns ``{"conversions": rows, "fallback": rows, "big": {...} | None,
    "spans": [...]}``: ``big`` holds the shard's big-row results (exact
    Python lists for rows whose prime exceeds the uint64 storage window —
    the documented chunked-pickle fallback; the uint64 payload is written
    straight into the output segment's pages), and ``conversions`` /
    ``fallback`` are the list/native boundary crossings and per-prime
    big-int fallback rows the inner backend charged while computing the
    shard, which the parent mirrors onto the parallel backend's own
    counters so the accounting contract of ``base.py`` holds across
    process boundaries.  When the coordinator set
    ``task["trace"]``, ``spans`` carries the events this worker recorded
    under a ``pool.task`` root span; the coordinator ingests them under
    its dispatch span (:meth:`repro.telemetry.Tracer.ingest`), which is
    how pool work shows up in traces with per-worker attribution.
    """
    backend = _WORKER_BACKEND
    if backend is None:  # pragma: no cover - defensive
        raise RuntimeError("worker pool used before initialisation")
    shms: list[shared_memory.SharedMemory] = []
    before = backend.conversion_count
    fallback_before = backend.fallback_rows
    trace = task.get("trace", False)
    spans: list[tuple] = []
    try:
        if trace:
            TRACER.start()
            mark = TRACER.mark()
            try:
                with TRACER.span("pool.task", worker=os.getpid(), op=task["op"]):
                    big = _run_task(backend, task, shms)
                spans = TRACER.events_since(mark)
            finally:
                TRACER.stop()
                TRACER.clear()
        else:
            big = _run_task(backend, task, shms)
        return {
            "conversions": backend.conversion_count - before,
            "fallback": backend.fallback_rows - fallback_before,
            "big": big,
            "spans": spans,
        }
    finally:
        for shm in shms:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - traceback kept a view
                pass


def _crash_for_test() -> None:  # pragma: no cover - runs in the worker
    """Test hook: die without cleanup, breaking the executor mid-flight."""
    os._exit(42)


# ------------------------------------------------------------------- pool


class WorkerPool:
    """A persistent, crash-recovering pool of inner-backend workers.

    The executor is created lazily on first use and disposed whenever the
    configuration changes (engine pin, shard count) or a worker dies; a
    broken pool is rebuilt and the shard set retried exactly once — shard
    writes land in disjoint output rows, so the retry is idempotent.
    """

    def __init__(
        self, workers: int, inner_name: str, engine_spec: str | None = None
    ) -> None:
        self.workers = max(1, workers)
        self.inner_name = inner_name
        self.engine_spec = engine_spec
        self._executor: ProcessPoolExecutor | None = None
        self.restarts = 0

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.inner_name, self.engine_spec),
            )
        return self._executor

    @property
    def running(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._executor is not None

    def run(self, tasks: Sequence[dict]) -> list[dict[int, list[int]] | None]:
        """Execute every shard task, restarting the pool once on a crash."""
        last_error: BaseException | None = None
        for _ in range(2):
            executor = self._ensure()
            try:
                futures = [executor.submit(_exec_shard, task) for task in tasks]
                return [future.result() for future in futures]
            except BrokenProcessPool as exc:
                last_error = exc
                self.dispose()
                self.restarts += 1
        raise RuntimeError(
            "parallel worker pool crashed twice running %d shard task(s)"
            % len(tasks)
        ) from last_error

    def crash_for_test(self) -> None:
        """Kill one worker abruptly (used by the recovery regression test)."""
        executor = self._ensure()
        try:
            executor.submit(_crash_for_test).result()
        except BrokenProcessPool:
            pass  # expected: the pool is now broken and must self-heal

    def set_engine(self, spec: str | None) -> None:
        """Re-pin the workers' inner engine (takes effect on next dispatch)."""
        self.engine_spec = spec
        self.dispose()

    def dispose(self) -> None:
        """Shut the executor down; the next dispatch builds a fresh one."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
