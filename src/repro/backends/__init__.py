"""Pluggable compute backends for the RNS/HE stack.

Every residue-matrix operation of the library — the batched forward/inverse
NTTs of :class:`repro.rns.poly.RnsPolynomial`, the pointwise arithmetic of
the evaluator's ``iNTT(NTT(a) ⊙ NTT(b))`` pipeline, RNS digit decomposition
and modulus switching — dispatches through the :class:`ComputeBackend`
interface defined here, moving opaque backend-resident
:class:`ResidueTensor` handles instead of Python lists (see the ResidueTensor
contract in :mod:`repro.backends.base`).  Ships with:

* ``"scalar"`` — exact big-int reference path (any word size).
* ``"numpy"`` — batched uint64 vectorisation for ≤ 30-bit primes with
  automatic per-prime scalar fallback.
* ``"parallel"`` — shards every batched operation of an inner backend
  (default ``numpy``) across a persistent process pool over shared-memory
  resident tensors, with a work-threshold crossover that keeps small
  shapes inline; worker count via :func:`set_default_shards` /
  ``REPRO_SHARDS``.

Select explicitly (``get_backend("numpy")``), process-wide
(:func:`set_default_backend`), or via the ``REPRO_BACKEND`` environment
variable.

Inside each backend, *how* a batch of NTTs is executed is a second pluggable
axis: the :class:`NttEngine` layer in :mod:`repro.backends.engines` provides
the paper's algorithm variants (``radix2``, ``high_radix``, ``four_step``,
``stockham``), selected per transform shape by explicit argument >
:func:`set_default_engine` > ``REPRO_NTT_ENGINE`` > a per-shape auto-tuner.

Since the op-graph redesign, the primary execution entrypoint is
:meth:`ComputeBackend.execute`: callers compile a chain of operations into a
declarative :class:`Plan` (built with :class:`OpGraph`, see
:mod:`repro.backends.ops`) and the backend runs it in one shot — eagerly
interpreted on ``scalar``/``numpy``, fused into one task per worker per plan
stage on ``parallel``.  The per-op methods remain as the eager compatibility
layer; the evaluator's fused/eager switch resolves via
:func:`resolve_execution_mode` (``REPRO_EXECUTION``, or the experiments
CLI's ``--fused``/``--eager``).
"""

from .base import ComputeBackend, ResidueRows, ResidueTensor
from .ops import (
    EXECUTION_ENV_VAR,
    NODE_NAMES,
    OpGraph,
    Plan,
    resolve_execution_mode,
    set_default_execution_mode,
)
from .engines import (
    ENGINE_ENV_VAR,
    NttAutoTuner,
    NttEngine,
    available_engines,
    get_engine,
    register_engine,
    set_default_engine,
)
from .pool import (
    SHARDS_ENV_VAR,
    plan_shards,
    resolve_shard_count,
    set_default_shards,
)
from .registry import (
    BACKEND_ENV_VAR,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from .scalar import ScalarBackend, ScalarTensor

__all__ = [
    "BACKEND_ENV_VAR",
    "ENGINE_ENV_VAR",
    "EXECUTION_ENV_VAR",
    "NODE_NAMES",
    "SHARDS_ENV_VAR",
    "ComputeBackend",
    "NttAutoTuner",
    "NttEngine",
    "OpGraph",
    "Plan",
    "ResidueRows",
    "ResidueTensor",
    "ScalarBackend",
    "ScalarTensor",
    "available_backends",
    "available_engines",
    "get_backend",
    "get_engine",
    "plan_shards",
    "register_backend",
    "register_engine",
    "resolve_backend",
    "resolve_execution_mode",
    "resolve_shard_count",
    "set_default_backend",
    "set_default_engine",
    "set_default_execution_mode",
    "set_default_shards",
]
