"""NumPy backend: batched, vectorised NTT and pointwise residue arithmetic.

Where :mod:`repro.transforms.vectorized` vectorises the butterfly stages of a
*single* transform, this backend additionally vectorises the *batch*
dimension: every residue row sharing a modulus is stacked into one 2-D
``uint64`` array and the whole stack moves through each butterfly stage as a
single array operation — the software analogue of the paper's batched GPU
kernel launch (Section III / Fig. 3).

Exactness: with both operands below ``2^31`` a ``uint64`` product cannot
overflow, so every ``(a * b) % p`` is exact — the same trick
:class:`repro.transforms.vectorized.VectorizedNTT` validates.  Primes above
the 30-bit window (the paper's 60-bit word configuration) are routed,
per prime, to the exact big-int :class:`~repro.backends.scalar.ScalarBackend`;
the caller sees one interface and bit-identical results either way.
Additive operations only need sums below ``2^64`` and stay vectorised up to
62-bit moduli.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..modarith.modops import inv_mod
from ..modarith.roots import primitive_root_of_unity
from ..transforms.bitrev import is_power_of_two
from ..transforms.cooley_tukey import forward_twiddle_table
from .base import ComputeBackend, ResidueRows
from .scalar import ScalarBackend

__all__ = ["NumpyBackend", "MUL_VECTORIZED_LIMIT", "ADD_VECTORIZED_LIMIT"]

#: Largest modulus (exclusive) for which uint64 products ``a * b`` are exact.
MUL_VECTORIZED_LIMIT = 1 << 31
#: Largest modulus (exclusive) for which uint64 sums ``a + p - b`` are exact.
ADD_VECTORIZED_LIMIT = 1 << 62


class _NttContext:
    """Per-``(n, p)`` twiddle tables as uint64 arrays (30-bit primes only)."""

    __slots__ = ("n", "p", "p64", "forward", "inverse", "n_inv")

    def __init__(self, n: int, p: int) -> None:
        if not is_power_of_two(n):
            raise ValueError("n must be a power of two")
        if (p - 1) % (2 * n) != 0:
            raise ValueError("p must satisfy p ≡ 1 (mod 2n)")
        psi = primitive_root_of_unity(2 * n, p)
        self.n = n
        self.p = p
        self.p64 = np.uint64(p)
        self.forward = np.asarray(forward_twiddle_table(n, psi, p), dtype=np.uint64)
        self.inverse = np.asarray(
            forward_twiddle_table(n, inv_mod(psi, p), p), dtype=np.uint64
        )
        self.n_inv = np.uint64(inv_mod(n, p))


def _group_by_prime(primes: Sequence[int]) -> dict[int, list[int]]:
    """Map each distinct modulus to the row indices it governs."""
    groups: dict[int, list[int]] = {}
    for index, p in enumerate(primes):
        groups.setdefault(p, []).append(index)
    return groups


class NumpyBackend(ComputeBackend):
    """Batched uint64 backend with automatic per-prime scalar fallback.

    The same twiddle derivation as
    :class:`repro.transforms.cooley_tukey.NegacyclicTransformer` is used, so
    outputs are bit-identical to the scalar path (bit-reversed forward
    output, Gentleman-Sande inverse).
    """

    name = "numpy"

    def __init__(self) -> None:
        self._contexts: dict[tuple[int, int], _NttContext] = {}
        self._fallback = ScalarBackend()

    @property
    def resident_contexts(self) -> int:
        """Cached twiddle contexts (vectorised plus scalar-fallback)."""
        return len(self._contexts) + self._fallback.resident_contexts

    def _context(self, n: int, p: int) -> _NttContext:
        key = (n, p)
        context = self._contexts.get(key)
        if context is None:
            context = _NttContext(n, p)
            self._contexts[key] = context
        return context

    @staticmethod
    def supports_vectorized_mul(p: int) -> bool:
        """Whether products mod ``p`` are exact in uint64 (p below 2^31)."""
        return p < MUL_VECTORIZED_LIMIT

    # -- batching helpers ------------------------------------------------------
    @staticmethod
    def _stack(rows: ResidueRows, indices: Sequence[int], p: int) -> np.ndarray:
        matrix = np.asarray([rows[i] for i in indices], dtype=np.uint64)
        return matrix % np.uint64(p)

    def _dispatch(self, primes, vectorized, fallback, limit):
        """Run ``vectorized`` per same-modulus group, ``fallback`` otherwise."""
        out: list[list[int] | None] = [None] * len(primes)
        for p, indices in _group_by_prime(primes).items():
            if p < limit:
                for index, row in zip(indices, vectorized(p, indices)):
                    out[index] = row
            else:
                group_primes = [p] * len(indices)
                for index, row in zip(indices, fallback(p, indices, group_primes)):
                    out[index] = row
        return out

    # -- transforms ------------------------------------------------------------
    def forward_ntt_batch(
        self, rows: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_batch(rows, primes)
        return self._dispatch(
            primes,
            lambda p, idx: self._forward_group(rows, idx, p),
            lambda p, idx, ps: self._fallback.forward_ntt_batch(
                [rows[i] for i in idx], ps
            ),
            MUL_VECTORIZED_LIMIT,
        )

    def inverse_ntt_batch(
        self, rows: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_batch(rows, primes)
        return self._dispatch(
            primes,
            lambda p, idx: self._inverse_group(rows, idx, p),
            lambda p, idx, ps: self._fallback.inverse_ntt_batch(
                [rows[i] for i in idx], ps
            ),
            MUL_VECTORIZED_LIMIT,
        )

    def _forward_group(
        self, rows: ResidueRows, indices: Sequence[int], p: int
    ) -> list[list[int]]:
        a = self._stack(rows, indices, p)
        context = self._context(a.shape[1], p)
        p64 = context.p64
        batch, n = a.shape
        t = n // 2
        m = 1
        while m < n:
            # (batch, m groups, 2t elements): butterfly whole half-groups of
            # the whole batch at once.
            view = a.reshape(batch, m, 2 * t)
            upper = view[:, :, :t]
            lower = view[:, :, t:]
            twiddles = context.forward[m : 2 * m].reshape(1, m, 1)
            product = (lower * twiddles) % p64
            new_upper = (upper + product) % p64
            new_lower = (upper + p64 - product) % p64
            view[:, :, :t] = new_upper
            view[:, :, t:] = new_lower
            m *= 2
            t //= 2
        return a.tolist()

    def _inverse_group(
        self, rows: ResidueRows, indices: Sequence[int], p: int
    ) -> list[list[int]]:
        a = self._stack(rows, indices, p)
        context = self._context(a.shape[1], p)
        p64 = context.p64
        batch, n = a.shape
        t = 1
        m = n // 2
        while m >= 1:
            view = a.reshape(batch, m, 2 * t)
            upper = view[:, :, :t].copy()
            lower = view[:, :, t:].copy()
            twiddles = context.inverse[m : 2 * m].reshape(1, m, 1)
            view[:, :, :t] = (upper + lower) % p64
            view[:, :, t:] = ((upper + p64 - lower) % p64 * twiddles) % p64
            m //= 2
            t *= 2
        a = (a * context.n_inv) % p64
        return a.tolist()

    # -- pointwise arithmetic --------------------------------------------------
    def add_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_pair(rows_a, rows_b, primes)
        return self._dispatch(
            primes,
            lambda p, idx: (
                (self._stack(rows_a, idx, p) + self._stack(rows_b, idx, p))
                % np.uint64(p)
            ).tolist(),
            lambda p, idx, ps: self._fallback.add_batch(
                [rows_a[i] for i in idx], [rows_b[i] for i in idx], ps
            ),
            ADD_VECTORIZED_LIMIT,
        )

    def sub_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_pair(rows_a, rows_b, primes)
        return self._dispatch(
            primes,
            lambda p, idx: (
                (self._stack(rows_a, idx, p) + np.uint64(p) - self._stack(rows_b, idx, p))
                % np.uint64(p)
            ).tolist(),
            lambda p, idx, ps: self._fallback.sub_batch(
                [rows_a[i] for i in idx], [rows_b[i] for i in idx], ps
            ),
            ADD_VECTORIZED_LIMIT,
        )

    def neg_batch(self, rows: ResidueRows, primes: Sequence[int]) -> list[list[int]]:
        self._check_batch(rows, primes)
        return self._dispatch(
            primes,
            lambda p, idx: (
                (np.uint64(p) - self._stack(rows, idx, p)) % np.uint64(p)
            ).tolist(),
            lambda p, idx, ps: self._fallback.neg_batch([rows[i] for i in idx], ps),
            ADD_VECTORIZED_LIMIT,
        )

    def mul_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_pair(rows_a, rows_b, primes)
        return self._dispatch(
            primes,
            lambda p, idx: (
                (self._stack(rows_a, idx, p) * self._stack(rows_b, idx, p))
                % np.uint64(p)
            ).tolist(),
            lambda p, idx, ps: self._fallback.mul_batch(
                [rows_a[i] for i in idx], [rows_b[i] for i in idx], ps
            ),
            MUL_VECTORIZED_LIMIT,
        )

    def scalar_mul_batch(
        self, rows: ResidueRows, scalar: int, primes: Sequence[int]
    ) -> list[list[int]]:
        self._check_batch(rows, primes)
        return self._dispatch(
            primes,
            lambda p, idx: (
                (self._stack(rows, idx, p) * np.uint64(scalar % p)) % np.uint64(p)
            ).tolist(),
            lambda p, idx, ps: self._fallback.scalar_mul_batch(
                [rows[i] for i in idx], scalar, ps
            ),
            MUL_VECTORIZED_LIMIT,
        )
