"""The :class:`ComputeBackend` interface — the seam every residue-matrix
operation of the RNS/HE stack goes through.

The paper's headline observation (Section III, Fig. 3) is that an HE workload
is ``np x (number of polynomials)`` *independent* NTTs and that throughput
comes from executing them as one wide batch.  The backend interface mirrors
that shape directly: every method takes a *batch* of residue rows plus the
parallel list of moduli (primes may repeat — that is exactly what lets the
evaluator fuse the transforms of several polynomials of a ciphertext into a
single call), and returns the transformed batch.

Implementations:

* :class:`repro.backends.scalar.ScalarBackend` — the exact big-int reference
  path (clarity-first, works for any word size).
* :class:`repro.backends.numpy_backend.NumpyBackend` — vectorises both the
  butterfly stages and the batch dimension with ``uint64`` arrays for
  ≤ 30-bit primes, falling back to the scalar path per prime otherwise.

Backends are interchangeable bit-for-bit: the cross-check suite in
``tests/test_backends.py`` pins every implementation against
:class:`repro.transforms.cooley_tukey.NegacyclicTransformer`.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

__all__ = ["ComputeBackend", "ResidueRows"]

#: A batch of residue rows: ``rows[i]`` holds integers reduced mod ``primes[i]``.
ResidueRows = Sequence[Sequence[int]]


class ComputeBackend(abc.ABC):
    """Abstract batched compute backend over residue matrices.

    Every method operates on a batch of residue rows with a parallel sequence
    of moduli.  Rows belonging to the same modulus may be batched into one
    wide operation by the implementation; callers are encouraged to pass the
    largest batch they can assemble (e.g. all polynomials of a ciphertext at
    once) — that is where the paper's speedup lives.
    """

    #: Registry name of the backend (``"scalar"``, ``"numpy"``, ...).
    name: str = "abstract"

    # -- transforms ------------------------------------------------------------
    @abc.abstractmethod
    def forward_ntt_batch(
        self, rows: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        """Forward negacyclic NTT of every row (bit-reversed output).

        Args:
            rows: Batch of coefficient rows, all of the same power-of-two
                length ``n``.
            primes: One NTT prime per row (``p ≡ 1 (mod 2n)``); repeats allowed.
        """

    @abc.abstractmethod
    def inverse_ntt_batch(
        self, rows: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        """Inverse negacyclic NTT of every row (bit-reversed input)."""

    # -- pointwise arithmetic --------------------------------------------------
    @abc.abstractmethod
    def add_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        """Element-wise ``(a + b) mod p`` for every row pair."""

    @abc.abstractmethod
    def sub_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        """Element-wise ``(a - b) mod p`` for every row pair."""

    @abc.abstractmethod
    def neg_batch(self, rows: ResidueRows, primes: Sequence[int]) -> list[list[int]]:
        """Element-wise ``(-a) mod p`` for every row."""

    @abc.abstractmethod
    def mul_batch(
        self, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> list[list[int]]:
        """Element-wise ``(a * b) mod p`` — the ⊙ of the NTT-domain pipeline."""

    @abc.abstractmethod
    def scalar_mul_batch(
        self, rows: ResidueRows, scalar: int, primes: Sequence[int]
    ) -> list[list[int]]:
        """Multiply every row by one integer scalar (reduced per modulus)."""

    # -- validation helpers ----------------------------------------------------
    @staticmethod
    def _check_batch(rows: ResidueRows, primes: Sequence[int]) -> None:
        if len(rows) != len(primes):
            raise ValueError(
                "batch shape mismatch: %d rows vs %d primes" % (len(rows), len(primes))
            )
        # A batch is a rectangular residue matrix; a ragged batch would be
        # rejected by the vectorised backends and silently mis-handled by
        # row-wise ones, so every backend rejects it up front.
        if rows:
            n = len(rows[0])
            for index, row in enumerate(rows):
                if len(row) != n:
                    raise ValueError(
                        "ragged batch: row 0 has %d entries but row %d has %d"
                        % (n, index, len(row))
                    )

    @classmethod
    def _check_pair(
        cls, rows_a: ResidueRows, rows_b: ResidueRows, primes: Sequence[int]
    ) -> None:
        if len(rows_a) != len(rows_b):
            raise ValueError(
                "batch shape mismatch: %d vs %d rows" % (len(rows_a), len(rows_b))
            )
        cls._check_batch(rows_a, primes)
        cls._check_batch(rows_b, primes)
        if rows_a and len(rows_a[0]) != len(rows_b[0]):
            raise ValueError(
                "row length mismatch: %d vs %d" % (len(rows_a[0]), len(rows_b[0]))
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(name=%r)" % (type(self).__name__, self.name)
