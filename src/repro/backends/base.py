"""The :class:`ComputeBackend` interface — the seam every residue-matrix
operation of the RNS/HE stack goes through — and the :class:`ResidueTensor`
handle that keeps residue data *resident* in backend-native storage.

The paper's headline observation (Section III, Fig. 3) is that an HE workload
is ``np x (number of polynomials)`` *independent* NTTs and that throughput
comes from executing them as one wide batch over data that never leaves the
device.  The interface mirrors both halves of that observation:

* **Batching** — every operation takes whole residue matrices (rows may share
  a modulus, which is exactly what lets the evaluator fuse the transforms of
  several polynomials of a ciphertext into a single call).
* **Residency** — operations consume and produce opaque
  :class:`ResidueTensor` handles.  Data enters native storage once (at
  :meth:`ComputeBackend.from_rows`) and leaves it once (at
  :meth:`ComputeBackend.to_rows`); everything in between — transforms,
  pointwise arithmetic, digit decomposition, modulus switching — stays in
  whatever layout the backend prefers.

The ResidueTensor contract
--------------------------

A :class:`ResidueTensor` is an **opaque, immutable-by-convention handle**
owned by exactly one backend instance.  The contract every backend must obey:

1. **Ownership** — a tensor may only be passed to methods of the backend that
   created it; backends must reject foreign tensors (``ValueError``) instead
   of guessing at their layout.
2. **Shape** — a tensor logically holds ``count`` rows of ``n`` residues;
   ``tensor.primes[i]`` is the modulus of row ``i`` (repeats allowed).  Rows
   are canonically reduced: every stored residue lies in ``[0, p_i)``.
3. **Value semantics** — operations return *new* tensors; a backend must not
   mutate an input tensor in place.  :meth:`ComputeBackend.copy` yields an
   independent tensor whose storage is not aliased.
4. **Explicit boundaries** — the only conversions between Python
   ``list[list[int]]`` and native storage happen in :meth:`from_rows` /
   :meth:`to_rows` (and, for vectorised backends, in the per-prime scalar
   fallback for word sizes the vector unit cannot handle exactly).  Every
   such materialisation increments :attr:`ComputeBackend.conversion_count`,
   by the number of rows converted, so callers — and the regression tests —
   can assert that a chain of operations stayed resident.  Rows processed
   through a per-prime big-int fallback are additionally charged to
   :attr:`ComputeBackend.fallback_rows`, making residual slow-path work
   directly observable (``HeContext.metrics()`` / ``/v1/metrics``) instead
   of inferred from conversion deltas.

The wide-word exactness window
------------------------------

Vectorised backends guarantee **exact** modular arithmetic over the full
storage window ``p < 2^62`` — not just where a native ``uint64`` product is
safe (``p < 2^31``).  The contract, shared by every engine array path and
every pointwise/RNS kernel (see :mod:`repro.backends.wideops`):

* products against *constants* (twiddles, ``n^{-1}``, ``t``, ``q^{-1}``) use
  Shoup's precomputed-companion reduction — 32-bit limb decomposition with
  uint64 carries for any ``p < 2^62``, or the float64 two-product quotient
  trick for ``p < 2^50`` (strategy selected per prime size, forceable with
  ``REPRO_WIDE_STRATEGY``);
* general element-wise products split the 128-bit product into limb halves
  and fold the high half in with the same Shoup machinery;
* every kernel returns *fully reduced* residues, which is what keeps all
  engines and both strategies bit-for-bit interchangeable with the big-int
  reference path.

``REPRO_WIDE_WORD=0`` disables the widened window (restoring the 30-bit
gate and its counted fallback) so benchmarks and tests can compare regimes;
primes at or above ``2^62`` always take the exact big-int path.
5. **Optional shared-buffer capability** — a tensor whose storage other
   processes can map directly reports it via
   :meth:`ResidueTensor.shared_buffer`; the default (``None``) means the
   storage is private to this process.  This is how the ``parallel``
   backend's shards cross process boundaries with zero pickling of payload
   data; consumers must treat a ``None`` as "fall back to the counted
   list boundary", never as an error.

Implementations:

* :class:`repro.backends.scalar.ScalarBackend` — the exact big-int reference
  path; its native storage *is* the list-of-lists, so residency is free.
* :class:`repro.backends.numpy_backend.NumpyBackend` — one resident
  ``uint64`` ndarray per tensor, vectorising butterfly stages and the batch
  dimension for ≤ 30-bit primes with a per-prime exact scalar fallback above.
* :class:`repro.backends.parallel.ParallelBackend` — shards every batched
  operation of an inner backend across a persistent process pool, with
  shared-memory-backed tensors above a work-threshold crossover.

Backends are interchangeable bit-for-bit: the cross-check suite in
``tests/test_backends.py`` pins every implementation against
:class:`repro.transforms.cooley_tukey.NegacyclicTransformer`.
"""

from __future__ import annotations

import abc
import contextlib
import functools
from collections.abc import Mapping, Sequence

from ..telemetry import TRACER
from ..telemetry.metrics import MetricsRegistry
from . import ops

__all__ = ["ComputeBackend", "ResidueTensor", "ResidueRows", "uninstrumented"]

#: A batch of residue rows in boundary (Python list) form: ``rows[i]`` holds
#: integers reduced mod ``primes[i]``.  Only :meth:`ComputeBackend.from_rows`
#: / :meth:`ComputeBackend.to_rows` traffic in this type.
ResidueRows = Sequence[Sequence[int]]


class ResidueTensor:
    """Opaque handle to a backend-resident residue matrix.

    Subclasses add the actual storage (Python rows, a ``uint64`` ndarray, a
    device buffer, ...).  User code never touches the storage — it moves
    handles between backend operations and crosses the boundary explicitly
    via :meth:`to_rows` when big-int values are genuinely needed
    (CRT reconstruction, serialisation, decoding).

    Attributes:
        backend: The backend instance that owns this tensor.
        primes: One modulus per row (repeats allowed).
        n: Row length (residues per row).
    """

    __slots__ = ("backend", "primes", "n")

    def __init__(
        self, backend: "ComputeBackend", primes: Sequence[int], n: int
    ) -> None:
        self.backend = backend
        self.primes = tuple(primes)
        self.n = n

    @property
    def count(self) -> int:
        """Number of residue rows."""
        return len(self.primes)

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(count, n)`` shape of the residue matrix."""
        return (len(self.primes), self.n)

    def to_rows(self) -> list[list[int]]:
        """Materialise to Python lists — an explicit, counted boundary."""
        return self.backend.to_rows(self)

    def shared_buffer(self) -> tuple[str, int, int, int] | None:
        """Descriptor of this tensor's cross-process-mappable storage, if any.

        Backends whose storage lives in named shared memory return a
        ``(segment name, first row, rows, n)`` tuple another process can map
        without copying (the ``parallel`` backend's zero-pickle payload
        path).  The default is ``None``: storage is private to this process
        and data must cross through the counted :meth:`to_rows` boundary.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(backend=%r, shape=%dx%d)" % (
            type(self).__name__,
            self.backend.name,
            len(self.primes),
            self.n,
        )


#: Kernel methods auto-wrapped with tracing spans on every concrete backend
#: subclass (see :meth:`ComputeBackend.__init_subclass__`).  Mapping is
#: method name → span name; boundary crossings get their own ``boundary.*``
#: namespace so the summary separates data movement from compute.
_TRACED_KERNELS = {
    "forward_ntt_batch": "op.forward_ntt",
    "inverse_ntt_batch": "op.inverse_ntt",
    "add": "op.add",
    "sub": "op.sub",
    "neg": "op.neg",
    "mul": "op.mul",
    "scalar_mul": "op.scalar_mul",
    "digit_broadcast": "op.digit_broadcast",
    "mod_switch_drop_last": "op.mod_switch",
    "from_rows": "boundary.from_rows",
    "to_rows": "boundary.to_rows",
}

#: Every wrap applied by ``__init_subclass__``: ``(cls, attr, original,
#: wrapper)`` — consumed by :func:`uninstrumented` to restore the pristine
#: methods for overhead baselines.
_INSTRUMENTED: list[tuple] = []


def _traced(method, span_name: str):
    """Wrap a kernel method with a tracing span (single-check fast path)."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        if not TRACER.enabled:
            return method(self, *args, **kwargs)
        with TRACER.span(span_name, backend=self.name):
            return method(self, *args, **kwargs)

    wrapper._repro_traced = True
    return wrapper


@contextlib.contextmanager
def uninstrumented():
    """Temporarily restore every auto-wrapped kernel to its original.

    The telemetry overhead benchmark uses this as its baseline: comparing
    the (tracing-off) wrapped stack against the never-wrapped stack pins
    the cost of the disabled fast path itself.
    """
    for cls, attr, original, _wrapper in _INSTRUMENTED:
        setattr(cls, attr, original)
    try:
        yield
    finally:
        for cls, attr, _original, wrapper in _INSTRUMENTED:
            setattr(cls, attr, wrapper)


class ComputeBackend(abc.ABC):
    """Abstract batched compute backend over resident residue tensors.

    Every operation consumes and produces :class:`ResidueTensor` handles
    owned by this backend.  Rows belonging to the same modulus may be batched
    into one wide operation by the implementation; callers are encouraged to
    :meth:`concat` the largest batch they can assemble (e.g. all polynomials
    of a ciphertext at once) — that is where the paper's speedup lives.

    **Execution model.**  The primary entrypoint is :meth:`execute`: callers
    describe a whole chain of operations as a declarative
    :class:`repro.backends.ops.Plan` and the backend runs it in one shot,
    which is what lets implementations fuse across operations (the
    ``parallel`` backend dispatches one task per worker per plan stage
    instead of one pool round trip per method).  The per-operation methods
    below (``forward_ntt_batch``, ``add``, ...) remain supported as the
    **eager compatibility layer** — each is semantically a one-node plan, and
    ``tests/test_ops_plans.py`` pins the two surfaces bit-for-bit against
    each other.  They are deprecated as an extension surface for *callers*
    composing multi-op chains (emit a plan instead: eager chains cannot be
    fused and pay per-op dispatch overhead on sharding backends) but are
    fully supported as the node kernels a backend implements — the generic
    interpreter executes plans through them.
    """

    #: Registry name of the backend (``"scalar"``, ``"numpy"``, ...).
    name: str = "abstract"

    def __init__(self) -> None:
        #: The backend's metrics namespace.  Counters live here; the legacy
        #: per-concern properties below are thin shims over it.
        self.metrics = MetricsRegistry()
        self.metrics.declare("conversions.rows", "pool.dispatches", "fallback.rows")

    def __init_subclass__(cls, **kwargs) -> None:
        """Auto-instrument every concrete kernel a subclass defines.

        Each method named in :data:`_TRACED_KERNELS` that the subclass
        itself implements is wrapped with a tracing span.  Only
        ``cls.__dict__`` entries are wrapped (inherited methods were
        already wrapped on the class that defined them), and re-wrapping
        is guarded so reloads stay idempotent.  This keeps every backend
        — including the pool's worker-side instances — instrumented
        without a single hand-written span in the implementations.
        """
        super().__init_subclass__(**kwargs)
        for attr, span_name in _TRACED_KERNELS.items():
            method = cls.__dict__.get(attr)
            if method is None or getattr(method, "_repro_traced", False):
                continue
            wrapper = _traced(method, span_name)
            setattr(cls, attr, wrapper)
            _INSTRUMENTED.append((cls, attr, method, wrapper))

    # -- boundary conversions (the only list <-> native crossings) -------------
    @property
    def conversion_count(self) -> int:
        """Residue rows materialised across the list/native boundary so far.

        Incremented by :meth:`from_rows`, :meth:`to_rows` and (for vectorised
        backends) the per-prime scalar fallback.  A chain of operations that
        stayed fully resident leaves this counter unchanged — the acceptance
        test of the resident data plane.  Shim over
        ``metrics.value("conversions.rows")``.
        """
        return self.metrics.value("conversions.rows")

    def reset_conversion_count(self) -> None:
        """Zero the boundary-conversion counter (test/benchmark helper)."""
        self.metrics.zero("conversions.rows")

    def _count_conversion(self, rows: int) -> None:
        self.metrics.inc("conversions.rows", rows)

    @property
    def fallback_rows(self) -> int:
        """Residue rows processed through a per-prime big-int fallback so far.

        Zero on backends whose native path is exact for every modulus they
        store (the scalar reference, and the vectorised backends inside the
        wide-word window) — the observability counter behind the 60-bit
        zero-fallback chain tests.  Shim over
        ``metrics.value("fallback.rows")``.
        """
        return self.metrics.value("fallback.rows")

    def _count_fallback(self, rows: int) -> None:
        self.metrics.inc("fallback.rows", rows)

    @abc.abstractmethod
    def from_rows(self, rows: ResidueRows, primes: Sequence[int]) -> ResidueTensor:
        """Enter native storage: build a tensor from Python residue rows.

        Rows are reduced modulo their prime on entry, so unreduced (but
        non-negative) inputs are accepted.  Counts ``len(rows)`` conversions.
        """

    @abc.abstractmethod
    def to_rows(self, tensor: ResidueTensor) -> list[list[int]]:
        """Leave native storage: materialise a tensor to Python residue rows.

        Counts ``tensor.count`` conversions.
        """

    # -- plan execution (the primary entrypoint) -------------------------------
    def execute(
        self, plan: "ops.Plan", inputs: Mapping[str, ResidueTensor]
    ) -> dict[str, ResidueTensor]:
        """Execute a compiled operation plan and return its named outputs.

        ``inputs`` binds each of the plan's :class:`~repro.backends.ops.Input`
        names to a tensor owned by this backend.  The base implementation is
        the generic interpreter — one eager method call per node, so every
        node still routes through this backend's engine selection and
        fallback machinery; backends that can fuse across nodes override
        this.  A plan that returns an input unchanged returns the same
        handle (no defensive copy — insert an explicit ``copy`` node when
        fresh storage is required).
        """
        if not TRACER.enabled:
            return ops.interpret(self, plan, inputs)
        with TRACER.span("plan.execute", backend=self.name, nodes=len(plan.nodes)):
            return ops.interpret(self, plan, inputs)

    # -- transforms (eager compatibility layer: one-node plans) ----------------
    @abc.abstractmethod
    def forward_ntt_batch(self, tensor: ResidueTensor) -> ResidueTensor:
        """Forward negacyclic NTT of every row (bit-reversed output).

        Row ``i`` is transformed under ``tensor.primes[i]``
        (``p ≡ 1 (mod 2n)``); repeats allowed and encouraged — rows sharing a
        modulus move through the butterfly stages as one batch.
        """

    @abc.abstractmethod
    def inverse_ntt_batch(self, tensor: ResidueTensor) -> ResidueTensor:
        """Inverse negacyclic NTT of every row (bit-reversed input)."""

    # -- pointwise arithmetic --------------------------------------------------
    @abc.abstractmethod
    def add(self, a: ResidueTensor, b: ResidueTensor) -> ResidueTensor:
        """Element-wise ``(a + b) mod p`` for every row pair."""

    @abc.abstractmethod
    def sub(self, a: ResidueTensor, b: ResidueTensor) -> ResidueTensor:
        """Element-wise ``(a - b) mod p`` for every row pair."""

    @abc.abstractmethod
    def neg(self, a: ResidueTensor) -> ResidueTensor:
        """Element-wise ``(-a) mod p`` for every row."""

    @abc.abstractmethod
    def mul(self, a: ResidueTensor, b: ResidueTensor) -> ResidueTensor:
        """Element-wise ``(a * b) mod p`` — the ⊙ of the NTT-domain pipeline."""

    @abc.abstractmethod
    def scalar_mul(self, a: ResidueTensor, scalar: int) -> ResidueTensor:
        """Multiply every row by one integer scalar (reduced per modulus)."""

    # -- structural operations -------------------------------------------------
    @abc.abstractmethod
    def concat(self, tensors: Sequence[ResidueTensor]) -> ResidueTensor:
        """Stack tensors row-wise into one wide batch (primes concatenate).

        This is how callers assemble the cross-polynomial batches the paper's
        Fig. 3 argues for — all tensors must share ``n`` and this backend.
        """

    @abc.abstractmethod
    def split(
        self, tensor: ResidueTensor, counts: Sequence[int]
    ) -> list[ResidueTensor]:
        """Inverse of :meth:`concat`: split into tensors of ``counts`` rows."""

    @abc.abstractmethod
    def slice_rows(
        self, tensor: ResidueTensor, start: int, stop: int
    ) -> ResidueTensor:
        """A new tensor holding rows ``start:stop`` (e.g. dropping RNS primes)."""

    @abc.abstractmethod
    def copy(self, tensor: ResidueTensor) -> ResidueTensor:
        """Deep copy — fresh storage, no aliasing."""

    @abc.abstractmethod
    def tensor_equal(self, a: ResidueTensor, b: ResidueTensor) -> bool:
        """Whether two tensors hold identical primes and residues."""

    # -- RNS compound operations (keep the HE layer resident) -----------------
    @abc.abstractmethod
    def digit_broadcast(self, tensor: ResidueTensor, index: int) -> ResidueTensor:
        """RNS digit decomposition step: broadcast row ``index`` across the basis.

        Returns a tensor over the same primes whose every row ``j`` is
        ``tensor[index] mod p_j`` — the per-prime digit the relinearisation
        key-switch pairs with key component ``index``.  The input must be in
        the coefficient domain for the digits to be meaningful.
        """

    @abc.abstractmethod
    def mod_switch_drop_last(
        self, tensor: ResidueTensor, plaintext_modulus: int
    ) -> ResidueTensor:
        """Exact BGV modulus switch dropping the last prime, fully in RNS.

        For each coefficient ``c`` (with ``w = c mod q_last`` available as the
        last residue row) the switched value is ``(c + t*u_c) / q_last`` where
        ``u = (-w * t^{-1}) mod q_last`` and ``u_c`` is its centered
        representative — computed per remaining prime ``p_j`` as
        ``(c_j + t*u_c) * q_last^{-1} mod p_j`` without any CRT
        reconstruction.  Requires ``q_last ≡ 1 (mod t)`` (checked by the
        evaluator) for plaintext invariance.
        """

    # -- NTT engine seam -------------------------------------------------------
    @property
    def engine(self) -> str | None:
        """Spec of the pinned NTT engine, or ``None`` when selection is dynamic.

        Backends with a transform-algorithm seam
        (:mod:`repro.backends.engines`) override this together with
        :meth:`set_engine`; the base implementation reports no seam.
        """
        return None

    def set_engine(self, spec: str | None) -> None:
        """Pin the backend's transforms to one NTT engine.

        Overridden by backends that route through the
        :class:`~repro.backends.engines.NttEngine` layer; backends without
        the seam reject the request instead of silently ignoring it.
        """
        raise NotImplementedError(
            "backend %r has no NTT-engine seam" % self.name
        )

    # -- twiddle residency -----------------------------------------------------
    def warm_twiddles(self, n: int, primes: Sequence[int]) -> None:
        """Precompute the per-``(n, p)`` twiddle tables for the given primes.

        Called by :class:`repro.he.context.HeContext` at construction so the
        first homomorphic operation does not pay table building.  Default:
        no-op.
        """

    # -- validation helpers ----------------------------------------------------
    def _check_owned(self, tensor: ResidueTensor) -> None:
        if tensor.backend is not self:
            raise ValueError(
                "tensor is owned by backend %r, not %r — tensors are opaque "
                "handles and cannot cross backends implicitly"
                % (tensor.backend.name, self.name)
            )

    def _check_pair(self, a: ResidueTensor, b: ResidueTensor) -> None:
        self._check_owned(a)
        self._check_owned(b)
        if a.primes != b.primes:
            raise ValueError(
                "tensor prime mismatch: %d vs %d rows over different moduli"
                % (len(a.primes), len(b.primes))
            )
        if a.n != b.n:
            raise ValueError("row length mismatch: %d vs %d" % (a.n, b.n))

    @staticmethod
    def _check_rows_shape(rows: ResidueRows, primes: Sequence[int]) -> None:
        if len(rows) != len(primes):
            raise ValueError(
                "batch shape mismatch: %d rows vs %d primes" % (len(rows), len(primes))
            )
        # A batch is a rectangular residue matrix; a ragged batch would be
        # rejected by the vectorised backends and silently mis-handled by
        # row-wise ones, so every backend rejects it up front.
        if rows:
            n = len(rows[0])
            for index, row in enumerate(rows):
                if len(row) != n:
                    raise ValueError(
                        "ragged batch: row 0 has %d entries but row %d has %d"
                        % (n, index, len(row))
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(name=%r)" % (type(self).__name__, self.name)
